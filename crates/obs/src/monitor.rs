//! The service-level monitoring plane: per-query live metrics, watchdogs
//! and a flight recorder for the continuous serve loop.
//!
//! A continuous query is a long-running tenant: the sink must notice when
//! its answer goes stale, its energy budget drains, its observed rank
//! error breaks the ε·n SLO it was admitted under, or its lane stops
//! carrying traffic it should be carrying. This module is that ops layer,
//! kept deliberately passive — the serve runner *feeds* the [`Monitor`]
//! plain integers and floats it already computed for its own accounting,
//! and the monitor never touches the network, so enabling monitoring
//! cannot perturb a digest (pinned by `crates/sim/tests/serve.rs`).
//!
//! **Watchdog determinism contract.** Every watchdog is evaluated inside
//! [`Monitor::end_round`], from values the engine produced in its
//! sequential accounting replay (lane books, plan-cache counters, served
//! answers). Those values are bit-identical at any within-wave worker
//! count, so the health-event stream — kinds, rounds, slots, payload
//! values — is too. No wall-clock, no sampling, no cross-slot iteration
//! order beyond ascending slot index. Each watchdog *latches* per
//! `(slot, kind)`: it fires on the first round boundary where its
//! condition holds and stays quiet afterwards, so the event stream is
//! bounded by `slots × kinds` and trivially replayable (the fuzzer
//! re-derives each condition from the audit log's lane deltas and asserts
//! the event fired iff the replayed condition held).
//!
//! **Flight recorder.** A fixed-capacity ring of per-round
//! [`RoundFrame`]s (newest frames win). When the first health event
//! fires, the monitor snapshots the ring as JSONL — the post-mortem: the
//! last `capacity` rounds *leading up to* the failure — which the CLI
//! writes out via `serve --health-json`. The ring keeps recording
//! afterwards, so an on-demand dump at end of run is also available.

use crate::export::{escape_label, PromDump};
use crate::span::{SpanEvent, SpanKind};
use std::fmt::Write as _;

/// Watchdog thresholds and recorder sizing. The defaults are lenient
/// enough that a healthy workload raises nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonitorConfig {
    /// Rounds a query may go without a fresh answer before
    /// [`HealthKind::StaleAnswer`] fires (`0` disables). Must exceed the
    /// largest epoch in the workload to stay quiet on healthy runs.
    pub stale_limit: u32,
    /// Consecutive rounds a query may *lead an execution* while its lane
    /// gains zero bits before [`HealthKind::DeadLane`] fires (`0`
    /// disables).
    pub dead_lane_limit: u32,
    /// Plan-cache lookups before the [`HealthKind::CacheThrash`] watchdog
    /// arms (`0` disables) — a cold cache always starts with misses.
    pub cache_window: u64,
    /// Minimum plan-cache hit rate (milli-units) once armed.
    pub cache_hit_floor_milli: u32,
    /// Optional per-query energy budget in joules: a lane whose
    /// cumulative charge since admission exceeds it raises
    /// [`HealthKind::BudgetOverrun`].
    pub budget_joules: Option<f64>,
    /// Flight-recorder depth in rounds.
    pub recorder_capacity: usize,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            stale_limit: 8,
            dead_lane_limit: 4,
            cache_window: 16,
            cache_hit_floor_milli: 100,
            budget_joules: None,
            recorder_capacity: 64,
        }
    }
}

/// What a [`HealthEvent`] reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HealthKind {
    /// A query's cumulative lane energy exceeded its budget.
    BudgetOverrun {
        /// Joules charged to the lane since admission.
        joules: f64,
        /// The configured budget.
        budget: f64,
    },
    /// A query went too many rounds without a fresh answer.
    StaleAnswer {
        /// Rounds since the last answer (or since admission).
        staleness: u32,
        /// The configured limit.
        limit: u32,
    },
    /// An answer's observed rank error exceeded the query's certified
    /// ε·n tolerance.
    SloViolation {
        /// The offending rank error.
        rank_error: u64,
        /// The certified tolerance.
        tolerance: u64,
    },
    /// A query kept leading executions whose waves charged its lane zero
    /// bits — traffic it should be causing is not happening.
    DeadLane {
        /// Consecutive zero-bit led rounds observed.
        idle_rounds: u32,
        /// The configured limit.
        limit: u32,
    },
    /// The plan cache's hit rate fell below the floor after the warm-up
    /// window.
    CacheThrash {
        /// Cache hits so far.
        hits: u64,
        /// Cache misses so far.
        misses: u64,
        /// The configured floor (milli-units).
        floor_milli: u32,
    },
}

impl HealthKind {
    /// Number of distinct kinds (the latch table width).
    pub const COUNT: usize = 5;

    /// Dense index into per-kind tables.
    pub fn index(&self) -> usize {
        match self {
            HealthKind::BudgetOverrun { .. } => 0,
            HealthKind::StaleAnswer { .. } => 1,
            HealthKind::SloViolation { .. } => 2,
            HealthKind::DeadLane { .. } => 3,
            HealthKind::CacheThrash { .. } => 4,
        }
    }

    /// Snake-case display name (doubles as the JSONL `kind` field and the
    /// Chrome-trace instant name).
    pub fn name(&self) -> &'static str {
        match self {
            HealthKind::BudgetOverrun { .. } => "budget_overrun",
            HealthKind::StaleAnswer { .. } => "stale_answer",
            HealthKind::SloViolation { .. } => "slo_violation",
            HealthKind::DeadLane { .. } => "dead_lane",
            HealthKind::CacheThrash { .. } => "cache_thrash",
        }
    }
}

/// One raised watchdog, stamped with the round boundary that raised it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthEvent {
    /// Round at whose boundary the watchdog fired.
    pub round: u32,
    /// The offending query slot (`None` for service-global events —
    /// currently only [`HealthKind::CacheThrash`]).
    pub slot: Option<u32>,
    /// What fired, with its evidence.
    pub kind: HealthKind,
}

impl HealthEvent {
    /// One JSONL line describing this event.
    pub fn to_json_line(&self) -> String {
        let mut out = format!(
            r#"{{"type":"health","round":{},"slot":{},"kind":"{}""#,
            self.round,
            match self.slot {
                Some(s) => s.to_string(),
                None => "null".to_string(),
            },
            self.kind.name()
        );
        match self.kind {
            HealthKind::BudgetOverrun { joules, budget } => {
                let _ = write!(out, r#","joules":{joules},"budget":{budget}"#);
            }
            HealthKind::StaleAnswer { staleness, limit } => {
                let _ = write!(out, r#","staleness":{staleness},"limit":{limit}"#);
            }
            HealthKind::SloViolation {
                rank_error,
                tolerance,
            } => {
                let _ = write!(out, r#","rank_error":{rank_error},"tolerance":{tolerance}"#);
            }
            HealthKind::DeadLane { idle_rounds, limit } => {
                let _ = write!(out, r#","idle_rounds":{idle_rounds},"limit":{limit}"#);
            }
            HealthKind::CacheThrash {
                hits,
                misses,
                floor_milli,
            } => {
                let _ = write!(
                    out,
                    r#","hits":{hits},"misses":{misses},"floor_milli":{floor_milli}"#
                );
            }
        }
        out.push('}');
        out
    }
}

/// One query's live metrics row, keyed by its service slot (= audit
/// lane).
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRow {
    /// Service slot / audit lane.
    pub slot: u32,
    /// Protocol display name (label-escaped on export).
    pub algorithm: String,
    /// Quantile fraction in milli-units.
    pub phi_milli: u32,
    /// Reporting epoch in rounds.
    pub epoch: u32,
    /// Round the query was admitted.
    pub admitted: u32,
    /// Certified rank tolerance (`⌊ε·n⌋`; 0 exact) — the accuracy SLO.
    pub tolerance: u64,
    /// Whether the query is still registered.
    pub active: bool,
    /// Round of the most recent answer, if any.
    pub last_answer_round: Option<u32>,
    /// Rounds since the last answer (or since admission), as of the last
    /// round boundary.
    pub staleness: u32,
    /// Answers delivered so far.
    pub answers: u64,
    /// Rank error of the most recent answer.
    pub last_rank_error: u64,
    /// Worst rank error of any answer.
    pub max_rank_error: u64,
    /// Joules charged to the lane since admission.
    pub joules: f64,
    /// Bits charged to the lane since admission.
    pub bits: u64,
    /// Consecutive answered rounds whose lane gained refinement traffic —
    /// each is a round where validation rejected the previous answer.
    pub validation_failure_streak: u32,
    /// Consecutive rounds this query led an execution while its lane
    /// gained zero bits (the [`HealthKind::DeadLane`] counter).
    pub lead_idle_streak: u32,
    /// Latch table: which watchdog kinds already fired for this slot.
    fired: [bool; HealthKind::COUNT],
    /// Previous round's cumulative lane bits, for per-round deltas.
    prev_bits: u64,
    /// Previous round's cumulative refinement bits.
    prev_refinement_bits: u64,
    /// Whether this slot was answered this round (reset at boundary).
    answered_this_round: bool,
    /// Whether this slot led an execution this round.
    led_this_round: bool,
}

/// One flight-recorder frame: a compact end-of-round summary.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundFrame {
    /// The round that just ended.
    pub round: u32,
    /// Cumulative plan-cache hits at the boundary.
    pub plan_hits: u64,
    /// Cumulative plan-cache misses at the boundary.
    pub plan_misses: u64,
    /// Health events raised at this boundary.
    pub events: Vec<HealthEvent>,
    /// Per-slot samples, ascending slot order (active slots only).
    pub slots: Vec<SlotSample>,
}

/// One slot's sample inside a [`RoundFrame`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlotSample {
    /// Service slot.
    pub slot: u32,
    /// Whether the slot was answered this round.
    pub answered: bool,
    /// Staleness at the boundary.
    pub staleness: u32,
    /// Rank error of the latest answer.
    pub rank_error: u64,
    /// Cumulative joules since admission.
    pub joules: f64,
    /// Cumulative bits since admission.
    pub bits: u64,
    /// Validation-failure streak at the boundary.
    pub streak: u32,
}

impl RoundFrame {
    /// One JSONL line describing this frame.
    pub fn to_json_line(&self) -> String {
        let mut out = format!(
            r#"{{"type":"round","round":{},"plan_hits":{},"plan_misses":{},"slots":["#,
            self.round, self.plan_hits, self.plan_misses
        );
        for (i, s) in self.slots.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                r#"{{"slot":{},"answered":{},"staleness":{},"rank_error":{},"joules":{},"bits":{},"streak":{}}}"#,
                s.slot, s.answered, s.staleness, s.rank_error, s.joules, s.bits, s.streak
            );
        }
        out.push_str("]}");
        out
    }
}

/// Fixed-capacity ring of the most recent [`RoundFrame`]s.
#[derive(Debug, Clone, Default)]
pub struct FlightRecorder {
    frames: Vec<RoundFrame>,
    capacity: usize,
    /// Index of the oldest frame once the ring has wrapped.
    start: usize,
}

impl FlightRecorder {
    /// An empty recorder holding at most `capacity` frames (`0` is
    /// clamped to 1 — a recorder that can hold nothing records nothing
    /// useful).
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            frames: Vec::new(),
            capacity: capacity.max(1),
            start: 0,
        }
    }

    /// Appends a frame, evicting the oldest when full.
    pub fn push(&mut self, frame: RoundFrame) {
        if self.frames.len() < self.capacity {
            self.frames.push(frame);
        } else {
            self.frames[self.start] = frame;
            self.start = (self.start + 1) % self.capacity;
        }
    }

    /// Frames currently held.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// True iff nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Maximum frames held.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Frames in chronological order (oldest first).
    pub fn frames(&self) -> impl Iterator<Item = &RoundFrame> {
        let (tail, head) = self.frames.split_at(self.start);
        head.iter().chain(tail.iter())
    }

    /// The recorder's contents as JSONL (one `round` line per frame).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for f in self.frames() {
            out.push_str(&f.to_json_line());
            out.push('\n');
        }
        out
    }
}

/// The monitoring plane: registry rows, watchdogs and the flight
/// recorder. Fed by the serve runner; read by exporters and the CLI.
#[derive(Debug, Clone)]
pub struct Monitor {
    config: MonitorConfig,
    rows: Vec<Option<QueryRow>>,
    events: Vec<HealthEvent>,
    recorder: FlightRecorder,
    /// JSONL snapshot of the ring taken when the first event fired.
    postmortem: Option<String>,
    plan_hits: u64,
    plan_misses: u64,
    /// Events raised by the most recent `end_round` (index into
    /// `events`).
    round_events_from: usize,
    cache_fired: bool,
}

impl Monitor {
    /// An empty monitor with the given thresholds.
    pub fn new(config: MonitorConfig) -> Self {
        Monitor {
            recorder: FlightRecorder::new(config.recorder_capacity),
            config,
            rows: Vec::new(),
            events: Vec::new(),
            postmortem: None,
            plan_hits: 0,
            plan_misses: 0,
            round_events_from: 0,
            cache_fired: false,
        }
    }

    /// The configured thresholds.
    pub fn config(&self) -> &MonitorConfig {
        &self.config
    }

    /// Registers a query into `slot` at the start of `round`.
    pub fn register(
        &mut self,
        slot: u32,
        round: u32,
        algorithm: &str,
        phi_milli: u32,
        epoch: u32,
        tolerance: u64,
    ) {
        let idx = slot as usize;
        if idx >= self.rows.len() {
            self.rows.resize_with(idx + 1, || None);
        }
        self.rows[idx] = Some(QueryRow {
            slot,
            algorithm: algorithm.to_string(),
            phi_milli,
            epoch,
            admitted: round,
            tolerance,
            active: true,
            last_answer_round: None,
            staleness: 0,
            answers: 0,
            last_rank_error: 0,
            max_rank_error: 0,
            joules: 0.0,
            bits: 0,
            validation_failure_streak: 0,
            lead_idle_streak: 0,
            fired: [false; HealthKind::COUNT],
            prev_bits: 0,
            prev_refinement_bits: 0,
            answered_this_round: false,
            led_this_round: false,
        });
    }

    /// Marks the query in `slot` retired (its row stays readable).
    pub fn retire(&mut self, slot: u32) {
        if let Some(row) = self.rows.get_mut(slot as usize).and_then(Option::as_mut) {
            row.active = false;
        }
    }

    /// Records one served answer for `slot` in `round` with its observed
    /// rank error, noting whether the slot led the execution.
    pub fn observe_answer(&mut self, slot: u32, round: u32, rank_error: u64, led: bool) {
        if let Some(row) = self.rows.get_mut(slot as usize).and_then(Option::as_mut) {
            row.last_answer_round = Some(round);
            row.answers += 1;
            row.last_rank_error = rank_error;
            row.max_rank_error = row.max_rank_error.max(rank_error);
            row.answered_this_round = true;
            row.led_this_round = led;
        }
    }

    /// Updates `slot`'s cumulative lane charges since admission (joules,
    /// total bits, refinement-phase bits). Call once per active slot per
    /// round, before [`Monitor::end_round`].
    pub fn observe_lane(&mut self, slot: u32, joules: f64, bits: u64, refinement_bits: u64) {
        if let Some(row) = self.rows.get_mut(slot as usize).and_then(Option::as_mut) {
            row.joules = joules;
            row.bits = bits;
            // Streak bookkeeping uses the per-round deltas; the cumulative
            // values land in the row directly.
            if row.answered_this_round {
                if refinement_bits > row.prev_refinement_bits {
                    row.validation_failure_streak += 1;
                } else {
                    row.validation_failure_streak = 0;
                }
            }
            if row.led_this_round {
                if bits == row.prev_bits {
                    row.lead_idle_streak += 1;
                } else {
                    row.lead_idle_streak = 0;
                }
            }
            row.prev_bits = bits;
            row.prev_refinement_bits = refinement_bits;
        }
    }

    /// Closes `round`: evaluates every watchdog, records a flight
    /// frame, and returns the events raised at this boundary.
    pub fn end_round(&mut self, round: u32, plan_hits: u64, plan_misses: u64) -> &[HealthEvent] {
        self.plan_hits = plan_hits;
        self.plan_misses = plan_misses;
        self.round_events_from = self.events.len();

        let cfg = self.config;
        let mut raised: Vec<HealthEvent> = Vec::new();
        for row in self.rows.iter_mut().flatten() {
            if !row.active {
                continue;
            }
            row.staleness = match row.last_answer_round {
                Some(r) => round - r,
                None => round + 1 - row.admitted,
            };
            let mut fire = |row: &mut QueryRow, kind: HealthKind| {
                if !row.fired[kind.index()] {
                    row.fired[kind.index()] = true;
                    raised.push(HealthEvent {
                        round,
                        slot: Some(row.slot),
                        kind,
                    });
                }
            };
            if let Some(budget) = cfg.budget_joules {
                if row.joules > budget {
                    fire(
                        row,
                        HealthKind::BudgetOverrun {
                            joules: row.joules,
                            budget,
                        },
                    );
                }
            }
            if cfg.stale_limit > 0 && row.staleness >= cfg.stale_limit {
                fire(
                    row,
                    HealthKind::StaleAnswer {
                        staleness: row.staleness,
                        limit: cfg.stale_limit,
                    },
                );
            }
            if row.answered_this_round && row.last_rank_error > row.tolerance {
                fire(
                    row,
                    HealthKind::SloViolation {
                        rank_error: row.last_rank_error,
                        tolerance: row.tolerance,
                    },
                );
            }
            if cfg.dead_lane_limit > 0 && row.lead_idle_streak >= cfg.dead_lane_limit {
                fire(
                    row,
                    HealthKind::DeadLane {
                        idle_rounds: row.lead_idle_streak,
                        limit: cfg.dead_lane_limit,
                    },
                );
            }
            row.answered_this_round = false;
            row.led_this_round = false;
        }

        if !self.cache_fired && cfg.cache_window > 0 {
            let lookups = plan_hits + plan_misses;
            if lookups >= cfg.cache_window {
                let rate_milli = (plan_hits.saturating_mul(1000) / lookups) as u32;
                if rate_milli < cfg.cache_hit_floor_milli {
                    self.cache_fired = true;
                    raised.push(HealthEvent {
                        round,
                        slot: None,
                        kind: HealthKind::CacheThrash {
                            hits: plan_hits,
                            misses: plan_misses,
                            floor_milli: cfg.cache_hit_floor_milli,
                        },
                    });
                }
            }
        }

        let frame = RoundFrame {
            round,
            plan_hits,
            plan_misses,
            events: raised.clone(),
            slots: self
                .rows
                .iter()
                .flatten()
                .filter(|r| r.active)
                .map(|r| SlotSample {
                    slot: r.slot,
                    answered: r.last_answer_round == Some(round),
                    staleness: r.staleness,
                    rank_error: r.last_rank_error,
                    joules: r.joules,
                    bits: r.bits,
                    streak: r.validation_failure_streak,
                })
                .collect(),
        };
        self.recorder.push(frame);

        let first_event = self.events.is_empty() && !raised.is_empty();
        self.events.extend(raised);
        if first_event {
            // Post-mortem: the ring as it stood when monitoring first saw
            // trouble — the `capacity` rounds leading up to the failure.
            let mut dump = self.recorder.to_jsonl();
            for e in &self.events {
                dump.push_str(&e.to_json_line());
                dump.push('\n');
            }
            self.postmortem = Some(dump);
        }
        &self.events[self.round_events_from..]
    }

    /// All health events raised so far, in raise order.
    pub fn events(&self) -> &[HealthEvent] {
        &self.events
    }

    /// True iff any watchdog fired.
    pub fn is_unhealthy(&self) -> bool {
        !self.events.is_empty()
    }

    /// The registry rows, ascending slot order (including retired rows).
    pub fn rows(&self) -> impl Iterator<Item = &QueryRow> {
        self.rows.iter().flatten()
    }

    /// One row by slot.
    pub fn row(&self, slot: u32) -> Option<&QueryRow> {
        self.rows.get(slot as usize).and_then(Option::as_ref)
    }

    /// The flight recorder.
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// Plan-cache hit rate in milli-units (1000 when no lookups yet).
    pub fn cache_hit_rate_milli(&self) -> u32 {
        let lookups = self.plan_hits + self.plan_misses;
        self.plan_hits
            .saturating_mul(1000)
            .checked_div(lookups)
            .unwrap_or(1000) as u32
    }

    /// The JSONL dump: the ring snapshot taken at the first health event
    /// when one fired (the post-mortem), otherwise the current ring —
    /// `round` lines followed by one `health` line per event.
    pub fn health_jsonl(&self) -> String {
        if let Some(snap) = &self.postmortem {
            return snap.clone();
        }
        let mut out = self.recorder.to_jsonl();
        for e in &self.events {
            out.push_str(&e.to_json_line());
            out.push('\n');
        }
        out
    }

    /// The health-event track for a Chrome-trace export: one instant per
    /// event on `track`, timestamped *deterministically* from the round
    /// number (1 ms of trace time per round) — never from a wall clock,
    /// so two runs of the same workload produce byte-identical tracks.
    pub fn trace_events(&self, track: u32) -> Vec<SpanEvent> {
        self.events
            .iter()
            .map(|e| SpanEvent {
                name: e.kind.name(),
                track,
                round: e.round,
                start_ns: e.round as u64 * 1_000_000,
                dur_ns: 0,
                kind: SpanKind::Instant,
            })
            .collect()
    }

    /// Appends the registry to a Prometheus dump: per-query gauges and
    /// counters labelled `slot`/`algorithm`/`phi_milli` (label values are
    /// escaped), plus service-global cache and health series.
    pub fn prom(&self, dump: &mut PromDump) {
        for row in self.rows() {
            let labels = format!(
                r#"slot="{}",algorithm="{}",phi_milli="{}""#,
                row.slot,
                escape_label(&row.algorithm),
                row.phi_milli
            );
            dump.gauge(
                "wsn_query_staleness_rounds",
                &labels,
                "rounds since the query last answered",
                row.staleness as f64,
            );
            dump.gauge(
                "wsn_query_max_rank_error",
                &labels,
                "worst observed rank error",
                row.max_rank_error as f64,
            );
            dump.gauge(
                "wsn_query_rank_tolerance",
                &labels,
                "certified eps*n rank tolerance (the accuracy SLO)",
                row.tolerance as f64,
            );
            dump.gauge(
                "wsn_query_lane_joules",
                &labels,
                "energy charged to the query lane since admission",
                row.joules,
            );
            dump.counter(
                "wsn_query_lane_bits_total",
                &labels,
                "bits charged to the query lane since admission",
                row.bits,
            );
            dump.counter(
                "wsn_query_answers_total",
                &labels,
                "answers delivered",
                row.answers,
            );
            dump.gauge(
                "wsn_query_validation_failure_streak",
                &labels,
                "consecutive answered rounds needing refinement",
                row.validation_failure_streak as f64,
            );
        }
        dump.counter(
            "wsn_plan_cache_hits_total",
            "",
            "traffic-plan cache hits",
            self.plan_hits,
        );
        dump.counter(
            "wsn_plan_cache_misses_total",
            "",
            "traffic-plan cache misses",
            self.plan_misses,
        );
        dump.gauge(
            "wsn_plan_cache_hit_rate_milli",
            "",
            "plan-cache hit rate in milli-units",
            self.cache_hit_rate_milli() as f64,
        );
        let mut by_kind = [0u64; HealthKind::COUNT];
        for e in &self.events {
            by_kind[e.kind.index()] += 1;
        }
        for (i, name) in [
            "budget_overrun",
            "stale_answer",
            "slo_violation",
            "dead_lane",
            "cache_thrash",
        ]
        .iter()
        .enumerate()
        {
            dump.counter(
                "wsn_health_events_total",
                &format!(r#"kind="{name}""#),
                "watchdog events raised",
                by_kind[i],
            );
        }
    }

    /// A text status table of the registry as of the last round boundary.
    pub fn status_table(&self) -> String {
        let mut out = String::from(
            "slot alg        phi  epoch stale maxerr tol  answers lane_mj    bits       streak state\n",
        );
        for row in self.rows() {
            let _ = writeln!(
                out,
                "{:<4} {:<10} {:<4} {:<5} {:<5} {:<6} {:<4} {:<7} {:<10.4} {:<10} {:<6} {}",
                row.slot,
                row.algorithm,
                row.phi_milli,
                row.epoch,
                row.staleness,
                row.max_rank_error,
                row.tolerance,
                row.answers,
                row.joules * 1e3,
                row.bits,
                row.validation_failure_streak,
                if row.active { "active" } else { "retired" },
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn monitor(cfg: MonitorConfig) -> Monitor {
        let mut m = Monitor::new(cfg);
        m.register(0, 0, "IQ", 500, 1, 0);
        m
    }

    #[test]
    fn budget_overrun_latches_on_first_crossing() {
        let mut m = monitor(MonitorConfig {
            budget_joules: Some(1e-3),
            ..MonitorConfig::default()
        });
        m.observe_answer(0, 0, 0, true);
        m.observe_lane(0, 5e-4, 100, 0);
        assert!(m.end_round(0, 0, 1).is_empty(), "under budget");
        m.observe_answer(0, 1, 0, true);
        m.observe_lane(0, 2e-3, 200, 0);
        let events = m.end_round(1, 0, 2).to_vec();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].round, 1);
        assert_eq!(events[0].slot, Some(0));
        assert!(matches!(
            events[0].kind,
            HealthKind::BudgetOverrun { budget, .. } if budget == 1e-3
        ));
        // Latched: staying over budget raises nothing new.
        m.observe_answer(0, 2, 0, true);
        m.observe_lane(0, 3e-3, 300, 0);
        assert!(m.end_round(2, 0, 3).is_empty());
        assert_eq!(m.events().len(), 1);
        assert!(m.is_unhealthy());
    }

    #[test]
    fn staleness_counts_from_last_answer_or_admission() {
        let mut m = monitor(MonitorConfig {
            stale_limit: 3,
            ..MonitorConfig::default()
        });
        m.observe_answer(0, 0, 0, true);
        m.observe_lane(0, 0.0, 10, 0);
        m.end_round(0, 0, 1);
        assert_eq!(m.row(0).unwrap().staleness, 0);
        for t in 1..3 {
            m.observe_lane(0, 0.0, 10, 0);
            assert!(m.end_round(t, 0, 1).is_empty(), "round {t}");
        }
        m.observe_lane(0, 0.0, 10, 0);
        let events = m.end_round(3, 0, 1).to_vec();
        assert_eq!(events.len(), 1);
        assert!(matches!(
            events[0].kind,
            HealthKind::StaleAnswer {
                staleness: 3,
                limit: 3
            }
        ));
        // A never-answered query counts from admission.
        let mut m2 = monitor(MonitorConfig {
            stale_limit: 2,
            ..MonitorConfig::default()
        });
        m2.end_round(0, 0, 0);
        assert_eq!(m2.row(0).unwrap().staleness, 1);
        let events = m2.end_round(1, 0, 0).to_vec();
        assert_eq!(events.len(), 1, "staleness 2 hits the limit");
    }

    #[test]
    fn slo_violation_compares_against_the_tolerance() {
        let mut m = Monitor::new(MonitorConfig::default());
        m.register(3, 0, "QD", 250, 1, 5);
        m.observe_answer(3, 0, 5, true);
        m.observe_lane(3, 0.0, 10, 0);
        assert!(m.end_round(0, 0, 1).is_empty(), "at tolerance is fine");
        m.observe_answer(3, 1, 6, true);
        m.observe_lane(3, 0.0, 20, 0);
        let events = m.end_round(1, 0, 2).to_vec();
        assert_eq!(events.len(), 1);
        assert!(matches!(
            events[0].kind,
            HealthKind::SloViolation {
                rank_error: 6,
                tolerance: 5
            }
        ));
    }

    #[test]
    fn dead_lane_needs_consecutive_zero_bit_led_rounds() {
        let mut m = monitor(MonitorConfig {
            dead_lane_limit: 2,
            ..MonitorConfig::default()
        });
        // Led round with traffic: streak resets.
        m.observe_answer(0, 0, 0, true);
        m.observe_lane(0, 1e-6, 100, 0);
        m.end_round(0, 0, 1);
        // Two led rounds with no new bits.
        m.observe_answer(0, 1, 0, true);
        m.observe_lane(0, 1e-6, 100, 0);
        assert!(m.end_round(1, 0, 1).is_empty());
        m.observe_answer(0, 2, 0, true);
        m.observe_lane(0, 1e-6, 100, 0);
        let events = m.end_round(2, 0, 1).to_vec();
        assert_eq!(events.len(), 1);
        assert!(matches!(events[0].kind, HealthKind::DeadLane { .. }));
        // A follower (led = false) never trips the watchdog.
        let mut f = monitor(MonitorConfig {
            dead_lane_limit: 1,
            stale_limit: 0,
            ..MonitorConfig::default()
        });
        for t in 0..5 {
            f.observe_answer(0, t, 0, false);
            f.observe_lane(0, 0.0, 0, 0);
            assert!(f.end_round(t, 0, 1).is_empty(), "round {t}");
        }
    }

    #[test]
    fn cache_thrash_arms_after_the_window() {
        let mut m = Monitor::new(MonitorConfig {
            cache_window: 4,
            cache_hit_floor_milli: 500,
            ..MonitorConfig::default()
        });
        assert!(m.end_round(0, 0, 2).is_empty(), "window not reached");
        let events = m.end_round(1, 1, 4).to_vec();
        assert_eq!(events.len(), 1, "5 lookups, 20% hits < 50% floor");
        assert_eq!(events[0].slot, None);
        assert!(matches!(
            events[0].kind,
            HealthKind::CacheThrash {
                hits: 1,
                misses: 4,
                floor_milli: 500
            }
        ));
        // Latched.
        assert!(m.end_round(2, 1, 6).is_empty());
        // A healthy cache never fires.
        let mut ok = Monitor::new(MonitorConfig {
            cache_window: 4,
            cache_hit_floor_milli: 500,
            ..MonitorConfig::default()
        });
        for t in 0..8 {
            assert!(ok.end_round(t, 10, 2).is_empty());
        }
        assert_eq!(ok.cache_hit_rate_milli(), 833);
    }

    #[test]
    fn validation_failure_streak_follows_refinement_deltas() {
        let mut m = monitor(MonitorConfig::default());
        m.observe_answer(0, 0, 0, true);
        m.observe_lane(0, 0.0, 100, 40);
        m.end_round(0, 0, 1);
        assert_eq!(m.row(0).unwrap().validation_failure_streak, 1);
        m.observe_answer(0, 1, 0, true);
        m.observe_lane(0, 0.0, 150, 80);
        m.end_round(1, 0, 1);
        assert_eq!(m.row(0).unwrap().validation_failure_streak, 2);
        // A validation-only round resets the streak.
        m.observe_answer(0, 2, 0, true);
        m.observe_lane(0, 0.0, 160, 80);
        m.end_round(2, 0, 1);
        assert_eq!(m.row(0).unwrap().validation_failure_streak, 0);
    }

    #[test]
    fn flight_recorder_ring_keeps_the_newest_frames() {
        let mut rec = FlightRecorder::new(3);
        for round in 0..5 {
            rec.push(RoundFrame {
                round,
                plan_hits: 0,
                plan_misses: 0,
                events: Vec::new(),
                slots: Vec::new(),
            });
        }
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.capacity(), 3);
        let rounds: Vec<u32> = rec.frames().map(|f| f.round).collect();
        assert_eq!(rounds, vec![2, 3, 4], "oldest first, newest kept");
    }

    #[test]
    fn postmortem_snapshots_the_ring_at_first_event() {
        let mut m = monitor(MonitorConfig {
            budget_joules: Some(1e-6),
            recorder_capacity: 2,
            ..MonitorConfig::default()
        });
        m.observe_answer(0, 0, 0, true);
        m.observe_lane(0, 0.0, 0, 0);
        m.end_round(0, 0, 1);
        m.observe_answer(0, 1, 0, true);
        m.observe_lane(0, 1e-3, 100, 0);
        m.end_round(1, 0, 1);
        let snap = m.health_jsonl();
        assert!(snap.contains(r#""type":"round","round":0"#));
        assert!(snap.contains(r#""kind":"budget_overrun""#));
        // Later rounds do not disturb the post-mortem.
        m.observe_answer(0, 2, 0, true);
        m.observe_lane(0, 2e-3, 200, 0);
        m.end_round(2, 0, 1);
        assert_eq!(m.health_jsonl(), snap);
    }

    #[test]
    fn health_jsonl_without_events_is_the_live_ring() {
        let mut m = monitor(MonitorConfig::default());
        m.observe_answer(0, 0, 2, true);
        // tolerance 0, rank_error 2 would fire SloViolation — use a clean
        // answer instead.
        let mut clean = monitor(MonitorConfig::default());
        clean.observe_answer(0, 0, 0, true);
        clean.observe_lane(0, 1e-6, 64, 0);
        clean.end_round(0, 3, 1);
        let dump = clean.health_jsonl();
        assert!(dump.contains(r#""type":"round""#));
        assert!(!dump.contains(r#""type":"health""#));
        drop(m);
    }

    #[test]
    fn trace_events_are_deterministic_instants() {
        let mut m = monitor(MonitorConfig {
            budget_joules: Some(0.0),
            ..MonitorConfig::default()
        });
        m.observe_answer(0, 2, 0, true);
        m.observe_lane(0, 1e-9, 8, 0);
        m.end_round(2, 0, 1);
        let track = m.trace_events(7);
        assert_eq!(track.len(), 1);
        assert_eq!(track[0].name, "budget_overrun");
        assert_eq!(track[0].track, 7);
        assert_eq!(track[0].round, 2);
        assert_eq!(track[0].start_ns, 2_000_000, "1 ms per round, no clock");
        assert_eq!(track[0].kind, SpanKind::Instant);
    }

    #[test]
    fn prom_dump_carries_per_query_series_and_health_counters() {
        let mut m = Monitor::new(MonitorConfig::default());
        m.register(0, 0, "IQ", 500, 1, 0);
        m.register(1, 0, "QD\"x\\y", 250, 2, 9);
        m.observe_answer(0, 0, 0, true);
        m.observe_lane(0, 1.5e-3, 640, 0);
        m.end_round(0, 2, 1);
        let mut dump = PromDump::new();
        m.prom(&mut dump);
        let text = dump.finish();
        assert_eq!(
            text.matches("# TYPE wsn_query_lane_joules gauge").count(),
            1
        );
        assert!(text
            .contains(r#"wsn_query_lane_joules{slot="0",algorithm="IQ",phi_milli="500"} 0.0015"#));
        assert!(text.contains(r#"algorithm="QD\"x\\y""#), "labels escaped");
        assert!(text.contains(r#"wsn_health_events_total{kind="budget_overrun"} 0"#));
        assert!(text.contains("wsn_plan_cache_hit_rate_milli 666"));
    }

    #[test]
    fn status_table_lists_every_row() {
        let mut m = Monitor::new(MonitorConfig::default());
        m.register(0, 0, "IQ", 500, 1, 0);
        m.register(2, 0, "TAG", 1000, 4, 0);
        m.retire(2);
        let table = m.status_table();
        assert!(table.contains("slot"));
        assert!(table.contains("IQ"));
        assert!(table.contains("retired"));
    }

    #[test]
    fn round_frame_json_lines_are_flat_objects() {
        let frame = RoundFrame {
            round: 7,
            plan_hits: 3,
            plan_misses: 1,
            events: Vec::new(),
            slots: vec![SlotSample {
                slot: 0,
                answered: true,
                staleness: 0,
                rank_error: 2,
                joules: 1e-4,
                bits: 512,
                streak: 1,
            }],
        };
        let line = frame.to_json_line();
        assert!(line.starts_with(r#"{"type":"round","round":7"#));
        assert!(line.contains(r#""slots":[{"slot":0,"answered":true"#));
        let ev = HealthEvent {
            round: 7,
            slot: None,
            kind: HealthKind::CacheThrash {
                hits: 1,
                misses: 9,
                floor_milli: 100,
            },
        };
        assert!(ev.to_json_line().contains(r#""slot":null"#));
    }
}
