//! Allocation-free-when-disabled span/event recording with wall-clock
//! timing.
//!
//! The simulator's logical time is rounds; its *cost* is wall-clock. The
//! [`Recorder`] bridges the two: every span carries both the simulation
//! round it belongs to and the real nanoseconds it took, so a Chrome-trace
//! export shows where the engine actually spends its time — initialization
//! collections dwarfing validation counters, ARQ storms stretching a wave.
//!
//! Disabled (the default) the recorder is inert: [`Recorder::start`]
//! returns a null token without reading the clock and every record call is
//! a single branch — no allocation, no `Instant::now`, nothing that could
//! perturb a benchmarked hot path.

use std::time::Instant;

/// What a [`SpanEvent`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// A duration: `start_ns .. start_ns + dur_ns`.
    Span,
    /// A point event (`dur_ns` is zero).
    Instant,
}

/// One recorded span or instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanEvent {
    /// Static label ("round", "convergecast", a phase name, …).
    pub name: &'static str,
    /// Track the event belongs to — 0 is the engine-level track, node `i`
    /// records on track `i + 1`.
    pub track: u32,
    /// Simulation round the event happened in.
    pub round: u32,
    /// Nanoseconds since the recorder was enabled.
    pub start_ns: u64,
    /// Duration in nanoseconds (0 for instants).
    pub dur_ns: u64,
    /// Span or instant.
    pub kind: SpanKind,
}

/// A timestamp token from [`Recorder::start`]; `None` means the recorder
/// was disabled when the span began, so its end is dropped too.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpanStart(Option<Instant>);

/// The span/event recorder. One per network; disabled by default.
#[derive(Debug, Clone)]
pub struct Recorder {
    enabled: bool,
    epoch: Instant,
    events: Vec<SpanEvent>,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder {
            enabled: false,
            epoch: Instant::now(),
            events: Vec::new(),
        }
    }
}

impl Recorder {
    /// Turns recording on or off. Enabling resets the epoch (timestamps
    /// count from here) and clears previously recorded events.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
        self.epoch = Instant::now();
        self.events.clear();
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Begins a span. Free (no clock read) when disabled.
    #[inline]
    pub fn start(&self) -> SpanStart {
        if self.enabled {
            SpanStart(Some(Instant::now()))
        } else {
            SpanStart(None)
        }
    }

    /// Ends a span begun with [`Recorder::start`]. A span whose start was
    /// taken while disabled is silently dropped, so toggling mid-flight
    /// never records half-timed garbage.
    #[inline]
    pub fn end(&mut self, name: &'static str, track: u32, round: u32, start: SpanStart) {
        let (Some(begin), true) = (start.0, self.enabled) else {
            return;
        };
        let start_ns = begin.saturating_duration_since(self.epoch).as_nanos() as u64;
        let dur_ns = begin.elapsed().as_nanos() as u64;
        self.events.push(SpanEvent {
            name,
            track,
            round,
            start_ns,
            dur_ns,
            kind: SpanKind::Span,
        });
    }

    /// Records a point event (one branch when disabled).
    #[inline]
    pub fn instant(&mut self, name: &'static str, track: u32, round: u32) {
        if !self.enabled {
            return;
        }
        let start_ns = self.epoch.elapsed().as_nanos() as u64;
        self.events.push(SpanEvent {
            name,
            track,
            round,
            start_ns,
            dur_ns: 0,
            kind: SpanKind::Instant,
        });
    }

    /// All recorded events, in recording order.
    pub fn events(&self) -> &[SpanEvent] {
        &self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_records_nothing() {
        let mut rec = Recorder::default();
        let t = rec.start();
        rec.end("x", 0, 0, t);
        rec.instant("y", 1, 0);
        assert!(rec.events().is_empty());
        assert!(!rec.is_enabled());
    }

    #[test]
    fn enabled_recorder_times_spans() {
        let mut rec = Recorder::default();
        rec.set_enabled(true);
        let t = rec.start();
        std::hint::black_box((0..1000).sum::<u64>());
        rec.end("work", 3, 7, t);
        rec.instant("mark", 0, 7);
        assert_eq!(rec.events().len(), 2);
        let span = rec.events()[0];
        assert_eq!(span.name, "work");
        assert_eq!(span.track, 3);
        assert_eq!(span.round, 7);
        assert_eq!(span.kind, SpanKind::Span);
        let mark = rec.events()[1];
        assert_eq!(mark.kind, SpanKind::Instant);
        assert_eq!(mark.dur_ns, 0);
        assert!(mark.start_ns >= span.start_ns);
    }

    #[test]
    fn span_started_while_disabled_is_dropped() {
        let mut rec = Recorder::default();
        let t = rec.start(); // disabled: null token
        rec.set_enabled(true);
        rec.end("late", 0, 0, t);
        assert!(rec.events().is_empty());
    }

    #[test]
    fn re_enabling_clears_history() {
        let mut rec = Recorder::default();
        rec.set_enabled(true);
        rec.instant("a", 0, 0);
        rec.set_enabled(true);
        assert!(rec.events().is_empty());
    }
}
