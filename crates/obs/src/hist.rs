//! Fixed-size log-bucketed histograms.
//!
//! Shrivastava et al.'s q-digest and every hierarchical-aggregation study
//! since motivate *distributions*, not just means: a per-node histogram of
//! message sizes separates the one 40-fragment initialization burst from
//! ten thousand 3-byte counters that average to the same number. The
//! histograms here are built for the simulator's hot path:
//!
//! * **fixed size** — [`LogHistogram`] is a `Copy` array of
//!   [`LogHistogram::BUCKETS`] counters; recording is two integer ops and
//!   an array increment, never an allocation;
//! * **log-bucketed** — bucket `i` covers `[2^(i-1), 2^i)` (bucket 0 is
//!   exactly zero), so the 1-bit-to-gigabit range fits 32 buckets;
//! * **mergeable** — bucket-wise addition aggregates nodes into networks
//!   and runs into experiments without losing the shape.
//!
//! **Bucket-edge convention.** Bucket 0 holds *exactly* the value zero.
//! Bucket `i ≥ 1` holds the values whose highest set bit is `i - 1`, i.e.
//! the closed range `[2^(i-1), 2^i - 1]` — so boundaries land on powers
//! of two and a value `2^k` opens bucket `k + 1`, never closes bucket
//! `k`. The last bucket (index 31) is open-ended: it absorbs every value
//! `≥ 2^30`, all the way to `u64::MAX`, and reports `u64::MAX` as its
//! inclusive upper bound. The `sum` and `count` accumulators saturate
//! instead of wrapping, so even adversarial streams of `u64::MAX`
//! samples can bucket-index, record and merge without overflow.

/// One log-bucketed histogram over `u64` samples.
///
/// Bucket 0 counts exact zeros; bucket `i ≥ 1` counts samples whose
/// highest set bit is `i - 1`, i.e. values in `[2^(i-1), 2^i - 1]`. The
/// last bucket absorbs everything too large.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogHistogram {
    counts: [u64; LogHistogram::BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            counts: [0; LogHistogram::BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl LogHistogram {
    /// Number of buckets. 32 buckets cover zero plus `[1, 2^31)` with the
    /// last bucket absorbing larger samples — sensor frames, hop depths,
    /// retries and fan-ins all fit with room to spare.
    pub const BUCKETS: usize = 32;

    /// The bucket a sample falls into.
    pub fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            (64 - value.leading_zeros() as usize).min(LogHistogram::BUCKETS - 1)
        }
    }

    /// Inclusive `(lo, hi)` sample range of bucket `i` (the last bucket is
    /// open-ended and reports `u64::MAX`).
    pub fn bucket_range(i: usize) -> (u64, u64) {
        match i {
            0 => (0, 0),
            _ if i >= LogHistogram::BUCKETS - 1 => (1 << (LogHistogram::BUCKETS - 2), u64::MAX),
            _ => (1 << (i - 1), (1 << i) - 1),
        }
    }

    /// Records one sample. Never allocates; `sum` saturates at
    /// `u64::MAX` rather than wrapping (see the module header).
    pub fn record(&mut self, value: u64) {
        self.counts[LogHistogram::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Records the same sample `times` times. All four counters are plain
    /// integer accumulators (with the same saturating `sum` as
    /// [`record`](Self::record)), so this is exactly equivalent to calling
    /// [`record`](Self::record) `times` times — engines may coalesce runs
    /// of identical samples without changing any observable state.
    pub fn record_n(&mut self, value: u64, times: u64) {
        if times == 0 {
            return;
        }
        self.counts[LogHistogram::bucket_of(value)] += times;
        self.count += times;
        self.sum = self.sum.saturating_add(value.saturating_mul(times));
        self.max = self.max.max(value);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample seen (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// True iff nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Samples in bucket `i`.
    pub fn bucket_count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Upper bound (inclusive) of the bucket containing the `q`-quantile
    /// of the recorded samples, `q ∈ [0, 1]`. `None` when empty.
    pub fn quantile_bound(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(LogHistogram::bucket_range(i).1);
            }
        }
        Some(LogHistogram::bucket_range(LogHistogram::BUCKETS - 1).1)
    }

    /// Bucket-wise accumulation of `other` into `self` (`sum` saturates,
    /// matching [`record`](Self::record)).
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

/// The quantities the network engine histograms per node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistKind {
    /// Bits of each transmitted data frame (fragments individually).
    MsgBits,
    /// Routing-tree depth of the transmitter at each wave transmission.
    HopDepth,
    /// ARQ data-frame retransmissions spent per link payload.
    Retries,
    /// Child payloads merged per convergecast transmission (subtree
    /// fan-in of the node's inbox).
    FanIn,
}

impl HistKind {
    /// Number of histogram kinds.
    pub const COUNT: usize = 4;

    /// Every kind, in display order.
    pub const ALL: [HistKind; HistKind::COUNT] = [
        HistKind::MsgBits,
        HistKind::HopDepth,
        HistKind::Retries,
        HistKind::FanIn,
    ];

    /// Dense index into per-kind arrays.
    pub fn index(self) -> usize {
        match self {
            HistKind::MsgBits => 0,
            HistKind::HopDepth => 1,
            HistKind::Retries => 2,
            HistKind::FanIn => 3,
        }
    }

    /// Snake-case display name (doubles as the metric name stem).
    pub fn name(self) -> &'static str {
        match self {
            HistKind::MsgBits => "msg_bits",
            HistKind::HopDepth => "hop_depth",
            HistKind::Retries => "retries",
            HistKind::FanIn => "fan_in",
        }
    }
}

/// One histogram per [`HistKind`] — the full telemetry of one node (or,
/// merged, of a whole network or experiment). `Copy`, so it can ride on
/// plain-old-data metrics structs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistogramSet {
    hists: [LogHistogram; HistKind::COUNT],
}

impl HistogramSet {
    /// Records a sample under `kind`.
    pub fn record(&mut self, kind: HistKind, value: u64) {
        self.hists[kind.index()].record(value);
    }

    /// Records the same sample `times` times under `kind` (see
    /// [`LogHistogram::record_n`] for the exactness argument).
    pub fn record_n(&mut self, kind: HistKind, value: u64, times: u64) {
        self.hists[kind.index()].record_n(value, times);
    }

    /// The histogram of one kind.
    pub fn get(&self, kind: HistKind) -> &LogHistogram {
        &self.hists[kind.index()]
    }

    /// Accumulates `other` into `self`, histogram by histogram.
    pub fn merge(&mut self, other: &HistogramSet) {
        for (a, b) in self.hists.iter_mut().zip(other.hists.iter()) {
            a.merge(b);
        }
    }

    /// True iff no kind recorded anything.
    pub fn is_empty(&self) -> bool {
        self.hists.iter().all(LogHistogram::is_empty)
    }
}

/// Per-node histogram sets, allocated once at network construction (the
/// recording path only increments fixed-size arrays).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NodeHistograms {
    nodes: Vec<HistogramSet>,
}

impl NodeHistograms {
    /// Allocates empty histograms for `n` nodes.
    pub fn new(n: usize) -> Self {
        NodeHistograms {
            nodes: vec![HistogramSet::default(); n],
        }
    }

    /// Number of nodes tracked.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True iff no nodes are tracked.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Records a sample for `node` (silently ignores out-of-range ids, so
    /// callers need no bounds logic on repaired/shrunk trees).
    #[inline]
    pub fn record(&mut self, node: usize, kind: HistKind, value: u64) {
        if let Some(set) = self.nodes.get_mut(node) {
            set.record(kind, value);
        }
    }

    /// Records the same sample `times` times for `node` — the bulk form of
    /// [`record`](Self::record), equivalent to `times` individual calls.
    /// Lets engines buffer runs of identical samples in a small hot cache
    /// and flush them here without touching the per-node blocks per sample.
    #[inline]
    pub fn record_n(&mut self, node: usize, kind: HistKind, value: u64, times: u64) {
        if let Some(set) = self.nodes.get_mut(node) {
            set.record_n(kind, value, times);
        }
    }

    /// One node's histograms.
    pub fn node(&self, node: usize) -> &HistogramSet {
        &self.nodes[node]
    }

    /// Rearranges the slots in place so that slot `new` afterwards holds
    /// what slot `map(new)` held before. `map` must be a permutation of
    /// `0..len`. This is how the network engine keeps its histograms in
    /// wave order (contiguous along the convergecast hot path) while still
    /// presenting node-id order at its API boundary — and re-keys them when
    /// a tree repair changes the wave order.
    pub fn reindex(&mut self, map: impl Fn(usize) -> usize) {
        let old = self.nodes.clone();
        for (new, set) in self.nodes.iter_mut().enumerate() {
            *set = old[map(new)];
        }
    }

    /// Network-wide totals: every node's histograms merged.
    pub fn total(&self) -> HistogramSet {
        let mut out = HistogramSet::default();
        for set in &self.nodes {
            out.merge(set);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(LogHistogram::bucket_of(0), 0);
        assert_eq!(LogHistogram::bucket_of(1), 1);
        assert_eq!(LogHistogram::bucket_of(2), 2);
        assert_eq!(LogHistogram::bucket_of(3), 2);
        assert_eq!(LogHistogram::bucket_of(4), 3);
        assert_eq!(LogHistogram::bucket_of(7), 3);
        assert_eq!(LogHistogram::bucket_of(8), 4);
        assert_eq!(LogHistogram::bucket_of(1023), 10);
        assert_eq!(LogHistogram::bucket_of(1024), 11);
        assert_eq!(LogHistogram::bucket_of(u64::MAX), LogHistogram::BUCKETS - 1);
        for i in 0..LogHistogram::BUCKETS {
            let (lo, hi) = LogHistogram::bucket_range(i);
            assert!(lo <= hi);
            assert_eq!(LogHistogram::bucket_of(lo), i, "lo of bucket {i}");
            if i < LogHistogram::BUCKETS - 1 {
                assert_eq!(LogHistogram::bucket_of(hi), i, "hi of bucket {i}");
            }
        }
    }

    #[test]
    fn boundary_samples_pin_the_edge_buckets() {
        // Zero: its own bucket, closed on both sides.
        assert_eq!(LogHistogram::bucket_of(0), 0);
        assert_eq!(LogHistogram::bucket_range(0), (0, 0));
        // One: the first log bucket, [1, 1].
        assert_eq!(LogHistogram::bucket_of(1), 1);
        assert_eq!(LogHistogram::bucket_range(1), (1, 1));
        // u64::MAX: the open-ended top bucket — no panic, no wrap.
        let top = LogHistogram::BUCKETS - 1;
        assert_eq!(LogHistogram::bucket_of(u64::MAX), top);
        assert_eq!(LogHistogram::bucket_range(top), (1 << (top - 1), u64::MAX));
        let mut h = LogHistogram::default();
        for v in [0, 1, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.bucket_count(0), 1);
        assert_eq!(h.bucket_count(1), 1);
        assert_eq!(h.bucket_count(top), 1);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.sum(), u64::MAX, "sum saturates instead of wrapping");
        assert_eq!(h.quantile_bound(1.0), Some(u64::MAX));
    }

    #[test]
    fn repeated_max_samples_saturate_without_panicking() {
        let mut h = LogHistogram::default();
        h.record(u64::MAX);
        h.record(u64::MAX); // would overflow a wrapping sum in debug builds
        h.record(7);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), u64::MAX);
        let mut bulk = LogHistogram::default();
        bulk.record_n(u64::MAX, 3);
        assert_eq!(bulk.sum(), u64::MAX, "record_n saturates identically");
        assert_eq!(bulk.count(), 3);
        // Merging two saturated histograms still saturates.
        let mut a = h;
        a.merge(&bulk);
        assert_eq!(a.sum(), u64::MAX);
        assert_eq!(a.count(), 6);
    }

    #[test]
    fn record_tracks_count_sum_max() {
        let mut h = LogHistogram::default();
        for v in [0, 1, 3, 8, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1012);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.bucket_count(0), 1);
        assert_eq!(h.bucket_count(1), 1);
        assert_eq!(h.bucket_count(2), 1);
        assert_eq!(h.bucket_count(4), 1);
        assert_eq!(h.bucket_count(10), 1);
        assert!((h.mean() - 202.4).abs() < 1e-12);
    }

    #[test]
    fn record_n_equals_repeated_record() {
        for (value, times) in [(0u64, 3u64), (1, 1), (7, 5), (1000, 17), (1 << 40, 2)] {
            let mut bulk = LogHistogram::default();
            let mut single = LogHistogram::default();
            bulk.record_n(value, times);
            for _ in 0..times {
                single.record(value);
            }
            assert_eq!(bulk, single, "value={value} times={times}");
        }
        let mut h = LogHistogram::default();
        h.record_n(42, 0);
        assert_eq!(h, LogHistogram::default());
        let mut nh = NodeHistograms::new(2);
        nh.record_n(1, HistKind::FanIn, 3, 4);
        nh.record_n(99, HistKind::FanIn, 3, 4); // silently dropped
        assert_eq!(nh.node(1).get(HistKind::FanIn).count(), 4);
        assert_eq!(nh.node(1).get(HistKind::FanIn).sum(), 12);
        assert!(nh.node(0).is_empty());
    }

    #[test]
    fn quantile_bound_walks_cumulative_counts() {
        let mut h = LogHistogram::default();
        assert_eq!(h.quantile_bound(0.5), None);
        for _ in 0..90 {
            h.record(5); // bucket 3, hi = 7
        }
        for _ in 0..10 {
            h.record(1000); // bucket 10, hi = 1023
        }
        assert_eq!(h.quantile_bound(0.5), Some(7));
        assert_eq!(h.quantile_bound(0.9), Some(7));
        assert_eq!(h.quantile_bound(0.95), Some(1023));
        assert_eq!(h.quantile_bound(1.0), Some(1023));
    }

    #[test]
    fn merge_is_bucketwise_addition() {
        let mut a = LogHistogram::default();
        let mut b = LogHistogram::default();
        a.record(3);
        b.record(3);
        b.record(100);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.bucket_count(2), 2);
        assert_eq!(a.max(), 100);
        assert_eq!(a.sum(), 106);
    }

    #[test]
    fn node_histograms_ignore_out_of_range_and_total() {
        let mut nh = NodeHistograms::new(3);
        nh.record(0, HistKind::MsgBits, 128);
        nh.record(2, HistKind::MsgBits, 256);
        nh.record(99, HistKind::MsgBits, 512); // silently dropped
        let total = nh.total();
        assert_eq!(total.get(HistKind::MsgBits).count(), 2);
        assert_eq!(total.get(HistKind::MsgBits).sum(), 384);
        assert_eq!(nh.node(1).get(HistKind::MsgBits).count(), 0);
        assert!(nh.node(1).is_empty());
    }

    #[test]
    fn reindex_permutes_slots() {
        let mut nh = NodeHistograms::new(3);
        nh.record(0, HistKind::MsgBits, 1);
        nh.record(1, HistKind::MsgBits, 2);
        nh.record(2, HistKind::MsgBits, 4);
        // Rotate: new slot i takes old slot (i + 1) % 3.
        nh.reindex(|i| (i + 1) % 3);
        assert_eq!(nh.node(0).get(HistKind::MsgBits).sum(), 2);
        assert_eq!(nh.node(1).get(HistKind::MsgBits).sum(), 4);
        assert_eq!(nh.node(2).get(HistKind::MsgBits).sum(), 1);
        assert_eq!(nh.total().get(HistKind::MsgBits).count(), 3);
    }

    #[test]
    fn kind_indices_are_dense_and_named() {
        for (i, k) in HistKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
            assert!(!k.name().is_empty());
        }
    }
}
