//! Exporters: Chrome-trace/Perfetto JSON for spans, Prometheus-style text
//! for metrics and histograms.
//!
//! Both formats are deliberately boring — they open in tools people
//! already have. A `--events out.trace.json` drops straight into
//! `chrome://tracing` or <https://ui.perfetto.dev> with one track per node;
//! a `--metrics-out metrics.prom` greps and plots like any node-exporter
//! scrape.

use crate::hist::LogHistogram;
use crate::span::{SpanEvent, SpanKind};
use std::fmt::Write as _;

/// Escapes a Prometheus label *value* per the text exposition format:
/// backslash, double quote and newline become `\\`, `\"` and `\n`. Apply
/// to any value that is not a known-safe literal (protocol names, query
/// parameters, anything user-influenced).
pub fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Human-readable label for a track id (track 0 is the engine, track
/// `i + 1` is node `i`).
fn track_label(track: u32) -> String {
    if track == 0 {
        "engine".to_string()
    } else {
        format!("node {}", track - 1)
    }
}

/// Serializes recorded spans as a Chrome-trace (`chrome://tracing`,
/// Perfetto) JSON document.
///
/// Every distinct track gets a `thread_name` metadata record so the viewer
/// shows "engine", "node 0", … instead of bare tids; spans become `ph:"X"`
/// complete events and instants become `ph:"i"` marks, both carrying the
/// simulation round in `args`. Timestamps are microseconds (the format's
/// unit) with sub-µs precision kept as decimals.
pub fn chrome_trace(events: &[SpanEvent]) -> String {
    let us = |ns: u64| -> String {
        // Emit exact µs with up to three decimals, avoiding float rounding.
        let whole = ns / 1_000;
        let frac = ns % 1_000;
        if frac == 0 {
            format!("{whole}")
        } else {
            format!("{whole}.{frac:03}")
        }
    };
    let mut tracks: Vec<u32> = events.iter().map(|e| e.track).collect();
    tracks.sort_unstable();
    tracks.dedup();

    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let mut push = |out: &mut String, item: String| {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&item);
    };
    for t in &tracks {
        push(
            &mut out,
            format!(
                r#"{{"ph":"M","name":"thread_name","pid":1,"tid":{},"args":{{"name":"{}"}}}}"#,
                t,
                track_label(*t)
            ),
        );
    }
    for e in events {
        let item = match e.kind {
            SpanKind::Span => format!(
                r#"{{"ph":"X","name":"{}","pid":1,"tid":{},"ts":{},"dur":{},"args":{{"round":{}}}}}"#,
                e.name,
                e.track,
                us(e.start_ns),
                us(e.dur_ns),
                e.round
            ),
            SpanKind::Instant => format!(
                r#"{{"ph":"i","name":"{}","pid":1,"tid":{},"ts":{},"s":"t","args":{{"round":{}}}}}"#,
                e.name,
                e.track,
                us(e.start_ns),
                e.round
            ),
        };
        push(&mut out, item);
    }
    out.push_str("]}");
    out
}

/// Incremental builder for a Prometheus text-exposition dump.
///
/// `# HELP` / `# TYPE` headers are emitted once per metric name (the first
/// time it appears), so several label sets of the same metric — one per
/// protocol, say — group under a single header as the format requires.
#[derive(Debug, Default)]
pub struct PromDump {
    out: String,
    seen: Vec<String>,
}

impl PromDump {
    /// Empty dump.
    pub fn new() -> Self {
        PromDump::default()
    }

    fn header(&mut self, name: &str, kind: &str, help: &str) {
        if self.seen.iter().any(|s| s == name) {
            return;
        }
        self.seen.push(name.to_string());
        let _ = writeln!(self.out, "# HELP {name} {help}");
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
    }

    fn labelled(name: &str, labels: &str, suffix: &str, extra: Option<&str>) -> String {
        let mut inner = String::new();
        if !labels.is_empty() {
            inner.push_str(labels);
        }
        if let Some(e) = extra {
            if !inner.is_empty() {
                inner.push(',');
            }
            inner.push_str(e);
        }
        if inner.is_empty() {
            format!("{name}{suffix}")
        } else {
            format!("{name}{suffix}{{{inner}}}")
        }
    }

    /// Appends one gauge sample. `labels` is the raw label body, e.g.
    /// `protocol="cqp"` (empty for none).
    pub fn gauge(&mut self, name: &str, labels: &str, help: &str, value: f64) {
        self.header(name, "gauge", help);
        let series = PromDump::labelled(name, labels, "", None);
        let _ = writeln!(self.out, "{series} {value}");
    }

    /// Appends one counter sample.
    pub fn counter(&mut self, name: &str, labels: &str, help: &str, value: u64) {
        self.header(name, "counter", help);
        let series = PromDump::labelled(name, labels, "", None);
        let _ = writeln!(self.out, "{series} {value}");
    }

    /// Appends a [`LogHistogram`] in Prometheus histogram exposition:
    /// cumulative `_bucket{le="…"}` lines at each non-empty bucket's upper
    /// bound, a `+Inf` bucket, then `_sum` and `_count`.
    pub fn histogram(&mut self, name: &str, labels: &str, help: &str, hist: &LogHistogram) {
        self.header(name, "histogram", help);
        let mut cumulative = 0u64;
        for i in 0..LogHistogram::BUCKETS {
            let c = hist.bucket_count(i);
            if c == 0 {
                continue;
            }
            cumulative += c;
            let (_, hi) = LogHistogram::bucket_range(i);
            let le = if hi == u64::MAX {
                "+Inf".to_string()
            } else {
                hi.to_string()
            };
            let series =
                PromDump::labelled(name, labels, "_bucket", Some(&format!(r#"le="{le}""#)));
            let _ = writeln!(self.out, "{series} {cumulative}");
        }
        let inf = PromDump::labelled(name, labels, "_bucket", Some(r#"le="+Inf""#));
        let _ = writeln!(self.out, "{inf} {}", hist.count());
        let sum = PromDump::labelled(name, labels, "_sum", None);
        let _ = writeln!(self.out, "{sum} {}", hist.sum());
        let count = PromDump::labelled(name, labels, "_count", None);
        let _ = writeln!(self.out, "{count} {}", hist.count());
    }

    /// The accumulated text dump.
    pub fn finish(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Recorder;

    #[test]
    fn chrome_trace_emits_metadata_spans_and_instants() {
        let mut rec = Recorder::default();
        rec.set_enabled(true);
        let t = rec.start();
        rec.end("validation", 3, 2, t);
        rec.instant("arq_retry", 3, 2);
        let t = rec.start();
        rec.end("round", 0, 2, t);
        let json = chrome_trace(rec.events());
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json
            .contains(r#""ph":"M","name":"thread_name","pid":1,"tid":0,"args":{"name":"engine"}"#));
        assert!(json.contains(r#""args":{"name":"node 2"}"#));
        assert!(json.contains(r#""ph":"X","name":"validation""#));
        assert!(json.contains(r#""ph":"i","name":"arq_retry""#));
        assert!(json.contains(r#""args":{"round":2}"#));
    }

    #[test]
    fn chrome_trace_of_nothing_is_still_a_document() {
        assert_eq!(chrome_trace(&[]), "{\"traceEvents\":[]}");
    }

    #[test]
    fn prom_dump_groups_headers_once_per_name() {
        let mut dump = PromDump::new();
        dump.gauge("wsn_energy_joules", r#"protocol="cqp""#, "energy", 1.5);
        dump.gauge("wsn_energy_joules", r#"protocol="naive""#, "energy", 4.0);
        let text = dump.finish();
        assert_eq!(text.matches("# HELP wsn_energy_joules").count(), 1);
        assert_eq!(text.matches("# TYPE wsn_energy_joules gauge").count(), 1);
        assert!(text.contains(r#"wsn_energy_joules{protocol="cqp"} 1.5"#));
        assert!(text.contains(r#"wsn_energy_joules{protocol="naive"} 4"#));
    }

    #[test]
    fn prom_histogram_is_cumulative_with_inf_sum_count() {
        let mut h = LogHistogram::default();
        for v in [3, 3, 100] {
            h.record(v);
        }
        let mut dump = PromDump::new();
        dump.histogram("wsn_msg_bits", r#"node="0""#, "frame sizes", &h);
        let text = dump.finish();
        assert!(text.contains(r#"wsn_msg_bits_bucket{node="0",le="3"} 2"#));
        assert!(text.contains(r#"wsn_msg_bits_bucket{node="0",le="127"} 3"#));
        assert!(text.contains(r#"wsn_msg_bits_bucket{node="0",le="+Inf"} 3"#));
        assert!(text.contains(r#"wsn_msg_bits_sum{node="0"} 106"#));
        assert!(text.contains(r#"wsn_msg_bits_count{node="0"} 3"#));
    }

    /// One parsed exposition series line: name, `(label, value)` pairs
    /// with escapes undone, and the sample.
    type Series = (String, Vec<(String, String)>, f64);

    /// Minimal exposition-format parser for the round-trip test.
    fn parse_series(text: &str) -> Vec<Series> {
        let mut out = Vec::new();
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (series, sample) = line.rsplit_once(' ').expect("sample");
            let (name, labels) = match series.split_once('{') {
                None => (series.to_string(), Vec::new()),
                Some((name, rest)) => {
                    let body = rest.strip_suffix('}').expect("closing brace");
                    let mut labels = Vec::new();
                    let mut chars = body.chars().peekable();
                    while chars.peek().is_some() {
                        let mut key = String::new();
                        for c in chars.by_ref() {
                            if c == '=' {
                                break;
                            }
                            key.push(c);
                        }
                        assert_eq!(chars.next(), Some('"'));
                        let mut value = String::new();
                        loop {
                            match chars.next().expect("unterminated value") {
                                '\\' => match chars.next().expect("escape") {
                                    'n' => value.push('\n'),
                                    c => value.push(c),
                                },
                                '"' => break,
                                c => value.push(c),
                            }
                        }
                        if chars.peek() == Some(&',') {
                            chars.next();
                        }
                        labels.push((key, value));
                    }
                    (name.to_string(), labels)
                }
            };
            out.push((name, labels, sample.parse::<f64>().expect("float sample")));
        }
        out
    }

    #[test]
    fn hostile_label_values_round_trip_through_the_exposition_format() {
        let hostile = "IQ\"v2\\beta\nline2";
        let mut dump = PromDump::new();
        dump.gauge(
            "wsn_query_staleness_rounds",
            &format!(r#"slot="3",algorithm="{}""#, escape_label(hostile)),
            "staleness",
            2.0,
        );
        let text = dump.finish();
        // The physical series line must stay a single line...
        let series_lines: Vec<&str> = text.lines().filter(|l| !l.starts_with('#')).collect();
        assert_eq!(series_lines.len(), 1);
        // ...and parsing must recover the original value exactly.
        let parsed = parse_series(&text);
        assert_eq!(parsed.len(), 1);
        let (name, labels, value) = &parsed[0];
        assert_eq!(name, "wsn_query_staleness_rounds");
        assert_eq!(value, &2.0);
        assert_eq!(labels[0], ("slot".to_string(), "3".to_string()));
        assert_eq!(labels[1].0, "algorithm");
        assert_eq!(labels[1].1, hostile);
    }

    #[test]
    fn per_query_label_sets_share_one_type_header() {
        let mut dump = PromDump::new();
        for slot in 0..4 {
            dump.gauge(
                "wsn_query_lane_joules",
                &format!(r#"slot="{slot}""#),
                "lane energy",
                slot as f64,
            );
            dump.counter(
                "wsn_query_answers_total",
                &format!(r#"slot="{slot}""#),
                "answers",
                slot,
            );
        }
        let text = dump.finish();
        assert_eq!(
            text.matches("# TYPE wsn_query_lane_joules gauge").count(),
            1
        );
        assert_eq!(
            text.matches("# TYPE wsn_query_answers_total counter")
                .count(),
            1
        );
        assert_eq!(text.matches("# HELP wsn_query_lane_joules").count(), 1);
        assert_eq!(parse_series(&text).len(), 8, "all eight samples kept");
    }

    #[test]
    fn escape_label_handles_the_three_specials() {
        assert_eq!(escape_label("plain"), "plain");
        assert_eq!(escape_label(r#"a"b"#), r#"a\"b"#);
        assert_eq!(escape_label(r"a\b"), r"a\\b");
        assert_eq!(escape_label("a\nb"), r"a\nb");
    }

    #[test]
    fn unlabelled_series_have_no_braces() {
        let mut dump = PromDump::new();
        dump.counter("wsn_rounds_total", "", "rounds", 42);
        let text = dump.finish();
        assert!(text.contains("wsn_rounds_total 42"));
        assert!(!text.contains("wsn_rounds_total{"));
    }
}
