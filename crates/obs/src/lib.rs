#![warn(missing_docs)]
//! # wsn-obs — runtime telemetry for the WSN simulator
//!
//! The evaluation of the paper (§5) lives and dies on *where* bits and
//! rounds go: validation vs. refinement traffic, hotspot load, per-round
//! behaviour. This crate is the observability substrate the rest of the
//! workspace taps into:
//!
//! * [`hist`] — fixed-size log-bucketed histograms ([`LogHistogram`]) and
//!   per-node collections of them ([`NodeHistograms`]): message size, hop
//!   depth, ARQ retries and subtree fan-in, with **no heap allocation in
//!   the recording path** (a bucket increment is an array write);
//! * [`span`] — an allocation-free-when-disabled span/event [`Recorder`]
//!   with wall-clock timing: rounds, protocol phases,
//!   convergecast/broadcast waves, ARQ retries;
//! * [`capture`] — packet-level capture records ([`PacketRecord`]), a JSONL
//!   wire format, and a replaying differ ([`capture::diff`]) that reports
//!   the first divergent (round, node, frame) between two captures;
//! * [`export`] — Chrome-trace/Perfetto JSON for spans and a
//!   Prometheus-style text dump for metrics and histograms;
//! * [`monitor`] — the service-level monitoring plane: per-query live
//!   metrics rows, deterministic round-boundary watchdogs raising typed
//!   [`HealthEvent`]s, and a fixed-capacity flight recorder whose JSONL
//!   post-mortem captures the rounds leading up to the first event.
//!
//! The crate is deliberately a leaf: **zero dependencies**, not even on
//! `wsn-net`. The network engine depends on *it* and feeds it plain
//! integers, so every layer of the stack (network, protocols, runner, CLI)
//! can share one vocabulary of telemetry types without cycles.

pub mod capture;
pub mod export;
pub mod hist;
pub mod monitor;
pub mod span;

pub use capture::{diff, CaptureDiff, Divergence, PacketRecord};
pub use export::{chrome_trace, escape_label, PromDump};
pub use hist::{HistKind, HistogramSet, LogHistogram, NodeHistograms};
pub use monitor::{
    FlightRecorder, HealthEvent, HealthKind, Monitor, MonitorConfig, QueryRow, RoundFrame,
    SlotSample,
};
pub use span::{Recorder, SpanEvent, SpanKind, SpanStart};
