//! Packet-level capture and cross-run trace diffing.
//!
//! A capture is the frame-by-frame transcript of one simulation run — who
//! transmitted what to whom, in which round and protocol phase, in engine
//! order. Two runs of a deterministic simulator must produce *identical*
//! captures; when they don't (a parity bug, a non-deterministic code
//! path), [`diff`] replays both transcripts side by side and names the
//! first divergent frame, turning "the 8-thread run differs somewhere" into
//! "frame 1047, round 12, node 93, bits 320 vs 328".
//!
//! The wire format is JSONL: one self-describing JSON object per frame,
//! diffable with standard tools and parseable by any JSON reader.

use std::fmt::Write as _;

/// One captured frame (or frame burst) of a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PacketRecord {
    /// Simulation round of the transmission.
    pub round: u32,
    /// Protocol phase name ("init", "validation", …).
    pub phase: String,
    /// Transmission kind ("data", "ack", "bcast_tx", "bcast_rx").
    pub kind: String,
    /// Transmitting node (for broadcast receptions: the parent).
    pub src: u32,
    /// Receiving node (for broadcast transmissions: equals `src`).
    pub dst: u32,
    /// 802.15.4 frames covered.
    pub frames: u64,
    /// Bits on air.
    pub bits: u64,
}

impl PacketRecord {
    /// Serializes one record as a single JSONL line (no trailing newline).
    /// Phase/kind names are identifier-like, so no escaping is needed; any
    /// exotic characters are dropped defensively rather than escaped.
    pub fn to_json_line(&self) -> String {
        let clean = |s: &str| -> String {
            s.chars()
                .filter(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '-'))
                .collect()
        };
        format!(
            r#"{{"round":{},"phase":"{}","kind":"{}","src":{},"dst":{},"frames":{},"bits":{}}}"#,
            self.round,
            clean(&self.phase),
            clean(&self.kind),
            self.src,
            self.dst,
            self.frames,
            self.bits
        )
    }
}

/// Serializes a capture as JSONL (one line per frame, trailing newline).
pub fn to_jsonl(records: &[PacketRecord]) -> String {
    let mut out = String::new();
    for r in records {
        let _ = writeln!(out, "{}", r.to_json_line());
    }
    out
}

/// Parses a JSONL capture produced by [`to_jsonl`] (tolerating blank
/// lines). Returns the 1-based line number alongside any parse error.
pub fn parse_jsonl(text: &str) -> Result<Vec<PacketRecord>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        out.push(parse_line(line).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(out)
}

/// Parses one flat JSON object with string/number values into a record.
fn parse_line(line: &str) -> Result<PacketRecord, String> {
    let inner = line
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or("not a JSON object")?;
    let mut round: Option<u32> = None;
    let mut phase: Option<String> = None;
    let mut kind: Option<String> = None;
    let mut src: Option<u32> = None;
    let mut dst: Option<u32> = None;
    let mut frames: Option<u64> = None;
    let mut bits: Option<u64> = None;
    for field in inner.split(',') {
        let (key, value) = field.split_once(':').ok_or("field without `:`")?;
        let key = key.trim().trim_matches('"');
        let value = value.trim();
        let as_num = |v: &str| -> Result<u64, String> {
            v.parse::<u64>().map_err(|e| format!("{key}: {e}"))
        };
        match key {
            "round" => round = Some(as_num(value)? as u32),
            "phase" => phase = Some(value.trim_matches('"').to_string()),
            "kind" => kind = Some(value.trim_matches('"').to_string()),
            "src" => src = Some(as_num(value)? as u32),
            "dst" => dst = Some(as_num(value)? as u32),
            "frames" => frames = Some(as_num(value)?),
            "bits" => bits = Some(as_num(value)?),
            other => return Err(format!("unknown field {other}")),
        }
    }
    Ok(PacketRecord {
        round: round.ok_or("missing round")?,
        phase: phase.ok_or("missing phase")?,
        kind: kind.ok_or("missing kind")?,
        src: src.ok_or("missing src")?,
        dst: dst.ok_or("missing dst")?,
        frames: frames.ok_or("missing frames")?,
        bits: bits.ok_or("missing bits")?,
    })
}

/// The first point at which two captures disagree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// 0-based frame index into both captures (equal to the shorter
    /// capture's length when one is a prefix of the other).
    pub frame: usize,
    /// Round of the diverging frame.
    pub round: u32,
    /// Transmitting node of the diverging frame.
    pub node: u32,
    /// Which field differs ("length" when one capture is a prefix).
    pub field: &'static str,
    /// The field's value in the first capture ("∅" past its end).
    pub a: String,
    /// The field's value in the second capture ("∅" past its end).
    pub b: String,
}

/// Outcome of replaying two captures side by side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaptureDiff {
    /// Frames in the first capture.
    pub len_a: usize,
    /// Frames in the second capture.
    pub len_b: usize,
    /// The first divergence, or `None` when the captures are identical.
    pub divergence: Option<Divergence>,
}

impl CaptureDiff {
    /// True iff the captures are frame-for-frame identical.
    pub fn is_identical(&self) -> bool {
        self.divergence.is_none()
    }
}

/// Replays two captures in lockstep and reports the first divergent
/// frame: which (round, node) pair produced it and which field differs.
/// Field comparison order is round, src, dst, kind, phase, frames, bits —
/// so the report names the most structural difference first.
pub fn diff(a: &[PacketRecord], b: &[PacketRecord]) -> CaptureDiff {
    for (i, (ra, rb)) in a.iter().zip(b.iter()).enumerate() {
        if ra == rb {
            continue;
        }
        let (field, va, vb): (&'static str, String, String) = if ra.round != rb.round {
            ("round", ra.round.to_string(), rb.round.to_string())
        } else if ra.src != rb.src {
            ("src", ra.src.to_string(), rb.src.to_string())
        } else if ra.dst != rb.dst {
            ("dst", ra.dst.to_string(), rb.dst.to_string())
        } else if ra.kind != rb.kind {
            ("kind", ra.kind.clone(), rb.kind.clone())
        } else if ra.phase != rb.phase {
            ("phase", ra.phase.clone(), rb.phase.clone())
        } else if ra.frames != rb.frames {
            ("frames", ra.frames.to_string(), rb.frames.to_string())
        } else {
            ("bits", ra.bits.to_string(), rb.bits.to_string())
        };
        return CaptureDiff {
            len_a: a.len(),
            len_b: b.len(),
            divergence: Some(Divergence {
                frame: i,
                round: ra.round.min(rb.round),
                node: ra.src,
                field,
                a: va,
                b: vb,
            }),
        };
    }
    if a.len() != b.len() {
        let i = a.len().min(b.len());
        let extra = a.get(i).or_else(|| b.get(i)).expect("longer capture");
        return CaptureDiff {
            len_a: a.len(),
            len_b: b.len(),
            divergence: Some(Divergence {
                frame: i,
                round: extra.round,
                node: extra.src,
                field: "length",
                a: a.get(i).map_or("∅".to_string(), |r| r.to_json_line()),
                b: b.get(i).map_or("∅".to_string(), |r| r.to_json_line()),
            }),
        };
    }
    CaptureDiff {
        len_a: a.len(),
        len_b: b.len(),
        divergence: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(round: u32, src: u32, bits: u64) -> PacketRecord {
        PacketRecord {
            round,
            phase: "validation".into(),
            kind: "data".into(),
            src,
            dst: src.saturating_sub(1),
            frames: 1,
            bits,
        }
    }

    #[test]
    fn jsonl_roundtrips() {
        let records = vec![rec(0, 3, 128), rec(1, 2, 320)];
        let text = to_jsonl(&records);
        assert_eq!(text.lines().count(), 2);
        let back = parse_jsonl(&text).unwrap();
        assert_eq!(back, records);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse_jsonl("not json").is_err());
        assert!(parse_jsonl(r#"{"round":1}"#).is_err(), "missing fields");
        assert!(parse_jsonl(
            r#"{"round":"x","phase":"a","kind":"b","src":1,"dst":0,"frames":1,"bits":8}"#
        )
        .is_err());
        let err = parse_jsonl("\n{bad\n").unwrap_err();
        assert!(err.starts_with("line 2"), "{err}");
    }

    #[test]
    fn identical_captures_diff_clean() {
        let a = vec![rec(0, 3, 128), rec(1, 2, 320)];
        let d = diff(&a, &a.clone());
        assert!(d.is_identical());
        assert_eq!(d.len_a, 2);
    }

    #[test]
    fn single_bit_flip_is_localized() {
        let a = vec![rec(0, 3, 128), rec(1, 2, 320), rec(1, 1, 320)];
        let mut b = a.clone();
        b[1].bits ^= 1; // one flipped bit on the wire
        let d = diff(&a, &b);
        let div = d.divergence.expect("must diverge");
        assert_eq!(div.frame, 1);
        assert_eq!(div.round, 1);
        assert_eq!(div.node, 2);
        assert_eq!(div.field, "bits");
        assert_eq!(div.a, "320");
        assert_eq!(div.b, "321");
    }

    #[test]
    fn prefix_capture_reports_length_divergence() {
        let a = vec![rec(0, 3, 128), rec(1, 2, 320)];
        let b = a[..1].to_vec();
        let d = diff(&a, &b);
        let div = d.divergence.expect("must diverge");
        assert_eq!(div.field, "length");
        assert_eq!(div.frame, 1);
        assert_eq!(div.round, 1);
        assert_eq!(div.node, 2);
        assert_eq!(div.b, "∅");
    }
}
