//! End-to-end telemetry tests at the top of the stack: the Chrome-trace
//! exporter must produce JSON our own parser accepts, and the packet
//! capture + differ must localize a seeded divergence between two real
//! simulation runs.

use wsn_bench::json::Json;
use wsn_net::obs::{self, capture, HistKind};
use wsn_net::{MessageSizes, Network, Point, RadioModel, RoutingTree, Topology};
use wsn_sim::config::AlgorithmKind;
use wsn_sim::trace::trace_run;

/// Builds a small connected world and runs IQ over it for `rounds` rounds
/// with the audit log and span recorder on, returning the network for
/// inspection.
fn telemetered_run(seed: u64, rounds: u32) -> Network {
    use wsn_data::{Dataset, Rng};
    let n = 60;
    let mut rng = Rng::seed_from_u64(seed);
    let raw = wsn_data::placement::uniform(n, 200.0, 200.0, &mut rng);
    let positions: Vec<Point> = raw.iter().map(|&(x, y)| Point::new(x, y)).collect();
    let topo = Topology::build(positions, 60.0);
    let tree = RoutingTree::shortest_path_tree(&topo).expect("connected at this density");
    let mut net = Network::new(topo, tree, RadioModel::default(), MessageSizes::default());
    net.set_audit(true);
    net.set_telemetry(true);
    let mut ds = wsn_data::synthetic::SyntheticDataset::generate(
        wsn_data::synthetic::SyntheticConfig::default(),
        &raw[1..],
        &mut rng,
    );
    let query = cqp_core::QueryConfig::median(n, ds.range_min(), ds.range_max());
    let mut alg = AlgorithmKind::Iq.build(query, &MessageSizes::default());
    let trace = trace_run(&mut net, alg.as_mut(), &mut ds, rounds, query.k);
    assert_eq!(trace.len(), rounds as usize);
    net
}

#[test]
fn chrome_trace_of_a_real_run_is_valid_json() {
    let net = telemetered_run(11, 8);
    let events = net.recorder().events();
    assert!(!events.is_empty(), "telemetry was on");
    let text = obs::chrome_trace(events);
    let doc = Json::parse(&text).expect("exporter must emit valid JSON");
    let Some(Json::Arr(items)) = doc.get("traceEvents") else {
        panic!("traceEvents array missing");
    };
    // Every item is an object with a ph marker; the span/instant counts
    // reconcile with the recorder.
    let mut spans = 0usize;
    let mut metadata = 0usize;
    for item in items {
        match item.get("ph") {
            Some(Json::Str(ph)) if ph == "M" => metadata += 1,
            Some(Json::Str(ph)) if ph == "X" || ph == "i" => spans += 1,
            other => panic!("unexpected ph: {other:?}"),
        }
    }
    assert_eq!(spans, events.len());
    assert!(metadata > 0, "thread_name records for the tracks");
    // The engine track and the protocol phases must be present by name.
    assert!(text.contains(r#""name":"engine""#));
    assert!(text.contains(r#""name":"round""#));
    assert!(text.contains(r#""name":"convergecast""#));
}

#[test]
fn capture_diff_localizes_a_seeded_divergence() {
    // Same seed twice: the simulator is deterministic, so the captures are
    // frame-for-frame identical through serialization and parsing.
    let a = telemetered_run(42, 6).capture();
    let b = telemetered_run(42, 6).capture();
    let jsonl_a = capture::to_jsonl(&a);
    let jsonl_b = capture::to_jsonl(&b);
    let parsed_a = capture::parse_jsonl(&jsonl_a).unwrap();
    let parsed_b = capture::parse_jsonl(&jsonl_b).unwrap();
    assert!(obs::diff(&parsed_a, &parsed_b).is_identical());

    // Flip one bit on the wire in the middle of capture B: the differ must
    // name exactly that frame, its round and transmitter, and the field.
    let mut tampered = parsed_b.clone();
    let victim = tampered.len() / 2;
    tampered[victim].bits ^= 1;
    let d = obs::diff(&parsed_a, &tampered);
    let div = d.divergence.expect("single-bit flip must be found");
    assert_eq!(div.frame, victim);
    assert_eq!(div.round, parsed_a[victim].round);
    assert_eq!(div.node, parsed_a[victim].src);
    assert_eq!(div.field, "bits");
}

#[test]
fn histograms_reconcile_with_traffic_stats() {
    let net = telemetered_run(7, 8);
    let total = net.histograms().total();
    assert_eq!(
        total.get(HistKind::MsgBits).count(),
        net.stats().messages,
        "one histogram sample per transmitted message"
    );
    assert_eq!(total.get(HistKind::MsgBits).sum(), net.stats().bits);
}
