//! End-to-end telemetry tests at the top of the stack: the Chrome-trace
//! exporter must produce JSON our own parser accepts, and the packet
//! capture + differ must localize a seeded divergence between two real
//! simulation runs.

use wsn_bench::json::Json;
use wsn_net::obs::{self, capture, HistKind};
use wsn_net::{MessageSizes, Network, Point, RadioModel, RoutingTree, Topology};
use wsn_sim::config::AlgorithmKind;
use wsn_sim::trace::trace_run;

/// Builds a small connected world and runs IQ over it for `rounds` rounds
/// with the audit log and span recorder on, returning the network for
/// inspection.
fn telemetered_run(seed: u64, rounds: u32) -> Network {
    use wsn_data::{Dataset, Rng};
    let n = 60;
    let mut rng = Rng::seed_from_u64(seed);
    let raw = wsn_data::placement::uniform(n, 200.0, 200.0, &mut rng);
    let positions: Vec<Point> = raw.iter().map(|&(x, y)| Point::new(x, y)).collect();
    let topo = Topology::build(positions, 60.0);
    let tree = RoutingTree::shortest_path_tree(&topo).expect("connected at this density");
    let mut net = Network::new(topo, tree, RadioModel::default(), MessageSizes::default());
    net.set_audit(true);
    net.set_telemetry(true);
    let mut ds = wsn_data::synthetic::SyntheticDataset::generate(
        wsn_data::synthetic::SyntheticConfig::default(),
        &raw[1..],
        &mut rng,
    );
    let query = cqp_core::QueryConfig::median(n, ds.range_min(), ds.range_max());
    let mut alg = AlgorithmKind::Iq.build(query, &MessageSizes::default());
    let trace = trace_run(&mut net, alg.as_mut(), &mut ds, rounds, query.k);
    assert_eq!(trace.len(), rounds as usize);
    net
}

#[test]
fn chrome_trace_of_a_real_run_is_valid_json() {
    let net = telemetered_run(11, 8);
    let events = net.recorder().events();
    assert!(!events.is_empty(), "telemetry was on");
    let text = obs::chrome_trace(events);
    let doc = Json::parse(&text).expect("exporter must emit valid JSON");
    let Some(Json::Arr(items)) = doc.get("traceEvents") else {
        panic!("traceEvents array missing");
    };
    // Every item is an object with a ph marker; the span/instant counts
    // reconcile with the recorder.
    let mut spans = 0usize;
    let mut metadata = 0usize;
    for item in items {
        match item.get("ph") {
            Some(Json::Str(ph)) if ph == "M" => metadata += 1,
            Some(Json::Str(ph)) if ph == "X" || ph == "i" => spans += 1,
            other => panic!("unexpected ph: {other:?}"),
        }
    }
    assert_eq!(spans, events.len());
    assert!(metadata > 0, "thread_name records for the tracks");
    // The engine track and the protocol phases must be present by name.
    assert!(text.contains(r#""name":"engine""#));
    assert!(text.contains(r#""name":"round""#));
    assert!(text.contains(r#""name":"convergecast""#));
}

#[test]
fn capture_diff_localizes_a_seeded_divergence() {
    // Same seed twice: the simulator is deterministic, so the captures are
    // frame-for-frame identical through serialization and parsing.
    let a = telemetered_run(42, 6).capture();
    let b = telemetered_run(42, 6).capture();
    let jsonl_a = capture::to_jsonl(&a);
    let jsonl_b = capture::to_jsonl(&b);
    let parsed_a = capture::parse_jsonl(&jsonl_a).unwrap();
    let parsed_b = capture::parse_jsonl(&jsonl_b).unwrap();
    assert!(obs::diff(&parsed_a, &parsed_b).is_identical());

    // Flip one bit on the wire in the middle of capture B: the differ must
    // name exactly that frame, its round and transmitter, and the field.
    let mut tampered = parsed_b.clone();
    let victim = tampered.len() / 2;
    tampered[victim].bits ^= 1;
    let d = obs::diff(&parsed_a, &tampered);
    let div = d.divergence.expect("single-bit flip must be found");
    assert_eq!(div.frame, victim);
    assert_eq!(div.round, parsed_a[victim].round);
    assert_eq!(div.node, parsed_a[victim].src);
    assert_eq!(div.field, "bits");
}

/// Runs the real `simulate` binary with `args` in `dir` and returns
/// `(exit code, stdout)`.
fn simulate(dir: &std::path::Path, args: &[&str]) -> (i32, String) {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_simulate"))
        .current_dir(dir)
        .args(args)
        .output()
        .expect("simulate binary must run");
    (
        out.status.code().expect("no signal"),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

/// Scratch directory for binary-level tests, unique per test name.
fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("wsn-telemetry-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Writes a packet capture with the real binary and returns its filename.
fn capture_with_binary(dir: &std::path::Path, name: &str, seed: &str) {
    let (code, _) = simulate(
        dir,
        &[
            "--algorithm",
            "IQ",
            "--nodes",
            "40",
            "--rho",
            "80",
            "--rounds",
            "5",
            "--seed",
            seed,
            "--capture",
            name,
        ],
    );
    assert_eq!(code, 0, "capture run must succeed");
    assert!(dir.join(name).exists(), "capture file must be written");
}

/// `simulate diff` through the real binary: identical captures (same
/// seed) exit 0, divergent captures (different seed) exit 1, and every
/// bad-input shape — missing file, malformed JSONL, wrong arg count —
/// exits 2. This is the contract CI scripts rely on.
#[test]
fn diff_exit_codes_through_the_real_binary() {
    let dir = scratch("diff");
    capture_with_binary(&dir, "a.jsonl", "42");
    capture_with_binary(&dir, "same.jsonl", "42");
    capture_with_binary(&dir, "other.jsonl", "43");

    let (code, out) = simulate(&dir, &["diff", "a.jsonl", "same.jsonl"]);
    assert_eq!(code, 0, "same seed, same capture: {out}");
    assert!(out.starts_with("identical:"), "{out}");

    let (code, out) = simulate(&dir, &["diff", "a.jsonl", "other.jsonl"]);
    assert_eq!(code, 1, "different seed must diverge: {out}");
    assert!(out.contains("diverge"), "{out}");

    let (code, _) = simulate(&dir, &["diff", "a.jsonl", "missing.jsonl"]);
    assert_eq!(code, 2, "missing file is a usage error");

    std::fs::write(dir.join("garbage.jsonl"), "{not json at all\n").unwrap();
    let (code, _) = simulate(&dir, &["diff", "a.jsonl", "garbage.jsonl"]);
    assert_eq!(code, 2, "malformed capture is a usage error");

    let (code, _) = simulate(&dir, &["diff", "a.jsonl"]);
    assert_eq!(code, 2, "diff takes exactly two files");

    let _ = std::fs::remove_dir_all(&dir);
}

/// `simulate fuzz` through the real binary: a clean bounded campaign
/// exits 0 with byte-identical output across invocations, a valid clean
/// repro line exits 0, and unparsable input exits 2.
#[test]
fn fuzz_exit_codes_through_the_real_binary() {
    let dir = scratch("fuzz");
    let campaign = ["fuzz", "--scenarios", "6", "--seed", "5", "--threads", "2"];
    let (code, first) = simulate(&dir, &campaign);
    assert_eq!(code, 0, "{first}");
    assert!(first.starts_with("fuzz: seed=5 scenarios=6"), "{first}");
    let (code, second) = simulate(&dir, &campaign);
    assert_eq!(code, 0);
    assert_eq!(first, second, "fuzz summaries are byte-deterministic");

    let clean_repro = r#"{"seed":1,"nodes":1,"range_milli":4000,"rounds":2,"runs":1,"phi_milli":500,"loss_milli":0,"retries":0,"recovery":0,"failure_milli":0,"source":"sinusoid","p1":8,"p2":0,"p3":0}"#;
    let (code, out) = simulate(&dir, &["fuzz", "--repro", clean_repro]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("clean"), "{out}");

    let (code, _) = simulate(&dir, &["fuzz", "--repro", "not a repro line"]);
    assert_eq!(code, 2, "unparsable repro is a usage error");

    let (code, _) = simulate(&dir, &["fuzz", "--scenarios", "many"]);
    assert_eq!(code, 2, "non-numeric --scenarios is a usage error");

    let (code, _) = simulate(&dir, &["fuzz", "--corpus", "no-such-corpus.txt"]);
    assert_eq!(code, 2, "missing corpus file is a usage error");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn histograms_reconcile_with_traffic_stats() {
    let net = telemetered_run(7, 8);
    let total = net.histograms().total();
    assert_eq!(
        total.get(HistKind::MsgBits).count(),
        net.stats().messages,
        "one histogram sample per transmitted message"
    );
    assert_eq!(total.get(HistKind::MsgBits).sum(), net.stats().bits);
}
