//! Binary-level tests of the serve monitoring plane and the bench
//! regression gate: the exit-code contracts CI scripts rely on, and the
//! flight-recorder JSONL round-tripping through our own JSON parser.

use wsn_bench::json::Json;

/// Runs the real `simulate` binary with `args` in `dir` and returns
/// `(exit code, stdout)`.
fn simulate(dir: &std::path::Path, args: &[&str]) -> (i32, String) {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_simulate"))
        .current_dir(dir)
        .args(args)
        .output()
        .expect("simulate binary must run");
    (
        out.status.code().expect("no signal"),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

/// Scratch directory for binary-level tests, unique per test name.
fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("wsn-monitor-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

const SERVE: &[&str] = &[
    "serve",
    "--queries",
    "4",
    "--nodes",
    "16",
    "--rounds",
    "8",
    "--seed",
    "9",
];

/// A healthy monitored serve exits 0 and prints the status table; a
/// deliberately tiny energy budget trips the BudgetOverrun watchdog,
/// flips the exit code to 1, and dumps a flight-recorder post-mortem
/// whose every JSONL line parses with `wsn_bench::json`.
#[test]
fn monitored_serve_exit_codes_and_health_dump_through_the_real_binary() {
    let dir = scratch("serve");

    let healthy: Vec<&str> = [SERVE, &["--monitor", "--status-every", "4"]].concat();
    let (code, out) = simulate(&dir, &healthy);
    assert_eq!(code, 0, "healthy monitored serve: {out}");
    assert!(out.contains("monitor: cache hit rate"), "{out}");
    assert!(out.contains("status round"), "{out}");
    assert!(out.contains("active"), "registry table present: {out}");

    let overrun: Vec<&str> = [
        SERVE,
        &["--budget-mj", "0.000001", "--health-json", "health.jsonl"],
    ]
    .concat();
    let (code, out) = simulate(&dir, &overrun);
    assert_eq!(code, 1, "tiny budget must trip the watchdog: {out}");
    assert!(out.contains("kind=budget_overrun"), "{out}");

    let dump = std::fs::read_to_string(dir.join("health.jsonl")).expect("dump written");
    let mut rounds = 0usize;
    let mut overruns = 0usize;
    for line in dump.lines().filter(|l| !l.is_empty()) {
        let doc = Json::parse(line).expect("every JSONL line parses");
        match doc.get("type") {
            Some(Json::Str(t)) if t == "round" => rounds += 1,
            Some(Json::Str(t)) if t == "health" => {
                if matches!(doc.get("kind"), Some(Json::Str(k)) if k == "budget_overrun") {
                    overruns += 1;
                }
                assert!(matches!(doc.get("round"), Some(Json::Num(_))), "{line}");
            }
            other => panic!("unexpected line type {other:?}: {line}"),
        }
    }
    assert!(rounds > 0, "post-mortem carries ring frames");
    assert!(overruns > 0, "post-mortem carries the overrun events");

    // Monitoring must not perturb the digest (release-binary replica of
    // the library-level zero-perturbation test).
    let digest: Vec<&str> = [SERVE, &["--digest"]].concat();
    let monitored_digest: Vec<&str> = [SERVE, &["--digest", "--monitor"]].concat();
    let (code_a, plain) = simulate(&dir, &digest);
    let (code_b, monitored) = simulate(&dir, &monitored_digest);
    assert_eq!((code_a, code_b), (0, 0));
    assert_eq!(plain, monitored, "monitoring changed the serve digest");

    let _ = std::fs::remove_dir_all(&dir);
}

/// One results file in the harness layout with a single group.
fn results_file(dir: &std::path::Path, name: &str, cells: &[(&str, u64)]) {
    let mut group = Json::Obj(vec![]);
    for (cell, median) in cells {
        group.set(
            cell,
            Json::Obj(vec![
                ("median_ns".into(), Json::int(*median)),
                ("min_ns".into(), Json::int(*median)),
                ("mean_ns".into(), Json::int(*median)),
                ("iters".into(), Json::int(10)),
            ]),
        );
    }
    let mut root = Json::Obj(vec![(
        "_meta".into(),
        Json::Obj(vec![("cores".into(), Json::int(1))]),
    )]);
    root.set("grp", group);
    std::fs::write(dir.join(name), root.pretty()).expect("write results file");
}

/// `simulate bench-diff` through the real binary: identical medians exit
/// 0, a slowdown past the tolerance band exits 1 naming the cell, and
/// every bad-input shape exits 2.
#[test]
fn bench_diff_exit_codes_through_the_real_binary() {
    let dir = scratch("bench-diff");
    results_file(&dir, "base.json", &[("a", 100), ("b", 100)]);
    results_file(&dir, "same.json", &[("a", 100), ("b", 100)]);
    results_file(&dir, "slow.json", &[("a", 100), ("b", 200)]);

    let (code, out) = simulate(&dir, &["bench-diff", "base.json", "same.json"]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("0 regressed"), "{out}");

    let (code, out) = simulate(&dir, &["bench-diff", "base.json", "slow.json"]);
    assert_eq!(code, 1, "2x slowdown beats any sane band: {out}");
    assert!(out.contains("REGRESSED grp/b"), "{out}");

    let wide = ["bench-diff", "base.json", "slow.json", "--tolerance", "1.5"];
    let (code, out) = simulate(&dir, &wide);
    assert_eq!(code, 0, "a 150% band tolerates a 2x slowdown: {out}");

    let (code, _) = simulate(&dir, &["bench-diff", "base.json", "missing.json"]);
    assert_eq!(code, 2, "missing file is a usage error");

    std::fs::write(dir.join("garbage.json"), "{broken").unwrap();
    let (code, _) = simulate(&dir, &["bench-diff", "base.json", "garbage.json"]);
    assert_eq!(code, 2, "malformed results file is a usage error");

    let (code, _) = simulate(&dir, &["bench-diff", "base.json"]);
    assert_eq!(code, 2, "bench-diff takes exactly two files");

    let (code, _) = simulate(
        &dir,
        &["bench-diff", "base.json", "same.json", "--tolerance", "-1"],
    );
    assert_eq!(code, 2, "negative tolerance is a usage error");

    let _ = std::fs::remove_dir_all(&dir);
}
