//! Regenerates every table and figure of the paper's evaluation (§5) plus
//! the future-work extensions.
//!
//! ```text
//! cargo run -p wsn-bench --release --bin experiments            # everything, full scale
//! cargo run -p wsn-bench --release --bin experiments -- --quick # scaled-down
//! cargo run -p wsn-bench --release --bin experiments -- --figure fig7
//! cargo run -p wsn-bench --release --bin experiments -- --figure fig4
//! ```

use std::time::Instant;

use wsn_sim::experiments::{self, run_sweep_threads};
use wsn_sim::report::{
    render_ablation, render_ablation_with_error, render_table, render_xi_trace, Indicator,
};

fn print_usage() {
    eprintln!(
        "usage: experiments [--quick] [--threads N] \
                [--figure fig4|fig6|fig7|fig8|fig9|fig10|loss|reliability|adaptive|phi|lcllcmp|exactcmp|sketch|dynamics|sampling|serve|ablation]"
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut figure: Option<String> = None;
    let mut threads = wsn_sim::parallel::thread_count();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--threads" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse::<usize>().ok()) {
                    Some(n) => threads = n.max(1),
                    None => {
                        print_usage();
                        std::process::exit(2);
                    }
                }
            }
            "--figure" => {
                i += 1;
                match args.get(i) {
                    Some(f) => figure = Some(f.clone()),
                    None => {
                        print_usage();
                        std::process::exit(2);
                    }
                }
            }
            "--help" | "-h" => {
                print_usage();
                return;
            }
            other => {
                eprintln!("unknown argument: {other}");
                print_usage();
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let wanted: Vec<String> = match &figure {
        Some(f) => vec![f.clone()],
        None => vec![
            "fig4".into(),
            "fig6".into(),
            "fig7".into(),
            "fig8".into(),
            "fig9".into(),
            "fig10".into(),
            "loss".into(),
            "reliability".into(),
            "adaptive".into(),
            "phi".into(),
            "lcllcmp".into(),
            "exactcmp".into(),
            "sketch".into(),
            "dynamics".into(),
            "sampling".into(),
            "serve".into(),
            "ablation".into(),
        ],
    };

    for id in wanted {
        let start = Instant::now();
        if id == "sampling" {
            eprintln!("running sampling trade-off …");
            println!(
                "{}",
                render_ablation_with_error(
                    "Ext. — Probabilistic quantiles by node sampling (§3.1)",
                    &experiments::sampling_tradeoff(quick)
                )
            );
        } else if id == "serve" {
            eprintln!("running multi-query service trade-off …");
            let rows = experiments::serve_tradeoff(quick);
            let base = rows.last().map(|r| r.bits).unwrap_or(0);
            println!(
                "Ext. — Continuous multi-query service (§3.3i): one shared network vs 16 independent runs"
            );
            println!(
                "{:<28} {:>12} {:>10} {:>11} {:>8} {:>9}",
                "variant", "bits", "messages", "executions", "served", "vs indep"
            );
            for r in &rows {
                let ratio = if base > 0 {
                    r.bits as f64 / base as f64
                } else {
                    1.0
                };
                println!(
                    "{:<28} {:>12} {:>10} {:>11} {:>8} {:>8.2}x",
                    r.label, r.bits, r.messages, r.executions, r.served, ratio
                );
            }
            println!();
        } else if id == "ablation" {
            eprintln!("running ablations …");
            println!(
                "{}",
                render_ablation(
                    "Ablation A — HBC bucket count (cost model vs. fixed b)",
                    &experiments::ablation_buckets(quick)
                )
            );
            println!(
                "{}",
                render_ablation(
                    "Ablation B — IQ parameters",
                    &experiments::ablation_iq(quick)
                )
            );
            println!(
                "{}",
                render_ablation(
                    "Ablation C — direct value retrieval [21]",
                    &experiments::ablation_retrieval(quick)
                )
            );
            println!(
                "{}",
                render_ablation(
                    "Ablation D — initialization strategy (init round only)",
                    &experiments::ablation_init(quick)
                )
            );
        } else if id == "fig4" {
            let trace = experiments::fig4_trace(125);
            println!("{}", render_xi_trace(&trace));
            let refined = trace.iter().filter(|r| r.refined).count();
            println!(
                "({} of {} rounds needed a refinement)\n",
                refined,
                trace.len()
            );
        } else {
            let Some(sweep) = experiments::by_id(&id, quick) else {
                eprintln!("unknown figure id: {id}");
                std::process::exit(2);
            };
            eprintln!("running {} on {threads} thread(s) …", sweep.id);
            let results = run_sweep_threads(&sweep, threads);
            println!("{}", render_table(&results, Indicator::MaxEnergy));
            println!("{}", render_table(&results, Indicator::Lifetime));
            if id == "loss" {
                println!("{}", render_table(&results, Indicator::RankError));
                println!("{}", render_table(&results, Indicator::Exactness));
            }
            if id == "sketch" {
                println!("{}", render_table(&results, Indicator::RankError));
                println!("{}", render_table(&results, Indicator::MaxRankError));
            }
            if id == "reliability" {
                println!("{}", render_table(&results, Indicator::RankError));
                println!("{}", render_table(&results, Indicator::Exactness));
                println!("{}", render_table(&results, Indicator::Retransmissions));
                println!("{}", render_table(&results, Indicator::Delivery));
            }
        }
        eprintln!("[{id} done in {:.1?}]\n", start.elapsed());
    }
}
