//! Ad-hoc simulation CLI: run any protocol on any workload configuration
//! and print the §5.1 metrics — or a per-round CSV trace for plotting.
//!
//! ```text
//! simulate --algorithm IQ --nodes 500 --rounds 250 --runs 5
//! simulate --algorithm HBC --dataset pressure --skip 8 --range pessimistic
//! simulate --algorithm POS --loss 0.05
//! simulate --algorithm IQ --csv trace.csv       # one traced run as CSV
//! simulate --all --nodes 300                    # compare every protocol
//! simulate --algorithm IQ --events run.trace.json --capture run.jsonl \
//!          --metrics-out metrics.prom           # telemetry exporters
//! simulate diff a.jsonl b.jsonl                 # first divergent frame
//! simulate fuzz --scenarios 1000 --seed 42      # invariant fuzz campaign
//! simulate fuzz --repro '{"seed":4807,...}'     # replay one repro line
//! simulate scale --nodes 10000 --rounds 200     # engine throughput gate
//! ```

use std::io::Write;

use wsn_bench::json::Json;
use wsn_data::pressure::{PressureConfig, RangeSetting};
use wsn_data::synthetic::SyntheticConfig;
use wsn_sim::config::{AlgorithmKind, DatasetSpec, SimulationConfig};
use wsn_sim::metrics::AggregatedMetrics;
use wsn_sim::runner::run_experiment_threads;

#[derive(Debug)]
struct Args {
    algorithm: Option<AlgorithmKind>,
    all: bool,
    nodes: usize,
    rounds: u32,
    runs: u32,
    phi: f64,
    rho: f64,
    period: u32,
    noise: f64,
    dataset: String,
    skip: u32,
    range: String,
    loss: Option<f64>,
    retries: u32,
    recovery: u32,
    node_failures: Option<f64>,
    mobility: bool,
    churn: bool,
    drift: bool,
    duty: bool,
    audit: bool,
    seed: u64,
    csv: Option<String>,
    json: Option<String>,
    events: Option<String>,
    capture: Option<String>,
    metrics_out: Option<String>,
    threads: usize,
    wave_threads: usize,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            algorithm: None,
            all: false,
            nodes: 1000,
            rounds: 250,
            runs: 5,
            phi: 0.5,
            rho: 35.0,
            period: 125,
            noise: 10.0,
            dataset: "synthetic".into(),
            skip: 1,
            range: "optimistic".into(),
            loss: None,
            retries: 0,
            recovery: 0,
            node_failures: None,
            mobility: false,
            churn: false,
            drift: false,
            duty: false,
            audit: false,
            seed: 0xC0FFEE,
            csv: None,
            json: None,
            events: None,
            capture: None,
            metrics_out: None,
            threads: wsn_sim::parallel::thread_count(),
            wave_threads: 1,
        }
    }
}

fn algorithm_by_name(name: &str) -> Option<AlgorithmKind> {
    let all = [
        AlgorithmKind::Tag,
        AlgorithmKind::Pos,
        AlgorithmKind::LcllH,
        AlgorithmKind::LcllS,
        AlgorithmKind::LcllR,
        AlgorithmKind::Hbc,
        AlgorithmKind::HbcNb,
        AlgorithmKind::Iq,
        AlgorithmKind::Adaptive,
        AlgorithmKind::Gk,
        // Sketch family at the default ε = 0.1 and derived capacity; pick
        // other operating points through the library API.
        AlgorithmKind::QDigest { eps_milli: 100 },
        AlgorithmKind::GkSink {
            eps_milli: 100,
            capacity: 0,
        },
    ];
    all.into_iter()
        .find(|a| a.name().eq_ignore_ascii_case(name))
}

/// Parses a probability flag, rejecting values outside [0, 1] at the CLI
/// boundary (the library asserts on them much deeper).
fn probability(raw: String, flag: &str) -> Result<f64, String> {
    let p: f64 = raw.parse().map_err(|e| format!("{flag}: {e}"))?;
    if !(0.0..=1.0).contains(&p) {
        return Err(format!("{flag}: {p} is not a probability in [0, 1]"));
    }
    Ok(p)
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |argv: &[String], i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        argv.get(*i)
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--algorithm" | "-a" => {
                let name = value(&argv, &mut i, "--algorithm")?;
                args.algorithm =
                    Some(algorithm_by_name(&name).ok_or(format!("unknown algorithm {name}"))?);
            }
            "--all" => args.all = true,
            "--nodes" | "-n" => {
                args.nodes = value(&argv, &mut i, "--nodes")?
                    .parse()
                    .map_err(|e| format!("--nodes: {e}"))?
            }
            "--rounds" => {
                args.rounds = value(&argv, &mut i, "--rounds")?
                    .parse()
                    .map_err(|e| format!("--rounds: {e}"))?
            }
            "--runs" => {
                args.runs = value(&argv, &mut i, "--runs")?
                    .parse()
                    .map_err(|e| format!("--runs: {e}"))?
            }
            "--phi" => {
                args.phi = value(&argv, &mut i, "--phi")?
                    .parse()
                    .map_err(|e| format!("--phi: {e}"))?
            }
            "--rho" => {
                args.rho = value(&argv, &mut i, "--rho")?
                    .parse()
                    .map_err(|e| format!("--rho: {e}"))?
            }
            "--period" => {
                args.period = value(&argv, &mut i, "--period")?
                    .parse()
                    .map_err(|e| format!("--period: {e}"))?
            }
            "--noise" => {
                args.noise = value(&argv, &mut i, "--noise")?
                    .parse()
                    .map_err(|e| format!("--noise: {e}"))?
            }
            "--dataset" => args.dataset = value(&argv, &mut i, "--dataset")?,
            "--skip" => {
                args.skip = value(&argv, &mut i, "--skip")?
                    .parse()
                    .map_err(|e| format!("--skip: {e}"))?
            }
            "--range" => args.range = value(&argv, &mut i, "--range")?,
            "--loss" => args.loss = Some(probability(value(&argv, &mut i, "--loss")?, "--loss")?),
            "--retries" => {
                args.retries = value(&argv, &mut i, "--retries")?
                    .parse()
                    .map_err(|e| format!("--retries: {e}"))?
            }
            "--recovery" => {
                args.recovery = value(&argv, &mut i, "--recovery")?
                    .parse()
                    .map_err(|e| format!("--recovery: {e}"))?
            }
            "--node-failures" => {
                args.node_failures = Some(probability(
                    value(&argv, &mut i, "--node-failures")?,
                    "--node-failures",
                )?)
            }
            "--mobility" => args.mobility = true,
            "--churn" => args.churn = true,
            "--drift" => args.drift = true,
            "--duty" => args.duty = true,
            "--audit" => args.audit = true,
            "--seed" => {
                args.seed = value(&argv, &mut i, "--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--csv" => args.csv = Some(value(&argv, &mut i, "--csv")?),
            "--json" => args.json = Some(value(&argv, &mut i, "--json")?),
            "--events" => args.events = Some(value(&argv, &mut i, "--events")?),
            "--capture" => args.capture = Some(value(&argv, &mut i, "--capture")?),
            "--metrics-out" => args.metrics_out = Some(value(&argv, &mut i, "--metrics-out")?),
            "--threads" => {
                args.threads = value(&argv, &mut i, "--threads")?
                    .parse::<usize>()
                    .map(|n| n.max(1))
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--wave-threads" => {
                args.wave_threads = value(&argv, &mut i, "--wave-threads")?
                    .parse::<usize>()
                    .map(|n| n.max(1))
                    .map_err(|e| format!("--wave-threads: {e}"))?
            }
            "--help" | "-h" => {
                print_usage();
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other}")),
        }
        i += 1;
    }
    if args.algorithm.is_none() && !args.all {
        return Err("pass --algorithm <name> or --all".into());
    }
    Ok(args)
}

fn print_usage() {
    eprintln!(
        "usage: simulate (--algorithm TAG|POS|LCLL-H|LCLL-S|LCLL-R|HBC|HBC-nb|IQ|Adaptive|GK|QD|GKS | --all)
                [--nodes N] [--rounds R] [--runs K] [--phi F] [--rho M]
                [--dataset synthetic|pressure|walk|regime] [--period T] [--noise PSI]
                [--skip S] [--range optimistic|pessimistic]
                [--loss P] [--retries R] [--recovery PASSES] [--node-failures P]
                [--mobility] [--churn] [--drift] [--duty]
                [--audit] [--seed S] [--csv FILE] [--json FILE] [--threads N]
                [--wave-threads W]
                [--events FILE] [--capture FILE] [--metrics-out FILE]
       simulate diff A.jsonl B.jsonl
       simulate fuzz [--scenarios N] [--seed S] [--threads N]
                     [--corpus FILE] [--repro LINE]
       simulate scale [--nodes N] [--rounds R] [--wave-threads W]
                      [--seed S] [--budget-secs T]
       simulate serve [--queries Q] [--nodes N] [--rounds R] [--phi F]
                      [--seed S] [--shared] [--wave-threads W] [--audit]
                      [--admit ROUND:PHI_MILLI] [--retire ROUND:SLOT]
                      [--digest] [--json FILE]
                      [--monitor] [--budget-mj X] [--health-json FILE]
                      [--metrics-out FILE] [--status-every N]
       simulate bench-diff BASELINE.json CURRENT.json [--tolerance X]

--audit replays every recorded transmission through the energy auditor and
prints the per-phase energy breakdown; any ledger discrepancy makes the
process exit with status 1. --json additionally writes the aggregated
metrics (including per-phase energy/bits and audit counters) to FILE.

Dynamic worlds (DESIGN.md §3.3k), each flag at a fixed documented
operating point: --mobility moves every sensor on a waypoint walk by
0.25 radio ranges each 4-round epoch (the sink stays put); --churn
toggles each sensor alive/dead with probability 1% per round (joins
re-place the node); --drift random-walks the link-loss probability with
amplitude 0.1 around the --loss base (inert without --loss); --duty
charges a 10% idle-listen duty cycle to every alive sensor's ledger each
round. Mobility and churn rebuild the routing tree (charged to the
`rebuild` phase and replayed bit-exactly under --audit).

Telemetry exporters (one traced run, like --csv): --events writes a
Chrome-trace/Perfetto JSON span timeline, --capture writes a JSONL
packet-level capture, --metrics-out writes a Prometheus-style text dump
(with the full aggregated experiment instead when no traced-run flag is
given). `simulate diff` compares two captures and reports the first
divergent frame (exit 0 identical, 1 divergent, 2 on bad input).

`simulate fuzz` runs the wsn-check invariant fuzzer: N seeded scenarios
(default 100, seed 42), the 8-protocol battery (every paper protocol plus
the QD/GKS sketches at the scenario's ε, held to their advertised ⌊ε·n⌋
rank tolerance), checked against the centralized oracle, the energy-audit
replay, telemetry reconciliation, thread parity and metamorphic
properties; failures are shrunk to one-line repros. --corpus replays a pinned corpus first and appends new shrunk
repros to it; --repro replays one repro line. Exit 0 clean, 1 on any
violation, 2 on bad input.

`simulate serve` runs the continuous multi-query service: Q concurrent
queries (mixed protocols, φ including both boundaries, mixed epochs) over
one shared network, compiled into per-round traffic plans with execution
dedup and — under --shared — piggybacked frame packing. --admit/--retire
change the query set mid-run; --audit prints the per-lane charge table;
--digest prints the byte-exact parity digest (identical at any
--wave-threads). Exit 0 clean, 1 on any audit discrepancy.

Serve monitoring: any of --monitor/--budget-mj/--health-json/
--metrics-out/--status-every attaches the observability monitor (never
perturbs the digest). --budget-mj arms the per-query energy-budget
watchdog at X millijoules; --status-every prints a one-line status every
N rounds plus the final registry table; --health-json dumps the flight
recorder and health events as JSONL (the post-mortem ring snapshot when
a watchdog fired); --metrics-out writes per-query Prometheus series. A
monitored serve exits 1 when any watchdog fired. `simulate bench-diff`
compares two BENCH_results.json files and exits 1 when any shared cell's
median slowed past the tolerance band (default 0.5 = 50%).

`simulate scale` is the engine-throughput smoke gate: it runs R full HBC
rounds on an N-node constant-density world (the `scale` bench workload)
with W within-wave worker threads, prints the wall clock and per-round
cost, and exits 1 when the run exceeds the --budget-secs wall-clock
budget (default: no budget). --threads parallelizes across runs;
--wave-threads parallelizes the waves *inside* one run — results are
bit-identical at any setting of either."
    );
}

/// `simulate diff a.jsonl b.jsonl` — parse two packet captures and report
/// the first divergent frame, or "identical". Exit code 0 when identical,
/// 1 on divergence, 2 on unreadable/malformed input.
fn run_diff(paths: &[String]) -> ! {
    use wsn_net::obs::capture::parse_jsonl;
    let [path_a, path_b] = paths else {
        eprintln!("error: diff takes exactly two capture files");
        print_usage();
        std::process::exit(2);
    };
    let load = |path: &String| -> Vec<wsn_net::obs::PacketRecord> {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("error: reading {path}: {e}");
            std::process::exit(2);
        });
        parse_jsonl(&text).unwrap_or_else(|e| {
            eprintln!("error: {path}: {e}");
            std::process::exit(2);
        })
    };
    let (a, b) = (load(path_a), load(path_b));
    let d = wsn_net::obs::diff(&a, &b);
    match d.divergence {
        None => {
            println!("identical: {} frames", d.len_a);
            std::process::exit(0);
        }
        Some(div) => {
            println!(
                "captures diverge at frame {} (round {}, node {}): {} {} vs {}  [{} vs {} frames total]",
                div.frame, div.round, div.node, div.field, div.a, div.b, d.len_a, d.len_b
            );
            std::process::exit(1);
        }
    }
}

/// `simulate bench-diff BASELINE CURRENT [--tolerance X]` — the bench
/// regression gate: compare two `BENCH_results.json` files cell by cell
/// and fail when any shared cell's median slowed past the tolerance band
/// (default 50%). Exit 0 clean, 1 on regression, 2 on bad input.
fn run_bench_diff(argv: &[String]) -> ! {
    let fail = |msg: String| -> ! {
        eprintln!("error: {msg}");
        print_usage();
        std::process::exit(2);
    };
    let mut tolerance = wsn_bench::regress::DEFAULT_TOLERANCE;
    let mut paths: Vec<&String> = Vec::new();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--tolerance" => {
                i += 1;
                tolerance = match argv.get(i).map(|v| v.parse::<f64>()) {
                    Some(Ok(t)) if t >= 0.0 => t,
                    _ => fail("--tolerance needs a non-negative fraction".into()),
                };
            }
            _ => paths.push(&argv[i]),
        }
        i += 1;
    }
    let [baseline_path, current_path] = paths[..] else {
        fail("bench-diff takes exactly two results files".into());
    };
    let load = |path: &String| -> Json {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("error: reading {path}: {e}");
            std::process::exit(2);
        });
        Json::parse(&text).unwrap_or_else(|e| {
            eprintln!("error: {path}: {e}");
            std::process::exit(2);
        })
    };
    let cmp = wsn_bench::regress::compare(&load(baseline_path), &load(current_path), tolerance);
    print!("{}", cmp.render(tolerance));
    std::process::exit(if cmp.is_clean() { 0 } else { 1 });
}

/// `simulate fuzz` — the deterministic invariant fuzz campaign of the
/// `wsn-check` crate. Exit code 0 when every scenario (and every corpus
/// entry) passes the battery, 1 on any violation, 2 on bad usage or
/// unparsable input.
///
/// `--repro '<line>'` replays a single repro line instead of fuzzing.
/// `--corpus FILE` replays every pinned line before the campaign and
/// appends the shrunk repro of any new failure to the file.
fn run_fuzz(argv: &[String]) -> ! {
    let mut scenarios: u64 = 100;
    let mut seed: u64 = 42;
    let mut threads: usize = wsn_sim::parallel::thread_count();
    let mut corpus: Option<String> = None;
    let mut repro: Option<String> = None;
    let fail = |msg: String| -> ! {
        eprintln!("error: {msg}");
        print_usage();
        std::process::exit(2);
    };
    let mut i = 0;
    while i < argv.len() {
        let value = |i: &mut usize, flag: &str| -> String {
            *i += 1;
            match argv.get(*i) {
                Some(v) => v.clone(),
                None => fail(format!("{flag} needs a value")),
            }
        };
        match argv[i].as_str() {
            "--scenarios" => {
                scenarios = match value(&mut i, "--scenarios").parse() {
                    Ok(n) => n,
                    Err(e) => fail(format!("--scenarios: {e}")),
                }
            }
            "--seed" => {
                seed = match value(&mut i, "--seed").parse() {
                    Ok(n) => n,
                    Err(e) => fail(format!("--seed: {e}")),
                }
            }
            "--threads" => {
                threads = match value(&mut i, "--threads").parse::<usize>() {
                    Ok(n) => n.max(1),
                    Err(e) => fail(format!("--threads: {e}")),
                }
            }
            "--corpus" => corpus = Some(value(&mut i, "--corpus")),
            "--repro" => repro = Some(value(&mut i, "--repro")),
            other => fail(format!("unknown fuzz argument {other}")),
        }
        i += 1;
    }

    // Violations are *reported*, not crashed on: silence the default
    // panic printer so caught protocol panics do not spray backtraces
    // over the deterministic summary.
    std::panic::set_hook(Box::new(|_| {}));

    if let Some(line) = repro {
        let scenario = match wsn_check::parse_line(&line) {
            Ok(s) => s,
            Err(e) => fail(format!("--repro: {e}")),
        };
        let report = wsn_check::check(&scenario);
        if report.violations.is_empty() {
            println!("repro: clean");
            std::process::exit(0);
        }
        println!("repro: {} violation(s)", report.violations.len());
        for v in &report.violations {
            println!("  {v}");
        }
        std::process::exit(1);
    }

    let mut exit_code = 0;
    if let Some(path) = &corpus {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => fail(format!("reading {path}: {e}")),
        };
        let entries = match wsn_check::corpus_entries(&text) {
            Ok(e) => e,
            Err(e) => fail(format!("{path}: {e}")),
        };
        let mut regressed = 0usize;
        for (line, scenario) in &entries {
            let report = wsn_check::check(scenario);
            if !report.violations.is_empty() {
                regressed += 1;
                println!("corpus line {line} REGRESSED:");
                for v in &report.violations {
                    println!("  {v}");
                }
            }
        }
        println!("corpus: {} entries, {} regressed", entries.len(), regressed);
        if regressed > 0 {
            exit_code = 1;
        }
    }

    let report = wsn_check::fuzz(seed, scenarios, threads);
    print!("{}", report.summary());
    if !report.is_clean() {
        exit_code = 1;
        if let Some(path) = &corpus {
            let mut add = String::new();
            for f in &report.failures {
                add.push_str(&format!(
                    "# found by fuzz: seed={} index={}\n{}\n",
                    seed,
                    f.index,
                    wsn_check::to_line(&f.shrunk)
                ));
            }
            let appended = std::fs::OpenOptions::new()
                .append(true)
                .open(path)
                .and_then(|mut file| file.write_all(add.as_bytes()));
            match appended {
                Ok(()) => eprintln!(
                    "appended {} shrunk repro(s) to {path}",
                    report.failures.len()
                ),
                Err(e) => eprintln!("error: appending to {path}: {e}"),
            }
        }
    }
    std::process::exit(exit_code);
}

/// `simulate scale` — the struct-of-arrays engine throughput gate: time
/// full HBC rounds on an n-node constant-density world (the same workload
/// as the `scale` bench family) and fail when the wall clock exceeds the
/// budget. Exit 0 within budget, 1 over budget, 2 on bad usage. CI wraps
/// this in `timeout(1)` as a belt-and-suspenders hang guard.
fn run_scale(argv: &[String]) -> ! {
    use std::time::Instant;

    let mut nodes: usize = 10_000;
    let mut rounds: u32 = 200;
    let mut wave_threads: usize = 1;
    let mut seed: u64 = 0x5CA1E;
    let mut budget_secs: Option<f64> = None;
    let fail = |msg: String| -> ! {
        eprintln!("error: {msg}");
        print_usage();
        std::process::exit(2);
    };
    let mut i = 0;
    while i < argv.len() {
        let value = |i: &mut usize, flag: &str| -> String {
            *i += 1;
            match argv.get(*i) {
                Some(v) => v.clone(),
                None => fail(format!("{flag} needs a value")),
            }
        };
        match argv[i].as_str() {
            "--nodes" => {
                nodes = match value(&mut i, "--nodes").parse() {
                    Ok(n) => n,
                    Err(e) => fail(format!("--nodes: {e}")),
                }
            }
            "--rounds" => {
                rounds = match value(&mut i, "--rounds").parse() {
                    Ok(n) => n,
                    Err(e) => fail(format!("--rounds: {e}")),
                }
            }
            "--wave-threads" => {
                wave_threads = match value(&mut i, "--wave-threads").parse::<usize>() {
                    Ok(n) => n.max(1),
                    Err(e) => fail(format!("--wave-threads: {e}")),
                }
            }
            "--seed" => {
                seed = match value(&mut i, "--seed").parse() {
                    Ok(n) => n,
                    Err(e) => fail(format!("--seed: {e}")),
                }
            }
            "--budget-secs" => {
                budget_secs = match value(&mut i, "--budget-secs").parse() {
                    Ok(t) => Some(t),
                    Err(e) => fail(format!("--budget-secs: {e}")),
                }
            }
            other => fail(format!("unknown scale argument {other}")),
        }
        i += 1;
    }
    if nodes == 0 || rounds == 0 {
        fail("scale needs --nodes >= 1 and --rounds >= 1".into());
    }

    let built = Instant::now();
    let mut net = wsn_bench::scale::build_world(nodes, seed);
    net.set_wave_workers(wave_threads);
    eprintln!(
        "scale: built {} nodes (avg degree target {}) in {:.2}s",
        net.len(),
        wsn_bench::scale::DEG,
        built.elapsed().as_secs_f64()
    );

    let start = Instant::now();
    let answer = wsn_bench::scale::hbc_rounds(&mut net, nodes, rounds);
    let elapsed = start.elapsed().as_secs_f64();
    println!(
        "scale: n={nodes} rounds={rounds} wave-threads={wave_threads} \
         wall={elapsed:.2}s round={:.3}ms ns/(node*round)={:.0} median={answer}",
        elapsed * 1e3 / rounds as f64,
        elapsed * 1e9 / (nodes as f64 * rounds as f64),
    );
    if let Some(budget) = budget_secs {
        if elapsed > budget {
            eprintln!("scale: FAILED — {elapsed:.2}s exceeds the {budget:.2}s budget");
            std::process::exit(1);
        }
        eprintln!("scale: within the {budget:.2}s budget");
    }
    std::process::exit(0);
}

fn build_config(args: &Args) -> Result<SimulationConfig, String> {
    let dataset = match args.dataset.as_str() {
        "synthetic" => DatasetSpec::Synthetic(SyntheticConfig {
            period: args.period,
            noise_percent: args.noise,
            ..SyntheticConfig::default()
        }),
        "walk" => DatasetSpec::RandomWalk {
            range_size: 1024,
            step: 5,
        },
        "regime" => DatasetSpec::Regime {
            range_size: 1024,
            phase_len: 50,
            drift: 3,
        },
        "pressure" => {
            let range = match args.range.as_str() {
                "optimistic" => RangeSetting::Optimistic,
                "pessimistic" => RangeSetting::Pessimistic,
                other => return Err(format!("unknown range setting {other}")),
            };
            DatasetSpec::Pressure(PressureConfig {
                sensor_count: args.nodes,
                steps: args.rounds as usize * args.skip as usize + 1,
                skip: args.skip,
                range,
                ..PressureConfig::default()
            })
        }
        other => return Err(format!("unknown dataset {other}")),
    };
    let dynamics = (args.mobility || args.churn || args.drift || args.duty).then_some(
        wsn_sim::DynamicsConfig {
            mobility_step: if args.mobility { 0.25 * args.rho } else { 0.0 },
            churn: if args.churn { 0.01 } else { 0.0 },
            drift: if args.drift { 0.1 } else { 0.0 },
            duty_milli: if args.duty { 100 } else { 0 },
            epoch: wsn_sim::Scenario::MOBILITY_EPOCH,
        },
    );
    Ok(SimulationConfig {
        sensor_count: args.nodes,
        radio_range: args.rho,
        rounds: args.rounds,
        runs: args.runs,
        phi: args.phi,
        seed: args.seed,
        loss: args.loss,
        reliability: wsn_net::ReliabilityConfig::recovering(args.retries, args.recovery),
        node_failure: args.node_failures,
        dynamics,
        audit: args.audit,
        dataset,
        wave_workers: args.wave_threads,
        ..SimulationConfig::default()
    })
}

/// Writes `text` to `path`, mapping IO errors to a printable message.
fn write_file(path: &str, text: &str) -> Result<(), String> {
    std::fs::File::create(path)
        .and_then(|mut f| f.write_all(text.as_bytes()))
        .map_err(|e| format!("writing {path}: {e}"))
}

/// Runs one fully-instrumented run (the same world-building the runner
/// does, retrying placement until connected) and emits whichever artifacts
/// were requested: `--csv` per-round trace, `--events` Chrome-trace span
/// timeline, `--capture` JSONL packet capture, `--metrics-out` Prometheus
/// dump of the run's telemetry histograms and traffic totals.
fn traced_run(args: &Args, cfg: &SimulationConfig) -> Result<(), String> {
    use wsn_data::Rng;
    use wsn_net::Network;

    let kind = args
        .algorithm
        .ok_or("--csv/--events/--capture need --algorithm")?;
    // Replay exactly run 0 of the experiment the runner would execute:
    // same (seed, run-index) mixing, same placement-retry loop, same
    // world — `runner::build_world` is the single implementation.
    let mut rng = Rng::seed_from_u64(cfg.seed ^ 1);
    let (mut dataset, topo, tree) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        wsn_sim::runner::build_world(cfg, &mut rng)
    }))
    .map_err(|_| "could not find a connected placement".to_string())?;
    let mut net = Network::new(topo, tree, cfg.radio, cfg.sizes);
    // The packet capture rides on the audit log; spans need the
    // recorder. Only pay for what was asked.
    net.set_audit(cfg.audit || args.capture.is_some());
    net.set_telemetry(cfg.telemetry || args.events.is_some());
    let query = cqp_core::QueryConfig::phi(
        cfg.phi,
        dataset.sensor_count(),
        dataset.range_min(),
        dataset.range_max(),
    );
    let mut alg = kind.build(query, &cfg.sizes);
    let trace = wsn_sim::trace::trace_run(
        &mut net,
        alg.as_mut(),
        dataset.as_mut(),
        cfg.rounds,
        query.k,
    );
    if let Some(path) = &args.csv {
        write_file(path, &wsn_sim::trace::to_csv(&trace))?;
        eprintln!("wrote {} rounds to {path}", trace.len());
    }
    if let Some(path) = &args.events {
        let events = net.recorder().events();
        write_file(path, &wsn_net::obs::chrome_trace(events))?;
        eprintln!("wrote {} span events to {path}", events.len());
    }
    if let Some(path) = &args.capture {
        let frames = net.capture();
        write_file(path, &wsn_net::obs::capture::to_jsonl(&frames))?;
        eprintln!("wrote {} captured frames to {path}", frames.len());
    }
    if let Some(path) = &args.metrics_out {
        let mut dump = wsn_net::obs::PromDump::new();
        let labels = format!(r#"protocol="{}""#, kind.name());
        let stats = net.stats();
        dump.counter(
            "wsn_rounds_total",
            &labels,
            "simulation rounds executed",
            trace.len() as u64,
        );
        dump.counter(
            "wsn_messages_total",
            &labels,
            "messages transmitted",
            stats.messages,
        );
        dump.counter("wsn_bits_total", &labels, "bits on air", stats.bits);
        prom_histograms(&mut dump, &labels, &net.histograms().total());
        write_file(path, &dump.finish())?;
        eprintln!("wrote telemetry metrics to {path}");
    }
    Ok(())
}

/// Appends the four telemetry histograms of a [`wsn_net::obs::HistogramSet`] to a
/// Prometheus dump under `wsn_<kind>` series names.
fn prom_histograms(
    dump: &mut wsn_net::obs::PromDump,
    labels: &str,
    hists: &wsn_net::obs::HistogramSet,
) {
    use wsn_net::obs::HistKind;
    for kind in HistKind::ALL {
        let (name, help) = match kind {
            HistKind::MsgBits => (
                "wsn_msg_bits",
                "per-message bits on air (incl. retransmissions)",
            ),
            HistKind::HopDepth => ("wsn_hop_depth", "routing-tree depth of each transmitter"),
            HistKind::Retries => ("wsn_retries", "ARQ retransmissions per link send"),
            HistKind::FanIn => ("wsn_fan_in", "children merged per convergecast send"),
        };
        dump.histogram(name, labels, help, hists.get(kind));
    }
}

/// Serializes an aggregate — the §5.1 indicators plus the per-phase
/// energy/traffic breakdown and audit counters — as a JSON object.
fn metrics_json(m: &AggregatedMetrics) -> Json {
    let by_phase = |vals: [f64; wsn_net::Phase::COUNT]| {
        Json::Obj(
            wsn_net::Phase::ALL
                .iter()
                .map(|p| (p.name().to_string(), Json::Num(vals[p.index()])))
                .collect(),
        )
    };
    Json::Obj(vec![
        ("runs".into(), Json::int(m.runs as u64)),
        (
            "max_node_energy_per_round_j".into(),
            Json::Num(m.max_node_energy_per_round),
        ),
        ("lifetime_rounds".into(), Json::Num(m.lifetime_rounds)),
        ("messages_per_round".into(), Json::Num(m.messages_per_round)),
        ("values_per_round".into(), Json::Num(m.values_per_round)),
        ("bits_per_round".into(), Json::Num(m.bits_per_round)),
        ("exactness".into(), Json::Num(m.exactness)),
        ("mean_rank_error".into(), Json::Num(m.mean_rank_error)),
        ("delivery_rate".into(), Json::Num(m.delivery_rate)),
        (
            "retransmissions_per_round".into(),
            Json::Num(m.retransmissions_per_round),
        ),
        ("failed_nodes".into(), Json::Num(m.failed_nodes)),
        ("phase_joules".into(), by_phase(m.phase_joules)),
        ("phase_bits".into(), by_phase(m.phase_bits)),
        ("audit_events".into(), Json::int(m.audit_events)),
        (
            "audit_discrepancies".into(),
            Json::int(m.audit_discrepancies),
        ),
    ])
}

/// `simulate serve` — the continuous multi-query service: admits the
/// standard `Scenario::workload` battery (mixed protocols, φ including
/// both boundaries, mixed epochs) over one shared network, optionally
/// applies admit/retire events mid-run, and prints per-query answers and
/// lane charges plus the shared-plan aggregates. `--digest` prints the
/// byte-exact parity digest instead (identical at any `--wave-threads`).
/// Exit 0 clean, 1 on any audit discrepancy, 2 on bad usage.
fn run_serve(argv: &[String]) -> ! {
    use wsn_sim::{DataSource, Scenario, ServeEvent, ServeQuery};

    let mut queries: u32 = 16;
    let mut nodes: usize = 24;
    let mut rounds: u32 = 12;
    let mut phi_milli: u32 = 500;
    let mut seed: u64 = 0x5EE5;
    let mut shared = false;
    let mut wave_threads: usize = 1;
    let mut digest = false;
    let mut audit_table = false;
    let mut json: Option<String> = None;
    let mut monitor_on = false;
    let mut budget_mj: Option<f64> = None;
    let mut health_json: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut status_every: u32 = 0;
    let mut events: Vec<ServeEvent> = Vec::new();
    let fail = |msg: String| -> ! {
        eprintln!("error: {msg}");
        print_usage();
        std::process::exit(2);
    };
    let mut i = 0;
    while i < argv.len() {
        let value = |i: &mut usize, flag: &str| -> String {
            *i += 1;
            match argv.get(*i) {
                Some(v) => v.clone(),
                None => fail(format!("{flag} needs a value")),
            }
        };
        let pair = |raw: &str, flag: &str| -> (u32, u32) {
            match raw.split_once(':').map(|(a, b)| (a.parse(), b.parse())) {
                Some((Ok(a), Ok(b))) => (a, b),
                _ => fail(format!("{flag}: expected ROUND:VALUE, got `{raw}`")),
            }
        };
        match argv[i].as_str() {
            "--queries" => {
                queries = match value(&mut i, "--queries").parse::<u32>() {
                    Ok(n) if (1..=64).contains(&n) => n,
                    Ok(n) => fail(format!("--queries: {n} outside 1..=64")),
                    Err(e) => fail(format!("--queries: {e}")),
                }
            }
            "--nodes" => {
                nodes = match value(&mut i, "--nodes").parse::<usize>() {
                    Ok(n) if n >= 1 => n,
                    _ => fail("--nodes needs a positive integer".into()),
                }
            }
            "--rounds" => {
                rounds = match value(&mut i, "--rounds").parse::<u32>() {
                    Ok(n) if n >= 1 => n,
                    _ => fail("--rounds needs a positive integer".into()),
                }
            }
            "--phi" => {
                phi_milli = match value(&mut i, "--phi").parse::<f64>() {
                    Ok(p) if (0.0..=1.0).contains(&p) => (p * 1000.0).round() as u32,
                    _ => fail("--phi needs a fraction in [0, 1]".into()),
                }
            }
            "--seed" => {
                seed = match value(&mut i, "--seed").parse() {
                    Ok(n) => n,
                    Err(e) => fail(format!("--seed: {e}")),
                }
            }
            "--wave-threads" => {
                wave_threads = match value(&mut i, "--wave-threads").parse::<usize>() {
                    Ok(n) => n.max(1),
                    Err(e) => fail(format!("--wave-threads: {e}")),
                }
            }
            "--shared" => shared = true,
            "--digest" => digest = true,
            "--audit" => audit_table = true,
            "--json" => json = Some(value(&mut i, "--json")),
            "--monitor" => monitor_on = true,
            "--budget-mj" => {
                budget_mj = match value(&mut i, "--budget-mj").parse::<f64>() {
                    Ok(mj) if mj > 0.0 => Some(mj),
                    _ => fail("--budget-mj needs a positive number of millijoules".into()),
                }
            }
            "--health-json" => health_json = Some(value(&mut i, "--health-json")),
            "--metrics-out" => metrics_out = Some(value(&mut i, "--metrics-out")),
            "--status-every" => {
                status_every = match value(&mut i, "--status-every").parse::<u32>() {
                    Ok(n) if n >= 1 => n,
                    _ => fail("--status-every needs a positive round interval".into()),
                }
            }
            "--admit" => {
                let (round, phi) = pair(&value(&mut i, "--admit"), "--admit");
                if phi > 1000 {
                    fail(format!("--admit: φ‰ {phi} outside 0..=1000"));
                }
                events.push(ServeEvent::Admit {
                    round,
                    query: ServeQuery {
                        algorithm: AlgorithmKind::Tag,
                        phi_milli: phi,
                        epoch: 1,
                    },
                });
            }
            "--retire" => {
                let (round, slot) = pair(&value(&mut i, "--retire"), "--retire");
                events.push(ServeEvent::Retire { round, slot });
            }
            other => fail(format!("unknown serve argument {other}")),
        }
        i += 1;
    }

    let sc = Scenario {
        seed,
        nodes,
        range_milli: 2500,
        rounds,
        runs: 1,
        phi_milli,
        loss_milli: 0,
        retries: 0,
        recovery: 0,
        failure_milli: 0,
        eps_milli: 100,
        capacity: 0,
        queries,
        mobility_milli: 0,
        churn_milli: 0,
        drift_milli: 0,
        duty_milli: 0,
        source: DataSource::Sinusoid {
            period: 16,
            noise_permille: 100,
        },
    };
    let cfg = SimulationConfig {
        wave_workers: wave_threads,
        ..sc.to_config()
    };
    let workload = sc.workload();

    // Any monitoring flag attaches the monitor; the flight recorder is
    // sized to the whole run so `--status-every` can replay every round.
    let monitor_cfg = (monitor_on
        || budget_mj.is_some()
        || health_json.is_some()
        || metrics_out.is_some()
        || status_every > 0)
        .then(|| wsn_net::obs::MonitorConfig {
            budget_joules: budget_mj.map(|mj| mj * 1e-3),
            recorder_capacity: rounds as usize,
            ..wsn_net::obs::MonitorConfig::default()
        });

    if digest {
        // With monitoring attached the digest comes from the *monitored*
        // run, so CI can diff it against a monitor-off digest to prove
        // the zero-perturbation contract on the release binary.
        match &monitor_cfg {
            Some(mc) => {
                let (report, _, net) =
                    wsn_sim::serve_monitored(&cfg, &workload, &events, shared, 0, Some(mc));
                print!("{}", wsn_sim::parity::serve_report_digest(&report, &net));
            }
            None => print!(
                "{}",
                wsn_sim::parity::serve_digest(&cfg, &workload, &events, shared)
            ),
        }
        std::process::exit(0);
    }

    let (report, monitor, _net) =
        wsn_sim::serve_monitored(&cfg, &workload, &events, shared, 0, monitor_cfg.as_ref());
    println!(
        "serve: {} queries over {} rounds on {} nodes ({} framing, {} wave thread{})",
        report.queries.len(),
        report.rounds,
        nodes,
        if shared { "shared" } else { "solo" },
        wave_threads,
        if wave_threads == 1 { "" } else { "s" },
    );
    println!(
        "plan: {} executions for {} query-rounds served, cache {} hits / {} misses",
        report.executions, report.served, report.plan_hits, report.plan_misses
    );
    println!(
        "traffic: {} bits, {} messages | audit: {} events, {} discrepancies",
        report.total_bits, report.total_messages, report.audit_events, report.audit_discrepancies
    );
    println!("slot alg     phi    epoch admit due  exact maxerr tol lane_bits");
    for q in &report.queries {
        let lane_bits: u64 = q.charges.bits().iter().sum();
        println!(
            "{:>4} {:<7} {:<6} {:>5} {:>5} {:>4} {:>5} {:>6} {:>3} {:>9}",
            q.slot,
            q.query.algorithm.name(),
            q.query.phi_milli as f64 / 1000.0,
            q.query.epoch,
            q.admitted,
            q.answers.len(),
            q.exact_rounds,
            q.max_rank_error,
            q.rank_tolerance,
            lane_bits,
        );
    }
    if audit_table {
        println!(
            "lane breakdown (bits by phase: init/validation/refinement/recovery/other/rebuild):"
        );
        for (lane, b) in report.lanes.iter().enumerate() {
            let bits = b.bits();
            println!(
                "  lane {lane}: {} {} {} {} {} {}",
                bits[0], bits[1], bits[2], bits[3], bits[4], bits[5]
            );
        }
    }
    if let Some(m) = &monitor {
        if status_every > 0 {
            for frame in m.recorder().frames() {
                if (frame.round + 1) % status_every == 0 || frame.round + 1 == report.rounds {
                    let answered = frame.slots.iter().filter(|s| s.answered).count();
                    println!(
                        "status round {:>3}: {}/{} slots answered, cache {}h/{}m, {} health event(s)",
                        frame.round,
                        answered,
                        frame.slots.len(),
                        frame.plan_hits,
                        frame.plan_misses,
                        frame.events.len(),
                    );
                }
            }
        }
        println!(
            "monitor: cache hit rate {:.1}%, {} health event(s)",
            m.cache_hit_rate_milli() as f64 / 10.0,
            m.events().len(),
        );
        print!("{}", m.status_table());
        for e in m.events() {
            let slot = e.slot.map_or_else(|| "-".into(), |s| s.to_string());
            println!(
                "health: round={} slot={} kind={}",
                e.round,
                slot,
                e.kind.name()
            );
        }
        if let Some(path) = &health_json {
            if let Err(e) = std::fs::write(path, m.health_jsonl()) {
                eprintln!("error: --health-json {path}: {e}");
                std::process::exit(2);
            }
            eprintln!("wrote flight-recorder dump to {path}");
        }
        if let Some(path) = &metrics_out {
            let mut dump = wsn_net::obs::PromDump::new();
            m.prom(&mut dump);
            if let Err(e) = std::fs::write(path, dump.finish()) {
                eprintln!("error: --metrics-out {path}: {e}");
                std::process::exit(2);
            }
            eprintln!("wrote monitor metrics to {path}");
        }
    }
    if let Some(path) = json {
        let mut out = String::from("{\"queries\":[");
        for (i, q) in report.queries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let lane_bits: u64 = q.charges.bits().iter().sum();
            out.push_str(&format!(
                "{{\"slot\":{},\"algorithm\":\"{}\",\"phi_milli\":{},\"epoch\":{},\
                 \"admitted\":{},\"answered\":{},\"exact\":{},\"max_rank_error\":{},\
                 \"rank_tolerance\":{},\"lane_bits\":{}}}",
                q.slot,
                q.query.algorithm.name(),
                q.query.phi_milli,
                q.query.epoch,
                q.admitted,
                q.answers.len(),
                q.exact_rounds,
                q.max_rank_error,
                q.rank_tolerance,
                lane_bits,
            ));
        }
        out.push_str(&format!(
            "],\"rounds\":{},\"total_bits\":{},\"total_messages\":{},\"executions\":{},\
             \"served\":{},\"plan_hits\":{},\"plan_misses\":{},\"audit_events\":{},\
             \"audit_discrepancies\":{}}}\n",
            report.rounds,
            report.total_bits,
            report.total_messages,
            report.executions,
            report.served,
            report.plan_hits,
            report.plan_misses,
            report.audit_events,
            report.audit_discrepancies,
        ));
        if let Err(e) = std::fs::write(&path, out) {
            eprintln!("error: --json {path}: {e}");
            std::process::exit(2);
        }
    }
    let unhealthy = monitor.as_ref().is_some_and(|m| m.is_unhealthy());
    if unhealthy {
        eprintln!("serve: UNHEALTHY — a watchdog fired (see the health lines above)");
    }
    std::process::exit(if report.audit_discrepancies == 0 && !unhealthy {
        0
    } else {
        1
    });
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("diff") {
        run_diff(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("bench-diff") {
        run_bench_diff(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("serve") {
        run_serve(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("fuzz") {
        run_fuzz(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("scale") {
        run_scale(&argv[1..]);
    }
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            print_usage();
            std::process::exit(2);
        }
    };
    let cfg = match build_config(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    if args.csv.is_some() || args.events.is_some() || args.capture.is_some() {
        if let Err(e) = traced_run(&args, &cfg) {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
        return;
    }

    let kinds: Vec<AlgorithmKind> = if args.all {
        vec![
            AlgorithmKind::Tag,
            AlgorithmKind::Pos,
            AlgorithmKind::LcllH,
            AlgorithmKind::LcllS,
            AlgorithmKind::LcllR,
            AlgorithmKind::Hbc,
            AlgorithmKind::HbcNb,
            AlgorithmKind::Iq,
            AlgorithmKind::Adaptive,
            AlgorithmKind::Gk,
            AlgorithmKind::QDigest { eps_milli: 100 },
            AlgorithmKind::GkSink {
                eps_milli: 100,
                capacity: 0,
            },
        ]
    } else {
        vec![args.algorithm.expect("validated")]
    };

    let reliability_on = cfg.reliability.is_enabled() || cfg.node_failure.is_some();
    print!(
        "{:>9}  {:>15}  {:>14}  {:>11}  {:>12}  {:>9}  {:>10}",
        "algorithm",
        "energy[mJ/rnd]",
        "lifetime[rnd]",
        "msgs/round",
        "values/round",
        "exact[%]",
        "rank error"
    );
    if reliability_on {
        print!(
            "  {:>12}  {:>10}  {:>7}",
            "retx/round", "deliv[%]", "failed"
        );
    }
    println!();
    let mut collected = Vec::new();
    let mut discrepancies = 0u64;
    for kind in kinds {
        let m = run_experiment_threads(&cfg, kind, args.threads);
        print!(
            "{:>9}  {:>15.4}  {:>14.1}  {:>11.1}  {:>12.1}  {:>9.1}  {:>10.2}",
            kind.name(),
            m.max_node_energy_per_round * 1e3,
            m.lifetime_rounds,
            m.messages_per_round,
            m.values_per_round,
            m.exactness * 100.0,
            m.mean_rank_error
        );
        if reliability_on {
            print!(
                "  {:>12.2}  {:>10.2}  {:>7.1}",
                m.retransmissions_per_round,
                m.delivery_rate * 100.0,
                m.failed_nodes
            );
        }
        println!();
        discrepancies += m.audit_discrepancies;
        collected.push((kind, m));
    }
    if args.audit {
        for (kind, m) in &collected {
            println!();
            print!(
                "{}",
                wsn_sim::report::render_phase_breakdown(kind.name(), m)
            );
        }
    }
    if let Some(path) = &args.json {
        let mut root = Json::Obj(vec![]);
        for (kind, m) in &collected {
            root.set(kind.name(), metrics_json(m));
        }
        if let Err(e) = std::fs::write(path, root.pretty()) {
            eprintln!("error: writing {path}: {e}");
            std::process::exit(1);
        }
        eprintln!(
            "wrote metrics for {} algorithm(s) to {path}",
            collected.len()
        );
    }
    if let Some(path) = &args.metrics_out {
        let mut dump = wsn_net::obs::PromDump::new();
        for (kind, m) in &collected {
            let labels = format!(r#"protocol="{}""#, kind.name());
            dump.gauge(
                "wsn_max_node_energy_joules_per_round",
                &labels,
                "mean per-round energy of the hotspot sensor",
                m.max_node_energy_per_round,
            );
            dump.gauge(
                "wsn_lifetime_rounds",
                &labels,
                "network lifetime in rounds",
                m.lifetime_rounds,
            );
            dump.gauge(
                "wsn_messages_per_round",
                &labels,
                "messages transmitted per round",
                m.messages_per_round,
            );
            dump.gauge(
                "wsn_bits_per_round",
                &labels,
                "bits on air per round",
                m.bits_per_round,
            );
            dump.gauge(
                "wsn_exactness_ratio",
                &labels,
                "fraction of rounds answered exactly",
                m.exactness,
            );
            dump.gauge(
                "wsn_delivery_ratio",
                &labels,
                "fraction of payload hops delivered",
                m.delivery_rate,
            );
            dump.counter(
                "wsn_audit_events_total",
                &labels,
                "transmissions replayed by the energy auditor",
                m.audit_events,
            );
            prom_histograms(&mut dump, &labels, &m.hists);
        }
        if let Err(e) = std::fs::write(path, dump.finish()) {
            eprintln!("error: writing {path}: {e}");
            std::process::exit(1);
        }
        eprintln!(
            "wrote Prometheus metrics for {} algorithm(s) to {path}",
            collected.len()
        );
    }
    if args.audit {
        if discrepancies > 0 {
            eprintln!("energy audit FAILED: {discrepancies} ledger discrepancies");
            std::process::exit(1);
        }
        eprintln!("energy audit passed: every ledger charge reconciled bit-exactly");
    }
}
