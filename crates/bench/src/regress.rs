//! Bench regression gate: diff a fresh `BENCH_results.json` against a
//! checked-in baseline and fail when any cell's median slowed down past a
//! tolerance band.
//!
//! Both files share the [`crate::harness`] layout — a top-level object of
//! bench *groups*, each an object of *cells* carrying `median_ns` (plus
//! `min_ns`/`mean_ns`/`iters`, which the gate ignores: medians are the
//! stable statistic on shared CI hardware). Keys starting with `_` (the
//! `_meta` block) are skipped. Cells present on only one side are
//! reported but are not failures — benches come and go across PRs; only a
//! *slowdown of a shared cell* gates.
//!
//! The comparison is `current > baseline * (1 + tolerance)`. The default
//! band is deliberately wide (50%) because the baseline may have been
//! recorded on different hardware; `scripts/bench_regress.sh` and the
//! `simulate bench-diff` subcommand both take `--tolerance` to tighten it
//! on a pinned runner.

use crate::json::Json;

/// Default tolerance band: a cell may be up to 50% slower than baseline.
pub const DEFAULT_TOLERANCE: f64 = 0.5;

/// One compared bench cell (`group/cell`).
#[derive(Debug, Clone, PartialEq)]
pub struct CellDiff {
    /// `group/cell` path of the bench.
    pub name: String,
    /// Baseline median, ns.
    pub baseline_ns: f64,
    /// Current median, ns.
    pub current_ns: f64,
    /// `current / baseline` speed ratio (> 1 means slower).
    pub ratio: f64,
    /// True when the cell slowed past the tolerance band.
    pub regressed: bool,
}

/// The full comparison: shared cells plus the cells unique to one side.
#[derive(Debug, Clone, Default)]
pub struct Comparison {
    /// Every cell present in both files, in baseline order.
    pub cells: Vec<CellDiff>,
    /// Cells only in the baseline (removed benches).
    pub only_baseline: Vec<String>,
    /// Cells only in the current results (new benches, not gated).
    pub only_current: Vec<String>,
}

impl Comparison {
    /// True when no shared cell regressed.
    pub fn is_clean(&self) -> bool {
        self.cells.iter().all(|c| !c.regressed)
    }

    /// The regressed subset.
    pub fn regressions(&self) -> impl Iterator<Item = &CellDiff> {
        self.cells.iter().filter(|c| c.regressed)
    }

    /// Plain-text report: one line per shared cell, slowest ratio first
    /// within each verdict, then the one-sided cells, then the verdict.
    pub fn render(&self, tolerance: f64) -> String {
        let mut out = String::new();
        let mut sorted: Vec<&CellDiff> = self.cells.iter().collect();
        sorted.sort_by(|a, b| b.ratio.total_cmp(&a.ratio));
        for c in &sorted {
            out.push_str(&format!(
                "{} {:<44} {:>12.0} -> {:>12.0} ns  ({:+.1}%)\n",
                if c.regressed {
                    "REGRESSED"
                } else {
                    "ok       "
                },
                c.name,
                c.baseline_ns,
                c.current_ns,
                (c.ratio - 1.0) * 100.0,
            ));
        }
        for name in &self.only_baseline {
            out.push_str(&format!("removed   {name} (baseline only, not gated)\n"));
        }
        for name in &self.only_current {
            out.push_str(&format!("new       {name} (current only, not gated)\n"));
        }
        let regressed = self.regressions().count();
        out.push_str(&format!(
            "bench-diff: {} shared cell(s), {} regressed (tolerance {:.0}%)\n",
            self.cells.len(),
            regressed,
            tolerance * 100.0,
        ));
        out
    }
}

/// Walks one results object into `(group/cell, median_ns)` pairs,
/// skipping `_`-prefixed groups and cells without a numeric `median_ns`.
fn medians(root: &Json) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let Json::Obj(groups) = root else {
        return out;
    };
    for (group, cells) in groups {
        if group.starts_with('_') {
            continue;
        }
        let Json::Obj(cells) = cells else { continue };
        for (cell, fields) in cells {
            if let Some(Json::Num(median)) = fields.get("median_ns") {
                out.push((format!("{group}/{cell}"), *median));
            }
        }
    }
    out
}

/// Compares two parsed results files under a tolerance band.
pub fn compare(baseline: &Json, current: &Json, tolerance: f64) -> Comparison {
    let base = medians(baseline);
    let cur = medians(current);
    let mut cmp = Comparison::default();
    for (name, baseline_ns) in &base {
        match cur.iter().find(|(n, _)| n == name) {
            Some((_, current_ns)) => {
                let ratio = if *baseline_ns > 0.0 {
                    current_ns / baseline_ns
                } else {
                    1.0
                };
                cmp.cells.push(CellDiff {
                    name: name.clone(),
                    baseline_ns: *baseline_ns,
                    current_ns: *current_ns,
                    ratio,
                    regressed: *current_ns > baseline_ns * (1.0 + tolerance),
                });
            }
            None => cmp.only_baseline.push(name.clone()),
        }
    }
    for (name, _) in &cur {
        if !base.iter().any(|(n, _)| n == name) {
            cmp.only_current.push(name.clone());
        }
    }
    cmp
}

#[cfg(test)]
mod tests {
    use super::*;

    fn results(cells: &[(&str, f64)]) -> Json {
        let group = Json::Obj(
            cells
                .iter()
                .map(|(name, median)| {
                    (
                        name.to_string(),
                        Json::Obj(vec![
                            ("median_ns".into(), Json::Num(*median)),
                            ("iters".into(), Json::int(10)),
                        ]),
                    )
                })
                .collect(),
        );
        Json::Obj(vec![
            (
                "_meta".into(),
                Json::Obj(vec![("cores".into(), Json::int(1))]),
            ),
            ("grp".into(), group),
        ])
    }

    #[test]
    fn a_slowdown_past_the_band_regresses() {
        let base = results(&[("a", 100.0), ("b", 100.0)]);
        let cur = results(&[("a", 149.0), ("b", 151.0)]);
        let cmp = compare(&base, &cur, 0.5);
        assert!(!cmp.is_clean());
        let names: Vec<&str> = cmp.regressions().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["grp/b"]);
        assert!(cmp.render(0.5).contains("REGRESSED grp/b"));
    }

    #[test]
    fn one_sided_cells_report_but_do_not_gate() {
        let base = results(&[("gone", 100.0), ("kept", 100.0)]);
        let cur = results(&[("kept", 90.0), ("fresh", 1e9)]);
        let cmp = compare(&base, &cur, 0.1);
        assert!(cmp.is_clean());
        assert_eq!(cmp.only_baseline, ["grp/gone"]);
        assert_eq!(cmp.only_current, ["grp/fresh"]);
        assert_eq!(cmp.cells.len(), 1);
    }

    #[test]
    fn meta_blocks_and_median_free_cells_are_skipped() {
        let root = Json::Obj(vec![
            (
                "_meta".into(),
                Json::Obj(vec![(
                    "median_ns".into(),
                    Json::Obj(vec![("median_ns".into(), Json::Num(1.0))]),
                )]),
            ),
            (
                "grp".into(),
                Json::Obj(vec![("noisy".into(), Json::Obj(vec![]))]),
            ),
        ]);
        assert!(medians(&root).is_empty());
    }

    #[test]
    fn a_faster_run_is_clean_and_speedup_prints_negative() {
        let base = results(&[("a", 200.0)]);
        let cur = results(&[("a", 100.0)]);
        let cmp = compare(&base, &cur, 0.0);
        assert!(cmp.is_clean());
        assert!(cmp.render(0.0).contains("(-50.0%)"));
    }
}
