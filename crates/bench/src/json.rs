//! Minimal JSON reading/writing — just enough for `BENCH_results.json`.
//!
//! Zero dependencies by design (the workspace builds fully offline, see
//! README "Offline builds"). Supports the complete JSON value grammar;
//! numbers are kept as `f64` (benchmark nanosecond counts fit well inside
//! the 2^53 integer range). Object key order is preserved so result files
//! diff cleanly between runs.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (kept as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience: an integer number.
    pub fn int(v: u64) -> Json {
        Json::Num(v as f64)
    }

    /// Looks a key up in an object (`None` for non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Inserts or replaces `key` in an object. Panics on non-objects.
    pub fn set(&mut self, key: &str, value: Json) {
        let Json::Obj(entries) = self else {
            panic!("Json::set on a non-object");
        };
        match entries.iter_mut().find(|(k, _)| k == key) {
            Some((_, v)) => *v = value,
            None => entries.push((key.to_string(), value)),
        }
    }

    /// Serializes with 2-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                newline_indent(out, depth);
                out.push(']');
            }
            Json::Obj(entries) if entries.is_empty() => out.push_str("{}"),
            Json::Obj(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, depth + 1);
                    write_str(out, k);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                }
                newline_indent(out, depth);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document. Returns `Err` with a byte offset and
    /// message on malformed input.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

fn newline_indent(out: &mut String, depth: usize) {
    out.push('\n');
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_num(out: &mut String, n: f64) {
    if n.fract() == 0.0 && n.abs() < 9e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}", pos = *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => expect(bytes, pos, "null").map(|_| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|_| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|_| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(entries));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                let value = parse_value(bytes, pos)?;
                entries.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(entries));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos).map(Json::Num),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        // Surrogate pairs are not needed for our files;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance one UTF-8 scalar.
                let s = &bytes[*pos..];
                let text = std::str::from_utf8(s).map_err(|e| e.to_string())?;
                let c = text.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<f64, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .ok_or_else(|| format!("bad number at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_a_results_document() {
        let mut root = Json::Obj(vec![]);
        let mut group = Json::Obj(vec![]);
        group.set(
            "IQ/100",
            Json::Obj(vec![
                ("median_ns".into(), Json::int(123456)),
                ("mean_ns".into(), Json::Num(123999.5)),
            ]),
        );
        root.set("fig6_nodes", group);
        let text = root.pretty();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, root);
        assert_eq!(
            back.get("fig6_nodes")
                .and_then(|g| g.get("IQ/100"))
                .and_then(|e| e.get("median_ns")),
            Some(&Json::int(123456))
        );
    }

    #[test]
    fn parses_all_value_kinds() {
        let text = r#"{"a": [1, -2.5, 1e3], "b": null, "c": true, "d": "x\nyA"}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(
            v.get("a"),
            Some(&Json::Arr(vec![
                Json::Num(1.0),
                Json::Num(-2.5),
                Json::Num(1000.0)
            ]))
        );
        assert_eq!(v.get("b"), Some(&Json::Null));
        assert_eq!(v.get("c"), Some(&Json::Bool(true)));
        assert_eq!(v.get("d"), Some(&Json::Str("x\nyA".into())));
    }

    #[test]
    fn set_replaces_in_place_preserving_order() {
        let mut obj = Json::Obj(vec![
            ("first".into(), Json::int(1)),
            ("second".into(), Json::int(2)),
        ]);
        obj.set("first", Json::int(9));
        let Json::Obj(entries) = &obj else {
            unreachable!()
        };
        assert_eq!(entries[0], ("first".into(), Json::int(9)));
        assert_eq!(entries.len(), 2);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("07x").is_err());
        assert!(Json::parse("{}extra").is_err());
    }
}
