//! Constant-density scale workload, shared by the `scale` bench family
//! and the `simulate scale` CI smoke gate.
//!
//! The figure benches all run inside the paper's fixed 200 m × 200 m
//! arena, where node count changes *density*. Here the arena grows with
//! `n` so average degree stays ≈ 13 (the Table 2 operating point) and
//! the per-round work scales linearly — the regime the struct-of-arrays
//! engine is built for.

use cqp_core::hbc::HbcConfig;
use cqp_core::{ContinuousQuantile, Hbc, QueryConfig};
use wsn_data::Rng;
use wsn_net::{MessageSizes, Network, Point, RadioModel, RoutingTree, Topology, Value};

/// Radio range ρ of Table 2.
pub const RHO: f64 = 35.0;

/// Target average degree (the Table 2 default density: 1000 nodes on
/// 200 m × 200 m with ρ = 35 gives π·ρ²·(n+1)/A ≈ 9.6; we aim slightly
/// denser so even a 100 k-node draw stays essentially connected).
pub const DEG: f64 = 13.0;

/// Builds an `n`-sensor constant-density world. Uses the orphan-tolerant
/// spanning tree: at this density a random geometric graph is connected
/// up to a handful of stragglers, and a perf workload has no reason to
/// re-draw a 100 k-node placement over them.
pub fn build_world(n: usize, seed: u64) -> Network {
    let side = (((n + 1) as f64) * std::f64::consts::PI * RHO * RHO / DEG).sqrt();
    let mut rng = Rng::seed_from_u64(seed);
    let raw = wsn_data::placement::uniform(n, side, side, &mut rng);
    let positions: Vec<Point> = raw.iter().map(|&(x, y)| Point::new(x, y)).collect();
    let topo = Topology::build(positions, RHO);
    let alive = vec![true; n + 1];
    let (tree, orphans) = RoutingTree::spanning_alive(&topo, &alive);
    assert!(
        orphans.len() * 100 < n,
        "placement too sparse: {} of {} nodes orphaned",
        orphans.len(),
        n
    );
    Network::new(topo, tree, RadioModel::default(), MessageSizes::default())
}

/// Drifting integer measurements: cheap, deterministic, and changing
/// enough every round that HBC's bound maintenance stays busy.
pub fn sample(values: &mut [Value], t: u32) {
    for (i, v) in values.iter_mut().enumerate() {
        *v = (100 + (i as u64 * 11) % 80 + (t as u64 * 17) % 120) as Value;
    }
}

/// Runs `rounds` HBC rounds on a fresh protocol instance over `net` and
/// returns the last reported median.
pub fn hbc_rounds(net: &mut Network, n: usize, rounds: u32) -> Value {
    let query = QueryConfig::median(n, 0, 1023);
    let mut alg = Hbc::new(query, HbcConfig::default(), &MessageSizes::default());
    let mut values = vec![0 as Value; n];
    let mut last = 0;
    for t in 0..rounds {
        sample(&mut values, t);
        last = alg.round(net, &values);
    }
    last
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_world_runs_and_answers() {
        let mut net = build_world(200, 7);
        assert_eq!(net.len(), 201);
        let answer = hbc_rounds(&mut net, 200, 3);
        // Samples live in [100, 299]; the median must too.
        assert!((100..300).contains(&answer), "median {answer} out of range");
    }

    #[test]
    fn sample_is_deterministic_and_drifts() {
        let mut a = vec![0; 32];
        let mut b = vec![0; 32];
        sample(&mut a, 5);
        sample(&mut b, 5);
        assert_eq!(a, b);
        sample(&mut b, 6);
        assert_ne!(a, b, "consecutive rounds must differ");
    }
}
