//! Zero-dependency benchmark harness (replaces the former Criterion
//! benches so `cargo bench` works fully offline).
//!
//! Each bench target builds a [`Harness`], registers closures with
//! [`Harness::bench`], and calls [`Harness::finish`]: every benchmark runs
//! `warmup` untimed iterations followed by `iters` timed ones, reports
//! median / min / mean wall-clock time, and the whole group is merged into
//! `BENCH_results.json` (one top-level key per bench target, so targets
//! can be re-run individually without clobbering each other's numbers).
//!
//! CLI (after `cargo bench --bench <target> --`):
//!
//! ```text
//! [FILTER]        only run benchmarks whose name contains FILTER
//! --iters N       timed iterations per benchmark        (default 10)
//! --warmup N      untimed warm-up iterations            (default 2)
//! --out PATH      results file                          (default BENCH_results.json)
//! ```
//!
//! Unknown flags (e.g. the `--bench` cargo appends) are ignored.

use std::hint::black_box;
use std::time::Instant;

use crate::json::Json;

/// Timing summary of one benchmark.
#[derive(Debug, Clone, Copy)]
pub struct Stats {
    /// Timed iterations.
    pub iters: u32,
    /// Fastest iteration (ns).
    pub min_ns: u64,
    /// Median iteration (ns).
    pub median_ns: u64,
    /// Mean iteration (ns).
    pub mean_ns: u64,
}

/// A benchmark group: runs closures, prints a table, persists JSON.
#[derive(Debug)]
pub struct Harness {
    group: String,
    warmup: u32,
    iters: u32,
    filter: Option<String>,
    out_path: String,
    results: Vec<(String, Stats)>,
    extra: Vec<(String, f64)>,
}

impl Harness {
    /// Builds a harness for `group` from the process arguments.
    pub fn from_args(group: &str) -> Harness {
        let mut h = Harness {
            group: group.to_string(),
            warmup: 2,
            iters: 10,
            filter: None,
            out_path: default_out_path(),
            results: Vec::new(),
            extra: Vec::new(),
        };
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < argv.len() {
            match argv[i].as_str() {
                "--iters" => {
                    i += 1;
                    if let Some(n) = argv.get(i).and_then(|v| v.parse().ok()) {
                        h.iters = n;
                    }
                }
                "--warmup" => {
                    i += 1;
                    if let Some(n) = argv.get(i).and_then(|v| v.parse().ok()) {
                        h.warmup = n;
                    }
                }
                "--out" => {
                    i += 1;
                    if let Some(p) = argv.get(i) {
                        h.out_path = p.clone();
                    }
                }
                flag if flag.starts_with('-') => {} // cargo's --bench etc.
                filter => h.filter = Some(filter.to_string()),
            }
            i += 1;
        }
        h.iters = h.iters.max(1);
        eprintln!(
            "[{group}] warmup={w} iters={n}{f}",
            w = h.warmup,
            n = h.iters,
            f = h
                .filter
                .as_deref()
                .map(|f| format!(" filter={f:?}"))
                .unwrap_or_default()
        );
        h
    }

    /// Times `f` (after warm-up) and records the result under `name`.
    /// The return value is passed through [`black_box`] so the work cannot
    /// be optimized away. Returns the stats (`None` when filtered out) so
    /// callers can derive quantities like speedup ratios.
    pub fn bench<T>(&mut self, name: &str, mut f: impl FnMut() -> T) -> Option<Stats> {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return None;
            }
        }
        for _ in 0..self.warmup {
            black_box(f());
        }
        let mut samples: Vec<u64> = Vec::with_capacity(self.iters as usize);
        for _ in 0..self.iters {
            let start = Instant::now();
            black_box(f());
            samples.push(start.elapsed().as_nanos() as u64);
        }
        samples.sort_unstable();
        let stats = Stats {
            iters: self.iters,
            min_ns: samples[0],
            median_ns: samples[samples.len() / 2],
            mean_ns: samples.iter().sum::<u64>() / samples.len() as u64,
        };
        println!(
            "{name:<44} median {:>10}  min {:>10}  mean {:>10}",
            fmt_ns(stats.median_ns),
            fmt_ns(stats.min_ns),
            fmt_ns(stats.mean_ns),
        );
        self.results.push((name.to_string(), stats));
        Some(stats)
    }

    /// Records a pre-computed named scalar (e.g. a speedup ratio or a
    /// thread count) that should land in the JSON next to the timings.
    pub fn note(&mut self, name: &str, value: f64) {
        println!("{name:<44} {value:.3}");
        self.extra.push((name.to_string(), value));
    }

    /// Prints the footer and merges this group into the results file.
    pub fn finish(self) {
        if self.results.is_empty() && self.extra.is_empty() {
            eprintln!("[{}] nothing ran (filter too narrow?)", self.group);
            return;
        }
        let mut group = Json::Obj(vec![]);
        for (name, s) in &self.results {
            group.set(
                name,
                Json::Obj(vec![
                    ("median_ns".into(), Json::int(s.median_ns)),
                    ("min_ns".into(), Json::int(s.min_ns)),
                    ("mean_ns".into(), Json::int(s.mean_ns)),
                    ("iters".into(), Json::int(s.iters as u64)),
                ]),
            );
        }
        for (name, value) in &self.extra {
            group.set(name, Json::Num(*value));
        }
        let mut root = load_results(&self.out_path);
        root.set(
            "_meta",
            Json::Obj(vec![
                ("cores".into(), Json::int(detect_cores())),
                (
                    "wsn_threads".into(),
                    Json::int(resolve_threads(
                        std::env::var("WSN_THREADS").ok().as_deref(),
                        detect_cores(),
                    )),
                ),
            ]),
        );
        root.set(&self.group, group);
        match std::fs::write(&self.out_path, root.pretty()) {
            Ok(()) => eprintln!("[{}] results merged into {}", self.group, self.out_path),
            Err(e) => eprintln!("[{}] could not write {}: {e}", self.group, self.out_path),
        }
    }
}

/// Execution contexts actually available to this process, *measured*, never
/// assumed: results files must say what hardware produced them.
/// [`std::thread::available_parallelism`] first (it respects cgroup quotas
/// and CPU affinity masks — what a containerized CI box really grants);
/// falling back to counting `processor` entries in `/proc/cpuinfo`, then 1.
pub fn detect_cores() -> u64 {
    if let Ok(n) = std::thread::available_parallelism() {
        return n.get() as u64;
    }
    if let Ok(text) = std::fs::read_to_string("/proc/cpuinfo") {
        let n = text.lines().filter(|l| l.starts_with("processor")).count() as u64;
        if n > 0 {
            return n;
        }
    }
    1
}

/// Worker threads the simulation layers will use: an explicit
/// `WSN_THREADS` override wins (mirroring `wsn_sim::parallel`), otherwise
/// the detected core count. Recorded in `_meta` so a results file states
/// the parallelism it was measured under.
fn resolve_threads(env_override: Option<&str>, cores: u64) -> u64 {
    env_override
        .and_then(|raw| raw.trim().parse::<u64>().ok())
        .map(|n| n.max(1))
        .unwrap_or(cores)
}

/// Default results path: `BENCH_results.json` at the workspace root.
/// Cargo runs bench binaries with the *package* directory as CWD, so walk
/// up to the directory holding `Cargo.lock`; fall back to the CWD itself.
fn default_out_path() -> String {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| ".".into());
    loop {
        if dir.join("Cargo.lock").exists() {
            return dir
                .join("BENCH_results.json")
                .to_string_lossy()
                .into_owned();
        }
        if !dir.pop() {
            return "BENCH_results.json".to_string();
        }
    }
}

/// Loads an existing results file, or starts a fresh document.
pub fn load_results(path: &str) -> Json {
    std::fs::read_to_string(path)
        .ok()
        .and_then(|text| Json::parse(&text).ok())
        .filter(|v| matches!(v, Json::Obj(_)))
        .unwrap_or(Json::Obj(vec![]))
}

/// Renders nanoseconds with an adaptive unit.
pub fn fmt_ns(ns: u64) -> String {
    let ns = ns as f64;
    if ns < 1e3 {
        format!("{ns:.0} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_collects_ordered_stats() {
        let mut h = Harness {
            group: "t".into(),
            warmup: 1,
            iters: 5,
            filter: None,
            out_path: String::new(),
            results: Vec::new(),
            extra: Vec::new(),
        };
        let mut calls = 0u32;
        h.bench("busy", || {
            calls += 1;
            std::hint::black_box((0..1000).sum::<u64>())
        });
        assert_eq!(calls, 6, "1 warmup + 5 timed");
        let (_, s) = &h.results[0];
        assert!(s.min_ns <= s.median_ns);
        assert!(s.iters == 5);
    }

    #[test]
    fn filter_skips_non_matching_names() {
        let mut h = Harness {
            group: "t".into(),
            warmup: 0,
            iters: 1,
            filter: Some("keep".into()),
            out_path: String::new(),
            results: Vec::new(),
            extra: Vec::new(),
        };
        h.bench("keep/this", || 1);
        h.bench("drop/this", || 1);
        assert_eq!(h.results.len(), 1);
        assert_eq!(h.results[0].0, "keep/this");
    }

    #[test]
    fn detected_cores_are_at_least_one() {
        assert!(detect_cores() >= 1);
    }

    #[test]
    fn thread_resolution_prefers_explicit_override() {
        assert_eq!(resolve_threads(Some("8"), 2), 8);
        assert_eq!(resolve_threads(Some(" 4 "), 2), 4);
        assert_eq!(resolve_threads(Some("0"), 2), 1, "floor at one worker");
        assert_eq!(resolve_threads(Some("not a number"), 3), 3);
        assert_eq!(resolve_threads(None, 5), 5);
    }

    #[test]
    fn fmt_ns_picks_sane_units() {
        assert_eq!(fmt_ns(999), "999 ns");
        assert_eq!(fmt_ns(1_500), "1.50 µs");
        assert_eq!(fmt_ns(2_000_000), "2.00 ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.00 s");
    }
}
