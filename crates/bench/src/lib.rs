//! # wsn-bench — benchmark harness
//!
//! Two entry points regenerate the paper's evaluation:
//!
//! * the `experiments` binary (`cargo run -p wsn-bench --release --bin
//!   experiments`) prints, for every figure of §5 plus the two future-work
//!   extensions, the same rows/series the paper plots;
//! * the zero-dependency [`harness`] benches (`cargo bench`) time
//!   representative simulation cells and the protocol-level hot paths and
//!   merge their numbers into `BENCH_results.json`.
//!
//! This library crate holds the bench harness and re-exports the pieces
//! the entry points share.

pub mod harness;
pub mod json;
pub mod regress;
pub mod scale;

pub use wsn_sim::experiments;
pub use wsn_sim::report;

/// Expected qualitative shapes from the paper, checked by the
/// `experiment_shapes` integration test and reported by the binary.
pub mod shapes {
    use wsn_sim::config::AlgorithmKind;
    use wsn_sim::experiments::SweepResults;

    /// Extracts the hotspot-energy series of `alg` across the sweep's
    /// cells (`None` where skipped).
    pub fn energy_series(results: &SweepResults, alg: AlgorithmKind) -> Vec<Option<f64>> {
        let idx = results
            .sweep
            .algorithms
            .iter()
            .position(|&a| a == alg)
            .expect("algorithm not part of sweep");
        results.results[idx]
            .iter()
            .map(|m| m.as_ref().map(|m| m.max_node_energy_per_round))
            .collect()
    }

    /// True iff the series is (weakly) increasing over its defined cells.
    pub fn non_decreasing(series: &[Option<f64>], tolerance: f64) -> bool {
        let vals: Vec<f64> = series.iter().flatten().copied().collect();
        vals.windows(2).all(|w| w[1] >= w[0] * (1.0 - tolerance))
    }
}
