//! Energy/accuracy frontier: the approximate sketch protocols (QD, GKS)
//! against the exact continuous battery (HBC, IQ) on one matched workload
//! — same |N|, same radio range ρ, same rounds, same data.
//!
//! The workload is fast-drifting (period-8, 50 %-noise sinusoid shifting
//! the whole population together), the regime where exact continuous
//! refinement spawns extra waves every round while the q-digest always
//! costs exactly one convergecast. Each protocol contributes one timing
//! sample plus five frontier scalars: network-wide joules per round (the
//! deployment's battery drain — the frontier's energy axis), hotspot
//! joules per round, bits on air per round, the worst observed rank
//! error, and the rank tolerance the protocol certified (the frontier's
//! error axis: 0 for the exact battery, `⌊ε·n⌋` for the sketches).

mod common;

use wsn_bench::harness::Harness;
use wsn_data::synthetic::SyntheticConfig;
use wsn_sim::config::{AlgorithmKind, DatasetSpec, SimulationConfig};
use wsn_sim::runner::run_once;

fn main() {
    let mut h = Harness::from_args("sketch_frontier");
    let cfg = SimulationConfig {
        sensor_count: 300,
        rounds: 40,
        runs: 1,
        ..SimulationConfig::default()
    }
    .with_dataset(DatasetSpec::Synthetic(SyntheticConfig {
        period: 8,
        noise_percent: 50.0,
        ..SyntheticConfig::default()
    }));

    for alg in [
        AlgorithmKind::Hbc,
        AlgorithmKind::Iq,
        AlgorithmKind::QDigest { eps_milli: 100 },
        AlgorithmKind::GkSink {
            eps_milli: 100,
            capacity: 0,
        },
    ] {
        let name = alg.name();
        h.bench(&format!("{name}/300n40r"), || run_once(&cfg, alg, 0));
        let m = run_once(&cfg, alg, 0);
        let net_joules: f64 = m.phase_joules.iter().sum::<f64>() / m.total_rounds as f64;
        h.note(&format!("{name}/net_joules_per_round"), net_joules);
        h.note(
            &format!("{name}/hotspot_joules_per_round"),
            m.max_node_energy_per_round,
        );
        h.note(&format!("{name}/bits_per_round"), m.bits_per_round);
        h.note(&format!("{name}/max_rank_error"), m.max_rank_error as f64);
        h.note(&format!("{name}/rank_tolerance"), m.rank_tolerance as f64);
    }
    h.finish();
}
