//! Microbenchmarks of the protocol hot paths: Lambert W, bucket
//! partitioning, payload pruning, convergecast machinery, noise sampling
//! and SOM training.

use cqp_core::buckets::BucketPartition;
use cqp_core::cost_model::{lambert_w0, optimal_buckets};
use cqp_core::payloads::ValueList;
use wsn_bench::harness::Harness;
use wsn_data::{NoiseField, Rng, SelfOrganizingMap};
use wsn_net::{MessageSizes, Point, RadioModel, RoutingTree, Topology};

fn main() {
    let mut h = Harness::from_args("micro");

    // Cost model.
    h.bench("lambert_w0", || lambert_w0(std::hint::black_box(6.62)));
    let sizes = MessageSizes::default();
    h.bench("optimal_buckets", || {
        optimal_buckets(&sizes, std::hint::black_box(1024))
    });

    // Bucket partitioning.
    let part = BucketPartition::new(0, 1023, 11);
    h.bench("bucket_index_of", || {
        part.index_of(std::hint::black_box(517))
    });

    // Payload pruning.
    let mut rng = Rng::seed_from_u64(7);
    let vals: Vec<i64> = (0..1000).map(|_| rng.range_i64(0, 10_000)).collect();
    h.bench("keep_smallest_1000_to_64", || {
        let mut l = ValueList { vals: vals.clone() };
        l.keep_smallest(64);
        l.vals.len()
    });
    h.bench("keep_largest_with_ties_1000_to_64", || {
        let mut l = ValueList { vals: vals.clone() };
        l.keep_largest_with_ties(64);
        l.vals.len()
    });

    // Convergecast machinery. Two variants: a cold network per wave (the
    // old measurement, dominated by construction) and a warm network whose
    // scratch buffers are reused across waves (the simulation hot path).
    let mut rng = Rng::seed_from_u64(3);
    let raw = wsn_data::placement::uniform(500, 200.0, 200.0, &mut rng);
    let positions: Vec<Point> = raw.iter().map(|&(x, y)| Point::new(x, y)).collect();
    let topo = Topology::build(positions, 35.0);
    let tree = RoutingTree::shortest_path_tree(&topo).unwrap();
    h.bench("convergecast_500_nodes_cold", || {
        let mut net = wsn_net::Network::new(
            topo.clone(),
            tree.clone(),
            RadioModel::default(),
            MessageSizes::default(),
        );
        let agg: Option<ValueList> = net.convergecast(|id| Some(ValueList::single(id.0 as i64)));
        agg.map(|a| a.vals.len())
    });
    let mut warm = wsn_net::Network::new(
        topo.clone(),
        tree.clone(),
        RadioModel::default(),
        MessageSizes::default(),
    );
    h.bench("convergecast_500_nodes_warm", || {
        let agg: Option<ValueList> = warm.convergecast(|id| Some(ValueList::single(id.0 as i64)));
        warm.end_round();
        agg.map(|a| a.vals.len())
    });
    let mut recv = wsn_net::NodeBits::new();
    h.bench("broadcast_500_nodes_warm", || {
        warm.broadcast_into(64, &mut recv);
        warm.end_round();
        recv.count_ones()
    });

    // Datasets.
    let mut rng = Rng::seed_from_u64(1);
    let field = NoiseField::new(6, &mut rng);
    h.bench("noise_field_sample", || {
        field.sample(std::hint::black_box(0.31), std::hint::black_box(0.77))
    });
    let mut rng = Rng::seed_from_u64(2);
    let features: Vec<f64> = (0..200).map(|_| rng.range_f64(0.0, 100.0)).collect();
    h.bench("som_train_200", || {
        let mut r = Rng::seed_from_u64(3);
        SelfOrganizingMap::train(8, &features, 3, &mut r).side()
    });

    h.finish();
}
