//! Microbenchmarks of the protocol hot paths: Lambert W, bucket
//! partitioning, payload pruning, convergecast machinery, noise sampling
//! and SOM training.

use cqp_core::buckets::BucketPartition;
use cqp_core::cost_model::{lambert_w0, optimal_buckets};
use cqp_core::payloads::ValueList;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wsn_data::{NoiseField, Rng, SelfOrganizingMap};
use wsn_net::{MessageSizes, Point, RadioModel, RoutingTree, Topology};

fn bench_cost_model(c: &mut Criterion) {
    c.bench_function("lambert_w0", |b| {
        b.iter(|| black_box(lambert_w0(black_box(6.62))))
    });
    let sizes = MessageSizes::default();
    c.bench_function("optimal_buckets", |b| {
        b.iter(|| black_box(optimal_buckets(&sizes, black_box(1024))))
    });
}

fn bench_buckets(c: &mut Criterion) {
    let part = BucketPartition::new(0, 1023, 11);
    c.bench_function("bucket_index_of", |b| {
        b.iter(|| black_box(part.index_of(black_box(517))))
    });
}

fn bench_pruning(c: &mut Criterion) {
    let mut rng = Rng::seed_from_u64(7);
    let vals: Vec<i64> = (0..1000).map(|_| rng.range_i64(0, 10_000)).collect();
    c.bench_function("keep_smallest_1000_to_64", |b| {
        b.iter(|| {
            let mut l = ValueList { vals: vals.clone() };
            l.keep_smallest(64);
            black_box(l.vals.len())
        })
    });
    c.bench_function("keep_largest_with_ties_1000_to_64", |b| {
        b.iter(|| {
            let mut l = ValueList { vals: vals.clone() };
            l.keep_largest_with_ties(64);
            black_box(l.vals.len())
        })
    });
}

fn bench_convergecast(c: &mut Criterion) {
    let mut rng = Rng::seed_from_u64(3);
    let raw = wsn_data::placement::uniform(500, 200.0, 200.0, &mut rng);
    let positions: Vec<Point> = raw.iter().map(|&(x, y)| Point::new(x, y)).collect();
    let topo = Topology::build(positions, 35.0);
    let tree = RoutingTree::shortest_path_tree(&topo).unwrap();
    c.bench_function("convergecast_500_nodes", |b| {
        b.iter(|| {
            let mut net = wsn_net::Network::new(
                topo.clone(),
                tree.clone(),
                RadioModel::default(),
                MessageSizes::default(),
            );
            let agg: Option<ValueList> =
                net.convergecast(|id| Some(ValueList::single(id.0 as i64)));
            black_box(agg.map(|a| a.vals.len()))
        })
    });
}

fn bench_data(c: &mut Criterion) {
    c.bench_function("noise_field_sample", |b| {
        let mut rng = Rng::seed_from_u64(1);
        let field = NoiseField::new(6, &mut rng);
        b.iter(|| black_box(field.sample(black_box(0.31), black_box(0.77))))
    });
    c.bench_function("som_train_200", |b| {
        let mut rng = Rng::seed_from_u64(2);
        let features: Vec<f64> = (0..200).map(|_| rng.range_f64(0.0, 100.0)).collect();
        b.iter(|| {
            let mut r = Rng::seed_from_u64(3);
            black_box(SelfOrganizingMap::train(8, &features, 3, &mut r).side())
        })
    });
}

criterion_group!(
    benches,
    bench_cost_model,
    bench_buckets,
    bench_pruning,
    bench_convergecast,
    bench_data
);
criterion_main!(benches);
