//! Figure 10 bench: pressure dataset, sweeping the sampling stride in the
//! optimistic and pessimistic range settings.

mod common;

use common::{bench_base, run_cell};
use wsn_bench::harness::Harness;
use wsn_data::pressure::{PressureConfig, RangeSetting};
use wsn_sim::config::{AlgorithmKind, DatasetSpec, SimulationConfig};

fn main() {
    let mut h = Harness::from_args("fig10_pressure");
    for &(range, tag) in &[
        (RangeSetting::Optimistic, "opt"),
        (RangeSetting::Pessimistic, "pess"),
    ] {
        for &skip in &[1u32, 8] {
            let base = bench_base();
            let cfg = SimulationConfig {
                dataset: DatasetSpec::Pressure(PressureConfig {
                    sensor_count: 150,
                    steps: base.rounds as usize * skip as usize + 1,
                    skip,
                    range,
                    ..PressureConfig::default()
                }),
                ..base
            };
            for alg in [
                AlgorithmKind::Iq,
                AlgorithmKind::LcllS,
                AlgorithmKind::LcllH,
            ] {
                h.bench(&format!("{}/{tag}/skip{skip}", alg.name()), || {
                    run_cell(&cfg, alg)
                });
            }
        }
    }
    h.finish();
}
