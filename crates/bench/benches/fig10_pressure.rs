//! Figure 10 bench: pressure dataset, sweeping the sampling stride in the
//! optimistic and pessimistic range settings.

mod common;

use common::{bench_base, run_cell};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use wsn_data::pressure::{PressureConfig, RangeSetting};
use wsn_sim::config::{AlgorithmKind, DatasetSpec, SimulationConfig};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_pressure");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &(range, tag) in &[
        (RangeSetting::Optimistic, "opt"),
        (RangeSetting::Pessimistic, "pess"),
    ] {
        for &skip in &[1u32, 8] {
            let base = bench_base();
            let cfg = SimulationConfig {
                dataset: DatasetSpec::Pressure(PressureConfig {
                    sensor_count: 150,
                    steps: base.rounds as usize * skip as usize + 1,
                    skip,
                    range,
                    ..PressureConfig::default()
                }),
                ..base
            };
            for alg in [AlgorithmKind::Iq, AlgorithmKind::LcllS, AlgorithmKind::LcllH] {
                group.bench_with_input(
                    BenchmarkId::new(alg.name(), format!("{tag}/skip{skip}")),
                    &cfg,
                    |b, cfg| b.iter(|| black_box(run_cell(cfg, alg))),
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
