//! Cost of the observability layer: per-protocol wall-clock of a full
//! simulation run with telemetry off (the default), with the span
//! recorder on, and with the audit log + packet capture on — the numbers
//! behind "disabled telemetry is free" in DESIGN.md.

mod common;

use common::bench_base;
use wsn_bench::harness::Harness;
use wsn_sim::config::{AlgorithmKind, SimulationConfig};
use wsn_sim::runner::run_once;

fn main() {
    let mut h = Harness::from_args("telemetry_overhead");
    let base = bench_base();
    for alg in [AlgorithmKind::Tag, AlgorithmKind::Hbc, AlgorithmKind::Iq] {
        let off = h.bench(&format!("{}/off", alg.name()), || {
            run_once(&base, alg, 0).max_node_energy_per_round
        });
        let spans_cfg = SimulationConfig {
            telemetry: true,
            ..base.clone()
        };
        let spans = h.bench(&format!("{}/spans", alg.name()), || {
            run_once(&spans_cfg, alg, 0).max_node_energy_per_round
        });
        let audit_cfg = SimulationConfig {
            audit: true,
            ..base.clone()
        };
        h.bench(&format!("{}/audit+capture", alg.name()), || {
            run_once(&audit_cfg, alg, 0).max_node_energy_per_round
        });
        if let (Some(off), Some(spans)) = (off, spans) {
            h.note(
                &format!("{}/span_overhead_ratio", alg.name()),
                spans.median_ns as f64 / off.median_ns.max(1) as f64,
            );
        }
    }
    h.finish();
}
