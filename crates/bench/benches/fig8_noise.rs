//! Figure 8 bench: simulation cost while sweeping measurement noise ψ.

mod common;

use common::{bench_base, run_cell};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use wsn_data::synthetic::SyntheticConfig;
use wsn_sim::config::{AlgorithmKind, DatasetSpec, SimulationConfig};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_noise");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &psi in &[0.0f64, 10.0, 50.0] {
        let cfg = SimulationConfig {
            dataset: DatasetSpec::Synthetic(SyntheticConfig {
                noise_percent: psi,
                ..SyntheticConfig::default()
            }),
            ..bench_base()
        };
        for alg in [AlgorithmKind::Hbc, AlgorithmKind::Iq, AlgorithmKind::LcllH] {
            group.bench_with_input(
                BenchmarkId::new(alg.name(), format!("{psi}")),
                &cfg,
                |b, cfg| b.iter(|| black_box(run_cell(cfg, alg))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
