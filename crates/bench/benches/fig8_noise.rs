//! Figure 8 bench: simulation cost while sweeping measurement noise ψ.

mod common;

use common::{bench_base, run_cell};
use wsn_bench::harness::Harness;
use wsn_data::synthetic::SyntheticConfig;
use wsn_sim::config::{AlgorithmKind, DatasetSpec, SimulationConfig};

fn main() {
    let mut h = Harness::from_args("fig8_noise");
    for &psi in &[0.0f64, 10.0, 50.0] {
        let cfg = SimulationConfig {
            dataset: DatasetSpec::Synthetic(SyntheticConfig {
                noise_percent: psi,
                ..SyntheticConfig::default()
            }),
            ..bench_base()
        };
        for alg in [AlgorithmKind::Hbc, AlgorithmKind::Iq, AlgorithmKind::LcllH] {
            h.bench(&format!("{}/{psi}", alg.name()), || run_cell(&cfg, alg));
        }
    }
    h.finish();
}
