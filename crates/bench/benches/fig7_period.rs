//! Figure 7 bench: simulation cost while sweeping the sinusoid period τ.

mod common;

use common::{bench_base, run_cell};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use wsn_data::synthetic::SyntheticConfig;
use wsn_sim::config::{AlgorithmKind, DatasetSpec, SimulationConfig};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_period");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &period in &[250u32, 32, 8] {
        let cfg = SimulationConfig {
            dataset: DatasetSpec::Synthetic(SyntheticConfig {
                period,
                ..SyntheticConfig::default()
            }),
            ..bench_base()
        };
        for alg in [AlgorithmKind::Pos, AlgorithmKind::Hbc, AlgorithmKind::Iq] {
            group.bench_with_input(
                BenchmarkId::new(alg.name(), period),
                &cfg,
                |b, cfg| b.iter(|| black_box(run_cell(cfg, alg))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
