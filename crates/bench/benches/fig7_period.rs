//! Figure 7 bench: simulation cost while sweeping the sinusoid period τ.

mod common;

use common::{bench_base, run_cell};
use wsn_bench::harness::Harness;
use wsn_data::synthetic::SyntheticConfig;
use wsn_sim::config::{AlgorithmKind, DatasetSpec, SimulationConfig};

fn main() {
    let mut h = Harness::from_args("fig7_period");
    for &period in &[250u32, 32, 8] {
        let cfg = SimulationConfig {
            dataset: DatasetSpec::Synthetic(SyntheticConfig {
                period,
                ..SyntheticConfig::default()
            }),
            ..bench_base()
        };
        for alg in [AlgorithmKind::Pos, AlgorithmKind::Hbc, AlgorithmKind::Iq] {
            h.bench(&format!("{}/{period}", alg.name()), || run_cell(&cfg, alg));
        }
    }
    h.finish();
}
