//! Figure 9 bench: simulation cost while sweeping the radio range ρ.

mod common;

use common::{bench_base, run_cell};
use wsn_bench::harness::Harness;
use wsn_sim::config::{AlgorithmKind, SimulationConfig};

fn main() {
    let mut h = Harness::from_args("fig9_radio");
    for &rho in &[25.0f64, 45.0, 85.0] {
        let cfg = SimulationConfig {
            radio_range: rho,
            sensor_count: 250,
            ..bench_base()
        };
        for alg in [AlgorithmKind::Pos, AlgorithmKind::Hbc, AlgorithmKind::Iq] {
            h.bench(&format!("{}/{rho}", alg.name()), || run_cell(&cfg, alg));
        }
    }
    h.finish();
}
