//! Figure 9 bench: simulation cost while sweeping the radio range ρ.

mod common;

use common::{bench_base, run_cell};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use wsn_sim::config::{AlgorithmKind, SimulationConfig};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_radio");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &rho in &[25.0f64, 45.0, 85.0] {
        let cfg = SimulationConfig {
            radio_range: rho,
            sensor_count: 250,
            ..bench_base()
        };
        for alg in [AlgorithmKind::Pos, AlgorithmKind::Hbc, AlgorithmKind::Iq] {
            group.bench_with_input(
                BenchmarkId::new(alg.name(), format!("{rho}")),
                &cfg,
                |b, cfg| b.iter(|| black_box(run_cell(cfg, alg))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
