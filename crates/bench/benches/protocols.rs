//! Computational microbenchmarks of the protocols themselves: wall-clock
//! cost of simulating one update round per algorithm (the simulator's own
//! speed, as opposed to the modeled radio energy).

mod common;

use common::bench_base;
use wsn_bench::harness::Harness;
use wsn_sim::config::AlgorithmKind;
use wsn_sim::runner::run_once;

fn main() {
    let mut h = Harness::from_args("protocol_round");
    let cfg = bench_base();
    for alg in [
        AlgorithmKind::Tag,
        AlgorithmKind::Pos,
        AlgorithmKind::LcllH,
        AlgorithmKind::LcllS,
        AlgorithmKind::LcllR,
        AlgorithmKind::Hbc,
        AlgorithmKind::HbcNb,
        AlgorithmKind::Iq,
        AlgorithmKind::Adaptive,
        AlgorithmKind::Gk,
        AlgorithmKind::QDigest { eps_milli: 100 },
        AlgorithmKind::GkSink {
            eps_milli: 100,
            capacity: 0,
        },
    ] {
        h.bench(&format!("{}/150n40r", alg.name()), || {
            run_once(&cfg, alg, 0).max_node_energy_per_round
        });
    }
    h.finish();
}
