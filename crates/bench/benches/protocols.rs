//! Computational microbenchmarks of the protocols themselves: wall-clock
//! cost of simulating one update round per algorithm (the simulator's own
//! speed, as opposed to the modeled radio energy).

mod common;

use common::bench_base;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use wsn_sim::config::AlgorithmKind;
use wsn_sim::runner::run_once;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol_round");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let cfg = bench_base();
    for alg in [
        AlgorithmKind::Tag,
        AlgorithmKind::Pos,
        AlgorithmKind::LcllH,
        AlgorithmKind::LcllS,
        AlgorithmKind::LcllR,
        AlgorithmKind::Hbc,
        AlgorithmKind::HbcNb,
        AlgorithmKind::Iq,
        AlgorithmKind::Adaptive,
        AlgorithmKind::Gk,
    ] {
        group.bench_with_input(BenchmarkId::new(alg.name(), "150n40r"), &cfg, |b, cfg| {
            b.iter(|| black_box(run_once(cfg, alg, 0).max_node_energy_per_round))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
