//! Shared helpers for the figure benches: scaled-down single-run cells so
//! `cargo bench` finishes in minutes while still exercising the exact code
//! paths of the full experiments.

use wsn_sim::config::{AlgorithmKind, SimulationConfig};
use wsn_sim::runner::run_once;

/// Runs one scaled-down simulation run of `cfg` and returns the hotspot
/// energy (so the optimizer cannot elide the run).
#[allow(dead_code)] // each bench target uses a subset of these helpers
pub fn run_cell(cfg: &SimulationConfig, alg: AlgorithmKind) -> f64 {
    run_once(cfg, alg, 0).max_node_energy_per_round
}

/// A small but structurally faithful base configuration for benches.
#[allow(dead_code)]
pub fn bench_base() -> SimulationConfig {
    SimulationConfig {
        sensor_count: 150,
        rounds: 40,
        runs: 1,
        ..SimulationConfig::default()
    }
}
