//! Scale family: HBC rounds on constant-density worlds of 1 k / 10 k /
//! 100 k nodes, plus a speedup-vs-threads table for the within-wave
//! parallel engine at the largest size.
//!
//! The workload (constant-density world, drifting measurements, full HBC
//! rounds: convergecasts, broadcasts, ledger, histograms) lives in
//! [`wsn_bench::scale`], shared with the `simulate scale` CI smoke gate.
//! Worlds are built once, outside the timed region.

use wsn_bench::harness::Harness;
use wsn_bench::scale::{build_world, hbc_rounds};

fn main() {
    let mut h = Harness::from_args("scale");

    for &(n, rounds) in &[(1_000usize, 1_000u32), (10_000, 1_000), (100_000, 1_000)] {
        let mut net = build_world(n, 0x5CA1E ^ n as u64);
        let r = h.bench(&format!("hbc/n={n}/rounds={rounds}"), || {
            hbc_rounds(&mut net, n, rounds)
        });
        if let Some(r) = r {
            h.note(
                &format!("hbc_ns_per_node_round/n={n}"),
                r.median_ns as f64 / (n as f64 * rounds as f64),
            );
        }
    }

    // Speedup vs. within-wave worker threads at the largest size. On a
    // 1-core container every ratio is ≈ 1.0 by construction — re-run on a
    // multi-core box to measure the real win; the parity suite guarantees
    // the results are bit-identical either way.
    let n = 100_000;
    let rounds = 200;
    let mut net = build_world(n, 0xB16);
    let mut base = None;
    for workers in [1usize, 2, 4, 8] {
        net.set_wave_workers(workers);
        let r = h.bench(&format!("hbc_threads/n={n}/workers={workers}"), || {
            hbc_rounds(&mut net, n, rounds)
        });
        match (base, r) {
            (None, Some(r)) => base = Some(r.median_ns),
            (Some(b), Some(r)) => h.note(
                &format!("hbc_speedup/workers={workers}"),
                b as f64 / r.median_ns as f64,
            ),
            _ => {}
        }
    }

    h.finish();
}
