//! Figure 6 bench: per-algorithm simulation cost while sweeping |N|.

mod common;

use common::{bench_base, run_cell};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use wsn_sim::config::{AlgorithmKind, SimulationConfig};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_nodes");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &n in &[100usize, 200, 400] {
        let cfg = SimulationConfig {
            sensor_count: n,
            ..bench_base()
        };
        for alg in AlgorithmKind::PAPER_SET {
            group.bench_with_input(
                BenchmarkId::new(alg.name(), n),
                &cfg,
                |b, cfg| b.iter(|| black_box(run_cell(cfg, alg))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
