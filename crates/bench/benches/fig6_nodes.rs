//! Figure 6 bench: per-algorithm simulation cost while sweeping |N|.

mod common;

use common::{bench_base, run_cell};
use wsn_bench::harness::Harness;
use wsn_sim::config::{AlgorithmKind, SimulationConfig};

fn main() {
    let mut h = Harness::from_args("fig6_nodes");
    for &n in &[100usize, 200, 400] {
        let cfg = SimulationConfig {
            sensor_count: n,
            ..bench_base()
        };
        for alg in AlgorithmKind::PAPER_SET {
            h.bench(&format!("{}/{n}", alg.name()), || run_cell(&cfg, alg));
        }
    }
    h.finish();
}
