//! Parallel-engine speedup measurement: the same experiment workload
//! executed by the sequential path and by the worker pool, so
//! `BENCH_results.json` records the actual multi-thread speedup of
//! `experiments`-style sweeps on this machine (see the neighbouring
//! `_meta.cores` entry when interpreting the ratio — a 1-core container
//! cannot show a parallel win, but the parity tests still guarantee the
//! results are identical).

mod common;

use common::bench_base;
use wsn_bench::harness::Harness;
use wsn_sim::config::{AlgorithmKind, SimulationConfig};
use wsn_sim::experiments;
use wsn_sim::runner::run_experiment_threads;

fn main() {
    let mut h = Harness::from_args("speedup");
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    h.note("cores", cores as f64);

    // Workload 1: one experiment's `runs` loop (8 independent runs — the
    // inner parallel dimension of `run_experiment`).
    let cfg = SimulationConfig {
        runs: 8,
        ..bench_base()
    };
    let seq = h.bench("run_experiment_8runs/threads=1", || {
        run_experiment_threads(&cfg, AlgorithmKind::Iq, 1)
    });
    let par = h.bench("run_experiment_8runs/threads=8", || {
        run_experiment_threads(&cfg, AlgorithmKind::Iq, 8)
    });
    if let (Some(seq), Some(par)) = (seq, par) {
        h.note(
            "run_experiment_speedup_8_threads",
            seq.median_ns as f64 / par.median_ns as f64,
        );
    }

    // Workload 2: a sweep grid (the outer parallel dimension driven by the
    // `experiments` binary).
    let mut sweep = experiments::adaptive(true);
    sweep.cells.truncate(2);
    for c in &mut sweep.cells {
        c.config.sensor_count = 100;
        c.config.rounds = 30;
        c.config.runs = 2;
    }
    let seq = h.bench("run_sweep_grid/threads=1", || {
        experiments::run_sweep_threads(&sweep, 1)
    });
    let par = h.bench("run_sweep_grid/threads=8", || {
        experiments::run_sweep_threads(&sweep, 8)
    });
    if let (Some(seq), Some(par)) = (seq, par) {
        h.note(
            "run_sweep_speedup_8_threads",
            seq.median_ns as f64 / par.median_ns as f64,
        );
    }

    h.finish();
}
