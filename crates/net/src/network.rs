//! Convergecast / broadcast engines with in-network aggregation.
//!
//! All quantile protocols in the paper are built from exactly two
//! communication patterns over the routing tree:
//!
//! * **Convergecast** (leaf → root): every node may contribute a local
//!   payload; intermediate nodes *merge* the payloads of their children
//!   with their own (TAG-style aggregation) and forward a single message to
//!   their parent — possibly pruning the merged payload first (e.g. IQ
//!   refinement responses keep only the `f` largest values, §4.2.2).
//!   A node stays silent iff neither it nor any descendant has anything to
//!   say.
//! * **Broadcast** (root → leaves): a payload flooded down the tree; every
//!   internal node transmits once and every node receives once.
//!
//! The engine charges transmit/receive energy per the [`RadioModel`] and
//! fragments payloads per [`MessageSizes`]. Protocol logic never touches the
//! ledger directly.

use std::any::{Any, TypeId};

use crate::energy::{EnergyLedger, RadioModel};
use crate::loss::LossModel;
use crate::message::MessageSizes;
use crate::topology::{NodeId, Topology};
use crate::tree::RoutingTree;

/// A mergeable convergecast payload.
///
/// Implementations describe both the algebra (how payloads combine) and the
/// wire format (how many bits the payload occupies).
pub trait Aggregate {
    /// Merges `other` into `self` (TAG-style in-network aggregation).
    fn merge(&mut self, other: Self);

    /// Size of this payload on the wire, in bits, excluding headers.
    fn payload_bits(&self, sizes: &MessageSizes) -> u64;

    /// Number of raw measurements contained in the payload, for the
    /// "transmitted values" statistic of §5.1. Defaults to zero for
    /// counter-only payloads.
    fn value_count(&self) -> usize {
        0
    }
}

/// Per-round traffic statistics (§5.1 performance indicators).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficStats {
    /// Messages transmitted (fragments count individually).
    pub messages: u64,
    /// Raw measurements transmitted hop-by-hop (each hop counts).
    pub values: u64,
    /// Total bits on air.
    pub bits: u64,
    /// Convergecast waves executed.
    pub convergecasts: u64,
    /// Broadcast waves executed.
    pub broadcasts: u64,
}

impl TrafficStats {
    /// Component-wise sum.
    pub fn add(&mut self, other: &TrafficStats) {
        self.messages += other.messages;
        self.values += other.values;
        self.bits += other.bits;
        self.convergecasts += other.convergecasts;
        self.broadcasts += other.broadcasts;
    }
}

/// Reusable per-wave scratch buffers, so the convergecast/broadcast hot
/// path performs no heap allocation in steady state. Convergecast inboxes
/// are generic over the payload type, so they are stored type-erased and
/// recycled per payload type: the first wave of each `T` allocates, every
/// later wave reuses that buffer.
///
/// Scratch holds no observable state — clearing (or cloning to empty) never
/// changes simulation results, only allocation behaviour.
#[derive(Default)]
struct ScratchPool {
    /// One recycled `Vec<Option<T>>` inbox per convergecast payload type.
    inboxes: Vec<(TypeId, Box<dyn Any + Send>)>,
}

impl ScratchPool {
    /// Takes the recycled inbox for payload type `T` (empty on first use),
    /// cleared and resized to `n` empty slots.
    fn take_inbox<T: Send + 'static>(&mut self, n: usize) -> Vec<Option<T>> {
        let tid = TypeId::of::<Vec<Option<T>>>();
        let mut inbox = self
            .inboxes
            .iter_mut()
            .find(|(t, _)| *t == tid)
            .and_then(|(_, b)| b.downcast_mut::<Vec<Option<T>>>())
            .map(std::mem::take)
            .unwrap_or_default();
        inbox.clear();
        inbox.resize_with(n, || None);
        inbox
    }

    /// Returns an inbox to the pool for later reuse.
    fn put_inbox<T: Send + 'static>(&mut self, mut inbox: Vec<Option<T>>) {
        inbox.clear();
        let tid = TypeId::of::<Vec<Option<T>>>();
        match self.inboxes.iter_mut().find(|(t, _)| *t == tid) {
            Some((_, b)) => {
                if let Some(slot) = b.downcast_mut::<Vec<Option<T>>>() {
                    *slot = inbox;
                }
            }
            None => self.inboxes.push((tid, Box::new(inbox))),
        }
    }
}

impl std::fmt::Debug for ScratchPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScratchPool")
            .field("inboxes", &self.inboxes.len())
            .finish()
    }
}

impl Clone for ScratchPool {
    /// Scratch is not meaningful state; clones start empty.
    fn clone(&self) -> Self {
        ScratchPool::default()
    }
}

/// The simulated network: topology + routing tree + energy accounting.
#[derive(Debug, Clone)]
pub struct Network {
    topo: Topology,
    tree: RoutingTree,
    model: RadioModel,
    sizes: MessageSizes,
    ledger: EnergyLedger,
    stats: TrafficStats,
    loss: Option<LossModel>,
    scratch: ScratchPool,
}

/// Charges one unicast transmission from `from` to its parent using split
/// field borrows, so convergecast can iterate the routing tree while
/// mutating the ledger/stats without cloning the traversal order.
#[allow(clippy::too_many_arguments)]
fn charge_unicast(
    tree: &RoutingTree,
    topo: &Topology,
    model: &RadioModel,
    sizes: &MessageSizes,
    ledger: &mut EnergyLedger,
    stats: &mut TrafficStats,
    loss: &mut Option<LossModel>,
    from: NodeId,
    payload_bits: u64,
    values: usize,
) -> bool {
    let parent = tree.parent(from).expect("root has no parent to send to");
    let (fragments, total_bits) = sizes.fragment(payload_bits);
    ledger.charge_tx(from, model.tx_energy(total_bits, topo.radio_range()));
    // The parent listens according to its schedule, so it pays for the
    // reception even if the message is corrupted.
    ledger.charge(parent, model.rx_energy(total_bits));
    stats.messages += fragments;
    stats.values += values as u64;
    stats.bits += total_bits;
    match loss {
        Some(loss) => !loss.lose(),
        None => true,
    }
}

impl Network {
    /// Assembles a network from its parts.
    pub fn new(topo: Topology, tree: RoutingTree, model: RadioModel, sizes: MessageSizes) -> Self {
        let n = topo.len();
        assert_eq!(n, tree.len(), "tree and topology disagree on node count");
        Network {
            topo,
            tree,
            model,
            sizes,
            ledger: EnergyLedger::new(n),
            stats: TrafficStats::default(),
            loss: None,
            scratch: ScratchPool::default(),
        }
    }

    /// Enables Bernoulli message loss (the §6 future-work extension).
    /// Protocols are *not* informed of losses; the resulting rank error is
    /// what the loss experiments measure.
    pub fn set_loss(&mut self, loss: Option<LossModel>) {
        self.loss = loss;
    }

    /// Number of nodes including the root.
    pub fn len(&self) -> usize {
        self.topo.len()
    }

    /// Never true.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of sensor nodes `|N|`.
    pub fn sensor_count(&self) -> usize {
        self.topo.sensor_count()
    }

    /// The routing tree.
    pub fn tree(&self) -> &RoutingTree {
        &self.tree
    }

    /// The topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Message sizing constants.
    pub fn sizes(&self) -> &MessageSizes {
        &self.sizes
    }

    /// Radio model parameters.
    pub fn model(&self) -> &RadioModel {
        &self.model
    }

    /// The energy ledger (read access for metrics).
    pub fn ledger(&self) -> &EnergyLedger {
        &self.ledger
    }

    /// Cumulative traffic statistics.
    pub fn stats(&self) -> &TrafficStats {
        &self.stats
    }

    /// Marks the end of a protocol round in the ledger.
    pub fn end_round(&mut self) {
        self.ledger.end_round();
    }

    /// Charges one unicast transmission of `payload_bits` from `from` to its
    /// parent, with fragmentation, and returns whether the (entire) payload
    /// arrived. Used internally and exposed for custom protocol steps.
    pub fn charge_unicast_up(&mut self, from: NodeId, payload_bits: u64, values: usize) -> bool {
        charge_unicast(
            &self.tree,
            &self.topo,
            &self.model,
            &self.sizes,
            &mut self.ledger,
            &mut self.stats,
            &mut self.loss,
            from,
            payload_bits,
            values,
        )
    }

    /// Runs a convergecast. `local` yields each *sensor* node's own
    /// contribution (the root takes no measurements). Returns the aggregate
    /// that reaches the root, or `None` if every node stayed silent.
    pub fn convergecast<T: Aggregate + Send + 'static>(
        &mut self,
        local: impl FnMut(NodeId) -> Option<T>,
    ) -> Option<T> {
        self.convergecast_with(local, |_, _| {})
    }

    /// Runs a convergecast where every sending node may prune/transform the
    /// merged payload before forwarding it (`prune` receives the node id and
    /// the payload about to be sent — or, at the root, the final payload).
    ///
    /// Pruning at the root is deliberate: the root applies the same logic
    /// (e.g. keeping the `f` largest values) when consuming the data.
    pub fn convergecast_with<T: Aggregate + Send + 'static>(
        &mut self,
        mut local: impl FnMut(NodeId) -> Option<T>,
        mut prune: impl FnMut(NodeId, &mut T),
    ) -> Option<T> {
        self.stats.convergecasts += 1;
        let n = self.len();
        let mut inbox = self.scratch.take_inbox::<T>(n);

        // Split field borrows: the traversal reads the tree while the
        // charging mutates ledger/stats/loss, so the wave walks
        // `bottom_up()` in place instead of cloning the order.
        let Network {
            tree,
            topo,
            model,
            sizes,
            ledger,
            stats,
            loss,
            ..
        } = self;

        // bottom_up() is children-before-parents, so by the time we reach a
        // node its inbox already holds the merged payloads of its children.
        let mut result = None;
        for &u in tree.bottom_up() {
            let from_children = inbox[u.index()].take();
            let own = if u.is_root() { None } else { local(u) };
            let mut combined = match (from_children, own) {
                (Some(mut a), Some(b)) => {
                    a.merge(b);
                    Some(a)
                }
                (Some(a), None) => Some(a),
                (None, Some(b)) => Some(b),
                (None, None) => None,
            };

            if u.is_root() {
                if let Some(p) = combined.as_mut() {
                    prune(u, p);
                }
                result = combined;
                break;
            }

            if let Some(mut payload) = combined {
                prune(u, &mut payload);
                let bits = payload.payload_bits(sizes);
                let arrived = charge_unicast(
                    tree,
                    topo,
                    model,
                    sizes,
                    ledger,
                    stats,
                    loss,
                    u,
                    bits,
                    payload.value_count(),
                );
                if arrived {
                    let parent = tree.parent(u).expect("non-root");
                    let slot = &mut inbox[parent.index()];
                    match slot {
                        Some(existing) => existing.merge(payload),
                        None => *slot = Some(payload),
                    }
                }
            }
        }
        self.scratch.put_inbox(inbox);
        result
    }

    /// Floods a payload of `payload_bits` bits from the root to every node.
    /// Returns the set of nodes that actually received it (all of them
    /// without loss; possibly a subtree-prefix with loss enabled).
    ///
    /// Allocates the result vector; loops that broadcast repeatedly should
    /// prefer [`Network::broadcast_into`] with a reused buffer.
    pub fn broadcast(&mut self, payload_bits: u64) -> Vec<bool> {
        let mut received = Vec::new();
        self.broadcast_into(payload_bits, &mut received);
        received
    }

    /// [`Network::broadcast`] writing the per-node reception flags into a
    /// caller-owned buffer (cleared and resized in place), so repeated
    /// waves perform no heap allocation.
    pub fn broadcast_into(&mut self, payload_bits: u64, received: &mut Vec<bool>) {
        self.stats.broadcasts += 1;
        let n = self.len();
        let (fragments, total_bits) = self.sizes.fragment(payload_bits);
        received.clear();
        received.resize(n, false);
        received[NodeId::ROOT.index()] = true;

        // Split field borrows, as in `convergecast_with`: traversal and
        // child lookups read the tree in place while the ledger/stats/loss
        // are mutated — no per-node clone of the children list.
        let Network {
            tree,
            topo,
            model,
            sizes: _,
            ledger,
            stats,
            loss,
            ..
        } = self;
        for u in tree.top_down() {
            if !received[u.index()] || tree.is_leaf(u) {
                continue;
            }
            // One radio transmission reaches all children (§5.1.4: receivers
            // pay because the schedule tells them when to listen).
            ledger.charge_tx(u, model.tx_energy(total_bits, topo.radio_range()));
            stats.messages += fragments;
            stats.bits += total_bits;
            for &c in tree.children(u) {
                ledger.charge(c, model.rx_energy(total_bits));
                let arrived = match loss {
                    Some(loss) => !loss.lose(),
                    None => true,
                };
                if arrived {
                    received[c.index()] = true;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Point;

    /// Payload: a sum plus a vector of values.
    #[derive(Debug, Clone, PartialEq)]
    struct SumVals {
        sum: i64,
        vals: Vec<i64>,
    }

    impl Aggregate for SumVals {
        fn merge(&mut self, other: Self) {
            self.sum += other.sum;
            self.vals.extend(other.vals);
        }
        fn payload_bits(&self, sizes: &MessageSizes) -> u64 {
            sizes.counter_bits + self.vals.len() as u64 * sizes.value_bits
        }
        fn value_count(&self) -> usize {
            self.vals.len()
        }
    }

    fn line_network(n: usize) -> Network {
        let positions = (0..n).map(|i| Point::new(i as f64 * 10.0, 0.0)).collect();
        let topo = Topology::build(positions, 12.0);
        let tree = RoutingTree::shortest_path_tree(&topo).unwrap();
        Network::new(topo, tree, RadioModel::default(), MessageSizes::default())
    }

    #[test]
    fn convergecast_aggregates_all_contributions() {
        let mut net = line_network(5);
        let agg = net
            .convergecast(|id| {
                Some(SumVals {
                    sum: id.0 as i64,
                    vals: vec![id.0 as i64 * 100],
                })
            })
            .unwrap();
        assert_eq!(agg.sum, 1 + 2 + 3 + 4);
        let mut vals = agg.vals.clone();
        vals.sort_unstable();
        assert_eq!(vals, vec![100, 200, 300, 400]);
    }

    #[test]
    fn silent_nodes_send_nothing() {
        let mut net = line_network(5);
        let agg: Option<SumVals> = net.convergecast(|_| None);
        assert!(agg.is_none());
        assert_eq!(net.stats().messages, 0);
        assert_eq!(net.ledger().max_sensor_consumption(), 0.0);
    }

    #[test]
    fn intermediate_node_forwards_descendant_payload() {
        let mut net = line_network(4);
        // Only the farthest leaf (node 3) talks; nodes 2 and 1 must relay.
        let agg = net
            .convergecast(|id| {
                (id == NodeId(3)).then(|| SumVals {
                    sum: 7,
                    vals: vec![],
                })
            })
            .unwrap();
        assert_eq!(agg.sum, 7);
        // Three hops: 3->2, 2->1, 1->0.
        assert_eq!(net.stats().messages, 3);
        // Relays pay both rx and tx; leaf pays only tx; root pays only rx.
        let e1 = net.ledger().consumed(NodeId(1));
        let e3 = net.ledger().consumed(NodeId(3));
        assert!(e1 > e3);
    }

    #[test]
    fn pruning_shrinks_forwarded_payload() {
        let mut net = line_network(4);
        // Every node contributes 10 values; relays keep only 2.
        let agg = net
            .convergecast_with(
                |id| {
                    Some(SumVals {
                        sum: 0,
                        vals: vec![id.0 as i64; 10],
                    })
                },
                |_, p: &mut SumVals| {
                    p.vals.truncate(2);
                },
            )
            .unwrap();
        assert_eq!(agg.vals.len(), 2);
        // Hop 3->2 carries 2 values, hop 2->1 carries 2 (pruned from 12)...
        assert_eq!(net.stats().values, 6);
    }

    #[test]
    fn broadcast_reaches_everyone_and_charges_tx_per_internal_node() {
        let mut net = line_network(4);
        let received = net.broadcast(16);
        assert!(received.iter().all(|&r| r));
        // Internal nodes 0,1,2 each transmit once.
        assert_eq!(net.stats().messages, 3);
        assert_eq!(net.stats().broadcasts, 1);
        // Leaf 3 only receives.
        let total = 16 + net.sizes().header_bits;
        let rx = net.model().rx_energy(total);
        assert!((net.ledger().consumed(NodeId(3)) - rx).abs() < 1e-18);
    }

    #[test]
    fn star_broadcast_single_transmission() {
        // Root with 4 direct children: one tx, four rx.
        let mut positions = vec![Point::new(0.0, 0.0)];
        for i in 0..4 {
            let a = i as f64 * std::f64::consts::FRAC_PI_2;
            positions.push(Point::new(a.cos() * 5.0, a.sin() * 5.0));
        }
        let topo = Topology::build(positions, 6.0);
        let tree = RoutingTree::shortest_path_tree(&topo).unwrap();
        let mut net = Network::new(topo, tree, RadioModel::default(), MessageSizes::default());
        net.broadcast(0);
        assert_eq!(net.stats().messages, 1);
    }

    #[test]
    fn fragmentation_inflates_message_count() {
        let mut net = line_network(2);
        // 100 values of 16 bits = 1600 bits > 1024-bit payload -> 2 fragments.
        net.convergecast(|_| {
            Some(SumVals {
                sum: 0,
                vals: vec![1; 100],
            })
        })
        .unwrap();
        // One payload too big for a single message... minus the sum counter.
        assert_eq!(net.stats().messages, 2);
    }

    #[test]
    fn end_round_snapshots_ledger() {
        let mut net = line_network(3);
        net.broadcast(0);
        net.end_round();
        assert_eq!(net.ledger().rounds(), 1);
    }
}
