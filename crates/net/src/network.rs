//! Convergecast / broadcast engines with in-network aggregation.
//!
//! All quantile protocols in the paper are built from exactly two
//! communication patterns over the routing tree:
//!
//! * **Convergecast** (leaf → root): every node may contribute a local
//!   payload; intermediate nodes *merge* the payloads of their children
//!   with their own (TAG-style aggregation) and forward a single message to
//!   their parent — possibly pruning the merged payload first (e.g. IQ
//!   refinement responses keep only the `f` largest values, §4.2.2).
//!   A node stays silent iff neither it nor any descendant has anything to
//!   say.
//! * **Broadcast** (root → leaves): a payload flooded down the tree; every
//!   internal node transmits once and every node receives once.
//!
//! The engine charges transmit/receive energy per the [`RadioModel`] and
//! fragments payloads per [`MessageSizes`]. Protocol logic never touches the
//! ledger directly.

use crate::energy::{EnergyLedger, RadioModel};
use crate::loss::LossModel;
use crate::message::MessageSizes;
use crate::topology::{NodeId, Topology};
use crate::tree::RoutingTree;

/// A mergeable convergecast payload.
///
/// Implementations describe both the algebra (how payloads combine) and the
/// wire format (how many bits the payload occupies).
pub trait Aggregate {
    /// Merges `other` into `self` (TAG-style in-network aggregation).
    fn merge(&mut self, other: Self);

    /// Size of this payload on the wire, in bits, excluding headers.
    fn payload_bits(&self, sizes: &MessageSizes) -> u64;

    /// Number of raw measurements contained in the payload, for the
    /// "transmitted values" statistic of §5.1. Defaults to zero for
    /// counter-only payloads.
    fn value_count(&self) -> usize {
        0
    }
}

/// Per-round traffic statistics (§5.1 performance indicators).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficStats {
    /// Messages transmitted (fragments count individually).
    pub messages: u64,
    /// Raw measurements transmitted hop-by-hop (each hop counts).
    pub values: u64,
    /// Total bits on air.
    pub bits: u64,
    /// Convergecast waves executed.
    pub convergecasts: u64,
    /// Broadcast waves executed.
    pub broadcasts: u64,
}

impl TrafficStats {
    /// Component-wise sum.
    pub fn add(&mut self, other: &TrafficStats) {
        self.messages += other.messages;
        self.values += other.values;
        self.bits += other.bits;
        self.convergecasts += other.convergecasts;
        self.broadcasts += other.broadcasts;
    }
}

/// The simulated network: topology + routing tree + energy accounting.
#[derive(Debug, Clone)]
pub struct Network {
    topo: Topology,
    tree: RoutingTree,
    model: RadioModel,
    sizes: MessageSizes,
    ledger: EnergyLedger,
    stats: TrafficStats,
    loss: Option<LossModel>,
}

impl Network {
    /// Assembles a network from its parts.
    pub fn new(topo: Topology, tree: RoutingTree, model: RadioModel, sizes: MessageSizes) -> Self {
        let n = topo.len();
        assert_eq!(n, tree.len(), "tree and topology disagree on node count");
        Network {
            topo,
            tree,
            model,
            sizes,
            ledger: EnergyLedger::new(n),
            stats: TrafficStats::default(),
            loss: None,
        }
    }

    /// Enables Bernoulli message loss (the §6 future-work extension).
    /// Protocols are *not* informed of losses; the resulting rank error is
    /// what the loss experiments measure.
    pub fn set_loss(&mut self, loss: Option<LossModel>) {
        self.loss = loss;
    }

    /// Number of nodes including the root.
    pub fn len(&self) -> usize {
        self.topo.len()
    }

    /// Never true.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of sensor nodes `|N|`.
    pub fn sensor_count(&self) -> usize {
        self.topo.sensor_count()
    }

    /// The routing tree.
    pub fn tree(&self) -> &RoutingTree {
        &self.tree
    }

    /// The topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Message sizing constants.
    pub fn sizes(&self) -> &MessageSizes {
        &self.sizes
    }

    /// Radio model parameters.
    pub fn model(&self) -> &RadioModel {
        &self.model
    }

    /// The energy ledger (read access for metrics).
    pub fn ledger(&self) -> &EnergyLedger {
        &self.ledger
    }

    /// Cumulative traffic statistics.
    pub fn stats(&self) -> &TrafficStats {
        &self.stats
    }

    /// Marks the end of a protocol round in the ledger.
    pub fn end_round(&mut self) {
        self.ledger.end_round();
    }

    /// Charges one unicast transmission of `payload_bits` from `from` to its
    /// parent, with fragmentation, and returns whether the (entire) payload
    /// arrived. Used internally and exposed for custom protocol steps.
    pub fn charge_unicast_up(&mut self, from: NodeId, payload_bits: u64, values: usize) -> bool {
        let parent = self
            .tree
            .parent(from)
            .expect("root has no parent to send to");
        let (fragments, total_bits) = self.sizes.fragment(payload_bits);
        self.ledger
            .charge_tx(from, self.model.tx_energy(total_bits, self.topo.radio_range()));
        // The parent listens according to its schedule, so it pays for the
        // reception even if the message is corrupted.
        self.ledger.charge(parent, self.model.rx_energy(total_bits));
        self.stats.messages += fragments;
        self.stats.values += values as u64;
        self.stats.bits += total_bits;
        match &mut self.loss {
            Some(loss) => !loss.lose(),
            None => true,
        }
    }

    /// Runs a convergecast. `local` yields each *sensor* node's own
    /// contribution (the root takes no measurements). Returns the aggregate
    /// that reaches the root, or `None` if every node stayed silent.
    pub fn convergecast<T: Aggregate>(
        &mut self,
        local: impl FnMut(NodeId) -> Option<T>,
    ) -> Option<T> {
        self.convergecast_with(local, |_, _| {})
    }

    /// Runs a convergecast where every sending node may prune/transform the
    /// merged payload before forwarding it (`prune` receives the node id and
    /// the payload about to be sent — or, at the root, the final payload).
    ///
    /// Pruning at the root is deliberate: the root applies the same logic
    /// (e.g. keeping the `f` largest values) when consuming the data.
    pub fn convergecast_with<T: Aggregate>(
        &mut self,
        mut local: impl FnMut(NodeId) -> Option<T>,
        mut prune: impl FnMut(NodeId, &mut T),
    ) -> Option<T> {
        self.stats.convergecasts += 1;
        let n = self.len();
        let mut inbox: Vec<Option<T>> = Vec::with_capacity(n);
        inbox.resize_with(n, || None);

        // bottom_up() is children-before-parents, so by the time we reach a
        // node its inbox already holds the merged payloads of its children.
        let order: Vec<NodeId> = self.tree.bottom_up().to_vec();
        for u in order {
            let from_children = inbox[u.index()].take();
            let own = if u.is_root() { None } else { local(u) };
            let mut combined = match (from_children, own) {
                (Some(mut a), Some(b)) => {
                    a.merge(b);
                    Some(a)
                }
                (Some(a), None) => Some(a),
                (None, Some(b)) => Some(b),
                (None, None) => None,
            };

            if u.is_root() {
                if let Some(p) = combined.as_mut() {
                    prune(u, p);
                }
                return combined;
            }

            if let Some(mut payload) = combined {
                prune(u, &mut payload);
                let bits = payload.payload_bits(&self.sizes);
                let arrived = self.charge_unicast_up(u, bits, payload.value_count());
                if arrived {
                    let parent = self.tree.parent(u).expect("non-root");
                    let slot = &mut inbox[parent.index()];
                    match slot {
                        Some(existing) => existing.merge(payload),
                        None => *slot = Some(payload),
                    }
                }
            }
        }
        unreachable!("bottom_up order always ends at the root");
    }

    /// Floods a payload of `payload_bits` bits from the root to every node.
    /// Returns the set of nodes that actually received it (all of them
    /// without loss; possibly a subtree-prefix with loss enabled).
    pub fn broadcast(&mut self, payload_bits: u64) -> Vec<bool> {
        self.stats.broadcasts += 1;
        let n = self.len();
        let (fragments, total_bits) = self.sizes.fragment(payload_bits);
        let mut received = vec![false; n];
        received[NodeId::ROOT.index()] = true;

        let order: Vec<NodeId> = self.tree.top_down().collect();
        for u in order {
            if !received[u.index()] || self.tree.is_leaf(u) {
                continue;
            }
            // One radio transmission reaches all children (§5.1.4: receivers
            // pay because the schedule tells them when to listen).
            self.ledger
                .charge_tx(u, self.model.tx_energy(total_bits, self.topo.radio_range()));
            self.stats.messages += fragments;
            self.stats.bits += total_bits;
            let children: Vec<NodeId> = self.tree.children(u).to_vec();
            for c in children {
                self.ledger.charge(c, self.model.rx_energy(total_bits));
                let arrived = match &mut self.loss {
                    Some(loss) => !loss.lose(),
                    None => true,
                };
                if arrived {
                    received[c.index()] = true;
                }
            }
        }
        received
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Point;

    /// Payload: a sum plus a vector of values.
    #[derive(Debug, Clone, PartialEq)]
    struct SumVals {
        sum: i64,
        vals: Vec<i64>,
    }

    impl Aggregate for SumVals {
        fn merge(&mut self, other: Self) {
            self.sum += other.sum;
            self.vals.extend(other.vals);
        }
        fn payload_bits(&self, sizes: &MessageSizes) -> u64 {
            sizes.counter_bits + self.vals.len() as u64 * sizes.value_bits
        }
        fn value_count(&self) -> usize {
            self.vals.len()
        }
    }

    fn line_network(n: usize) -> Network {
        let positions = (0..n).map(|i| Point::new(i as f64 * 10.0, 0.0)).collect();
        let topo = Topology::build(positions, 12.0);
        let tree = RoutingTree::shortest_path_tree(&topo).unwrap();
        Network::new(topo, tree, RadioModel::default(), MessageSizes::default())
    }

    #[test]
    fn convergecast_aggregates_all_contributions() {
        let mut net = line_network(5);
        let agg = net
            .convergecast(|id| {
                Some(SumVals {
                    sum: id.0 as i64,
                    vals: vec![id.0 as i64 * 100],
                })
            })
            .unwrap();
        assert_eq!(agg.sum, 1 + 2 + 3 + 4);
        let mut vals = agg.vals.clone();
        vals.sort_unstable();
        assert_eq!(vals, vec![100, 200, 300, 400]);
    }

    #[test]
    fn silent_nodes_send_nothing() {
        let mut net = line_network(5);
        let agg: Option<SumVals> = net.convergecast(|_| None);
        assert!(agg.is_none());
        assert_eq!(net.stats().messages, 0);
        assert_eq!(net.ledger().max_sensor_consumption(), 0.0);
    }

    #[test]
    fn intermediate_node_forwards_descendant_payload() {
        let mut net = line_network(4);
        // Only the farthest leaf (node 3) talks; nodes 2 and 1 must relay.
        let agg = net
            .convergecast(|id| {
                (id == NodeId(3)).then(|| SumVals {
                    sum: 7,
                    vals: vec![],
                })
            })
            .unwrap();
        assert_eq!(agg.sum, 7);
        // Three hops: 3->2, 2->1, 1->0.
        assert_eq!(net.stats().messages, 3);
        // Relays pay both rx and tx; leaf pays only tx; root pays only rx.
        let e1 = net.ledger().consumed(NodeId(1));
        let e3 = net.ledger().consumed(NodeId(3));
        assert!(e1 > e3);
    }

    #[test]
    fn pruning_shrinks_forwarded_payload() {
        let mut net = line_network(4);
        // Every node contributes 10 values; relays keep only 2.
        let agg = net
            .convergecast_with(
                |id| {
                    Some(SumVals {
                        sum: 0,
                        vals: vec![id.0 as i64; 10],
                    })
                },
                |_, p: &mut SumVals| {
                    p.vals.truncate(2);
                },
            )
            .unwrap();
        assert_eq!(agg.vals.len(), 2);
        // Hop 3->2 carries 2 values, hop 2->1 carries 2 (pruned from 12)...
        assert_eq!(net.stats().values, 6);
    }

    #[test]
    fn broadcast_reaches_everyone_and_charges_tx_per_internal_node() {
        let mut net = line_network(4);
        let received = net.broadcast(16);
        assert!(received.iter().all(|&r| r));
        // Internal nodes 0,1,2 each transmit once.
        assert_eq!(net.stats().messages, 3);
        assert_eq!(net.stats().broadcasts, 1);
        // Leaf 3 only receives.
        let total = 16 + net.sizes().header_bits;
        let rx = net.model().rx_energy(total);
        assert!((net.ledger().consumed(NodeId(3)) - rx).abs() < 1e-18);
    }

    #[test]
    fn star_broadcast_single_transmission() {
        // Root with 4 direct children: one tx, four rx.
        let mut positions = vec![Point::new(0.0, 0.0)];
        for i in 0..4 {
            let a = i as f64 * std::f64::consts::FRAC_PI_2;
            positions.push(Point::new(a.cos() * 5.0, a.sin() * 5.0));
        }
        let topo = Topology::build(positions, 6.0);
        let tree = RoutingTree::shortest_path_tree(&topo).unwrap();
        let mut net = Network::new(topo, tree, RadioModel::default(), MessageSizes::default());
        net.broadcast(0);
        assert_eq!(net.stats().messages, 1);
    }

    #[test]
    fn fragmentation_inflates_message_count() {
        let mut net = line_network(2);
        // 100 values of 16 bits = 1600 bits > 1024-bit payload -> 2 fragments.
        net.convergecast(|_| {
            Some(SumVals {
                sum: 0,
                vals: vec![1; 100],
            })
        })
        .unwrap();
        // One payload too big for a single message... minus the sum counter.
        assert_eq!(net.stats().messages, 2);
    }

    #[test]
    fn end_round_snapshots_ledger() {
        let mut net = line_network(3);
        net.broadcast(0);
        net.end_round();
        assert_eq!(net.ledger().rounds(), 1);
    }
}
