//! Convergecast / broadcast engines with in-network aggregation.
//!
//! All quantile protocols in the paper are built from exactly two
//! communication patterns over the routing tree:
//!
//! * **Convergecast** (leaf → root): every node may contribute a local
//!   payload; intermediate nodes *merge* the payloads of their children
//!   with their own (TAG-style aggregation) and forward a single message to
//!   their parent — possibly pruning the merged payload first (e.g. IQ
//!   refinement responses keep only the `f` largest values, §4.2.2).
//!   A node stays silent iff neither it nor any descendant has anything to
//!   say.
//! * **Broadcast** (root → leaves): a payload flooded down the tree; every
//!   internal node transmits once and every node receives once.
//!
//! The engine charges transmit/receive energy per the [`RadioModel`] and
//! fragments payloads per [`MessageSizes`]. Protocol logic never touches the
//! ledger directly.
//!
//! With a [`LossModel`] installed, every 802.15.4 fragment is lost
//! independently; the optional reliability layer (see
//! [`crate::reliability`]) adds per-link ARQ, end-to-end wave recovery, and
//! crash-stop node failures with routing-tree repair — all charged to the
//! same ledger, so reliability has a measurable energy price.

use std::any::{Any, TypeId};

use crate::audit::{AuditLog, LaneBook, Phase, PhaseBreakdown, TxKind};
use crate::bitset::NodeBits;
use crate::energy::{EnergyLedger, RadioModel};
use crate::loss::LossModel;
use crate::message::MessageSizes;
use crate::reliability::{FailureModel, ReliabilityConfig, ReliabilityStats, WaveReport};
use crate::topology::{NodeId, Topology};
use crate::tree::RoutingTree;
use wsn_obs::{HistKind, NodeHistograms, PacketRecord, Recorder, SpanStart};

/// A mergeable convergecast payload.
///
/// Implementations describe both the algebra (how payloads combine) and the
/// wire format (how many bits the payload occupies).
pub trait Aggregate {
    /// Merges `other` into `self` (TAG-style in-network aggregation).
    fn merge(&mut self, other: Self);

    /// Size of this payload on the wire, in bits, excluding headers.
    fn payload_bits(&self, sizes: &MessageSizes) -> u64;

    /// Number of raw measurements contained in the payload, for the
    /// "transmitted values" statistic of §5.1. Defaults to zero for
    /// counter-only payloads.
    fn value_count(&self) -> usize {
        0
    }
}

/// Per-round traffic statistics (§5.1 performance indicators).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficStats {
    /// Messages transmitted (fragments count individually).
    pub messages: u64,
    /// Raw measurements transmitted hop-by-hop (each hop counts).
    pub values: u64,
    /// Total bits on air.
    pub bits: u64,
    /// Convergecast waves executed.
    pub convergecasts: u64,
    /// Broadcast waves executed.
    pub broadcasts: u64,
}

impl TrafficStats {
    /// Component-wise sum.
    pub fn add(&mut self, other: &TrafficStats) {
        self.messages += other.messages;
        self.values += other.values;
        self.bits += other.bits;
        self.convergecasts += other.convergecasts;
        self.broadcasts += other.broadcasts;
    }
}

/// Reusable per-wave scratch buffers, so the convergecast/broadcast hot
/// path performs no heap allocation in steady state. Convergecast buffers
/// are generic over the payload type, so they are stored type-erased and
/// recycled per `(payload type, role)`: the first wave of each combination
/// allocates, every later wave reuses that buffer.
///
/// Scratch holds no observable state — clearing (or cloning to empty) never
/// changes simulation results, only allocation behaviour.
#[derive(Default)]
struct ScratchPool {
    /// One recycled `Vec<Option<T>>` per `(payload type, role)` pair.
    bufs: Vec<((TypeId, u8), Box<dyn Any + Send>)>,
}

/// Scratch roles: the same payload type can need several live buffers in
/// one wave (inbox + caller slots, or the parallel engine's own/acc/out).
mod scratch_role {
    /// Sequential convergecast inbox / parallel per-node accumulator.
    pub const INBOX: u8 = 0;
    /// [`super::Network::convergecast_fill`] contribution slots.
    pub const FILL: u8 = 1;
    /// Parallel engine: prefetched own contributions, group-major.
    pub const OWN: u8 = 2;
    /// Parallel engine: one delivered-to-root payload per subtree group.
    pub const GROUP_OUT: u8 = 3;
}

impl ScratchPool {
    /// Takes the recycled buffer for payload type `T` in `role` (empty on
    /// first use), cleared and resized to `n` empty slots.
    fn take_buf<T: Send + 'static>(&mut self, n: usize, role: u8) -> Vec<Option<T>> {
        let key = (TypeId::of::<Vec<Option<T>>>(), role);
        let mut buf = self
            .bufs
            .iter_mut()
            .find(|(k, _)| *k == key)
            .and_then(|(_, b)| b.downcast_mut::<Vec<Option<T>>>())
            .map(std::mem::take)
            .unwrap_or_default();
        buf.clear();
        buf.resize_with(n, || None);
        buf
    }

    /// Returns a buffer to the pool for later reuse.
    fn put_buf<T: Send + 'static>(&mut self, mut buf: Vec<Option<T>>, role: u8) {
        buf.clear();
        let key = (TypeId::of::<Vec<Option<T>>>(), role);
        match self.bufs.iter_mut().find(|(k, _)| *k == key) {
            Some((_, b)) => {
                if let Some(slot) = b.downcast_mut::<Vec<Option<T>>>() {
                    *slot = buf;
                }
            }
            None => self.bufs.push((key, Box::new(buf))),
        }
    }
}

impl std::fmt::Debug for ScratchPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScratchPool")
            .field("bufs", &self.bufs.len())
            .finish()
    }
}

impl Clone for ScratchPool {
    /// Scratch is not meaningful state; clones start empty.
    fn clone(&self) -> Self {
        ScratchPool::default()
    }
}

/// The simulated network: topology + routing tree + energy accounting.
#[derive(Debug, Clone)]
pub struct Network {
    topo: Topology,
    tree: RoutingTree,
    model: RadioModel,
    sizes: MessageSizes,
    ledger: EnergyLedger,
    stats: TrafficStats,
    loss: Option<LossModel>,
    reliability: ReliabilityConfig,
    rel_stats: ReliabilityStats,
    wave: WaveReport,
    failures: Option<FailureModel>,
    alive: Vec<bool>,
    /// Duty-cycle listen fraction in per-mille (see
    /// [`Network::set_duty_cycle`]); `0` = always-off idle radio, the
    /// pre-dynamics behavior.
    duty_milli: u32,
    /// The protocol phase currently charged for traffic (see
    /// [`Network::set_phase`]).
    phase: Phase,
    phases: PhaseBreakdown,
    /// The service lane (query slot) currently charged for traffic (see
    /// [`Network::set_lane`]); `0` outside multi-query service runs.
    lane: u32,
    /// Per-lane attribution mirroring every [`PhaseBreakdown::charge`], so
    /// multi-query service runs get bit-exact per-query accounting.
    lanes: LaneBook,
    /// Per-round shared-frame state for multi-query rounds (see
    /// [`Network::set_shared_frames`]). Off by default.
    share: SharedWave,
    /// When true, [`Network::end_round`] is deferred: protocol-internal
    /// round boundaries become no-ops and the service runner closes the
    /// real round with [`Network::finish_round`] once every due query has
    /// executed — so shared frames span the whole multi-query round.
    round_hold: bool,
    audit: AuditLog,
    scratch: ScratchPool,
    /// Per-node telemetry histograms (always on: recording is a fixed-size
    /// array increment, allocated once here at construction). Stored in
    /// *wave-slot* order — `hists` slot `s` belongs to the node at
    /// `tree.bottom_up()[s]` — so the convergecast/broadcast engines touch
    /// the 1.1 kB histogram blocks in exactly their iteration order instead
    /// of scattering over node-id order. [`Network::histograms`] assembles
    /// the id-ordered view.
    hists: NodeHistograms,
    /// Node id → histogram storage slot (see `hists`). Tree nodes map to
    /// their `bottom_up` position; nodes outside the routing tree (dead or
    /// orphaned) are packed after them in ascending id order. Rebuilt, with
    /// a matching storage permutation, whenever `fail_round` repairs the
    /// tree.
    hist_slot: Vec<u32>,
    /// Histogram hot cache: one run-length [`HistDelta`] cell per
    /// `(wave slot, HistKind)`, slot-major. The wave engines record through
    /// these cells ([`record_hot`]) so repeated per-node samples touch 16
    /// bytes instead of the full histogram block; [`Network::histograms`]
    /// folds pending runs into its snapshot and [`Network::fail_round`]
    /// flushes them before re-permuting slots.
    hist_hot: Vec<HistDelta>,
    /// Wall-clock span recorder (off by default; see
    /// [`Network::set_telemetry`]).
    recorder: Recorder,
    /// Open span for the current round (null while telemetry is off).
    round_start: SpanStart,
    /// Open span for the current phase (null while telemetry is off).
    phase_start: SpanStart,
    /// Per-wave scratch: delivered-child-payload counts for the fan-in
    /// histogram (cleared each convergecast; no steady-state allocation).
    fanin: Vec<u32>,
    /// Parallel-wave scratch (group-major): payload bits each sender put on
    /// air, recorded by the workers and replayed sequentially.
    wave_bits: Vec<u64>,
    /// Parallel-wave scratch (group-major): value counts per sender.
    wave_vals: Vec<u32>,
    /// Parallel-wave scratch (group-major): which nodes sent at all.
    wave_sent: Vec<bool>,
    /// Worker threads for within-run wave parallelism (see
    /// [`Network::set_wave_workers`]); `1` = sequential.
    wave_workers: usize,
    /// Reusable reception mask for [`Network::broadcast`]; steady-state
    /// broadcasts perform no heap allocation.
    bcast_recv: NodeBits,
}

/// Sends one logical payload over the single link `from → to`, charging
/// energy/stats through split field borrows so the wave engines can iterate
/// the routing tree in place. Returns whether the *entire* payload (every
/// fragment) arrived.
///
/// Without a loss model the link is perfect: the payload is charged in one
/// piece and always arrives (ARQ never acts — there is nothing to
/// retransmit, and link-layer ACKs are not modelled on reliable links).
/// With a loss model every 802.15.4 fragment is lost independently (a
/// ten-fragment histogram really is more fragile than a one-value payload)
/// and, when `arq_retries > 0`, each data frame is acknowledged and
/// retransmitted up to the budget. Retries and ACKs are charged to the
/// ledger like any other traffic; ACK frames count towards bits on air but
/// not towards the message count (§5.1 counts data messages).
#[allow(clippy::too_many_arguments)]
fn send_over_link(
    topo: &Topology,
    model: &RadioModel,
    sizes: &MessageSizes,
    ledger: &mut EnergyLedger,
    stats: &mut TrafficStats,
    rel: &mut ReliabilityStats,
    loss: &mut Option<LossModel>,
    phase: Phase,
    phases: &mut PhaseBreakdown,
    lane: u32,
    lanes: &mut LaneBook,
    audit: &mut AuditLog,
    hists: &mut NodeHistograms,
    hot: &mut [HistDelta],
    rec: &mut Recorder,
    arq_retries: u32,
    from: NodeId,
    // Histogram storage slot of `from` (histograms live in wave-slot
    // order; see `Network::hists`).
    from_slot: usize,
    to: NodeId,
    payload_bits: u64,
    values: usize,
) -> bool {
    let range = topo.radio_range();
    let span = rec.start();
    let round = audit.round();
    stats.values += values as u64;
    let Some(loss) = loss.as_mut() else {
        let (fragments, total_bits) = sizes.fragment(payload_bits);
        let tx = model.tx_energy(total_bits, range);
        let rx = model.rx_energy(total_bits);
        ledger.charge_tx(from, tx);
        // The receiver listens according to its schedule, so it pays for
        // the reception even if the message is corrupted.
        ledger.charge(to, rx);
        stats.messages += fragments;
        stats.bits += total_bits;
        phases.charge(phase, fragments, total_bits, tx + rx);
        lanes.charge(lane, phase, fragments, total_bits, tx + rx);
        audit.record(phase, TxKind::Data, from, to, fragments, total_bits, tx, rx);
        for frag_bits in sizes.fragment_bits(payload_bits) {
            record_hot(hot, hists, from_slot, HistKind::MsgBits, frag_bits);
        }
        record_hot(hot, hists, from_slot, HistKind::Retries, 0);
        rel.delivered += 1;
        rec.end(phase.name(), from.0 + 1, round, span);
        return true;
    };
    let mut all_arrived = true;
    let mut link_retries = 0u64;
    for frag_bits in sizes.fragment_bits(payload_bits) {
        let mut frag_arrived = false;
        let mut attempt = 0u32;
        loop {
            let tx = model.tx_energy(frag_bits, range);
            let rx = model.rx_energy(frag_bits);
            ledger.charge_tx(from, tx);
            ledger.charge(to, rx);
            stats.messages += 1;
            stats.bits += frag_bits;
            phases.charge(phase, 1, frag_bits, tx + rx);
            lanes.charge(lane, phase, 1, frag_bits, tx + rx);
            audit.record(phase, TxKind::Data, from, to, 1, frag_bits, tx, rx);
            record_hot(hot, hists, from_slot, HistKind::MsgBits, frag_bits);
            if attempt > 0 {
                rel.retransmissions += 1;
                link_retries += 1;
                rec.instant("arq_retry", from.0 + 1, round);
            }
            let arrived = !loss.lose();
            frag_arrived |= arrived;
            if arq_retries == 0 {
                // Fire-and-forget: the plain lossy path, no ACKs on air.
                break;
            }
            if arrived {
                // Immediate ACK `to → from`. A lost ACK burns a retry on a
                // harmless duplicate — the data is already through.
                let ack_tx = model.tx_energy(sizes.ack_bits, range);
                let ack_rx = model.rx_energy(sizes.ack_bits);
                ledger.charge_tx(to, ack_tx);
                ledger.charge(from, ack_rx);
                stats.bits += sizes.ack_bits;
                // ACKs hit bits-on-air but not the data-message count.
                phases.charge(phase, 0, sizes.ack_bits, ack_tx + ack_rx);
                lanes.charge(lane, phase, 0, sizes.ack_bits, ack_tx + ack_rx);
                audit.record(
                    phase,
                    TxKind::Ack,
                    to,
                    from,
                    1,
                    sizes.ack_bits,
                    ack_tx,
                    ack_rx,
                );
                rel.acks += 1;
                if !loss.lose() {
                    break;
                }
            }
            if attempt >= arq_retries {
                break;
            }
            attempt += 1;
        }
        all_arrived &= frag_arrived;
    }
    record_hot(hot, hists, from_slot, HistKind::Retries, link_retries);
    if all_arrived {
        rel.delivered += 1;
    } else {
        rel.dropped += 1;
    }
    rec.end(phase.name(), from.0 + 1, round, span);
    all_arrived
}

/// Builds the node-id → histogram-slot map for `tree` (see
/// [`Network::histograms`]): tree nodes take their `bottom_up` position,
/// everyone else is packed afterwards in ascending id order.
fn hist_slots(tree: &RoutingTree, n: usize) -> Vec<u32> {
    let mut slot = vec![u32::MAX; n];
    for (pos, &u) in tree.bottom_up().iter().enumerate() {
        slot[u.index()] = pos as u32;
    }
    let mut next = tree.tree_size() as u32;
    for s in slot.iter_mut() {
        if *s == u32::MAX {
            *s = next;
            next += 1;
        }
    }
    slot
}

/// One run-length cell of the histogram hot cache: `repeat` pending samples
/// of `value`, not yet applied to the 1.1 kB per-node [`NodeHistograms`]
/// block. `repeat == 0` means empty.
///
/// Wave traffic records the *same* value per (node, kind) almost every wave
/// — hop depth and fan-in are topology constants, fragment sizes repeat per
/// payload type, retries are 0 on a perfect channel — so coalescing runs
/// here shrinks the engines' per-wave histogram traffic from the full
/// per-node block to one 16-byte cell (the node's four cells share a cache
/// line). Deferral is exact: histogram counters are plain integers, so
/// applying a run later via [`NodeHistograms::record_n`] yields bit-identical
/// state to recording each sample eagerly.
#[derive(Debug, Clone, Copy, Default)]
struct HistDelta {
    value: u64,
    repeat: u64,
}

/// Records one histogram sample through the hot cache: extends the cell's
/// run when the value repeats, otherwise flushes the old run into `hists`
/// and starts a new one. `hot` is slot-major — the four kinds of wave slot
/// `s` live at `s * HistKind::COUNT ..`, matching `hists` slot order.
#[inline(always)]
fn record_hot(
    hot: &mut [HistDelta],
    hists: &mut NodeHistograms,
    slot: usize,
    kind: HistKind,
    value: u64,
) {
    let cell = &mut hot[slot * HistKind::COUNT + kind.index()];
    if cell.repeat != 0 && cell.value == value {
        cell.repeat += 1;
    } else {
        if cell.repeat != 0 {
            hists.record_n(slot, kind, cell.value, cell.repeat);
        }
        *cell = HistDelta { value, repeat: 1 };
    }
}

/// Shared-frame state for multi-query service rounds: when enabled, the
/// concurrent waves of one round pack their payloads into shared 802.15.4
/// frames per link, so a link that already sent `b` payload bits this round
/// charges a later `p`-bit payload only its *marginal* frames. The
/// invariant (pinned in tests): after sends `p₁..pₖ` over one link in one
/// round, the cumulative bits on air equal
/// `MessageSizes::fragment(p₁ + … + pₖ)` — exactly what one concatenated
/// payload would cost. The first send of a round reproduces the solo
/// `fragment` cost bit for bit, so enabling sharing never *increases* any
/// link's traffic and single-query rounds are unchanged.
///
/// Sharing applies only on lossless wave paths (the sequential fast path,
/// the parallel engine's accounting replay, and lossless broadcasts);
/// lossy/ARQ traffic keeps solo per-payload framing, which only
/// over-approximates — the inequality "shared ≤ solo" still holds.
#[derive(Debug, Clone, Default)]
struct SharedWave {
    enabled: bool,
    /// Payload bits already framed this round per transmitter, upward
    /// (convergecast sends to the parent; one parent per node).
    up: Vec<u64>,
    /// Same, downward (one broadcast transmission reaches all children).
    down: Vec<u64>,
}

impl SharedWave {
    /// Frames a `payload_bits` send over a link that already carried
    /// `*accum` payload bits this round, advancing the accumulator.
    /// Returns `(new_fragments, bits_on_air)` — the marginal cost.
    #[inline]
    fn frame(accum: &mut u64, payload_bits: u64, sizes: &MessageSizes) -> (u64, u64) {
        let before = *accum;
        *accum = before + payload_bits;
        if before == 0 {
            // First payload on this link this round: exactly the solo cost.
            return sizes.fragment(payload_bits);
        }
        if payload_bits == 0 {
            // Free piggyback on frames already on air.
            return (0, 0);
        }
        let mp = sizes.max_payload_bits.max(1);
        let frames = |p: u64| p.div_ceil(mp).max(1);
        let new = frames(before + payload_bits) - frames(before);
        (new, payload_bits + new * sizes.header_bits)
    }

    /// Clears the per-round accumulators (keeps capacity).
    fn reset(&mut self) {
        self.up.iter_mut().for_each(|b| *b = 0);
        self.down.iter_mut().for_each(|b| *b = 0);
    }
}

impl Network {
    /// Assembles a network from its parts.
    pub fn new(topo: Topology, tree: RoutingTree, model: RadioModel, sizes: MessageSizes) -> Self {
        let n = topo.len();
        assert_eq!(n, tree.len(), "tree and topology disagree on node count");
        if let Err(e) = sizes.validate() {
            panic!("invalid MessageSizes: {e}");
        }
        let hist_slot = hist_slots(&tree, n);
        Network {
            topo,
            tree,
            model,
            sizes,
            ledger: EnergyLedger::new(n),
            stats: TrafficStats::default(),
            loss: None,
            reliability: ReliabilityConfig::default(),
            rel_stats: ReliabilityStats::default(),
            wave: WaveReport::default(),
            failures: None,
            alive: vec![true; n],
            duty_milli: 0,
            phase: Phase::default(),
            phases: PhaseBreakdown::default(),
            lane: 0,
            lanes: {
                let mut book = LaneBook::default();
                // Pre-size lane 0 so default (single-lane) runs never
                // allocate on the warm path.
                book.charge(0, Phase::Other, 0, 0, 0.0);
                book
            },
            share: SharedWave::default(),
            round_hold: false,
            audit: AuditLog::default(),
            scratch: ScratchPool::default(),
            hists: NodeHistograms::new(n),
            hist_slot,
            hist_hot: vec![HistDelta::default(); n * HistKind::COUNT],
            recorder: Recorder::default(),
            round_start: SpanStart::default(),
            phase_start: SpanStart::default(),
            fanin: Vec::new(),
            wave_bits: Vec::new(),
            wave_vals: Vec::new(),
            wave_sent: Vec::new(),
            wave_workers: 1,
            bcast_recv: NodeBits::new(),
        }
    }

    /// Sets the number of worker threads used *within* convergecast waves:
    /// disjoint root subtrees are aggregated concurrently and every
    /// ledger/stats/audit/histogram update is then replayed in the exact
    /// sequential wave order, so results are **bit-identical at any worker
    /// count**. Parallelism only engages on lossless waves driven through
    /// [`Network::convergecast_slots`] with the span recorder off; all
    /// other paths fall back to the (identical) sequential engine.
    pub fn set_wave_workers(&mut self, workers: usize) {
        self.wave_workers = workers.max(1);
    }

    /// The configured within-wave worker count.
    pub fn wave_workers(&self) -> usize {
        self.wave_workers
    }

    /// Sets the protocol phase that subsequent traffic is attributed to
    /// (per-phase counters and audit events). Protocols call this at each
    /// step boundary; the phase sticks until changed. With telemetry on, a
    /// phase change closes the open phase span and opens the next.
    pub fn set_phase(&mut self, phase: Phase) {
        if phase != self.phase && self.recorder.is_enabled() {
            self.recorder
                .end(self.phase.name(), 0, self.audit.round(), self.phase_start);
            self.phase_start = self.recorder.start();
        }
        self.phase = phase;
    }

    /// The phase currently charged for traffic.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// Per-phase traffic/energy attribution since construction.
    pub fn phases(&self) -> &PhaseBreakdown {
        &self.phases
    }

    /// Sets the service lane (query slot) that subsequent traffic is
    /// attributed to, in both the live [`LaneBook`] and the audit log's
    /// events. Sticky until changed; `0` is the default lane. The service
    /// runner sets this before executing each query's waves so per-query
    /// charges stay bit-exact.
    pub fn set_lane(&mut self, lane: u32) {
        self.lane = lane;
        self.audit.set_lane(lane);
        // Pre-size the book outside the hot path, so switching lanes never
        // allocates mid-wave.
        self.lanes.charge(lane, Phase::Other, 0, 0, 0.0);
    }

    /// The lane currently charged for traffic.
    pub fn lane(&self) -> u32 {
        self.lane
    }

    /// Per-lane traffic/energy attribution since construction (lane 0
    /// holds everything unless [`Network::set_lane`] was used).
    pub fn lane_book(&self) -> &LaneBook {
        &self.lanes
    }

    /// Enables or disables shared-frame packing for multi-query rounds
    /// (the internal `SharedWave` accumulators): concurrent waves of one
    /// round share 802.15.4
    /// frames per link, so each extra payload pays only its marginal
    /// frames. Applies to lossless wave traffic only; accumulators reset
    /// at every [`Network::end_round`]. Off by default — the disabled path
    /// is byte-identical to releases without this feature.
    pub fn set_shared_frames(&mut self, on: bool) {
        self.share.enabled = on;
        let n = self.len();
        if on {
            self.share.up.resize(n, 0);
            self.share.down.resize(n, 0);
        }
        self.share.reset();
    }

    /// Whether shared-frame packing is active.
    pub fn shared_frames(&self) -> bool {
        self.share.enabled
    }

    /// Holds or releases round boundaries. While held, protocol-internal
    /// [`Network::end_round`] calls are no-ops; the caller closes each
    /// real round with [`Network::finish_round`]. The multi-query service
    /// runner holds rounds so that all due queries execute inside one
    /// accounting round (one ledger snapshot, one shared-frame window).
    pub fn set_round_hold(&mut self, on: bool) {
        self.round_hold = on;
    }

    /// Closes the current round even while a round hold is active.
    pub fn finish_round(&mut self) {
        let hold = self.round_hold;
        self.round_hold = false;
        self.end_round();
        self.round_hold = hold;
    }

    /// Enables or disables transmission-event recording. Enable *before*
    /// any traffic flows: [`crate::audit::EnergyAuditor::verify`] can only
    /// reconcile a ledger whose every charge was witnessed.
    pub fn set_audit(&mut self, on: bool) {
        self.audit.set_enabled(on);
    }

    /// The transmission log (empty unless auditing is enabled).
    pub fn audit_log(&self) -> &AuditLog {
        &self.audit
    }

    /// Enables or disables wall-clock span recording (rounds, phases,
    /// waves, per-link transmissions, ARQ retries). Off by default: a
    /// disabled recorder costs one branch per tap point and never reads
    /// the clock or allocates, so untelemetered runs stay bit-identical
    /// and allocation-free. Enabling resets the span clock to now.
    pub fn set_telemetry(&mut self, on: bool) {
        self.recorder.set_enabled(on);
        self.round_start = self.recorder.start();
        self.phase_start = self.recorder.start();
    }

    /// Whether span recording is active.
    pub fn telemetry_enabled(&self) -> bool {
        self.recorder.is_enabled()
    }

    /// The span recorder (its events feed [`wsn_obs::export::chrome_trace`]).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Per-node telemetry histograms: message bits, hop depth, ARQ
    /// retries, convergecast fan-in. Always recorded (array increments on
    /// the hot path, no allocation). Internally the sets live in wave-slot
    /// order for locality; this assembles an id-ordered copy (index `i` =
    /// node `i`), so call it per run, not per round.
    pub fn histograms(&self) -> NodeHistograms {
        let mut out = self.hists.clone();
        // Fold the hot cache's pending runs into the snapshot (the live
        // cells stay put — this is a read). Exact: see [`HistDelta`].
        for (i, cell) in self.hist_hot.iter().enumerate() {
            if cell.repeat != 0 {
                out.record_n(
                    i / HistKind::COUNT,
                    HistKind::ALL[i % HistKind::COUNT],
                    cell.value,
                    cell.repeat,
                );
            }
        }
        out.reindex(|id| self.hist_slot[id] as usize);
        out
    }

    /// The packet capture of the run so far (requires
    /// [`Network::set_audit`] before traffic flows; empty otherwise).
    pub fn capture(&self) -> Vec<PacketRecord> {
        self.audit.capture()
    }

    /// Enables Bernoulli message loss (the §6 future-work extension).
    /// Without a reliability layer, protocols are *not* informed of losses;
    /// the resulting rank error is what the loss experiments measure. With
    /// one ([`Network::set_reliability`]), ARQ and wave recovery fight the
    /// losses and [`Network::last_wave`] reports what still went missing.
    pub fn set_loss(&mut self, loss: Option<LossModel>) {
        self.loss = loss;
    }

    /// Configures the reliability layer (per-link ARQ retries and end-to-end
    /// recovery passes). The default config reproduces the plain lossy path
    /// bit for bit. Reliability only acts when a loss model is installed.
    pub fn set_reliability(&mut self, cfg: ReliabilityConfig) {
        self.reliability = cfg;
    }

    /// The active reliability configuration.
    pub fn reliability(&self) -> ReliabilityConfig {
        self.reliability
    }

    /// Cumulative reliability counters (retransmissions, ACKs, recoveries,
    /// failures, …).
    pub fn reliability_stats(&self) -> &ReliabilityStats {
        &self.rel_stats
    }

    /// Report of the most recent convergecast wave: who sent, and the roots
    /// of the subtrees whose contribution never reached the sink.
    pub fn last_wave(&self) -> &WaveReport {
        &self.wave
    }

    /// Marks, in a caller-owned mask (cleared and resized in place), every
    /// node whose contribution to the most recent convergecast failed to
    /// reach the sink: the union of the subtrees under
    /// [`WaveReport::dropped_roots`].
    pub fn mark_dropped_subtrees(&self, mask: &mut Vec<bool>) {
        mask.clear();
        mask.resize(self.len(), false);
        for &r in &self.wave.dropped_roots {
            self.tree.mark_subtree(r, mask);
        }
    }

    /// Installs (or removes) the crash-stop node-failure process.
    pub fn set_failures(&mut self, failures: Option<FailureModel>) {
        self.failures = failures;
    }

    /// Per-node liveness under the crash-stop failure process (all `true`
    /// without one; the root never fails).
    pub fn alive(&self) -> &[bool] {
        &self.alive
    }

    /// True iff `id` is alive *and* connected to the sink through the
    /// current (possibly repaired) routing tree.
    pub fn is_reachable(&self, id: NodeId) -> bool {
        self.alive[id.index()] && self.tree.contains(id)
    }

    /// Advances the failure process by one round: every live sensor dies
    /// independently with the model's probability, and if anyone died the
    /// routing tree is repaired over the surviving disk graph
    /// ([`RoutingTree::spanning_alive`]), re-parenting orphaned subtrees
    /// where a path exists. Returns the number of nodes that died this
    /// round. A no-op without a failure model.
    pub fn fail_round(&mut self) -> usize {
        let Some(fm) = self.failures.as_mut() else {
            return 0;
        };
        let mut newly = 0usize;
        for alive in self.alive.iter_mut().skip(1) {
            if *alive && fm.strike() {
                *alive = false;
                newly += 1;
            }
        }
        if newly > 0 {
            self.rel_stats.failed_nodes += newly as u64;
            let (tree, orphans) = RoutingTree::spanning_alive(&self.topo, &self.alive);
            self.install_tree(tree, orphans.len());
            self.rel_stats.repairs += 1;
        }
        newly
    }

    /// Installs a freshly built routing tree, re-permuting the
    /// wave-slot-ordered histogram storage so every node keeps its own
    /// history under the new slot map, and updating the orphan count.
    /// Shared by failure-driven repairs ([`Network::fail_round`]) and
    /// dynamics-driven rebuilds ([`Network::dynamics_rebuild`]); charges
    /// nothing.
    fn install_tree(&mut self, tree: RoutingTree, orphans: usize) {
        let n = self.len();
        // Flush the hot cache first: its cells are keyed by the *old*
        // wave slots, which the permutation below is about to re-map.
        for (i, cell) in self.hist_hot.iter_mut().enumerate() {
            if cell.repeat != 0 {
                self.hists.record_n(
                    i / HistKind::COUNT,
                    HistKind::ALL[i % HistKind::COUNT],
                    cell.value,
                    cell.repeat,
                );
                *cell = HistDelta::default();
            }
        }
        let old = std::mem::replace(&mut self.hist_slot, hist_slots(&tree, n));
        let mut id_of_slot = vec![0u32; n];
        for (id, &s) in self.hist_slot.iter().enumerate() {
            id_of_slot[s as usize] = id as u32;
        }
        self.hists.reindex(|s| old[id_of_slot[s] as usize] as usize);
        self.tree = tree;
        self.rel_stats.orphaned_nodes = orphans as u64;
    }

    /// Flips the liveness of one sensor without rebuilding anything — the
    /// churn process toggles bits first, then forces one
    /// [`Network::dynamics_rebuild`] covering every change. Joins
    /// (re-)enable a node that the crash-stop process or an earlier churn
    /// departure had removed; the node universe itself never changes size.
    ///
    /// # Panics
    /// Panics on the root: the sink neither departs nor joins.
    pub fn set_node_alive(&mut self, id: NodeId, alive: bool) {
        assert!(!id.is_root(), "the sink cannot churn");
        self.alive[id.index()] = alive;
    }

    /// Rebuilds the routing tree after a dynamics event: optionally
    /// installs a re-derived disk graph (mobility moved the nodes), spans
    /// the surviving nodes over it ([`RoutingTree::spanning_alive`]), and
    /// charges a *beacon wave* under [`Phase::Rebuild`] — every non-root
    /// tree node confirms its (possibly new) parent link with one
    /// counter-sized control message, in wave order. Beacons are control
    /// traffic on a freshly negotiated link, so they bypass the loss model
    /// (the fate stream is untouched); they do count as ordinary data
    /// messages in traffic stats, histograms and the audit log, which is
    /// what lets the auditor replay rebuild joules bit-exactly.
    ///
    /// Returns the number of orphaned (alive but disconnected) sensors.
    ///
    /// # Panics
    /// Panics if `topo` disagrees with the node universe size.
    pub fn dynamics_rebuild(&mut self, topo: Option<Topology>) -> usize {
        if let Some(t) = topo {
            assert_eq!(
                t.len(),
                self.len(),
                "dynamics cannot resize the node universe"
            );
            self.topo = t;
        }
        let (tree, orphans) = RoutingTree::spanning_alive(&self.topo, &self.alive);
        let orphan_count = orphans.len();
        self.install_tree(tree, orphan_count);
        self.rel_stats.rebuilds += 1;

        // Beacon wave over the new tree, lossless by construction.
        let saved_loss = self.loss.take();
        let beacon_bits = self.sizes.counter_bits;
        for s in 0..self.tree.tree_size() {
            let u = self.tree.bottom_up()[s];
            let Some(parent) = self.tree.parent(u) else {
                continue; // the root reports to no one
            };
            send_over_link(
                &self.topo,
                &self.model,
                &self.sizes,
                &mut self.ledger,
                &mut self.stats,
                &mut self.rel_stats,
                &mut self.loss,
                Phase::Rebuild,
                &mut self.phases,
                self.lane,
                &mut self.lanes,
                &mut self.audit,
                &mut self.hists,
                &mut self.hist_hot,
                &mut self.recorder,
                0,
                u,
                s,
                parent,
                beacon_bits,
                0,
            );
        }
        self.loss = saved_loss;
        orphan_count
    }

    /// Sets the duty-cycle listen fraction in per-mille of a round
    /// (`0..=1000`). A duty-cycled radio stays awake listening for that
    /// fraction of every round even when nothing is addressed to it;
    /// [`Network::end_round`] charges each live sensor the rx-priced cost
    /// of a `duty_milli`-bit listen window and witnesses it with a
    /// [`TxKind::Idle`] audit event. `0` (the default) charges nothing and
    /// emits nothing — byte-identical to the pre-dynamics engine. `1000`
    /// is an always-on receiver.
    ///
    /// # Panics
    /// Panics when `duty_milli > 1000`.
    pub fn set_duty_cycle(&mut self, duty_milli: u32) {
        assert!(duty_milli <= 1000, "duty cycle is per-mille");
        self.duty_milli = duty_milli;
    }

    /// The duty-cycle listen fraction in per-mille.
    pub fn duty_cycle(&self) -> u32 {
        self.duty_milli
    }

    /// Retunes the installed loss model's probability in place (the drift
    /// schedule's per-round update). The fate stream keeps its position,
    /// so drift-free and drift-pinned runs draw identical sequences. A
    /// no-op when no loss model is installed.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0` (with a loss model installed).
    pub fn set_loss_probability(&mut self, p: f64) {
        if let Some(loss) = self.loss.as_mut() {
            loss.set_probability(p);
        }
    }

    /// Number of nodes including the root.
    pub fn len(&self) -> usize {
        self.topo.len()
    }

    /// Never true.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of sensor nodes `|N|`.
    pub fn sensor_count(&self) -> usize {
        self.topo.sensor_count()
    }

    /// The routing tree.
    pub fn tree(&self) -> &RoutingTree {
        &self.tree
    }

    /// The topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Message sizing constants.
    pub fn sizes(&self) -> &MessageSizes {
        &self.sizes
    }

    /// Radio model parameters.
    pub fn model(&self) -> &RadioModel {
        &self.model
    }

    /// The energy ledger (read access for metrics).
    pub fn ledger(&self) -> &EnergyLedger {
        &self.ledger
    }

    /// Cumulative traffic statistics.
    pub fn stats(&self) -> &TrafficStats {
        &self.stats
    }

    /// Marks the end of a protocol round in the ledger (and, when auditing,
    /// snapshots the per-node account so the auditor can reconcile every
    /// round boundary, not just final totals). With telemetry on, closes
    /// the round's phase and round spans and opens the next round's.
    pub fn end_round(&mut self) {
        if self.round_hold {
            return;
        }
        let round = self.audit.round();
        if self.share.enabled {
            self.share.reset();
        }
        if self.duty_milli > 0 {
            // Idle listening: each live sensor pays the rx-priced cost of
            // keeping its radio awake for `duty_milli`‰ of the round, in
            // ascending node-id order (a deterministic charge order the
            // auditor replays). Nothing is on the air: traffic stats and
            // histograms are untouched; the audit log witnesses every
            // charge as a `TxKind::Idle` event with `src == dst`.
            let bits = self.duty_milli as u64;
            let rx = self.model.rx_energy(bits);
            for i in 1..self.alive.len() {
                if !self.alive[i] {
                    continue;
                }
                let id = NodeId(i as u32);
                self.ledger.charge(id, rx);
                self.phases.charge(Phase::Other, 0, 0, rx);
                self.lanes.charge(self.lane, Phase::Other, 0, 0, rx);
                self.audit
                    .record(Phase::Other, TxKind::Idle, id, id, 0, bits, 0.0, rx);
            }
        }
        self.ledger.end_round();
        self.audit.end_round(
            self.ledger.consumed_per_node(),
            self.ledger.consumed_tx_per_node(),
        );
        if self.recorder.is_enabled() {
            self.recorder
                .end(self.phase.name(), 0, round, self.phase_start);
            self.recorder.end("round", 0, round, self.round_start);
            self.round_start = self.recorder.start();
            self.phase_start = self.recorder.start();
        }
    }

    /// Charges one unicast transmission of `payload_bits` from `from` to its
    /// parent, with fragmentation, and returns whether the (entire) payload
    /// arrived. Used internally and exposed for custom protocol steps.
    pub fn charge_unicast_up(&mut self, from: NodeId, payload_bits: u64, values: usize) -> bool {
        let to = self
            .tree
            .parent(from)
            .expect("root has no parent to send to");
        let from_slot = self
            .tree
            .wave_slot(from)
            .expect("sender with a parent is in the tree");
        send_over_link(
            &self.topo,
            &self.model,
            &self.sizes,
            &mut self.ledger,
            &mut self.stats,
            &mut self.rel_stats,
            &mut self.loss,
            self.phase,
            &mut self.phases,
            self.lane,
            &mut self.lanes,
            &mut self.audit,
            &mut self.hists,
            &mut self.hist_hot,
            &mut self.recorder,
            self.reliability.max_retries,
            from,
            from_slot,
            to,
            payload_bits,
            values,
        )
    }

    /// Runs a convergecast. `local` yields each *sensor* node's own
    /// contribution (the root takes no measurements). Returns the aggregate
    /// that reaches the root, or `None` if every node stayed silent.
    pub fn convergecast<T: Aggregate + Send + 'static>(
        &mut self,
        local: impl FnMut(NodeId) -> Option<T>,
    ) -> Option<T> {
        self.convergecast_with(local, |_, _| {})
    }

    /// Runs a convergecast where every sending node may prune/transform the
    /// merged payload before forwarding it (`prune` receives the node id and
    /// the payload about to be sent — or, at the root, the final payload).
    ///
    /// Pruning at the root is deliberate: the root applies the same logic
    /// (e.g. keeping the `f` largest values) when consuming the data.
    pub fn convergecast_with<T: Aggregate + Send + 'static>(
        &mut self,
        mut local: impl FnMut(NodeId) -> Option<T>,
        mut prune: impl FnMut(NodeId, &mut T),
    ) -> Option<T> {
        self.stats.convergecasts += 1;
        self.wave.clear();
        let tsize = self.tree.tree_size();
        let mut inbox = self.scratch.take_buf::<T>(tsize, scratch_role::INBOX);

        // Split field borrows: the traversal reads the tree while the
        // charging mutates ledger/stats/loss, so the wave walks
        // `bottom_up()` in place instead of cloning the order.
        let Network {
            tree,
            topo,
            model,
            sizes,
            ledger,
            stats,
            loss,
            reliability,
            rel_stats,
            wave,
            phase,
            phases,
            lane,
            lanes,
            share,
            audit,
            hists,
            hist_hot,
            recorder,
            fanin,
            ..
        } = self;
        let arq = reliability.max_retries;
        let phase = *phase;
        let lane = *lane;
        let wave_span = recorder.start();
        let round = audit.round();
        fanin.clear();
        fanin.resize(tsize, 0);

        let order = tree.bottom_up();
        let parent_slot = tree.parent_slots();
        let level_offsets = tree.level_offsets();
        // Hoisted per-bit energy coefficients: bit-exact against
        // `tx_energy`/`rx_energy` (see [`RadioModel::tx_coef`]), so the
        // `powf` leaves the per-sender path.
        let tx_coef = model.tx_coef(topo.radio_range());
        let rx_coef = model.rx_coef();
        // On a perfect channel with the span recorder off, every link send
        // is the same straight-line accounting sequence: inline it and keep
        // `send_over_link` for the lossy/telemetered cases. The inlined
        // block below mirrors its lossless branch statement for statement.
        let fast = loss.is_none() && !recorder.is_enabled();

        // (holder, origin, payload): payloads that died on a link, stashed
        // at the last node that held them so the recovery passes can resume
        // the climb where it stopped. `origin` is the node that first sent
        // the payload — the root of the subtree whose contributions it
        // carries (the tree gives a unique path, so the subtrees of the
        // origins are exactly the unaccounted nodes, with no overlap).
        let mut stranded: Vec<(NodeId, NodeId, T)> = Vec::new();

        // Level-batched waves over the struct-of-arrays order: each run of
        // `bottom_up` is one tree level (deepest first, children before
        // parents), so by the time a run starts, every inbox in it already
        // holds the merged payloads of its children, written by the
        // previous (denser) run. Depth is constant per run; inbox, fan-in
        // and histograms are indexed by wave slot, i.e. walked densely in
        // exactly this order. The final run is the root alone — its inbox
        // is collected after the loop.
        for lvl in 0..tree.levels().saturating_sub(1) {
            let start = level_offsets[lvl] as usize;
            let end = level_offsets[lvl + 1] as usize;
            let depth = tree.depth(order[start]) as u64;
            for pos in start..end {
                let u = order[pos];
                let from_children = inbox[pos].take();
                let own = local(u);
                let merged_in = fanin[pos] as u64 + own.is_some() as u64;
                let combined = match (from_children, own) {
                    (Some(mut a), Some(b)) => {
                        a.merge(b);
                        Some(a)
                    }
                    (Some(a), None) => Some(a),
                    (None, Some(b)) => Some(b),
                    (None, None) => None,
                };
                let Some(mut payload) = combined else {
                    continue;
                };
                prune(u, &mut payload);
                wave.senders += 1;
                record_hot(hist_hot, hists, pos, HistKind::HopDepth, depth);
                record_hot(hist_hot, hists, pos, HistKind::FanIn, merged_in);
                let bits = payload.payload_bits(sizes);
                let pslot = parent_slot[pos] as usize;
                let parent = order[pslot];
                let arrived = if fast {
                    stats.values += payload.value_count() as u64;
                    let (fragments, total_bits) = if share.enabled {
                        SharedWave::frame(&mut share.up[u.index()], bits, sizes)
                    } else {
                        sizes.fragment(bits)
                    };
                    let tx = total_bits as f64 * tx_coef;
                    let rx = total_bits as f64 * rx_coef;
                    ledger.charge_tx(u, tx);
                    ledger.charge(parent, rx);
                    stats.messages += fragments;
                    stats.bits += total_bits;
                    phases.charge(phase, fragments, total_bits, tx + rx);
                    lanes.charge(lane, phase, fragments, total_bits, tx + rx);
                    audit.record(
                        phase,
                        TxKind::Data,
                        u,
                        parent,
                        fragments,
                        total_bits,
                        tx,
                        rx,
                    );
                    if share.enabled {
                        // Marginal frames under sharing: one sample per new
                        // frame (keeps the MsgBits-count == messages
                        // invariant; sizes are the per-frame average).
                        for _ in 0..fragments {
                            record_hot(
                                hist_hot,
                                hists,
                                pos,
                                HistKind::MsgBits,
                                total_bits / fragments.max(1),
                            );
                        }
                    } else {
                        for frag_bits in sizes.fragment_bits(bits) {
                            record_hot(hist_hot, hists, pos, HistKind::MsgBits, frag_bits);
                        }
                    }
                    record_hot(hist_hot, hists, pos, HistKind::Retries, 0);
                    rel_stats.delivered += 1;
                    true
                } else {
                    send_over_link(
                        topo,
                        model,
                        sizes,
                        ledger,
                        stats,
                        rel_stats,
                        loss,
                        phase,
                        phases,
                        lane,
                        lanes,
                        audit,
                        hists,
                        hist_hot,
                        recorder,
                        arq,
                        u,
                        pos,
                        parent,
                        bits,
                        payload.value_count(),
                    )
                };
                if arrived {
                    fanin[pslot] += 1;
                    match &mut inbox[pslot] {
                        Some(existing) => existing.merge(payload),
                        None => inbox[pslot] = Some(payload),
                    }
                } else if reliability.recovery_passes > 0 {
                    stranded.push((u, u, payload));
                } else {
                    wave.dropped_roots.push(u);
                }
            }
        }
        // The root is always the last wave slot (the only depth-0 node).
        let mut result = inbox[tsize - 1].take();

        // Recovery passes: stranded payloads resume their climb towards the
        // root hop by hop, each hop a fresh (ARQ-protected) transmission.
        // Recovered payloads merge directly into the root's aggregate —
        // the intermediate nodes already forwarded their own wave upward.
        let mut pass = 0;
        while !stranded.is_empty() && pass < reliability.recovery_passes {
            pass += 1;
            let mut still = Vec::new();
            for (start, origin, payload) in stranded {
                let bits = payload.payload_bits(sizes);
                let values = payload.value_count();
                let mut at = start;
                let delivered = loop {
                    let parent = tree.parent(at).expect("stranded below the root");
                    let at_slot = tree.wave_slot(at).expect("stranded node is in the tree");
                    // Recovery climbs are reliability traffic, whatever
                    // phase stranded the payload.
                    let arrived = send_over_link(
                        topo,
                        model,
                        sizes,
                        ledger,
                        stats,
                        rel_stats,
                        loss,
                        Phase::Recovery,
                        phases,
                        lane,
                        lanes,
                        audit,
                        hists,
                        hist_hot,
                        recorder,
                        arq,
                        at,
                        at_slot,
                        parent,
                        bits,
                        values,
                    );
                    if !arrived {
                        break false;
                    }
                    if parent.is_root() {
                        break true;
                    }
                    at = parent;
                };
                if delivered {
                    rel_stats.recovered += 1;
                    match result.as_mut() {
                        Some(existing) => (*existing).merge(payload),
                        None => result = Some(payload),
                    }
                } else {
                    still.push((at, origin, payload));
                }
            }
            stranded = still;
        }
        for (_, origin, _) in &stranded {
            wave.dropped_roots.push(*origin);
        }

        recorder.end("convergecast", 0, round, wave_span);

        // The root applies its prune exactly once, after recovery merged in
        // the late arrivals (it applies the same logic when consuming the
        // data, e.g. keeping the `f` largest values).
        if let Some(p) = result.as_mut() {
            prune(NodeId::ROOT, p);
        }
        self.scratch.put_buf(inbox, scratch_role::INBOX);
        result
    }

    /// Runs a convergecast whose contributions are already materialised in
    /// a per-node slot array: `contributions[i]` is node `i`'s payload,
    /// taken by the engine (slots of nodes outside the routing tree are
    /// left in place). Behaves exactly like [`Network::convergecast_with`]
    /// with a take-from-slot closure — but this is the entry point where
    /// within-run parallelism engages (see [`Network::set_wave_workers`]):
    /// on a lossless channel, with the span recorder off and at least two
    /// root subtrees, disjoint subtrees are aggregated concurrently and
    /// every ledger/stats/audit/histogram update is replayed in the exact
    /// sequential wave order afterwards, so results are **bit-identical at
    /// any worker count**.
    ///
    /// `prune` must be a pure per-payload transformation (hence the `Fn +
    /// Sync` bound): the parallel path applies it from worker threads, in
    /// a different global order than the sequential wave.
    pub fn convergecast_slots<T: Aggregate + Send + 'static>(
        &mut self,
        contributions: &mut [Option<T>],
        prune: impl Fn(NodeId, &mut T) + Sync,
    ) -> Option<T> {
        assert_eq!(contributions.len(), self.len(), "one slot per node");
        let parallel = self.wave_workers > 1
            && self.loss.is_none()
            && !self.recorder.is_enabled()
            && self.tree.groups() >= 2;
        if !parallel {
            return self.convergecast_with(|u| contributions[u.index()].take(), prune);
        }
        self.convergecast_parallel(contributions, &prune)
    }

    /// Runs a convergecast whose contributions come from a closure, like
    /// [`Network::convergecast_with`], but routed through
    /// [`Network::convergecast_slots`] so within-run parallelism can
    /// engage: `fill` is first materialised into a recycled per-node slot
    /// buffer (called once per tree node, in the exact sequential wave
    /// order), then the slots are aggregated. `fill` must not rely on
    /// being interleaved with the wave's sends — true for every protocol
    /// in this repository, whose contributions are pure reads of per-node
    /// state.
    pub fn convergecast_fill<T: Aggregate + Send + 'static>(
        &mut self,
        mut fill: impl FnMut(NodeId) -> Option<T>,
        prune: impl Fn(NodeId, &mut T) + Sync,
    ) -> Option<T> {
        let n = self.len();
        let mut slots = self.scratch.take_buf::<T>(n, scratch_role::FILL);
        for &u in self.tree.bottom_up() {
            if !u.is_root() {
                slots[u.index()] = fill(u);
            }
        }
        let result = self.convergecast_slots(&mut slots, prune);
        self.scratch.put_buf(slots, scratch_role::FILL);
        result
    }

    /// The parallel wave engine behind [`Network::convergecast_slots`].
    ///
    /// **Phase A** assigns contiguous runs of whole root subtrees
    /// ("groups", balanced by node count) to scoped worker threads. Each
    /// worker aggregates its groups in group-major order — within a group
    /// that is exactly the sequential `bottom_up` order, so every parent's
    /// inbox receives its children's payloads in the sequential merge
    /// order and the resulting payloads are bit-identical. Workers touch
    /// only disjoint slices and record per-sender wire sizes; they never
    /// see the ledger, stats, audit log, or histograms.
    ///
    /// **Phase B** replays the accounting of every send sequentially in
    /// wave-slot order — the exact order the sequential engine charges in,
    /// which pins the floating-point addition order bit for bit. Finally
    /// the root merges the per-group results in *reverse* group order:
    /// level-1 of `bottom_up` visits the root's children in reverse
    /// `children(root)` order, so that is the order their payloads reached
    /// the root's inbox sequentially.
    fn convergecast_parallel<T: Aggregate + Send + 'static>(
        &mut self,
        contributions: &mut [Option<T>],
        prune: &(impl Fn(NodeId, &mut T) + Sync),
    ) -> Option<T> {
        self.stats.convergecasts += 1;
        self.wave.clear();
        let tsize = self.tree.tree_size();
        let gsize = tsize - 1;
        let groups = self.tree.groups();
        let workers = self.wave_workers.min(groups);
        let mut own = self.scratch.take_buf::<T>(gsize, scratch_role::OWN);
        let mut acc = self.scratch.take_buf::<T>(gsize, scratch_role::INBOX);
        let mut group_out = self.scratch.take_buf::<T>(groups, scratch_role::GROUP_OUT);

        let Network {
            tree,
            topo,
            model,
            sizes,
            ledger,
            stats,
            rel_stats,
            wave,
            phase,
            phases,
            lane,
            lanes,
            share,
            audit,
            hists,
            hist_hot,
            fanin,
            wave_bits,
            wave_vals,
            wave_sent,
            ..
        } = self;
        let phase = *phase;
        let lane = *lane;
        let go = tree.group_order();
        let offs = tree.group_offsets();
        let gparent = tree.group_parent();

        // Prefetch contributions into group-major order (sequential: the
        // slot array is exclusively borrowed) and zero the send records.
        for (j, &u) in go.iter().enumerate() {
            own[j] = contributions[u.index()].take();
        }
        fanin.clear();
        fanin.resize(gsize, 0);
        wave_bits.clear();
        wave_bits.resize(gsize, 0);
        wave_vals.clear();
        wave_vals.resize(gsize, 0);
        wave_sent.clear();
        wave_sent.resize(gsize, false);

        // Chunk boundaries: worker `k` starts at the first group whose
        // node offset reaches `k/workers` of the nodes, so chunks are
        // contiguous runs of whole groups with balanced node counts.
        let bounds: Vec<usize> = (0..=workers)
            .map(|k| offs.partition_point(|&o| (o as usize) < k * gsize / workers))
            .collect();

        std::thread::scope(|s| {
            let mut own_rest = &mut own[..];
            let mut acc_rest = &mut acc[..];
            let mut fan_rest = &mut fanin[..];
            let mut bits_rest = &mut wave_bits[..];
            let mut vals_rest = &mut wave_vals[..];
            let mut sent_rest = &mut wave_sent[..];
            let mut gout_rest = &mut group_out[..];
            for w in 0..workers {
                let (g0, g1) = (bounds[w], bounds[w + 1]);
                if g0 == g1 {
                    continue;
                }
                let base = offs[g0] as usize;
                let len = offs[g1] as usize - base;
                let (own_c, r) = own_rest.split_at_mut(len);
                own_rest = r;
                let (acc_c, r) = acc_rest.split_at_mut(len);
                acc_rest = r;
                let (fan_c, r) = fan_rest.split_at_mut(len);
                fan_rest = r;
                let (bits_c, r) = bits_rest.split_at_mut(len);
                bits_rest = r;
                let (vals_c, r) = vals_rest.split_at_mut(len);
                vals_rest = r;
                let (sent_c, r) = sent_rest.split_at_mut(len);
                sent_rest = r;
                let (gout_c, r) = gout_rest.split_at_mut(g1 - g0);
                gout_rest = r;
                let ids = &go[base..base + len];
                let gp = &gparent[base..base + len];
                let goffs = &offs[g0..=g1];
                let sizes: &MessageSizes = sizes;
                s.spawn(move || {
                    let mut g_local = 0usize;
                    for j in 0..len {
                        // Group tops are each group's last node, so the
                        // current group advances at run boundaries.
                        while base + j >= goffs[g_local + 1] as usize {
                            g_local += 1;
                        }
                        let from_children = acc_c[j].take();
                        let own_p = own_c[j].take();
                        let merged_in = fan_c[j] + own_p.is_some() as u32;
                        let combined = match (from_children, own_p) {
                            (Some(mut a), Some(b)) => {
                                a.merge(b);
                                Some(a)
                            }
                            (Some(a), None) => Some(a),
                            (None, Some(b)) => Some(b),
                            (None, None) => None,
                        };
                        let Some(mut payload) = combined else {
                            continue;
                        };
                        prune(ids[j], &mut payload);
                        bits_c[j] = payload.payload_bits(sizes);
                        vals_c[j] = payload.value_count() as u32;
                        fan_c[j] = merged_in;
                        sent_c[j] = true;
                        let p = gp[j];
                        if p == u32::MAX {
                            // Parent is the root: this is the group top.
                            gout_c[g_local] = Some(payload);
                        } else {
                            let pl = p as usize - base;
                            fan_c[pl] += 1;
                            match &mut acc_c[pl] {
                                Some(existing) => existing.merge(payload),
                                None => acc_c[pl] = Some(payload),
                            }
                        }
                    }
                });
            }
        });

        // Phase B: sequential replay of every send's accounting, in exact
        // wave-slot order (the root run is last and sends nothing).
        let order = tree.bottom_up();
        let parent_slot = tree.parent_slots();
        let level_offsets = tree.level_offsets();
        let w2g = tree.wave_to_group();
        let tx_coef = model.tx_coef(topo.radio_range());
        let rx_coef = model.rx_coef();
        for lvl in 0..tree.levels() - 1 {
            let start = level_offsets[lvl] as usize;
            let end = level_offsets[lvl + 1] as usize;
            let depth = tree.depth(order[start]) as u64;
            for pos in start..end {
                let j = w2g[pos] as usize;
                if !wave_sent[j] {
                    continue;
                }
                let u = order[pos];
                wave.senders += 1;
                record_hot(hist_hot, hists, pos, HistKind::HopDepth, depth);
                record_hot(hist_hot, hists, pos, HistKind::FanIn, fanin[j] as u64);
                let bits = wave_bits[j];
                let parent = order[parent_slot[pos] as usize];
                stats.values += wave_vals[j] as u64;
                // Shared-frame state advances here, in the sequential
                // accounting replay — never on worker threads — so worker
                // counts cannot perturb it.
                let (fragments, total_bits) = if share.enabled {
                    SharedWave::frame(&mut share.up[u.index()], bits, sizes)
                } else {
                    sizes.fragment(bits)
                };
                let tx = total_bits as f64 * tx_coef;
                let rx = total_bits as f64 * rx_coef;
                ledger.charge_tx(u, tx);
                ledger.charge(parent, rx);
                stats.messages += fragments;
                stats.bits += total_bits;
                phases.charge(phase, fragments, total_bits, tx + rx);
                lanes.charge(lane, phase, fragments, total_bits, tx + rx);
                audit.record(
                    phase,
                    TxKind::Data,
                    u,
                    parent,
                    fragments,
                    total_bits,
                    tx,
                    rx,
                );
                if share.enabled {
                    for _ in 0..fragments {
                        record_hot(
                            hist_hot,
                            hists,
                            pos,
                            HistKind::MsgBits,
                            total_bits / fragments.max(1),
                        );
                    }
                } else {
                    for frag_bits in sizes.fragment_bits(bits) {
                        record_hot(hist_hot, hists, pos, HistKind::MsgBits, frag_bits);
                    }
                }
                record_hot(hist_hot, hists, pos, HistKind::Retries, 0);
                rel_stats.delivered += 1;
            }
        }

        // Root merge in reverse group order (see the method docs), then
        // the root's single prune, as in the sequential engine.
        let mut result: Option<T> = None;
        for g in (0..groups).rev() {
            if let Some(payload) = group_out[g].take() {
                match result.as_mut() {
                    Some(existing) => existing.merge(payload),
                    None => result = Some(payload),
                }
            }
        }
        if let Some(p) = result.as_mut() {
            prune(NodeId::ROOT, p);
        }
        self.scratch.put_buf(own, scratch_role::OWN);
        self.scratch.put_buf(acc, scratch_role::INBOX);
        self.scratch.put_buf(group_out, scratch_role::GROUP_OUT);
        result
    }

    /// Floods a payload of `payload_bits` bits from the root to every node.
    /// Returns the set of nodes that actually received it (all of them
    /// without loss; possibly a subtree-prefix with loss enabled).
    ///
    /// The mask lives in a reusable scratch bitset owned by the network, so
    /// repeated broadcasts perform no heap allocation. Callers that need to
    /// keep the mask across further network calls should use
    /// [`Network::broadcast_into`] with their own buffer instead.
    pub fn broadcast(&mut self, payload_bits: u64) -> &NodeBits {
        // Detach the scratch mask so the wave engine's split field borrows
        // stay disjoint, then park it back and hand out a shared view.
        let mut received = std::mem::take(&mut self.bcast_recv);
        self.broadcast_into(payload_bits, &mut received);
        self.bcast_recv = received;
        &self.bcast_recv
    }

    /// [`Network::broadcast`] writing the per-node reception flags into a
    /// caller-owned bitset (cleared and resized in place), so repeated
    /// waves perform no heap allocation.
    pub fn broadcast_into(&mut self, payload_bits: u64, received: &mut NodeBits) {
        self.stats.broadcasts += 1;
        let n = self.len();
        let (fragments, total_bits) = self.sizes.fragment(payload_bits);
        received.reset(n);
        received.set(NodeId::ROOT.index());

        // Split field borrows, as in `convergecast_with`: traversal and
        // child lookups read the tree in place while the ledger/stats/loss
        // are mutated — no per-node clone of the children list.
        let Network {
            tree,
            topo,
            model,
            sizes,
            ledger,
            stats,
            loss,
            reliability,
            rel_stats,
            phase,
            phases,
            lane,
            lanes,
            share,
            audit,
            hists,
            hist_hot,
            recorder,
            ..
        } = self;
        let phase = *phase;
        let lane = *lane;
        let wave_span = recorder.start();
        let round = audit.round();
        let order = tree.bottom_up();
        // Every transmitter sends the same payload over the same range, so
        // the per-link energies are wave constants — hoisting them (and the
        // `powf` inside `tx_energy`) is bit-exact.
        let tx = model.tx_energy(total_bits, topo.radio_range());
        let rx = model.rx_energy(total_bits);
        // Shared frames apply to lossless broadcasts only (per-fragment
        // loss draws must see the solo fragment stream).
        let sharing = share.enabled && loss.is_none();
        // Walk the wave slots in reverse (parents before children, the
        // top-down order): histogram blocks and CSR child lists are then
        // visited in storage order.
        for pos in (0..order.len()).rev() {
            let u = order[pos];
            if !received.get(u.index()) || tree.is_leaf(u) {
                continue;
            }
            // Per-transmitter marginal cost under sharing; the hoisted wave
            // constants otherwise (the disabled path is byte-identical).
            let (fragments, total_bits, tx, rx) = if sharing {
                let (f, b) = SharedWave::frame(&mut share.down[u.index()], payload_bits, sizes);
                (
                    f,
                    b,
                    model.tx_energy(b, topo.radio_range()),
                    model.rx_energy(b),
                )
            } else {
                (fragments, total_bits, tx, rx)
            };
            // One radio transmission reaches all children (§5.1.4: receivers
            // pay because the schedule tells them when to listen). Broadcast
            // frames are unacknowledged, as in 802.15.4; reliability comes
            // from the repair passes below.
            ledger.charge_tx(u, tx);
            stats.messages += fragments;
            stats.bits += total_bits;
            phases.charge(phase, fragments, total_bits, tx);
            lanes.charge(lane, phase, fragments, total_bits, tx);
            if sharing {
                for _ in 0..fragments {
                    record_hot(
                        hist_hot,
                        hists,
                        pos,
                        HistKind::MsgBits,
                        total_bits / fragments.max(1),
                    );
                }
            } else {
                for frag_bits in sizes.fragment_bits(payload_bits) {
                    record_hot(hist_hot, hists, pos, HistKind::MsgBits, frag_bits);
                }
            }
            record_hot(
                hist_hot,
                hists,
                pos,
                HistKind::HopDepth,
                tree.depth(u) as u64,
            );
            audit.record(
                phase,
                TxKind::BroadcastTx,
                u,
                u,
                fragments,
                total_bits,
                tx,
                0.0,
            );
            for &c in tree.children(u) {
                ledger.charge(c, rx);
                // Bits were already counted once at the transmitter.
                phases.charge(phase, 0, 0, rx);
                lanes.charge(lane, phase, 0, 0, rx);
                audit.record(
                    phase,
                    TxKind::BroadcastRx,
                    u,
                    c,
                    fragments,
                    total_bits,
                    0.0,
                    rx,
                );
                let arrived = match loss {
                    // Each 802.15.4 frame is lost independently and the
                    // child needs every fragment. No short-circuit: every
                    // fragment draws from the loss stream.
                    Some(loss) => (0..fragments).fold(true, |ok, _| !loss.lose() && ok),
                    None => true,
                };
                if arrived {
                    received.set(c.index());
                }
            }
        }

        // Repair passes: a parent holding the payload re-offers it to
        // children that missed it as an ARQ-protected unicast (the missing
        // link-layer ACK tells the parent who is short). Children repaired
        // early in a pass repair their own children later in the same pass,
        // since top_down() visits parents before children.
        if loss.is_some() {
            let arq = reliability.max_retries;
            for _ in 0..reliability.recovery_passes {
                let mut repaired_any = false;
                for pos in (0..order.len()).rev() {
                    let u = order[pos];
                    if !received.get(u.index()) || tree.is_leaf(u) {
                        continue;
                    }
                    for &c in tree.children(u) {
                        if received.get(c.index()) {
                            continue;
                        }
                        // Repair re-offers are reliability traffic.
                        let arrived = send_over_link(
                            topo,
                            model,
                            sizes,
                            ledger,
                            stats,
                            rel_stats,
                            loss,
                            Phase::Recovery,
                            phases,
                            lane,
                            lanes,
                            audit,
                            hists,
                            hist_hot,
                            recorder,
                            arq,
                            u,
                            pos,
                            c,
                            payload_bits,
                            0,
                        );
                        if arrived {
                            received.set(c.index());
                            rel_stats.recovered += 1;
                            repaired_any = true;
                        }
                    }
                }
                if !repaired_any {
                    break;
                }
            }
        }
        recorder.end("broadcast", 0, round, wave_span);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::EnergyAuditor;
    use crate::geometry::Point;

    /// Payload: a sum plus a vector of values.
    #[derive(Debug, Clone, PartialEq)]
    struct SumVals {
        sum: i64,
        vals: Vec<i64>,
    }

    impl Aggregate for SumVals {
        fn merge(&mut self, other: Self) {
            self.sum += other.sum;
            self.vals.extend(other.vals);
        }
        fn payload_bits(&self, sizes: &MessageSizes) -> u64 {
            sizes.counter_bits + self.vals.len() as u64 * sizes.value_bits
        }
        fn value_count(&self) -> usize {
            self.vals.len()
        }
    }

    fn line_network(n: usize) -> Network {
        let positions = (0..n).map(|i| Point::new(i as f64 * 10.0, 0.0)).collect();
        let topo = Topology::build(positions, 12.0);
        let tree = RoutingTree::shortest_path_tree(&topo).unwrap();
        Network::new(topo, tree, RadioModel::default(), MessageSizes::default())
    }

    #[test]
    fn convergecast_aggregates_all_contributions() {
        let mut net = line_network(5);
        let agg = net
            .convergecast(|id| {
                Some(SumVals {
                    sum: id.0 as i64,
                    vals: vec![id.0 as i64 * 100],
                })
            })
            .unwrap();
        assert_eq!(agg.sum, 1 + 2 + 3 + 4);
        let mut vals = agg.vals.clone();
        vals.sort_unstable();
        assert_eq!(vals, vec![100, 200, 300, 400]);
    }

    #[test]
    fn silent_nodes_send_nothing() {
        let mut net = line_network(5);
        let agg: Option<SumVals> = net.convergecast(|_| None);
        assert!(agg.is_none());
        assert_eq!(net.stats().messages, 0);
        assert_eq!(net.ledger().max_sensor_consumption(), 0.0);
    }

    #[test]
    fn intermediate_node_forwards_descendant_payload() {
        let mut net = line_network(4);
        // Only the farthest leaf (node 3) talks; nodes 2 and 1 must relay.
        let agg = net
            .convergecast(|id| {
                (id == NodeId(3)).then(|| SumVals {
                    sum: 7,
                    vals: vec![],
                })
            })
            .unwrap();
        assert_eq!(agg.sum, 7);
        // Three hops: 3->2, 2->1, 1->0.
        assert_eq!(net.stats().messages, 3);
        // Relays pay both rx and tx; leaf pays only tx; root pays only rx.
        let e1 = net.ledger().consumed(NodeId(1));
        let e3 = net.ledger().consumed(NodeId(3));
        assert!(e1 > e3);
    }

    #[test]
    fn pruning_shrinks_forwarded_payload() {
        let mut net = line_network(4);
        // Every node contributes 10 values; relays keep only 2.
        let agg = net
            .convergecast_with(
                |id| {
                    Some(SumVals {
                        sum: 0,
                        vals: vec![id.0 as i64; 10],
                    })
                },
                |_, p: &mut SumVals| {
                    p.vals.truncate(2);
                },
            )
            .unwrap();
        assert_eq!(agg.vals.len(), 2);
        // Hop 3->2 carries 2 values, hop 2->1 carries 2 (pruned from 12)...
        assert_eq!(net.stats().values, 6);
    }

    #[test]
    fn broadcast_reaches_everyone_and_charges_tx_per_internal_node() {
        let mut net = line_network(4);
        let received = net.broadcast(16);
        assert!(received.all());
        // Internal nodes 0,1,2 each transmit once.
        assert_eq!(net.stats().messages, 3);
        assert_eq!(net.stats().broadcasts, 1);
        // Leaf 3 only receives.
        let total = 16 + net.sizes().header_bits;
        let rx = net.model().rx_energy(total);
        assert!((net.ledger().consumed(NodeId(3)) - rx).abs() < 1e-18);
    }

    #[test]
    fn star_broadcast_single_transmission() {
        // Root with 4 direct children: one tx, four rx.
        let mut positions = vec![Point::new(0.0, 0.0)];
        for i in 0..4 {
            let a = i as f64 * std::f64::consts::FRAC_PI_2;
            positions.push(Point::new(a.cos() * 5.0, a.sin() * 5.0));
        }
        let topo = Topology::build(positions, 6.0);
        let tree = RoutingTree::shortest_path_tree(&topo).unwrap();
        let mut net = Network::new(topo, tree, RadioModel::default(), MessageSizes::default());
        net.broadcast(0);
        assert_eq!(net.stats().messages, 1);
    }

    #[test]
    fn fragmentation_inflates_message_count() {
        let mut net = line_network(2);
        // 100 values of 16 bits = 1600 bits > 1024-bit payload -> 2 fragments.
        net.convergecast(|_| {
            Some(SumVals {
                sum: 0,
                vals: vec![1; 100],
            })
        })
        .unwrap();
        // One payload too big for a single message... minus the sum counter.
        assert_eq!(net.stats().messages, 2);
    }

    #[test]
    fn end_round_snapshots_ledger() {
        let mut net = line_network(3);
        net.broadcast(0);
        net.end_round();
        assert_eq!(net.ledger().rounds(), 1);
    }

    fn one_value(id: NodeId) -> Option<SumVals> {
        Some(SumVals {
            sum: id.0 as i64,
            vals: vec![id.0 as i64],
        })
    }

    #[test]
    fn each_fragment_is_lost_independently() {
        // Fire-and-forget over a single 2-fragment link: the empirical
        // delivery rate must track (1-p)², not (1-p).
        let mut net = line_network(2);
        net.set_loss(Some(LossModel::new(0.4, 42)));
        let waves = 4000;
        for _ in 0..waves {
            net.convergecast(|_| {
                Some(SumVals {
                    sum: 0,
                    vals: vec![1; 100], // 1600 bits -> 2 fragments
                })
            });
        }
        let rate = net.reliability_stats().delivery_rate();
        let expected = 0.6 * 0.6;
        assert!((rate - expected).abs() < 0.03, "rate {rate}");
        // No ARQ traffic on the fire-and-forget path.
        assert_eq!(net.reliability_stats().acks, 0);
        assert_eq!(net.reliability_stats().retransmissions, 0);
    }

    #[test]
    fn arq_buys_delivery_with_retransmission_energy() {
        let mut lossy = line_network(2);
        lossy.set_loss(Some(LossModel::new(0.4, 7)));
        let mut arq = lossy.clone();
        arq.set_reliability(ReliabilityConfig::arq(6));
        let waves = 500;
        for _ in 0..waves {
            lossy.convergecast(one_value);
            arq.convergecast(one_value);
        }
        let plain = lossy.reliability_stats();
        let reliable = arq.reliability_stats();
        assert!(reliable.delivery_rate() > plain.delivery_rate());
        // P(all 7 data frames lost) = 0.4⁷ ≈ 0.0016 per hop.
        assert!(reliable.delivery_rate() > 0.99, "six retries at p=0.4");
        assert!(reliable.retransmissions > 0);
        assert!(reliable.acks as usize >= waves);
        // Reliability is never free: retries and ACKs hit the ledger.
        assert!(arq.ledger().max_sensor_consumption() > lossy.ledger().max_sensor_consumption());
    }

    #[test]
    fn retry_budget_zero_is_bit_identical_to_plain_loss() {
        let mut plain = line_network(5);
        plain.set_loss(Some(LossModel::new(0.3, 99)));
        let mut budget0 = plain.clone();
        budget0.set_reliability(ReliabilityConfig::arq(0));
        for _ in 0..200 {
            plain.convergecast(one_value);
            budget0.convergecast(one_value);
        }
        assert_eq!(plain.stats(), budget0.stats());
        assert_eq!(plain.reliability_stats(), budget0.reliability_stats());
        for i in 0..plain.len() {
            let id = NodeId(i as u32);
            assert!(plain.ledger().consumed(id) == budget0.ledger().consumed(id));
        }
    }

    #[test]
    fn total_loss_terminates_with_empty_result_and_full_report() {
        let mut net = line_network(4);
        net.set_loss(Some(LossModel::new(1.0, 1)));
        net.set_reliability(ReliabilityConfig::recovering(3, 4));
        let agg: Option<SumVals> = net.convergecast(one_value);
        assert!(agg.is_none());
        let wave = net.last_wave();
        assert!(!wave.is_complete());
        assert_eq!(wave.senders, 3);
        // The first hop (node 3 -> 2) already fails, so every sensor is a
        // dropped root and the dropped mask covers all sensors.
        let mut mask = Vec::new();
        net.mark_dropped_subtrees(&mut mask);
        assert_eq!(mask, vec![false, true, true, true]);
        // Broadcast under total loss terminates too (repair passes give up).
        let received = net.broadcast(16);
        assert!(!received.get(1) && !received.get(2) && !received.get(3));
    }

    #[test]
    fn recovery_passes_salvage_stranded_payloads() {
        let mut net = line_network(5);
        net.set_loss(Some(LossModel::new(0.35, 3)));
        net.set_reliability(ReliabilityConfig::recovering(2, 4));
        let mut complete = 0;
        let waves = 300;
        for _ in 0..waves {
            let agg = net.convergecast(one_value);
            if net.last_wave().is_complete() {
                complete += 1;
                // A complete wave carries every sensor's contribution.
                assert_eq!(agg.unwrap().sum, 1 + 2 + 3 + 4);
            }
        }
        assert!(complete > waves * 9 / 10, "complete {complete}/{waves}");
        assert!(net.reliability_stats().recovered > 0);
    }

    #[test]
    fn broadcast_repair_reoffers_to_missed_children() {
        let mut net = line_network(6);
        net.set_loss(Some(LossModel::new(0.4, 11)));
        net.set_reliability(ReliabilityConfig::recovering(6, 6));
        let mut all = 0;
        let waves = 200;
        let mut received = NodeBits::new();
        for _ in 0..waves {
            net.broadcast_into(64, &mut received);
            if received.all() {
                all += 1;
            }
        }
        assert!(all > waves * 9 / 10, "all {all}/{waves}");
        assert!(net.reliability_stats().recovered > 0);
    }

    #[test]
    fn fail_round_kills_and_repairs_the_tree() {
        let mut net = line_network(4);
        assert_eq!(net.fail_round(), 0, "no failure model installed");
        net.set_failures(Some(FailureModel::new(1.0, 5)));
        assert_eq!(net.fail_round(), 3);
        assert!(net.alive()[0]);
        assert!(!net.alive()[1] && !net.alive()[2] && !net.alive()[3]);
        assert!(net.is_reachable(NodeId::ROOT));
        assert!(!net.is_reachable(NodeId(2)));
        let stats = *net.reliability_stats();
        assert_eq!(stats.failed_nodes, 3);
        assert_eq!(stats.repairs, 1);
        assert_eq!(stats.orphaned_nodes, 0, "dead nodes are not orphans");
        // Dead nodes neither contribute nor relay: the wave is root-only.
        let agg: Option<SumVals> = net.convergecast(one_value);
        assert!(agg.is_none());
        assert_eq!(net.stats().messages, 0);
        // Further rounds are no-ops: everyone is already dead.
        assert_eq!(net.fail_round(), 0);
        assert_eq!(net.reliability_stats().repairs, 1);
    }

    #[test]
    #[should_panic(expected = "invalid MessageSizes")]
    fn network_rejects_degenerate_sizes() {
        let positions = (0..2).map(|i| Point::new(i as f64 * 10.0, 0.0)).collect();
        let topo = Topology::build(positions, 12.0);
        let tree = RoutingTree::shortest_path_tree(&topo).unwrap();
        let sizes = MessageSizes {
            value_bits: 0,
            ..MessageSizes::default()
        };
        Network::new(topo, tree, RadioModel::default(), sizes);
    }

    #[test]
    fn phase_breakdown_sums_to_global_stats() {
        let mut net = line_network(5);
        net.set_loss(Some(LossModel::new(0.3, 21)));
        net.set_reliability(ReliabilityConfig::recovering(2, 3));
        net.set_phase(Phase::Validation);
        for _ in 0..50 {
            net.convergecast(one_value);
        }
        net.set_phase(Phase::Refinement);
        let mut buf = NodeBits::new();
        for _ in 0..20 {
            net.broadcast_into(64, &mut buf);
        }
        let b = *net.phases();
        assert_eq!(b.messages().iter().sum::<u64>(), net.stats().messages);
        assert_eq!(b.bits().iter().sum::<u64>(), net.stats().bits);
        assert!(b.get(Phase::Validation).messages > 0);
        assert!(b.get(Phase::Refinement).messages > 0);
        assert_eq!(b.get(Phase::Init).messages, 0);
        // Every joule the ledger saw is attributed to some phase.
        let total: f64 = net.ledger().consumed_per_node().iter().sum();
        assert!((b.total_joules() - total).abs() <= 1e-12 * total.max(1.0));
    }

    #[test]
    fn audited_lossy_run_reconciles_bit_exactly() {
        use crate::audit::EnergyAuditor;
        let mut net = line_network(6);
        net.set_audit(true);
        net.set_loss(Some(LossModel::new(0.35, 13)));
        net.set_reliability(ReliabilityConfig::recovering(3, 4));
        net.set_failures(Some(FailureModel::new(0.01, 17)));
        let mut buf = NodeBits::new();
        for _ in 0..30 {
            net.fail_round();
            net.set_phase(Phase::Validation);
            net.convergecast(one_value);
            net.set_phase(Phase::Refinement);
            net.broadcast_into(100, &mut buf);
            net.end_round();
        }
        let report = EnergyAuditor::verify(&net);
        assert!(report.is_clean(), "{:?}", report.discrepancies);
        assert!(report.events > 0);
        assert_eq!(report.rounds_checked, 30);
        assert!(net
            .audit_log()
            .events()
            .iter()
            .any(|e| e.phase == Phase::Recovery));
    }

    #[test]
    fn dynamics_rebuild_charges_beacons_and_replays_bit_exactly() {
        let mut net = line_network(5);
        net.set_audit(true);
        net.set_phase(Phase::Validation);
        net.convergecast(one_value);
        net.end_round();

        let before = net.phases().get(Phase::Rebuild).joules;
        assert_eq!(before, 0.0, "no rebuild charged yet");
        let orphans = net.dynamics_rebuild(None);
        assert_eq!(orphans, 0);
        assert_eq!(net.reliability_stats().rebuilds, 1);
        let rebuilt = net.phases().get(Phase::Rebuild);
        assert!(rebuilt.joules > 0.0, "beacon wave must cost energy");
        assert_eq!(rebuilt.messages, 4, "one beacon per non-root node");

        net.convergecast(one_value);
        net.end_round();
        let report = EnergyAuditor::verify(&net);
        assert!(report.is_clean(), "{:?}", report.discrepancies);
        assert!(report.events > 0);
    }

    #[test]
    fn rebuild_beacons_bypass_the_loss_model_and_its_fate_stream() {
        // Beacons negotiate fresh links, so they must neither be lost nor
        // consume fate draws: a run with a rebuild sandwiched between two
        // lossy rounds sees the same post-rebuild fates as one without.
        let mut a = line_network(4);
        a.set_loss(Some(LossModel::new(0.5, 77)));
        a.set_phase(Phase::Validation);
        let mut b = a.clone();
        a.convergecast(one_value);
        b.convergecast(one_value);
        a.end_round();
        b.end_round();
        a.dynamics_rebuild(None); // same topology: an identical tree
        a.convergecast(one_value);
        b.convergecast(one_value);
        // Beacons are always delivered (3 of them here); the *data* fates
        // after the rebuild must match the rebuild-free run exactly.
        assert_eq!(
            a.reliability_stats().delivered,
            b.reliability_stats().delivered + 3
        );
        assert_eq!(
            a.phases().get(Phase::Validation),
            b.phases().get(Phase::Validation),
            "data traffic is bit-identical with and without the rebuild"
        );
        assert_eq!(a.reliability_stats().rebuilds, 1);
        assert_eq!(b.reliability_stats().rebuilds, 0);
    }

    #[test]
    fn rebuild_reindexes_per_node_histograms() {
        // Regression: per-node histograms live in wave-slot order, and a
        // dynamics rebuild re-derives that order. Each node must keep its
        // *own* history across the rebuild, not inherit whichever node now
        // occupies its old slot.
        let mut net = line_network(5);
        net.set_phase(Phase::Validation);
        net.convergecast(one_value); // depths 1, 2, 3, 4 down the chain
        net.end_round();

        // Node 4 walks next to the sink; everyone else stays put. New
        // depths: 1→1, 2→2, 3→3, 4→1.
        let mut positions: Vec<Point> = (0..5).map(|i| Point::new(i as f64 * 10.0, 0.0)).collect();
        positions[4] = Point::new(0.0, 10.0);
        net.dynamics_rebuild(Some(Topology::build(positions, 12.0)));
        net.convergecast(one_value);
        net.end_round();

        let hists = net.histograms();
        let depth = |id: usize| *hists.node(id).get(HistKind::HopDepth);
        assert_eq!(depth(4).max(), 4, "node 4 keeps its old depth-4 sample");
        assert_eq!(depth(4).sum(), 4 + 1);
        assert_eq!(depth(1).max(), 1, "node 1 was always depth 1");
        assert_eq!(depth(1).sum(), 1 + 1);
        assert_eq!(depth(3).sum(), 3 + 3);
        for id in 1..5 {
            assert_eq!(depth(id).count(), 2, "two samples per node");
        }
    }

    #[test]
    fn duty_cycled_idle_listening_audits_cleanly() {
        let mut net = line_network(4);
        net.set_audit(true);
        net.set_duty_cycle(250);
        net.set_phase(Phase::Validation);
        let idle_leaf = net.ledger().consumed(NodeId(3));
        for _ in 0..3 {
            net.convergecast(|id| (id == NodeId(1)).then(|| one_value(id)).flatten());
            net.end_round();
        }
        // Node 3 never transmitted or received, yet its radio listened.
        assert!(net.ledger().consumed(NodeId(3)) > idle_leaf);
        let idles = net
            .audit_log()
            .events()
            .iter()
            .filter(|e| e.kind == TxKind::Idle)
            .count();
        assert_eq!(idles, 3 * 3, "one idle event per alive sensor per round");
        let report = EnergyAuditor::verify(&net);
        assert!(report.is_clean(), "{:?}", report.discrepancies);
    }

    #[test]
    fn zero_duty_cycle_matches_the_static_engine_bit_for_bit() {
        let mut plain = line_network(4);
        plain.set_phase(Phase::Validation);
        let mut duty = plain.clone();
        duty.set_duty_cycle(0);
        for _ in 0..5 {
            plain.convergecast(one_value);
            duty.convergecast(one_value);
            plain.end_round();
            duty.end_round();
        }
        for id in 0..4 {
            assert_eq!(
                plain.ledger().consumed(NodeId(id)),
                duty.ledger().consumed(NodeId(id))
            );
        }
        assert_eq!(plain.phases(), duty.phases());
    }

    #[test]
    #[should_panic(expected = "the sink cannot churn")]
    fn the_sink_never_churns() {
        let mut net = line_network(3);
        net.set_node_alive(NodeId(0), false);
    }

    #[test]
    fn all_but_sink_crash_then_rejoin() {
        // Boundary: every sensor departs (the tree collapses to the root),
        // then everyone rejoins — the engine must survive both rebuilds
        // and the audit must reconcile across them.
        let mut net = line_network(4);
        net.set_audit(true);
        net.set_phase(Phase::Validation);
        for id in 1..4 {
            net.set_node_alive(NodeId(id), false);
        }
        let orphans = net.dynamics_rebuild(None);
        assert_eq!(orphans, 0, "dead nodes are not orphans");
        assert!(net.convergecast(one_value).is_none(), "no sensors left");
        net.end_round();

        for id in 1..4 {
            net.set_node_alive(NodeId(id), true);
        }
        net.dynamics_rebuild(None);
        let agg = net.convergecast(one_value).expect("everyone is back");
        assert_eq!(agg.sum, 1 + 2 + 3);
        net.end_round();
        assert_eq!(net.reliability_stats().rebuilds, 2);
        let report = EnergyAuditor::verify(&net);
        assert!(report.is_clean(), "{:?}", report.discrepancies);
    }

    #[test]
    fn telemetry_observes_without_perturbing() {
        // Histograms are always-on and the recorder is a pure observer:
        // a fully telemetered run must be bit-identical to a bare one.
        let mut plain = line_network(5);
        plain.set_loss(Some(LossModel::new(0.3, 5)));
        plain.set_reliability(ReliabilityConfig::arq(2));
        plain.set_phase(Phase::Validation);
        let mut telem = plain.clone();
        telem.set_audit(true);
        telem.set_telemetry(true);
        for _ in 0..50 {
            plain.convergecast(one_value);
            telem.convergecast(one_value);
            plain.end_round();
            telem.end_round();
        }
        assert_eq!(plain.stats(), telem.stats());
        assert_eq!(plain.histograms(), telem.histograms());
        // Every data frame (retransmissions included, ACKs excluded) is a
        // MsgBits sample, so the histogram count equals the message count.
        let total = telem.histograms().total();
        assert_eq!(
            total.get(wsn_obs::HistKind::MsgBits).count(),
            telem.stats().messages
        );
        assert_eq!(total.get(wsn_obs::HistKind::HopDepth).max(), 4);
        let events = telem.recorder().events();
        assert!(events.iter().any(|e| e.name == "round"));
        assert!(events.iter().any(|e| e.name == "convergecast"));
        assert!(events.iter().any(|e| e.name == "validation" && e.track > 0));
        assert!(plain.recorder().events().is_empty());
        let cap = telem.capture();
        assert_eq!(cap.len(), telem.audit_log().events().len());
        assert!(cap
            .iter()
            .any(|r| r.kind == "data" && r.phase == "validation"));
        assert!(plain.capture().is_empty());
    }

    #[test]
    fn auditing_perturbs_neither_stats_nor_ledger() {
        // The audit log must be a pure observer: it consumes no randomness
        // and charges nothing, so an audited run is bit-identical to an
        // unaudited one.
        let mut plain = line_network(5);
        plain.set_loss(Some(LossModel::new(0.3, 99)));
        plain.set_reliability(ReliabilityConfig::recovering(2, 2));
        let mut audited = plain.clone();
        audited.set_audit(true);
        for _ in 0..100 {
            plain.convergecast(one_value);
            audited.convergecast(one_value);
        }
        assert_eq!(plain.stats(), audited.stats());
        for i in 0..plain.len() {
            let id = NodeId(i as u32);
            assert!(plain.ledger().consumed(id) == audited.ledger().consumed(id));
        }
        assert!(plain.audit_log().events().is_empty());
        assert!(!audited.audit_log().events().is_empty());
    }

    #[test]
    fn shared_frames_cost_one_concatenated_payload_per_link() {
        // Three identical waves in one round: under sharing each link must
        // cost exactly fragment(sum of payloads), i.e. the payload bits of
        // every wave plus ONE set of headers per link.
        let mut solo = line_network(3);
        let mut shared = line_network(3);
        shared.set_shared_frames(true);
        for _ in 0..3 {
            solo.convergecast(one_value);
            shared.convergecast(one_value);
        }
        // Node 2 sends 1 value (counter + value = 32 bits), node 1 merges
        // and sends 2 values (48 bits); defaults: 128-bit header.
        let link2 = 3 * 32 + 128;
        let link1 = 3 * 48 + 128;
        assert_eq!(shared.stats().bits, link2 + link1);
        assert_eq!(solo.stats().bits, 3 * (32 + 128) + 3 * (48 + 128));
        // Only the first wave opens frames; later waves piggyback.
        assert_eq!(shared.stats().messages, 2);
        // The MsgBits histogram still counts one sample per frame.
        assert_eq!(
            shared
                .histograms()
                .total()
                .get(wsn_obs::HistKind::MsgBits)
                .count(),
            shared.stats().messages
        );
        // A round boundary resets the accumulators: the next wave pays the
        // full solo cost again.
        shared.end_round();
        let before = shared.stats().bits;
        shared.convergecast(one_value);
        assert_eq!(shared.stats().bits - before, (32 + 128) + (48 + 128));
    }

    #[test]
    fn shared_first_send_is_bit_identical_to_solo() {
        // One wave per round: sharing never engages beyond the first
        // payload, so everything (bits, energies, events) is unchanged.
        let mut plain = line_network(5);
        let mut shared = line_network(5);
        plain.set_audit(true);
        shared.set_audit(true);
        shared.set_shared_frames(true);
        for _ in 0..4 {
            plain.convergecast(one_value);
            plain.broadcast(64);
            plain.end_round();
            shared.convergecast(one_value);
            shared.broadcast(64);
            shared.end_round();
        }
        assert_eq!(plain.stats(), shared.stats());
        assert_eq!(plain.audit_log().events(), shared.audit_log().events());
        for i in 0..plain.len() {
            let id = NodeId(i as u32);
            assert!(plain.ledger().consumed(id) == shared.ledger().consumed(id));
        }
    }

    #[test]
    fn shared_broadcasts_pay_marginal_frames_only() {
        let mut net = line_network(4);
        net.set_shared_frames(true);
        net.broadcast(64);
        let first = net.stats().bits;
        // 3 internal transmitters × (64 + 128).
        assert_eq!(first, 3 * (64 + 128));
        net.broadcast(64);
        // Same round: the second broadcast rides the open frames.
        assert_eq!(net.stats().bits - first, 3 * 64);
        let report = EnergyAuditor::verify(&net);
        assert!(report.is_clean() || net.audit_log().events().is_empty());
    }

    #[test]
    fn lane_book_partitions_charges_and_replays_bit_exactly() {
        let mut net = line_network(4);
        net.set_audit(true);
        net.set_shared_frames(true);
        // Two lanes interleaved within one round, plus broadcast traffic.
        for _ in 0..3 {
            net.set_lane(0);
            net.convergecast(one_value);
            net.broadcast(32);
            net.set_lane(1);
            net.convergecast(one_value);
            net.broadcast(32);
            net.end_round();
        }
        let book = net.lane_book();
        assert_eq!(book.len(), 2);
        // Lanes partition the global breakdown exactly (integer fields).
        let phases = *net.phases();
        for phase in Phase::ALL {
            let bits: u64 = book.breakdowns().iter().map(|b| b.get(phase).bits).sum();
            let msgs: u64 = book
                .breakdowns()
                .iter()
                .map(|b| b.get(phase).messages)
                .sum();
            assert_eq!(bits, phases.get(phase).bits, "{}", phase.name());
            assert_eq!(msgs, phases.get(phase).messages, "{}", phase.name());
        }
        // Lane 1 piggybacks on lane 0's frames, so it is strictly cheaper.
        assert!(
            book.get(1).get(Phase::Other).bits < book.get(0).get(Phase::Other).bits,
            "piggybacking lane must pay fewer bits"
        );
        // The audit-log replay reproduces the live book bit for bit.
        let replayed = crate::audit::lane_breakdowns(net.audit_log(), book.len());
        for (lane, b) in replayed.iter().enumerate() {
            assert_eq!(*b, book.get(lane as u32), "lane {lane}");
        }
        // And the energy audit still reconciles under sharing.
        let report = EnergyAuditor::verify(&net);
        assert!(report.is_clean(), "{:?}", report.discrepancies);
    }
}
