//! The physical network graph `G_p = (N ∪ {r}, E_p)`.
//!
//! Nodes are placed in a rectangular deployment area; two nodes are
//! physically connected iff their Euclidean distance is at most the radio
//! range `ρ` (a unit-disk graph). Node `0` is by convention the root/sink
//! `r`: it has an infinite energy supply and takes no measurements
//! (paper §2).

use crate::geometry::Point;

/// Identifier of a network node. Index `0` is always the root (sink).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The distinguished root node `r`.
    pub const ROOT: NodeId = NodeId(0);

    /// Returns the node id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// True iff this is the root node.
    #[inline]
    pub fn is_root(self) -> bool {
        self.0 == 0
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The physical topology: node positions plus the disk connectivity graph.
#[derive(Debug, Clone)]
pub struct Topology {
    positions: Vec<Point>,
    radio_range: f64,
    /// Adjacency lists of the disk graph (symmetric, no self loops).
    neighbors: Vec<Vec<NodeId>>,
}

impl Topology {
    /// Builds the disk graph over `positions` with radio range
    /// `radio_range` (meters). `positions\[0\]` is the root.
    ///
    /// Uses a uniform grid spatial index so construction is roughly
    /// `O(n · d)` where `d` is the average neighborhood size, instead of
    /// the naive `O(n²)`.
    ///
    /// # Panics
    /// Panics if fewer than two positions are given or the range is not
    /// strictly positive.
    pub fn build(positions: Vec<Point>, radio_range: f64) -> Self {
        assert!(positions.len() >= 2, "need a root and at least one sensor");
        assert!(radio_range > 0.0, "radio range must be positive");

        let n = positions.len();
        let mut neighbors: Vec<Vec<NodeId>> = vec![Vec::new(); n];

        // Grid index with cell size = radio range: all neighbors of a node
        // lie in its own or one of the 8 surrounding cells.
        let (mut min_x, mut min_y) = (f64::INFINITY, f64::INFINITY);
        for p in &positions {
            min_x = min_x.min(p.x);
            min_y = min_y.min(p.y);
        }
        let cell = radio_range;
        let key = |p: &Point| -> (i64, i64) {
            (
                ((p.x - min_x) / cell).floor() as i64,
                ((p.y - min_y) / cell).floor() as i64,
            )
        };
        let mut grid: std::collections::HashMap<(i64, i64), Vec<u32>> =
            std::collections::HashMap::new();
        for (i, p) in positions.iter().enumerate() {
            grid.entry(key(p)).or_default().push(i as u32);
        }

        let range_sq = radio_range * radio_range;
        for (i, p) in positions.iter().enumerate() {
            let (cx, cy) = key(p);
            for dx in -1..=1 {
                for dy in -1..=1 {
                    let Some(bucket) = grid.get(&(cx + dx, cy + dy)) else {
                        continue;
                    };
                    for &j in bucket {
                        if (j as usize) > i && positions[j as usize].dist_sq(p) <= range_sq {
                            neighbors[i].push(NodeId(j));
                            neighbors[j as usize].push(NodeId(i as u32));
                        }
                    }
                }
            }
        }
        for adj in &mut neighbors {
            adj.sort_unstable();
        }

        Topology {
            positions,
            radio_range,
            neighbors,
        }
    }

    /// Total number of nodes including the root (`|N| + 1`).
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Never true: a topology always has at least a root and one sensor.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of sensor nodes `|N|` (root excluded).
    pub fn sensor_count(&self) -> usize {
        self.positions.len() - 1
    }

    /// The radio range ρ in meters.
    pub fn radio_range(&self) -> f64 {
        self.radio_range
    }

    /// Position of a node.
    pub fn position(&self, id: NodeId) -> Point {
        self.positions[id.index()]
    }

    /// Physical neighbors of `id` in the disk graph.
    pub fn neighbors(&self, id: NodeId) -> &[NodeId] {
        &self.neighbors[id.index()]
    }

    /// Returns `true` iff every node can reach the root over physical links
    /// (the paper assumes an unpartitioned network).
    pub fn is_connected(&self) -> bool {
        let n = self.len();
        let mut seen = vec![false; n];
        let mut stack = vec![NodeId::ROOT];
        seen[0] = true;
        let mut visited = 0usize;
        while let Some(u) = stack.pop() {
            visited += 1;
            for &v in self.neighbors(u) {
                if !seen[v.index()] {
                    seen[v.index()] = true;
                    stack.push(v);
                }
            }
        }
        visited == n
    }

    /// Iterator over all node ids, root first.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.len() as u32).map(NodeId)
    }

    /// Iterator over sensor node ids (everything but the root).
    pub fn sensor_ids(&self) -> impl Iterator<Item = NodeId> {
        (1..self.len() as u32).map(NodeId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_topology(n: usize, spacing: f64, range: f64) -> Topology {
        let positions = (0..n)
            .map(|i| Point::new(i as f64 * spacing, 0.0))
            .collect();
        Topology::build(positions, range)
    }

    #[test]
    fn disk_graph_edges_respect_range() {
        let topo = line_topology(5, 10.0, 10.5);
        // Each interior node sees exactly its two line neighbors.
        assert_eq!(topo.neighbors(NodeId(2)), &[NodeId(1), NodeId(3)]);
        assert_eq!(topo.neighbors(NodeId(0)), &[NodeId(1)]);
        assert!(topo.is_connected());
    }

    #[test]
    fn larger_range_adds_edges() {
        let topo = line_topology(5, 10.0, 20.5);
        assert_eq!(topo.neighbors(NodeId(2)).len(), 4);
    }

    #[test]
    fn disconnected_topology_detected() {
        let mut positions: Vec<Point> = (0..3).map(|i| Point::new(i as f64, 0.0)).collect();
        positions.push(Point::new(100.0, 100.0));
        let topo = Topology::build(positions, 2.0);
        assert!(!topo.is_connected());
    }

    #[test]
    fn adjacency_is_symmetric() {
        let topo = line_topology(20, 7.0, 15.0);
        for u in topo.node_ids() {
            for &v in topo.neighbors(u) {
                assert!(topo.neighbors(v).contains(&u), "{u} -> {v} not symmetric");
                assert_ne!(u, v, "self loop at {u}");
            }
        }
    }

    #[test]
    fn grid_index_matches_bruteforce() {
        // Deterministic pseudo-random placement.
        let mut s: u64 = 42;
        let mut next = || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 33) as f64) / ((1u64 << 31) as f64)
        };
        let positions: Vec<Point> = (0..200)
            .map(|_| Point::new(next() * 100.0, next() * 100.0))
            .collect();
        let range = 12.0;
        let topo = Topology::build(positions.clone(), range);
        for i in 0..positions.len() {
            let mut expect: Vec<NodeId> = (0..positions.len())
                .filter(|&j| j != i && positions[i].dist(&positions[j]) <= range)
                .map(|j| NodeId(j as u32))
                .collect();
            expect.sort_unstable();
            assert_eq!(topo.neighbors(NodeId(i as u32)), expect.as_slice());
        }
    }

    #[test]
    fn counts_exclude_root() {
        let topo = line_topology(5, 1.0, 2.0);
        assert_eq!(topo.len(), 5);
        assert_eq!(topo.sensor_count(), 4);
        assert_eq!(topo.sensor_ids().count(), 4);
        assert!(NodeId::ROOT.is_root());
        assert!(!NodeId(1).is_root());
    }
}
