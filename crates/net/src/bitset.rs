//! Packed per-node flag set for wave reception masks.
//!
//! Broadcast waves need one boolean per node ("did the payload reach
//! it?"). A `Vec<bool>` spends a byte per node and — when allocated per
//! wave — a heap round-trip per round. [`NodeBits`] packs the flags into
//! `u64` words and is designed to be *reused*: [`NodeBits::reset`] keeps
//! the backing allocation, so steady-state waves perform no heap
//! allocation at all (see `tests/alloc_steady_state.rs`).

/// A fixed-length bitset indexed by node position.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NodeBits {
    words: Vec<u64>,
    len: usize,
}

impl NodeBits {
    /// An empty bitset (no backing storage until the first [`reset`]).
    ///
    /// [`reset`]: NodeBits::reset
    pub fn new() -> Self {
        NodeBits::default()
    }

    /// Clears the set and resizes it to `len` bits, all zero. Keeps the
    /// backing allocation when it is already large enough.
    pub fn reset(&mut self, len: usize) {
        let words = len.div_ceil(64);
        self.words.clear();
        self.words.resize(words, 0);
        self.len = len;
    }

    /// Resizes the set to `len` bits, all one (the tail of the last word
    /// stays zero so counting stays exact). Keeps the backing allocation.
    pub fn set_all(&mut self, len: usize) {
        let words = len.div_ceil(64);
        self.words.clear();
        self.words.resize(words, u64::MAX);
        self.len = len;
        let tail = len & 63;
        if tail != 0 {
            if let Some(w) = self.words.last_mut() {
                *w &= (1u64 << tail) - 1;
            }
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set holds zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets bit `i`.
    #[inline(always)]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i >> 6] |= 1u64 << (i & 63);
    }

    /// Reads bit `i`.
    #[inline(always)]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i >> 6] >> (i & 63) & 1 != 0
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether every bit is set.
    pub fn all(&self) -> bool {
        self.count_ones() == self.len
    }

    /// Iterates the indices of set bits in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            // Peel one set bit per step; word index recovers the offset.
            std::iter::successors((w != 0).then_some(w), |&rest| {
                let next = rest & (rest - 1);
                (next != 0).then_some(next)
            })
            .map(move |rest| (wi << 6) + rest.trailing_zeros() as usize)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip_across_word_boundaries() {
        let mut b = NodeBits::new();
        b.reset(130);
        for &i in &[0usize, 1, 63, 64, 65, 127, 128, 129] {
            assert!(!b.get(i));
            b.set(i);
            assert!(b.get(i), "bit {i}");
        }
        assert_eq!(b.count_ones(), 8);
        assert!(!b.all());
    }

    #[test]
    fn reset_clears_without_shrinking() {
        let mut b = NodeBits::new();
        b.reset(200);
        for i in 0..200 {
            b.set(i);
        }
        assert!(b.all());
        let cap = b.words.capacity();
        b.reset(100);
        assert_eq!(b.len(), 100);
        assert_eq!(b.count_ones(), 0);
        assert!(b.words.capacity() >= cap.min(2), "allocation kept");
    }

    #[test]
    fn set_all_masks_the_tail_word() {
        let mut b = NodeBits::new();
        for len in [1usize, 63, 64, 65, 130] {
            b.set_all(len);
            assert_eq!(b.len(), len);
            assert_eq!(b.count_ones(), len, "len {len}");
            assert!(b.all());
            assert_eq!(b.iter_ones().count(), len);
        }
    }

    #[test]
    fn iter_ones_matches_get() {
        let mut b = NodeBits::new();
        b.reset(300);
        let picks: Vec<usize> = (0..300).filter(|i| i % 7 == 3 || i % 64 == 0).collect();
        for &i in &picks {
            b.set(i);
        }
        let got: Vec<usize> = b.iter_ones().collect();
        assert_eq!(got, picks);
        assert_eq!(b.count_ones(), picks.len());
    }

    #[test]
    fn empty_and_zero_length() {
        let mut b = NodeBits::new();
        assert!(b.is_empty());
        b.reset(0);
        assert!(b.is_empty());
        assert_eq!(b.iter_ones().count(), 0);
        assert!(b.all(), "vacuously true");
    }
}
