//! Bit-level message codec.
//!
//! The energy model charges payloads by the bit (§5.1.4), using the size
//! formulas in each payload's [`crate::Aggregate::payload_bits`]. This
//! module provides the bit-exact writer/reader those formulas describe, so
//! the accounting can be *certified*: `cqp-core`'s wire tests encode every
//! payload type and assert that the produced bit count equals the charged
//! one, and that decoding restores the payload.
//!
//! Fields use fixed widths from [`crate::MessageSizes`] (16-bit values and
//! counters, 16-bit bucket counts, 8-bit bucket indices by default);
//! values are offset-encoded against the query range by the caller when
//! the universe exceeds the field width.

/// Writes integers of arbitrary bit width, MSB-first.
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Number of valid bits in the buffer.
    len_bits: u64,
}

impl BitWriter {
    /// A fresh, empty writer.
    pub fn new() -> Self {
        BitWriter::default()
    }

    /// Appends the `width` low bits of `value`, MSB-first.
    ///
    /// # Panics
    /// Panics if `width > 64` or `value` does not fit in `width` bits.
    pub fn put(&mut self, value: u64, width: u32) {
        assert!(width <= 64, "width {width} > 64");
        assert!(
            width == 64 || value < (1u64 << width),
            "value {value} does not fit {width} bits"
        );
        for i in (0..width).rev() {
            let bit = (value >> i) & 1;
            let byte_idx = (self.len_bits / 8) as usize;
            if byte_idx == self.bytes.len() {
                self.bytes.push(0);
            }
            if bit == 1 {
                self.bytes[byte_idx] |= 1 << (7 - (self.len_bits % 8));
            }
            self.len_bits += 1;
        }
    }

    /// Appends a signed integer as `width`-bit two's complement.
    pub fn put_signed(&mut self, value: i64, width: u32) {
        assert!((1..=64).contains(&width));
        let min = if width == 64 {
            i64::MIN
        } else {
            -(1i64 << (width - 1))
        };
        let max = if width == 64 {
            i64::MAX
        } else {
            (1i64 << (width - 1)) - 1
        };
        assert!(
            (min..=max).contains(&value),
            "value {value} does not fit signed {width} bits"
        );
        let mask = if width == 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        };
        self.put((value as u64) & mask, width);
    }

    /// Number of bits written so far.
    pub fn len_bits(&self) -> u64 {
        self.len_bits
    }

    /// The encoded bytes (last byte zero-padded).
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

/// Reads integers of arbitrary bit width, MSB-first.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos_bits: u64,
}

impl<'a> BitReader<'a> {
    /// A reader over encoded bytes.
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, pos_bits: 0 }
    }

    /// Reads `width` bits as an unsigned integer, or `None` past the end.
    pub fn get(&mut self, width: u32) -> Option<u64> {
        assert!(width <= 64);
        if self.pos_bits + width as u64 > self.bytes.len() as u64 * 8 {
            return None;
        }
        let mut out = 0u64;
        for _ in 0..width {
            let byte = self.bytes[(self.pos_bits / 8) as usize];
            let bit = (byte >> (7 - (self.pos_bits % 8))) & 1;
            out = (out << 1) | bit as u64;
            self.pos_bits += 1;
        }
        Some(out)
    }

    /// Reads a `width`-bit two's-complement signed integer.
    pub fn get_signed(&mut self, width: u32) -> Option<i64> {
        assert!((1..=64).contains(&width));
        let raw = self.get(width)?;
        if width == 64 {
            return Some(raw as i64);
        }
        let sign_bit = 1u64 << (width - 1);
        Some(if raw & sign_bit != 0 {
            (raw as i64) - (1i64 << width)
        } else {
            raw as i64
        })
    }

    /// Bits consumed so far.
    pub fn pos_bits(&self) -> u64 {
        self.pos_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_mixed_widths() {
        let mut w = BitWriter::new();
        w.put(0b101, 3);
        w.put(0xFFFF, 16);
        w.put(0, 1);
        w.put(42, 7);
        assert_eq!(w.len_bits(), 27);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.get(3), Some(0b101));
        assert_eq!(r.get(16), Some(0xFFFF));
        assert_eq!(r.get(1), Some(0));
        assert_eq!(r.get(7), Some(42));
        assert_eq!(r.pos_bits(), 27);
    }

    #[test]
    fn signed_roundtrip() {
        let mut w = BitWriter::new();
        for v in [-32768i64, -1, 0, 1, 32767] {
            w.put_signed(v, 16);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for v in [-32768i64, -1, 0, 1, 32767] {
            assert_eq!(r.get_signed(16), Some(v));
        }
    }

    #[test]
    fn read_past_end_is_none() {
        let mut w = BitWriter::new();
        w.put(3, 2);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.get(2), Some(3));
        // The padding bits of the final byte are readable as zeros...
        assert_eq!(r.get(6), Some(0));
        // ...but past the buffer it is None.
        assert_eq!(r.get(1), None);
    }

    #[test]
    fn sixty_four_bit_fields() {
        let mut w = BitWriter::new();
        w.put(u64::MAX, 64);
        w.put_signed(i64::MIN, 64);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.get(64), Some(u64::MAX));
        assert_eq!(r.get_signed(64), Some(i64::MIN));
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn overflow_is_rejected() {
        let mut w = BitWriter::new();
        w.put(256, 8);
    }

    #[test]
    fn bit_length_tracks_exactly() {
        let mut w = BitWriter::new();
        for i in 0..100u64 {
            w.put(i % 2, 1);
        }
        assert_eq!(w.len_bits(), 100);
        assert_eq!(w.into_bytes().len(), 13); // ceil(100/8)
    }
}
