//! Message sizing and fragmentation.
//!
//! The paper's cost accounting is entirely size-based: a message consists of
//! a fixed header/footer of `s_h` bits plus a payload of at most `s_p` bits
//! (§5.1.4 derives `s_h` = 16 bytes and `s_p` = 128 bytes from IEEE
//! 802.15.4). Payloads larger than `s_p` are fragmented into multiple
//! messages, each paying its own header.

/// All protocol field sizes, in bits. Matches Table 1 of the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MessageSizes {
    /// `s_h`: header + footer size of one message, bits.
    pub header_bits: u64,
    /// `s_p`: maximum payload of one message, bits.
    pub max_payload_bits: u64,
    /// `s_v`: size of one measurement, bits.
    pub value_bits: u64,
    /// Size of one state counter (`into`/`outof`, `f₁`, …), bits.
    pub counter_bits: u64,
    /// `s_b`: size of one histogram bucket count, bits.
    pub bucket_bits: u64,
    /// Size of a bucket index when histograms are compressed to
    /// (index, count) pairs, bits.
    pub bucket_index_bits: u64,
    /// Size of one link-layer acknowledgement frame, bits. Only ever on
    /// air when ARQ is enabled (see `wsn_net::reliability`).
    pub ack_bits: u64,
}

impl Default for MessageSizes {
    /// The paper's defaults: 16-byte header, 128-byte payload, two-byte
    /// measurements/counters/bucket counts (64 measurements fit one payload,
    /// §5.1.6).
    fn default() -> Self {
        MessageSizes {
            header_bits: 16 * 8,
            max_payload_bits: 128 * 8,
            value_bits: 16,
            counter_bits: 16,
            bucket_bits: 16,
            bucket_index_bits: 8,
            // IEEE 802.15.4 immediate acknowledgement frame: 11 bytes.
            ack_bits: 11 * 8,
        }
    }
}

impl MessageSizes {
    /// Checks that the sizes describe a usable message format. Degenerate
    /// configurations used to surface as divide-by-zero panics (or silent
    /// zero-capacity messages) deep inside protocol code; this validates
    /// them at the boundary instead. [`crate::network::Network::new`]
    /// rejects invalid sizes up front.
    pub fn validate(&self) -> Result<(), String> {
        if self.max_payload_bits == 0 {
            return Err("max_payload_bits must be positive".into());
        }
        if self.value_bits == 0 {
            return Err("value_bits must be positive".into());
        }
        if self.value_bits > self.max_payload_bits {
            return Err(format!(
                "value_bits ({}) exceeds max_payload_bits ({}): \
                 no measurement fits a message",
                self.value_bits, self.max_payload_bits
            ));
        }
        Ok(())
    }

    /// [`MessageSizes::validate`] as a checked constructor: returns the
    /// sizes unchanged when they are usable.
    pub fn checked(self) -> Result<Self, String> {
        self.validate()?;
        Ok(self)
    }

    /// `s_r`: size of a basic refinement request payload — an interval
    /// `[lb, ub]`, i.e. two values (paper Table 1).
    pub fn refinement_request_bits(&self) -> u64 {
        2 * self.value_bits
    }

    /// Wire size of one q-digest sketch entry: a heap node id plus a
    /// count. A node id over a `2^value_bits`-leaf universe needs
    /// `value_bits + 1` bits (ids run from 1 to `2·σ − 1`).
    pub fn sketch_entry_bits(&self) -> u64 {
        self.value_bits + 1 + self.counter_bits
    }

    /// Wire size of one rank-summary entry: a value plus the two rank
    /// bounds `rmin`/`rmax` (GK-style summaries, `cqp_core::summary`).
    pub fn summary_entry_bits(&self) -> u64 {
        self.value_bits + 2 * self.counter_bits
    }

    /// How many measurements fit into a single payload. 64 with the paper's
    /// defaults (§5.1.6: POS sends values directly when they fit one
    /// message).
    pub fn values_per_message(&self) -> usize {
        debug_assert!(self.validate().is_ok(), "invalid MessageSizes");
        (self.max_payload_bits / self.value_bits.max(1)) as usize
    }

    /// Splits a `payload_bits`-sized payload into messages and returns the
    /// number of messages and the **total** bits on air (payload plus one
    /// header per fragment). A zero-size payload still costs one message:
    /// the header itself carries the "I have something to say" signal.
    #[inline]
    pub fn fragment(&self, payload_bits: u64) -> (u64, u64) {
        debug_assert!(self.validate().is_ok(), "invalid MessageSizes");
        // Single-fragment payloads are the steady state (counters, filter
        // values, small histograms); skip the division for them — it is a
        // measurable share of the engines' per-send cost.
        if payload_bits <= self.max_payload_bits {
            return (1, payload_bits + self.header_bits);
        }
        let fragments = payload_bits.div_ceil(self.max_payload_bits.max(1)).max(1);
        (fragments, payload_bits + fragments * self.header_bits)
    }

    /// On-air size (payload share plus header) of every fragment of a
    /// `payload_bits`-sized payload, in order. The sizes sum to the total
    /// of [`MessageSizes::fragment`]; each 802.15.4 frame is lost (and
    /// retransmitted) individually.
    pub fn fragment_bits(&self, payload_bits: u64) -> impl Iterator<Item = u64> + '_ {
        let (fragments, _) = self.fragment(payload_bits);
        let max = self.max_payload_bits;
        let header = self.header_bits;
        (0..fragments).map(move |i| payload_bits.saturating_sub(i * max).min(max) + header)
    }
}

/// Convenience builder for payload sizes, so protocol code reads like the
/// message format it describes (`PayloadSize::new(&sizes).counters(4)
/// .values(3).bits()`).
#[derive(Debug, Clone, Copy)]
pub struct PayloadSize<'a> {
    sizes: &'a MessageSizes,
    bits: u64,
}

impl<'a> PayloadSize<'a> {
    /// Starts an empty payload.
    pub fn new(sizes: &'a MessageSizes) -> Self {
        PayloadSize { sizes, bits: 0 }
    }

    /// Adds `n` measurements.
    pub fn values(mut self, n: usize) -> Self {
        self.bits += n as u64 * self.sizes.value_bits;
        self
    }

    /// Adds `n` counters.
    pub fn counters(mut self, n: usize) -> Self {
        self.bits += n as u64 * self.sizes.counter_bits;
        self
    }

    /// Adds `n` plain histogram bucket counts.
    pub fn buckets(mut self, n: usize) -> Self {
        self.bits += n as u64 * self.sizes.bucket_bits;
        self
    }

    /// Adds `n` compressed histogram entries: (bucket index, count) pairs.
    /// The paper compresses histograms by dropping empty buckets (\[21\],
    /// used by HBC and LCLL).
    pub fn sparse_buckets(mut self, n: usize) -> Self {
        self.bits += n as u64 * (self.sizes.bucket_bits + self.sizes.bucket_index_bits);
        self
    }

    /// Adds raw bits.
    pub fn raw_bits(mut self, bits: u64) -> Self {
        self.bits += bits;
        self
    }

    /// The accumulated payload size in bits.
    pub fn bits(self) -> u64 {
        self.bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let s = MessageSizes::default();
        assert_eq!(s.header_bits, 128);
        assert_eq!(s.max_payload_bits, 1024);
        assert_eq!(s.values_per_message(), 64);
        assert_eq!(s.refinement_request_bits(), 32);
        assert_eq!(s.ack_bits, 88);
        assert_eq!(s.sketch_entry_bits(), 16 + 1 + 16);
        assert_eq!(s.summary_entry_bits(), 16 + 32);
    }

    #[test]
    fn fragment_bits_sum_to_the_total() {
        let s = MessageSizes::default();
        for payload in [0u64, 1, 1024, 1025, 4000] {
            let (fragments, total) = s.fragment(payload);
            let sizes: Vec<u64> = s.fragment_bits(payload).collect();
            assert_eq!(sizes.len() as u64, fragments, "payload {payload}");
            assert_eq!(sizes.iter().sum::<u64>(), total, "payload {payload}");
            // Every fragment fits one frame.
            assert!(sizes
                .iter()
                .all(|&b| b <= s.max_payload_bits + s.header_bits));
        }
        // A zero-size payload is one bare header.
        assert_eq!(s.fragment_bits(0).collect::<Vec<_>>(), vec![s.header_bits]);
    }

    #[test]
    fn fragmentation_counts_headers() {
        let s = MessageSizes::default();
        // Empty payload: exactly one header.
        assert_eq!(s.fragment(0), (1, 128));
        // One payload exactly full.
        assert_eq!(s.fragment(1024), (1, 1024 + 128));
        // One bit over: two fragments, two headers.
        assert_eq!(s.fragment(1025), (2, 1025 + 256));
        // 65 values of 16 bits = 1040 bits -> 2 fragments.
        assert_eq!(s.fragment(65 * 16), (2, 1040 + 256));
    }

    #[test]
    fn payload_builder_accumulates() {
        let s = MessageSizes::default();
        let bits = PayloadSize::new(&s)
            .counters(4)
            .values(3)
            .sparse_buckets(2)
            .raw_bits(5)
            .bits();
        assert_eq!(bits, 4 * 16 + 3 * 16 + 2 * 24 + 5);
    }

    #[test]
    fn validation_rejects_each_degenerate_size() {
        assert!(MessageSizes::default().validate().is_ok());
        assert!(MessageSizes::default().checked().is_ok());
        let zero_value = MessageSizes {
            value_bits: 0,
            ..MessageSizes::default()
        };
        assert!(zero_value.validate().is_err(), "value_bits == 0");
        let zero_payload = MessageSizes {
            max_payload_bits: 0,
            ..MessageSizes::default()
        };
        assert!(zero_payload.validate().is_err(), "max_payload_bits == 0");
        let oversized_value = MessageSizes {
            value_bits: 2048,
            ..MessageSizes::default()
        };
        assert!(
            oversized_value.checked().is_err(),
            "value_bits > max_payload_bits"
        );
    }

    #[test]
    fn values_per_message_rounds_down() {
        let s = MessageSizes {
            max_payload_bits: 100,
            value_bits: 16,
            ..MessageSizes::default()
        };
        assert_eq!(s.values_per_message(), 6);
    }
}
