//! The first-order radio energy model and per-node energy ledger.
//!
//! §5.1.4 of the paper uses the well-known cost function (e.g. Heinzelman
//! et al.): sending `s` bits over range `ρ` costs `s · (α + β · ρ^p)`,
//! receiving costs `s · γ`, sleeping is free. The paper prints the
//! constants as "50mJ/bit" / "10pJ/bit/m²" with 30 mJ initial supply — the
//! mJ is a unit typo for nJ (see DESIGN.md §3.2); we use nanojoules.

use crate::topology::NodeId;

/// Radio energy parameters. All energies in joules, sizes in bits,
/// distances in meters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RadioModel {
    /// α: distance-independent transmit cost per bit (J/bit).
    pub alpha: f64,
    /// β: distance-dependent transmit cost per bit per m^p (J/bit/m^p).
    pub beta: f64,
    /// p: path-loss exponent.
    pub path_loss: f64,
    /// γ: receive cost per bit (J/bit).
    pub recv: f64,
    /// Initial energy supply of every sensor node (J). The root is
    /// unconstrained (§2).
    pub initial_energy: f64,
}

impl Default for RadioModel {
    fn default() -> Self {
        RadioModel {
            alpha: 50e-9,
            beta: 10e-12,
            path_loss: 2.0,
            recv: 50e-9,
            initial_energy: 30e-3,
        }
    }
}

impl RadioModel {
    /// Energy to transmit `bits` over distance/range `range` meters.
    pub fn tx_energy(&self, bits: u64, range: f64) -> f64 {
        bits as f64 * self.tx_coef(range)
    }

    /// Per-bit transmit cost at `range`: `tx_energy(b, r)` is exactly
    /// `b as f64 * tx_coef(r)`, with the same parenthesisation, so hot
    /// loops may hoist the coefficient (and its `powf`) out of a wave
    /// without changing a single result bit.
    pub fn tx_coef(&self, range: f64) -> f64 {
        self.alpha + self.beta * range.powf(self.path_loss)
    }

    /// Energy to receive `bits`.
    pub fn rx_energy(&self, bits: u64) -> f64 {
        bits as f64 * self.recv
    }

    /// Per-bit receive cost; `rx_energy(b)` is exactly `b as f64 * rx_coef()`.
    pub fn rx_coef(&self) -> f64 {
        self.recv
    }
}

/// Tracks cumulative energy consumption per node, with per-round snapshots.
///
/// Node `0` (the root) is tracked for completeness but has an infinite
/// supply, so it never limits the network lifetime.
#[derive(Debug, Clone)]
pub struct EnergyLedger {
    consumed: Vec<f64>,
    /// Transmit share of `consumed` (the §5.2.1 analyses split hotspot
    /// growth into sending vs receiving energy).
    consumed_tx: Vec<f64>,
    round_start: Vec<f64>,
    rounds_recorded: u32,
    /// Per-node maximum over completed rounds of the energy spent in a
    /// single round.
    max_round_consumption: Vec<f64>,
}

impl EnergyLedger {
    /// A fresh ledger for `n` nodes (root included).
    pub fn new(n: usize) -> Self {
        EnergyLedger {
            consumed: vec![0.0; n],
            consumed_tx: vec![0.0; n],
            round_start: vec![0.0; n],
            rounds_recorded: 0,
            max_round_consumption: vec![0.0; n],
        }
    }

    /// Number of nodes tracked.
    pub fn len(&self) -> usize {
        self.consumed.len()
    }

    /// True iff the ledger tracks no nodes.
    pub fn is_empty(&self) -> bool {
        self.consumed.is_empty()
    }

    /// Charges `joules` to node `id` (reception / unclassified).
    pub fn charge(&mut self, id: NodeId, joules: f64) {
        debug_assert!(joules >= 0.0, "cannot credit energy");
        self.consumed[id.index()] += joules;
    }

    /// Charges `joules` of *transmit* energy to node `id`.
    pub fn charge_tx(&mut self, id: NodeId, joules: f64) {
        debug_assert!(joules >= 0.0, "cannot credit energy");
        self.consumed[id.index()] += joules;
        self.consumed_tx[id.index()] += joules;
    }

    /// Total energy consumed by `id` so far.
    pub fn consumed(&self, id: NodeId) -> f64 {
        self.consumed[id.index()]
    }

    /// Transmit energy consumed by `id` so far.
    pub fn consumed_tx(&self, id: NodeId) -> f64 {
        self.consumed_tx[id.index()]
    }

    /// Receive (non-transmit) energy consumed by `id` so far.
    pub fn consumed_rx(&self, id: NodeId) -> f64 {
        self.consumed[id.index()] - self.consumed_tx[id.index()]
    }

    /// Receive-energy fraction of the hottest sensor — the quantity behind
    /// §5.2.1's "the vast majority of their increase in energy consumption
    /// comes from the growing number of values an intermediate node has to
    /// receive".
    pub fn hotspot_rx_fraction(&self) -> f64 {
        let Some(hot) = self.hottest_sensor() else {
            return 0.0;
        };
        let total = self.consumed(hot);
        if total <= 0.0 {
            0.0
        } else {
            self.consumed_rx(hot) / total
        }
    }

    /// Marks the end of a round: records per-round deltas and resets the
    /// round baseline.
    pub fn end_round(&mut self) {
        for i in 0..self.consumed.len() {
            let delta = self.consumed[i] - self.round_start[i];
            if delta > self.max_round_consumption[i] {
                self.max_round_consumption[i] = delta;
            }
            self.round_start[i] = self.consumed[i];
        }
        self.rounds_recorded += 1;
    }

    /// Number of completed rounds.
    pub fn rounds(&self) -> u32 {
        self.rounds_recorded
    }

    /// The maximum *cumulative* consumption over sensor nodes (the
    /// "hot-spot" energy; root excluded since it is mains-powered).
    pub fn max_sensor_consumption(&self) -> f64 {
        self.consumed[1..].iter().copied().fold(0.0, f64::max)
    }

    /// The id of the sensor node with the highest cumulative consumption,
    /// or `None` for a root-only ledger (the root is mains-powered and is
    /// never a hotspot candidate).
    pub fn hottest_sensor(&self) -> Option<NodeId> {
        let (idx, _) = self.consumed.get(1..)?.iter().enumerate().fold(
            (usize::MAX, f64::MIN),
            |acc, (i, &e)| {
                if acc.0 == usize::MAX || e > acc.1 {
                    (i, e)
                } else {
                    acc
                }
            },
        );
        (idx != usize::MAX).then(|| NodeId(idx as u32 + 1))
    }

    /// The highest energy any node spent within `id`'s single costliest
    /// completed round (recorded by [`EnergyLedger::end_round`]).
    pub fn max_round_consumption(&self, id: NodeId) -> f64 {
        self.max_round_consumption[id.index()]
    }

    /// The single costliest sensor-round observed so far: the maximum over
    /// sensors of the per-round consumption peak. This is the worst-case
    /// burst a node's power budget must survive (as opposed to
    /// [`EnergyLedger::max_sensor_consumption`], the *cumulative* hotspot).
    /// Zero until a round completes or for a root-only ledger.
    pub fn max_round_sensor_consumption(&self) -> f64 {
        self.max_round_consumption
            .get(1..)
            .unwrap_or(&[])
            .iter()
            .copied()
            .fold(0.0, f64::max)
    }

    /// Mean per-round consumption of each node (`consumed / rounds`).
    /// All-zero until at least one round completed — the division by zero
    /// rounds would otherwise poison every entry with NaN (idle ledger) or
    /// ∞ (charged but never snapshotted), and those propagate silently
    /// through any downstream mean/max.
    pub fn mean_per_round(&self) -> Vec<f64> {
        if self.rounds_recorded == 0 {
            return vec![0.0; self.consumed.len()];
        }
        self.consumed
            .iter()
            .map(|&e| e / self.rounds_recorded as f64)
            .collect()
    }

    /// Cumulative consumption of every node, indexed by node id (the
    /// replay target of [`crate::audit::EnergyAuditor`]).
    pub fn consumed_per_node(&self) -> &[f64] {
        &self.consumed
    }

    /// Cumulative *transmit* consumption of every node, indexed by node id.
    pub fn consumed_tx_per_node(&self) -> &[f64] {
        &self.consumed_tx
    }

    /// Estimated network lifetime in rounds: how many rounds until the
    /// first *sensor* runs out of energy, assuming every future round costs
    /// each node its observed per-round mean (DESIGN.md §3.3). Returns
    /// `f64::INFINITY` if no node consumed anything.
    pub fn estimated_lifetime_rounds(&self, model: &RadioModel) -> f64 {
        if self.rounds_recorded == 0 {
            return f64::INFINITY;
        }
        let max_mean = self.consumed[1..]
            .iter()
            .map(|&e| e / self.rounds_recorded as f64)
            .fold(0.0, f64::max);
        if max_mean <= 0.0 {
            f64::INFINITY
        } else {
            model.initial_energy / max_mean
        }
    }

    /// Id of the first sensor that would die under a literal replay of the
    /// observed rounds, together with the round number of its death, or
    /// `None` if nothing ever dies.
    pub fn first_death(&self, model: &RadioModel) -> Option<(NodeId, f64)> {
        if self.rounds_recorded == 0 {
            return None;
        }
        let mut best: Option<(NodeId, f64)> = None;
        for i in 1..self.consumed.len() {
            let mean = self.consumed[i] / self.rounds_recorded as f64;
            if mean > 0.0 {
                let rounds = model.initial_energy / mean;
                if best.is_none_or(|(_, r)| rounds < r) {
                    best = Some((NodeId(i as u32), rounds));
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tx_energy_formula() {
        let m = RadioModel::default();
        // 1000 bits over 35 m: 1000 * (50e-9 + 10e-12 * 1225).
        let e = m.tx_energy(1000, 35.0);
        let expect = 1000.0 * (50e-9 + 10e-12 * 35.0 * 35.0);
        assert!((e - expect).abs() < 1e-15);
    }

    #[test]
    fn rx_energy_formula() {
        let m = RadioModel::default();
        assert!((m.rx_energy(8) - 8.0 * 50e-9).abs() < 1e-18);
    }

    #[test]
    fn ledger_tracks_max_and_rounds() {
        let m = RadioModel::default();
        let mut l = EnergyLedger::new(3);
        l.charge(NodeId(1), 1e-6);
        l.charge(NodeId(2), 3e-6);
        l.end_round();
        l.charge(NodeId(1), 5e-6);
        l.end_round();
        assert_eq!(l.rounds(), 2);
        assert!((l.consumed(NodeId(1)) - 6e-6).abs() < 1e-18);
        assert!((l.max_sensor_consumption() - 6e-6).abs() < 1e-18);
        assert_eq!(l.hottest_sensor(), Some(NodeId(1)));
        // Mean per round: node1 3e-6, node2 1.5e-6 -> lifetime 30e-3/3e-6 = 1e4.
        let lt = l.estimated_lifetime_rounds(&m);
        assert!((lt - 1e4).abs() / 1e4 < 1e-12);
        let (who, when) = l.first_death(&m).unwrap();
        assert_eq!(who, NodeId(1));
        assert!((when - 1e4).abs() / 1e4 < 1e-12);
    }

    #[test]
    fn tx_rx_split_adds_up() {
        let mut l = EnergyLedger::new(3);
        l.charge_tx(NodeId(1), 3e-6);
        l.charge(NodeId(1), 1e-6);
        assert!((l.consumed_tx(NodeId(1)) - 3e-6).abs() < 1e-18);
        assert!((l.consumed_rx(NodeId(1)) - 1e-6).abs() < 1e-18);
        assert!((l.consumed(NodeId(1)) - 4e-6).abs() < 1e-18);
        // Node 1 is the hotspot; rx fraction = 0.25.
        assert!((l.hotspot_rx_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn root_only_ledger_has_no_hotspot() {
        // Regression: this used to return NodeId(1), a node that does not
        // exist in a root-only ledger.
        let mut l = EnergyLedger::new(1);
        l.charge(NodeId::ROOT, 1e-3);
        assert_eq!(l.hottest_sensor(), None);
        assert_eq!(l.hotspot_rx_fraction(), 0.0);
        assert_eq!(l.max_round_sensor_consumption(), 0.0);
        assert_eq!(EnergyLedger::new(0).hottest_sensor(), None);
    }

    #[test]
    fn max_round_consumption_tracks_the_costliest_round() {
        let mut l = EnergyLedger::new(3);
        l.charge(NodeId(1), 2e-6);
        l.charge(NodeId(2), 1e-6);
        l.end_round();
        l.charge(NodeId(1), 5e-6);
        l.end_round();
        l.charge(NodeId(1), 1e-6);
        l.end_round();
        assert!((l.max_round_consumption(NodeId(1)) - 5e-6).abs() < 1e-18);
        assert!((l.max_round_consumption(NodeId(2)) - 1e-6).abs() < 1e-18);
        assert!((l.max_round_sensor_consumption() - 5e-6).abs() < 1e-18);
        // Energy charged after the last end_round is not yet a peak.
        let mut fresh = EnergyLedger::new(2);
        fresh.charge(NodeId(1), 9e-6);
        assert_eq!(fresh.max_round_sensor_consumption(), 0.0);
    }

    /// Regression: with zero completed rounds, `mean_per_round` used to
    /// divide by zero — NaN per node on an idle ledger, ∞ once anything
    /// had been charged. It must return a zeroed per-node vector instead.
    #[test]
    fn mean_per_round_with_zero_rounds_is_zero_not_nan() {
        let mut l = EnergyLedger::new(3);
        assert_eq!(l.mean_per_round(), vec![0.0; 3]);
        l.charge(NodeId(1), 5e-6);
        let means = l.mean_per_round();
        assert_eq!(means.len(), 3);
        assert!(means.iter().all(|m| m.is_finite() && *m == 0.0));
        // After a round completes the real means appear.
        l.end_round();
        assert!((l.mean_per_round()[1] - 5e-6).abs() < 1e-18);
    }

    #[test]
    fn idle_network_lives_forever() {
        let m = RadioModel::default();
        let mut l = EnergyLedger::new(4);
        l.end_round();
        assert!(l.estimated_lifetime_rounds(&m).is_infinite());
        assert!(l.first_death(&m).is_none());
    }

    #[test]
    fn root_never_dies() {
        let m = RadioModel::default();
        let mut l = EnergyLedger::new(2);
        l.charge(NodeId::ROOT, 1.0); // huge, but the root is mains powered
        l.charge(NodeId(1), 1e-9);
        l.end_round();
        let (who, _) = l.first_death(&m).unwrap();
        assert_eq!(who, NodeId(1));
    }
}
