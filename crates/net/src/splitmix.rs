//! The one shared splitmix64 generator behind every seeded stream in the
//! workspace.
//!
//! The loss process, the crash-stop failure process and the xoshiro256**
//! seeding in `wsn-data` all draw from splitmix64 (Steele, Lea & Flood,
//! "Fast splittable pseudorandom number generators", OOPSLA 2014). They
//! used to carry three hand-rolled copies of the same constants; this
//! module is the single implementation, so the streams cannot silently
//! drift apart — every experiment seed in every published table depends on
//! these exact outputs staying bit-identical.

/// The splitmix64 state-advance increment (the 64-bit golden ratio).
pub const GOLDEN_GAMMA: u64 = 0x9E3779B97F4A7C15;

/// A splitmix64 stream. Zero-dependency, `Copy`-cheap, and bit-exact
/// against the reference implementation: seed 0 produces
/// `0xE220A8397B1DCDAF, 0x6E789E6AA1B965F4, 0x06C45D188009454F, …`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Starts a stream at `seed`. Identical seeds yield identical streams.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output (the full finalizer, including the `z >> 31`
    /// xorshift).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)` from the top 53 bits of the next output.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference outputs for seed 0 (same vector as the canonical C
    /// implementation and e.g. `rand_core`'s SplitMix64).
    #[test]
    fn matches_reference_vector_for_seed_zero() {
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xE220A8397B1DCDAF);
        assert_eq!(sm.next_u64(), 0x6E789E6AA1B965F4);
        assert_eq!(sm.next_u64(), 0x06C45D188009454F);
    }

    /// The exact open-coded sequence the loss/failure models shipped with
    /// before deduplication: advancing the state, finalizing, and taking
    /// the top 53 bits. Locks the streams bit-for-bit.
    #[test]
    fn f64_stream_matches_the_old_inline_implementation() {
        for seed in [0u64, 1, 42, 0xC0FFEE, u64::MAX] {
            let mut sm = SplitMix64::new(seed);
            let mut state = seed;
            for _ in 0..64 {
                state = state.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^= z >> 31;
                let old = (z >> 11) as f64 / (1u64 << 53) as f64;
                assert_eq!(sm.next_f64(), old, "seed {seed}");
            }
        }
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        let mut c = SplitMix64::new(8);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        assert_ne!(SplitMix64::new(7).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut sm = SplitMix64::new(123);
        for _ in 0..10_000 {
            let x = sm.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
