#![warn(missing_docs)]
//! # wsn-net — wireless sensor network substrate
//!
//! This crate models the physical and logical layers of a hierarchical
//! wireless sensor network as used by the EDBT 2014 paper *"Continuous
//! Quantile Query Processing in Wireless Sensor Networks"*:
//!
//! * [`geometry`] — 2-D points and distances,
//! * [`topology`] — the physical connectivity (disk) graph `G_p`,
//! * [`tree`] — the logical routing tree `G_l` (a shortest-path tree),
//! * [`message`] — message sizing constants and fragmentation,
//! * [`energy`] — the first-order radio energy model and per-node ledger,
//! * [`network`] — convergecast / broadcast engines with in-network
//!   aggregation and energy accounting,
//! * [`loss`] — optional Bernoulli link-loss model (paper §6 future work),
//! * [`reliability`] — optional ARQ, wave recovery and crash-stop node
//!   failures with routing-tree repair (the other half of §6),
//! * [`splitmix`] — the workspace-shared splitmix64 generator behind every
//!   stochastic model,
//! * [`audit`] — per-transmission event log, per-phase energy attribution
//!   and a bit-exact replay auditor for the ledger.
//!
//! The substrate is deliberately protocol-agnostic: quantile algorithms in
//! `cqp-core` express themselves purely through [`network::Network`]
//! primitives, and all energy accounting happens here.
//!
//! ```
//! use wsn_net::{Aggregate, MessageSizes, Network, Point, RadioModel,
//!               RoutingTree, Topology};
//!
//! // A sum-of-readings aggregate.
//! #[derive(Default)]
//! struct Sum(u64);
//! impl Aggregate for Sum {
//!     fn merge(&mut self, other: Self) { self.0 += other.0; }
//!     fn payload_bits(&self, sizes: &MessageSizes) -> u64 { sizes.counter_bits }
//! }
//!
//! let positions = (0..4).map(|i| Point::new(i as f64 * 10.0, 0.0)).collect();
//! let topo = Topology::build(positions, 12.0);
//! let tree = RoutingTree::shortest_path_tree(&topo).unwrap();
//! let mut net = Network::new(topo, tree, RadioModel::default(), MessageSizes::default());
//!
//! let total = net.convergecast(|id| Some(Sum(id.0 as u64))).unwrap();
//! assert_eq!(total.0, 1 + 2 + 3);
//! assert!(net.ledger().max_sensor_consumption() > 0.0); // tx/rx charged
//! ```

pub mod audit;
pub mod bitset;
pub mod codec;
pub mod energy;
pub mod geometry;
pub mod loss;
pub mod message;
pub mod network;
pub mod reliability;
pub mod splitmix;
pub mod topology;
pub mod tree;

pub use audit::{
    lane_breakdowns, lane_breakdowns_by_round, AuditLog, AuditReport, EnergyAuditor, LaneBook,
    Phase, PhaseBreakdown, PhaseCounters, TxEvent, TxKind,
};
pub use bitset::NodeBits;
pub use energy::{EnergyLedger, RadioModel};
pub use geometry::Point;
pub use loss::{LossDrift, LossModel};
pub use message::{MessageSizes, PayloadSize};
pub use network::{Aggregate, Network, TrafficStats};
pub use reliability::{FailureModel, ReliabilityConfig, ReliabilityStats, WaveReport};
pub use topology::{NodeId, Topology};
pub use tree::RoutingTree;
/// The telemetry substrate (`wsn-obs`), re-exported so downstream crates
/// reach histogram/span/capture types through one dependency.
pub use wsn_obs as obs;

/// A sensor measurement. The paper works on an integer universe
/// `[r_min, r_max]`; we use `i64` so that algorithms can form open-ended
/// bounds (`i64::MIN`/`i64::MAX` stand in for −∞/∞) without overflow in
/// interval arithmetic.
pub type Value = i64;
