//! Bernoulli message-loss model (paper §6, future work).
//!
//! The paper assumes reliable links but names message loss — and the rank
//! error it induces in exact quantile protocols — as the main open problem.
//! This module provides the loss process used by the `ext-loss` experiments:
//! each logical message is lost independently with probability `p`.
//!
//! The generator is the shared in-repo splitmix64
//! ([`crate::splitmix::SplitMix64`]) so that `wsn-net` stays
//! dependency-free and runs are reproducible.

use crate::splitmix::SplitMix64;

/// Independent-and-identically-distributed message loss.
#[derive(Debug, Clone)]
pub struct LossModel {
    p: f64,
    stream: SplitMix64,
}

impl LossModel {
    /// Creates a loss process dropping each message with probability `p`,
    /// seeded deterministically.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn new(p: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p), "loss probability out of range");
        LossModel {
            p,
            stream: SplitMix64::new(seed),
        }
    }

    /// The loss probability.
    pub fn probability(&self) -> f64 {
        self.p
    }

    /// Samples the fate of one message: `true` means *lost*.
    pub fn lose(&mut self) -> bool {
        if self.p <= 0.0 {
            return false;
        }
        if self.p >= 1.0 {
            return true;
        }
        self.stream.next_f64() < self.p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_probability_never_loses() {
        let mut l = LossModel::new(0.0, 1);
        assert!((0..1000).all(|_| !l.lose()));
    }

    #[test]
    fn unit_probability_always_loses() {
        let mut l = LossModel::new(1.0, 1);
        assert!((0..1000).all(|_| l.lose()));
    }

    #[test]
    fn empirical_rate_matches_p() {
        let mut l = LossModel::new(0.2, 42);
        let losses = (0..100_000).filter(|_| l.lose()).count();
        let rate = losses as f64 / 100_000.0;
        assert!((rate - 0.2).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn deterministic_for_seed() {
        let mut a = LossModel::new(0.5, 7);
        let mut b = LossModel::new(0.5, 7);
        for _ in 0..100 {
            assert_eq!(a.lose(), b.lose());
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_invalid_probability() {
        let _ = LossModel::new(1.5, 0);
    }
}
