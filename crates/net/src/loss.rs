//! Bernoulli message-loss model (paper §6, future work).
//!
//! The paper assumes reliable links but names message loss — and the rank
//! error it induces in exact quantile protocols — as the main open problem.
//! This module provides the loss process used by the `ext-loss` experiments:
//! each logical message is lost independently with probability `p`.
//!
//! The generator is the shared in-repo splitmix64
//! ([`crate::splitmix::SplitMix64`]) so that `wsn-net` stays
//! dependency-free and runs are reproducible.

use crate::splitmix::SplitMix64;

/// Independent-and-identically-distributed message loss.
#[derive(Debug, Clone)]
pub struct LossModel {
    p: f64,
    stream: SplitMix64,
}

impl LossModel {
    /// Creates a loss process dropping each message with probability `p`,
    /// seeded deterministically.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn new(p: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p), "loss probability out of range");
        LossModel {
            p,
            stream: SplitMix64::new(seed),
        }
    }

    /// The loss probability.
    pub fn probability(&self) -> f64 {
        self.p
    }

    /// Repoints the loss probability without disturbing the draw stream:
    /// the link-drift schedule retunes `p` between rounds while every
    /// in-round fate keeps consuming the same deterministic sequence.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn set_probability(&mut self, p: f64) {
        assert!((0.0..=1.0).contains(&p), "loss probability out of range");
        self.p = p;
    }

    /// Samples the fate of one message: `true` means *lost*.
    pub fn lose(&mut self) -> bool {
        if self.p <= 0.0 {
            return false;
        }
        if self.p >= 1.0 {
            return true;
        }
        self.stream.next_f64() < self.p
    }
}

/// Time-varying link quality: a bounded random walk over the loss
/// probability, advanced once per round by the dynamics layer. The walk
/// stays inside `[max(0, base − amplitude), min(1, base + amplitude)]`, so
/// a drift pinned at amplitude 0 degenerates to the static [`LossModel`]
/// and the boundary cases `p = 0.0` / `p = 1.0` are reachable (and
/// clamped, never exceeded).
///
/// The schedule owns its own [`SplitMix64`] stream, separate from the loss
/// model's fate stream — retuning `p` never perturbs fate draws.
#[derive(Debug, Clone)]
pub struct LossDrift {
    p: f64,
    lo: f64,
    hi: f64,
    step: f64,
    stream: SplitMix64,
}

impl LossDrift {
    /// A drift schedule walking around `base` with the given `amplitude`,
    /// moving up to `amplitude / 4` per advance.
    ///
    /// # Panics
    /// Panics unless `base` and `amplitude` lie in `[0, 1]`.
    pub fn new(base: f64, amplitude: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&base), "drift base out of range");
        assert!(
            (0.0..=1.0).contains(&amplitude),
            "drift amplitude out of range"
        );
        LossDrift {
            p: base,
            lo: (base - amplitude).max(0.0),
            hi: (base + amplitude).min(1.0),
            step: amplitude / 4.0,
            stream: SplitMix64::new(seed),
        }
    }

    /// The current loss probability of the schedule.
    pub fn probability(&self) -> f64 {
        self.p
    }

    /// Advances the walk one round and returns the new loss probability,
    /// always within the documented band.
    pub fn advance(&mut self) -> f64 {
        if self.step > 0.0 {
            let delta = (self.stream.next_f64() * 2.0 - 1.0) * self.step;
            self.p = (self.p + delta).clamp(self.lo, self.hi);
        }
        self.p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_probability_never_loses() {
        let mut l = LossModel::new(0.0, 1);
        assert!((0..1000).all(|_| !l.lose()));
    }

    #[test]
    fn unit_probability_always_loses() {
        let mut l = LossModel::new(1.0, 1);
        assert!((0..1000).all(|_| l.lose()));
    }

    #[test]
    fn empirical_rate_matches_p() {
        let mut l = LossModel::new(0.2, 42);
        let losses = (0..100_000).filter(|_| l.lose()).count();
        let rate = losses as f64 / 100_000.0;
        assert!((rate - 0.2).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn deterministic_for_seed() {
        let mut a = LossModel::new(0.5, 7);
        let mut b = LossModel::new(0.5, 7);
        for _ in 0..100 {
            assert_eq!(a.lose(), b.lose());
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_invalid_probability() {
        let _ = LossModel::new(1.5, 0);
    }

    #[test]
    fn set_probability_keeps_the_fate_stream() {
        let mut a = LossModel::new(0.5, 7);
        let mut b = LossModel::new(0.5, 7);
        for _ in 0..10 {
            assert_eq!(a.lose(), b.lose());
        }
        a.set_probability(0.5); // same p, stream untouched
        for _ in 0..10 {
            assert_eq!(a.lose(), b.lose());
        }
    }

    #[test]
    fn drift_stays_inside_its_band() {
        // Exactly representable base/amplitude so the band edges are
        // exact: [0.375 − 0.25, 0.375 + 0.25] = [0.125, 0.625].
        let mut d = LossDrift::new(0.375, 0.25, 99);
        for _ in 0..10_000 {
            let p = d.advance();
            assert!((0.125..=0.625).contains(&p), "p {p} left the band");
        }
    }

    #[test]
    fn drift_clamps_at_the_probability_boundaries() {
        let mut lo = LossDrift::new(0.0, 1.0, 5);
        let mut hi = LossDrift::new(1.0, 1.0, 5);
        for _ in 0..1000 {
            assert!((0.0..=1.0).contains(&lo.advance()));
            assert!((0.0..=1.0).contains(&hi.advance()));
        }
    }

    #[test]
    fn zero_amplitude_drift_is_static() {
        let mut d = LossDrift::new(0.25, 0.0, 1);
        for _ in 0..100 {
            assert_eq!(d.advance(), 0.25);
        }
    }

    #[test]
    fn drift_is_deterministic_for_seed() {
        let mut a = LossDrift::new(0.4, 0.3, 11);
        let mut b = LossDrift::new(0.4, 0.3, 11);
        for _ in 0..100 {
            assert_eq!(a.advance().to_bits(), b.advance().to_bits());
        }
    }
}
