//! Reliable transport and node-failure modelling (the §6 open problem).
//!
//! The paper assumes reliable links and immortal nodes; its §6 names message
//! loss as the main obstacle to deploying the *exact* continuous protocols.
//! This module provides the knobs the network engine uses to buy reliability
//! back, at a measurable energy price:
//!
//! * **Per-link ARQ** — every unicast data frame is acknowledged and
//!   retransmitted up to [`ReliabilityConfig::max_retries`] times. Every
//!   retry and every ACK is charged to the energy ledger, so reliability is
//!   never free.
//! * **Wave recovery** — payloads that still die after ARQ are stashed at
//!   the last node that held them and re-forwarded towards the root in up
//!   to [`ReliabilityConfig::recovery_passes`] extra passes; broadcasts are
//!   repaired symmetrically (parents re-offer the payload to children that
//!   missed it).
//! * **Crash-stop node failures** — [`FailureModel`] kills sensors with a
//!   per-round probability; the engine repairs the routing tree over the
//!   surviving disk graph and reports nodes that become unreachable.
//!
//! Every wave additionally produces a [`WaveReport`] naming the subtree
//! roots whose contribution never reached the sink, so protocols can detect
//! an incomplete wave and re-issue it instead of silently answering from
//! corrupted counters.

use crate::splitmix::SplitMix64;
use crate::topology::NodeId;

/// Link-layer reliability knobs. The default (`max_retries = 0`,
/// `recovery_passes = 0`) reproduces the unreliable fire-and-forget
/// behaviour of the plain loss model bit for bit: no ACKs are sent and no
/// recovery traffic is generated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReliabilityConfig {
    /// Maximum ARQ retransmissions per data frame (0 = fire-and-forget,
    /// which also disables ACKs entirely). ARQ only acts when a loss model
    /// is installed — on reliable links there is nothing to retransmit.
    pub max_retries: u32,
    /// Maximum end-to-end recovery passes per wave: convergecast payloads
    /// dropped after ARQ are re-forwarded hop-by-hop towards the root, and
    /// broadcast payloads are re-offered to children that missed them.
    /// 0 disables wave recovery (and protocol-level wave re-issue).
    pub recovery_passes: u32,
}

impl ReliabilityConfig {
    /// ARQ with `max_retries` retransmissions and no end-to-end recovery.
    pub fn arq(max_retries: u32) -> Self {
        ReliabilityConfig {
            max_retries,
            recovery_passes: 0,
        }
    }

    /// Full reliability: ARQ plus end-to-end wave recovery.
    pub fn recovering(max_retries: u32, recovery_passes: u32) -> Self {
        ReliabilityConfig {
            max_retries,
            recovery_passes,
        }
    }

    /// True iff any reliability mechanism is enabled.
    pub fn is_enabled(&self) -> bool {
        self.max_retries > 0 || self.recovery_passes > 0
    }
}

/// Cumulative reliability counters (across all waves of a run).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReliabilityStats {
    /// Logical payload hops that arrived (possibly after retries).
    pub delivered: u64,
    /// Logical payload hops lost even after exhausting the ARQ budget.
    pub dropped: u64,
    /// Data-frame retransmissions sent by the ARQ layer.
    pub retransmissions: u64,
    /// Acknowledgement frames sent.
    pub acks: u64,
    /// Stranded convergecast payloads that reached the root via recovery
    /// passes, plus broadcast receptions repaired by re-offers.
    pub recovered: u64,
    /// Sensors killed by the crash-stop failure process.
    pub failed_nodes: u64,
    /// Live sensors currently cut off from the sink (no path over the
    /// surviving disk graph). Updated on every tree repair.
    pub orphaned_nodes: u64,
    /// Routing-tree repairs performed after failures.
    pub repairs: u64,
    /// Routing-tree rebuilds forced by the dynamics layer (mobility
    /// epochs, churn, drift-driven topology change) — failure-driven
    /// repairs count under [`ReliabilityStats::repairs`] instead.
    pub rebuilds: u64,
}

impl ReliabilityStats {
    /// Fraction of logical payload hops delivered (1.0 when nothing was
    /// sent).
    pub fn delivery_rate(&self) -> f64 {
        let total = self.delivered + self.dropped;
        if total == 0 {
            1.0
        } else {
            self.delivered as f64 / total as f64
        }
    }
}

/// Report of the most recent convergecast wave.
#[derive(Debug, Clone, Default)]
pub struct WaveReport {
    /// Roots of the subtrees whose merged contribution never reached the
    /// sink. Every node whose contribution is missing lies in the subtree
    /// of exactly one listed root (or of a deeper listed root), so the
    /// union of these subtrees is precisely the set of unaccounted nodes.
    pub dropped_roots: Vec<NodeId>,
    /// Nodes that transmitted a payload during the wave.
    pub senders: u64,
}

impl WaveReport {
    /// True iff every contribution reached the sink.
    pub fn is_complete(&self) -> bool {
        self.dropped_roots.is_empty()
    }

    /// Resets the report for a new wave.
    pub fn clear(&mut self) {
        self.dropped_roots.clear();
        self.senders = 0;
    }
}

/// Crash-stop node failures: each round, every live sensor dies
/// independently with probability `p`. Dead nodes never transmit, receive
/// or recover (§6-style fail-stop; no babbling failures).
///
/// The generator is the same shared splitmix64 as
/// [`crate::loss::LossModel`] ([`crate::splitmix::SplitMix64`]), so failure
/// schedules are reproducible from the seed alone.
#[derive(Debug, Clone)]
pub struct FailureModel {
    p: f64,
    stream: SplitMix64,
}

impl FailureModel {
    /// Creates a crash process with per-round death probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn new(p: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p), "failure probability out of range");
        FailureModel {
            p,
            stream: SplitMix64::new(seed),
        }
    }

    /// The per-round death probability.
    pub fn probability(&self) -> f64 {
        self.p
    }

    /// Samples one node-round: `true` means the node crashes now.
    pub fn strike(&mut self) -> bool {
        if self.p <= 0.0 {
            return false;
        }
        if self.p >= 1.0 {
            return true;
        }
        self.stream.next_f64() < self.p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_fire_and_forget() {
        let c = ReliabilityConfig::default();
        assert_eq!(c.max_retries, 0);
        assert_eq!(c.recovery_passes, 0);
        assert!(!c.is_enabled());
        assert!(ReliabilityConfig::arq(3).is_enabled());
        assert!(ReliabilityConfig::recovering(3, 4).recovery_passes == 4);
    }

    #[test]
    fn delivery_rate_handles_silence() {
        let mut s = ReliabilityStats::default();
        assert_eq!(s.delivery_rate(), 1.0);
        s.delivered = 3;
        s.dropped = 1;
        assert!((s.delivery_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn wave_report_completeness() {
        let mut w = WaveReport::default();
        assert!(w.is_complete());
        w.dropped_roots.push(NodeId(3));
        w.senders = 5;
        assert!(!w.is_complete());
        w.clear();
        assert!(w.is_complete());
        assert_eq!(w.senders, 0);
    }

    #[test]
    fn failure_model_is_deterministic() {
        let mut a = FailureModel::new(0.3, 99);
        let mut b = FailureModel::new(0.3, 99);
        for _ in 0..200 {
            assert_eq!(a.strike(), b.strike());
        }
    }

    #[test]
    fn failure_extremes() {
        let mut never = FailureModel::new(0.0, 1);
        assert!((0..100).all(|_| !never.strike()));
        let mut always = FailureModel::new(1.0, 1);
        assert!((0..100).all(|_| always.strike()));
    }

    #[test]
    fn empirical_failure_rate_matches_p() {
        let mut f = FailureModel::new(0.1, 7);
        let deaths = (0..100_000).filter(|_| f.strike()).count();
        let rate = deaths as f64 / 100_000.0;
        assert!((rate - 0.1).abs() < 0.01, "rate {rate}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_invalid_probability() {
        let _ = FailureModel::new(-0.1, 0);
    }
}
