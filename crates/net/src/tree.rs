//! The logical routing tree `G_l = (N ∪ {r}, E_l)`.
//!
//! The paper reduces the physical connectivity `E_p` to an acyclic connected
//! subset `E_l` and routes all traffic along it: every node may only talk to
//! its parent and its children (§5.1.1). We build a *Shortest Path Tree*
//! rooted at the sink, exactly as the paper's simulations do: BFS by hop
//! count with Euclidean distance as the tie-breaker, which makes tree
//! construction deterministic for a given topology.

use crate::topology::{NodeId, Topology};

/// A routing tree over a [`Topology`], rooted at [`NodeId::ROOT`].
#[derive(Debug, Clone)]
pub struct RoutingTree {
    parent: Vec<Option<NodeId>>,
    children: Vec<Vec<NodeId>>,
    depth: Vec<u32>,
    /// Nodes ordered children-before-parents (reverse BFS); iterating this
    /// order performs a convergecast, the reverse a broadcast.
    bottom_up: Vec<NodeId>,
}

impl RoutingTree {
    /// Builds the shortest-path tree of `topo` rooted at the sink.
    ///
    /// # Errors
    /// Returns `Err` with the set of unreachable nodes if the physical graph
    /// is partitioned (the paper assumes this never happens, but callers on
    /// random placements need to detect and resample).
    pub fn shortest_path_tree(topo: &Topology) -> Result<Self, Vec<NodeId>> {
        let n = topo.len();
        let mut parent: Vec<Option<NodeId>> = vec![None; n];
        let mut depth = vec![u32::MAX; n];
        let mut order = Vec::with_capacity(n);

        depth[0] = 0;
        let mut frontier = vec![NodeId::ROOT];
        order.push(NodeId::ROOT);
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for &u in &frontier {
                for &v in topo.neighbors(u) {
                    if depth[v.index()] == u32::MAX {
                        depth[v.index()] = depth[u.index()] + 1;
                        parent[v.index()] = Some(u);
                        next.push(v);
                    } else if depth[v.index()] == depth[u.index()] + 1 {
                        // Tie-break on Euclidean distance for determinism
                        // and shorter (cheaper) links.
                        let cur = parent[v.index()].expect("tie implies parent set");
                        let d_cur = topo.position(v).dist(&topo.position(cur));
                        let d_new = topo.position(v).dist(&topo.position(u));
                        if d_new < d_cur {
                            parent[v.index()] = Some(u);
                        }
                    }
                }
            }
            next.sort_unstable();
            next.dedup();
            order.extend_from_slice(&next);
            frontier = next;
        }

        let unreachable: Vec<NodeId> = topo
            .node_ids()
            .filter(|id| depth[id.index()] == u32::MAX)
            .collect();
        if !unreachable.is_empty() {
            return Err(unreachable);
        }
        // Connectivity and the BFS order must agree — on a 1-sensor network
        // this is the whole tree, so a mismatch would silently drop the
        // only measurement.
        debug_assert_eq!(order.len(), n, "BFS order must cover the connected graph");

        let mut children: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for id in topo.node_ids().skip(1) {
            let p = parent[id.index()].expect("non-root has parent");
            children[p.index()].push(id);
        }

        let mut bottom_up = order;
        bottom_up.reverse();

        Ok(RoutingTree {
            parent,
            children,
            depth,
            bottom_up,
        })
    }

    /// Rebuilds the shortest-path tree over the *surviving* disk graph
    /// after crash-stop node failures: only nodes with `alive[i] == true`
    /// participate, orphaned subtrees are re-parented through whatever live
    /// detour exists, and nodes that end up with no live path to the sink
    /// are returned as the orphan list (never an error — a partitioned
    /// survivor graph is an expected runtime condition, unlike a
    /// partitioned deployment).
    ///
    /// Dead and orphaned nodes keep their slots (the tree stays
    /// full-length) but have no parent, no children, depth `u32::MAX`, and
    /// do not appear in [`RoutingTree::bottom_up`] — the wave engines skip
    /// them naturally.
    ///
    /// # Panics
    /// Panics if `alive` is shorter than the topology or the sink itself
    /// (`alive\[0\]`) is dead — the sink is mains-powered and outside the
    /// failure model.
    pub fn spanning_alive(topo: &Topology, alive: &[bool]) -> (Self, Vec<NodeId>) {
        let n = topo.len();
        assert!(alive.len() >= n, "alive mask shorter than topology");
        assert!(alive[0], "the sink cannot fail");
        let mut parent: Vec<Option<NodeId>> = vec![None; n];
        let mut depth = vec![u32::MAX; n];
        let mut order = Vec::with_capacity(n);

        depth[0] = 0;
        let mut frontier = vec![NodeId::ROOT];
        order.push(NodeId::ROOT);
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for &u in &frontier {
                for &v in topo.neighbors(u) {
                    if !alive[v.index()] {
                        continue;
                    }
                    if depth[v.index()] == u32::MAX {
                        depth[v.index()] = depth[u.index()] + 1;
                        parent[v.index()] = Some(u);
                        next.push(v);
                    } else if depth[v.index()] == depth[u.index()] + 1 {
                        // Same tie-break as `shortest_path_tree`: prefer the
                        // geometrically closer parent, deterministically.
                        let cur = parent[v.index()].expect("tie implies parent set");
                        let d_cur = topo.position(v).dist(&topo.position(cur));
                        let d_new = topo.position(v).dist(&topo.position(u));
                        if d_new < d_cur {
                            parent[v.index()] = Some(u);
                        }
                    }
                }
            }
            next.sort_unstable();
            next.dedup();
            order.extend_from_slice(&next);
            frontier = next;
        }

        let orphans: Vec<NodeId> = topo
            .node_ids()
            .filter(|id| alive[id.index()] && depth[id.index()] == u32::MAX)
            .collect();

        let mut children: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for &id in order.iter().skip(1) {
            let p = parent[id.index()].expect("connected non-root has parent");
            children[p.index()].push(id);
        }

        let mut bottom_up = order;
        bottom_up.reverse();

        (
            RoutingTree {
                parent,
                children,
                depth,
                bottom_up,
            },
            orphans,
        )
    }

    /// Builds a routing tree from explicit parent pointers (`None` exactly
    /// for the root at index 0). Used for custom logical topologies, e.g.
    /// the §2 multi-measurement expansion where artificial children must
    /// hang off their real node regardless of hop-count ties.
    ///
    /// # Errors
    /// Returns the offending node ids if the pointers do not form a tree
    /// rooted at node 0 (cycle, unreachable node, or non-root without a
    /// parent).
    pub fn from_parents(parent: Vec<Option<NodeId>>) -> Result<Self, Vec<NodeId>> {
        let n = parent.len();
        if n == 0 || parent[0].is_some() {
            return Err(vec![NodeId::ROOT]);
        }
        let mut children: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        let mut bad = Vec::new();
        for (i, p) in parent.iter().enumerate().skip(1) {
            match p {
                Some(p) if p.index() < n && p.index() != i => {
                    children[p.index()].push(NodeId(i as u32));
                }
                _ => bad.push(NodeId(i as u32)),
            }
        }
        if !bad.is_empty() {
            return Err(bad);
        }
        // BFS from the root assigns depths and detects unreachable nodes
        // (which is what a cycle reduces to).
        let mut depth = vec![u32::MAX; n];
        depth[0] = 0;
        let mut order = vec![NodeId::ROOT];
        let mut head = 0usize;
        while head < order.len() {
            let u = order[head];
            head += 1;
            for &c in &children[u.index()] {
                depth[c.index()] = depth[u.index()] + 1;
                order.push(c);
            }
        }
        let unreachable: Vec<NodeId> = (0..n as u32)
            .map(NodeId)
            .filter(|id| depth[id.index()] == u32::MAX)
            .collect();
        if !unreachable.is_empty() {
            return Err(unreachable);
        }
        let mut bottom_up = order;
        bottom_up.reverse();
        Ok(RoutingTree {
            parent,
            children,
            depth,
            bottom_up,
        })
    }

    /// Number of nodes in the tree (root included).
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Never true (a tree always contains at least the root).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Parent of `id`, or `None` for the root.
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.parent[id.index()]
    }

    /// Children of `id` in the routing tree.
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        &self.children[id.index()]
    }

    /// Hop distance from the root (`u32::MAX` for nodes outside a repaired
    /// tree, see [`RoutingTree::spanning_alive`]).
    pub fn depth(&self, id: NodeId) -> u32 {
        self.depth[id.index()]
    }

    /// True iff `id` is connected to the sink through this tree. Always
    /// true for trees built by [`RoutingTree::shortest_path_tree`] /
    /// [`RoutingTree::from_parents`]; repaired trees exclude dead and
    /// orphaned nodes.
    pub fn contains(&self, id: NodeId) -> bool {
        self.depth[id.index()] != u32::MAX
    }

    /// Marks every node of the subtree rooted at `root` (root included) in
    /// `mask`. The mask is *not* cleared first, so callers can union
    /// several subtrees.
    pub fn mark_subtree(&self, root: NodeId, mask: &mut [bool]) {
        let mut stack = vec![root];
        while let Some(u) = stack.pop() {
            if !mask[u.index()] {
                mask[u.index()] = true;
                stack.extend_from_slice(&self.children[u.index()]);
            }
        }
    }

    /// True iff `id` has no children.
    pub fn is_leaf(&self, id: NodeId) -> bool {
        self.children[id.index()].is_empty()
    }

    /// Nodes in children-before-parents order (ends at the root).
    /// Processing nodes in this order implements a convergecast wave.
    pub fn bottom_up(&self) -> &[NodeId] {
        &self.bottom_up
    }

    /// Nodes in parents-before-children order (starts at the root).
    pub fn top_down(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.bottom_up.iter().rev().copied()
    }

    /// Size of the subtree rooted at each node (including the node itself;
    /// the root's entry equals [`RoutingTree::len`]).
    pub fn subtree_sizes(&self) -> Vec<usize> {
        let mut size = vec![1usize; self.len()];
        for &u in self.bottom_up() {
            if let Some(p) = self.parent(u) {
                size[p.index()] += size[u.index()];
            }
        }
        size
    }

    /// Maximum node depth (tree height in hops). Nodes outside a repaired
    /// tree do not count.
    pub fn height(&self) -> u32 {
        self.depth
            .iter()
            .copied()
            .filter(|&d| d != u32::MAX)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Point;

    fn line(n: usize) -> (Topology, RoutingTree) {
        let positions = (0..n).map(|i| Point::new(i as f64, 0.0)).collect();
        let topo = Topology::build(positions, 1.5);
        let tree = RoutingTree::shortest_path_tree(&topo).unwrap();
        (topo, tree)
    }

    #[test]
    fn line_tree_is_a_path() {
        let (_, tree) = line(6);
        for i in 1..6u32 {
            assert_eq!(tree.parent(NodeId(i)), Some(NodeId(i - 1)));
            assert_eq!(tree.depth(NodeId(i)), i);
        }
        assert_eq!(tree.parent(NodeId::ROOT), None);
        assert!(tree.is_leaf(NodeId(5)));
        assert_eq!(tree.height(), 5);
    }

    #[test]
    fn bottom_up_visits_children_first() {
        let (_, tree) = line(10);
        let mut seen = [false; 10];
        for &u in tree.bottom_up() {
            for &c in tree.children(u) {
                assert!(seen[c.index()], "child {c} not before parent {u}");
            }
            seen[u.index()] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn top_down_visits_parents_first() {
        let (_, tree) = line(10);
        let mut seen = [false; 10];
        for u in tree.top_down() {
            if let Some(p) = tree.parent(u) {
                assert!(seen[p.index()], "parent {p} not before child {u}");
            }
            seen[u.index()] = true;
        }
    }

    #[test]
    fn subtree_sizes_sum_up() {
        let positions = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(-1.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(1.0, 1.0),
        ];
        let topo = Topology::build(positions, 1.2);
        let tree = RoutingTree::shortest_path_tree(&topo).unwrap();
        let sizes = tree.subtree_sizes();
        assert_eq!(sizes[NodeId::ROOT.index()], 5);
        // Node 1 has children {3, 4}.
        assert_eq!(sizes[1], 3);
        assert_eq!(sizes[2], 1);
    }

    #[test]
    fn single_sensor_tree() {
        // The smallest legal network: the sink plus one sensor. The whole
        // fuzz battery runs on this shape, so every accessor must behave.
        let (_, tree) = line(2);
        assert_eq!(tree.len(), 2);
        assert_eq!(tree.parent(NodeId(1)), Some(NodeId::ROOT));
        assert_eq!(tree.children(NodeId::ROOT), &[NodeId(1)]);
        assert!(tree.is_leaf(NodeId(1)));
        assert_eq!(tree.height(), 1);
        assert_eq!(tree.bottom_up(), &[NodeId(1), NodeId::ROOT]);
        assert_eq!(tree.subtree_sizes(), vec![2, 1]);
    }

    #[test]
    fn coincident_positions_collapse_to_a_star() {
        // A degenerate "line" where every node sits on the same point:
        // zero-length links everywhere and all tie-breaks are exact ties.
        // BFS must still terminate with a depth-1 star (everyone hears the
        // sink directly) and a deterministic parent assignment.
        let positions = vec![Point::new(3.0, 3.0); 5];
        let topo = Topology::build(positions, 1.0);
        let tree = RoutingTree::shortest_path_tree(&topo).unwrap();
        for i in 1..5u32 {
            assert_eq!(tree.parent(NodeId(i)), Some(NodeId::ROOT));
            assert_eq!(tree.depth(NodeId(i)), 1);
        }
        assert_eq!(tree.height(), 1);
    }

    #[test]
    fn line_at_exact_radio_range_stays_connected() {
        // Nodes spaced exactly one radio range apart: the boundary case the
        // fuzzer's density knob can hit. The disk graph treats `dist ==
        // range` as connected, so the line must build, not partition.
        let positions = (0..6).map(|i| Point::new(i as f64 * 2.0, 0.0)).collect();
        let topo = Topology::build(positions, 2.0);
        let tree = RoutingTree::shortest_path_tree(&topo).unwrap();
        assert_eq!(tree.height(), 5);
        for i in 1..6u32 {
            assert_eq!(tree.parent(NodeId(i)), Some(NodeId(i - 1)));
        }
    }

    #[test]
    fn partitioned_graph_reports_unreachable() {
        let positions = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(50.0, 50.0),
        ];
        let topo = Topology::build(positions, 2.0);
        let err = RoutingTree::shortest_path_tree(&topo).unwrap_err();
        assert_eq!(err, vec![NodeId(2)]);
    }

    #[test]
    fn from_parents_builds_custom_trees() {
        // root <- 1 <- 2, root <- 3.
        let tree = RoutingTree::from_parents(vec![
            None,
            Some(NodeId(0)),
            Some(NodeId(1)),
            Some(NodeId(0)),
        ])
        .unwrap();
        assert_eq!(tree.depth(NodeId(2)), 2);
        assert_eq!(tree.children(NodeId(0)), &[NodeId(1), NodeId(3)]);
        // Convergecast order still respects children-before-parents.
        let mut seen = [false; 4];
        for &u in tree.bottom_up() {
            for &c in tree.children(u) {
                assert!(seen[c.index()]);
            }
            seen[u.index()] = true;
        }
    }

    #[test]
    fn from_parents_rejects_cycles_and_orphans() {
        // 1 and 2 point at each other: unreachable from the root.
        let err =
            RoutingTree::from_parents(vec![None, Some(NodeId(2)), Some(NodeId(1))]).unwrap_err();
        assert_eq!(err, vec![NodeId(1), NodeId(2)]);
        // Root with a parent is invalid.
        assert!(RoutingTree::from_parents(vec![Some(NodeId(1)), None]).is_err());
        // Self-parent is invalid.
        assert!(RoutingTree::from_parents(vec![None, Some(NodeId(1))]).is_err());
    }

    #[test]
    fn spanning_alive_reparents_around_a_dead_relay() {
        // 0 - 1 - 2 with a detour 0 - 3 - 2: killing 1 re-parents 2 via 3.
        let positions = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(1.0, 1.0), // within 1.5 of both 0 and 2
        ];
        let topo = Topology::build(positions, 1.5);
        let full = RoutingTree::shortest_path_tree(&topo).unwrap();
        assert_eq!(full.parent(NodeId(2)), Some(NodeId(1)));

        let alive = vec![true, false, true, true];
        let (repaired, orphans) = RoutingTree::spanning_alive(&topo, &alive);
        assert!(orphans.is_empty());
        assert_eq!(repaired.parent(NodeId(2)), Some(NodeId(3)));
        assert!(!repaired.contains(NodeId(1)));
        assert!(repaired.bottom_up().iter().all(|&u| u != NodeId(1)));
        assert_eq!(repaired.len(), 4, "repaired trees keep every slot");
        assert_eq!(repaired.height(), 2);
    }

    #[test]
    fn spanning_alive_returns_orphans_on_partition() {
        // A line 0-1-2-3: killing 1 strands {2, 3} with no detour. The
        // repair must terminate and report them instead of looping.
        let (topo, _) = line(4);
        let alive = vec![true, false, true, true];
        let (repaired, orphans) = RoutingTree::spanning_alive(&topo, &alive);
        assert_eq!(orphans, vec![NodeId(2), NodeId(3)]);
        assert!(!repaired.contains(NodeId(2)));
        assert!(!repaired.contains(NodeId(3)));
        assert!(repaired.contains(NodeId(0)));
        assert_eq!(repaired.bottom_up(), &[NodeId(0)]);
        // Dead nodes are not orphans: they are simply gone.
        assert!(!orphans.contains(&NodeId(1)));
    }

    #[test]
    fn mark_subtree_unions() {
        let tree = RoutingTree::from_parents(vec![
            None,
            Some(NodeId(0)),
            Some(NodeId(1)),
            Some(NodeId(0)),
        ])
        .unwrap();
        let mut mask = vec![false; 4];
        tree.mark_subtree(NodeId(1), &mut mask);
        assert_eq!(mask, vec![false, true, true, false]);
        tree.mark_subtree(NodeId(3), &mut mask);
        assert_eq!(mask, vec![false, true, true, true]);
    }

    #[test]
    fn parents_are_strictly_shallower() {
        let (_, tree) = line(8);
        for i in 1..8u32 {
            let id = NodeId(i);
            let p = tree.parent(id).unwrap();
            assert_eq!(tree.depth(p) + 1, tree.depth(id));
        }
    }
}
