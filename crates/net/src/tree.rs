//! The logical routing tree `G_l = (N ∪ {r}, E_l)`.
//!
//! The paper reduces the physical connectivity `E_p` to an acyclic connected
//! subset `E_l` and routes all traffic along it: every node may only talk to
//! its parent and its children (§5.1.1). We build a *Shortest Path Tree*
//! rooted at the sink, exactly as the paper's simulations do: BFS by hop
//! count with Euclidean distance as the tie-breaker, which makes tree
//! construction deterministic for a given topology.

use crate::topology::{NodeId, Topology};

/// A routing tree over a [`Topology`], rooted at [`NodeId::ROOT`].
///
/// Beyond the parent/children pointers, the tree precomputes the
/// struct-of-arrays wave index the network engine runs on (DESIGN.md
/// §3.3g): children in one flat CSR array (each parent's children
/// contiguous), the bottom-up order with its equal-depth runs delimited by
/// [`RoutingTree::level_offsets`], the id → wave-position permutation, and
/// a root-subtree grouping that within-wave worker threads use to claim
/// disjoint contiguous ranges. All of it is derived once per tree build;
/// the wave engines never chase `Vec<Vec<…>>` pointers.
#[derive(Debug, Clone)]
pub struct RoutingTree {
    parent: Vec<Option<NodeId>>,
    /// CSR children: the children of `id` are
    /// `children_flat[child_offsets[id] .. child_offsets[id + 1]]`, in the
    /// same per-parent order the nested representation had.
    children_flat: Vec<NodeId>,
    child_offsets: Vec<u32>,
    depth: Vec<u32>,
    /// Nodes ordered children-before-parents (reverse BFS); iterating this
    /// order performs a convergecast, the reverse a broadcast. Each
    /// routing-tree level is one contiguous run (deepest level first, the
    /// root alone at the end).
    bottom_up: Vec<NodeId>,
    /// id → position in `bottom_up` (`u32::MAX` for nodes outside the
    /// tree: dead or orphaned after a repair).
    wave_slot: Vec<u32>,
    /// Boundaries of the equal-depth runs of `bottom_up`: run `k` is
    /// `bottom_up[level_offsets[k] .. level_offsets[k + 1]]`.
    level_offsets: Vec<u32>,
    /// Wave position of each node's parent, aligned with `bottom_up`
    /// (`u32::MAX` for the root's own entry).
    parent_slot: Vec<u32>,
    /// Non-root tree nodes regrouped so each root subtree is contiguous
    /// (groups in `children(root)` order, bottom-up order within a group).
    group_order: Vec<NodeId>,
    /// Group `g` is `group_order[group_offsets[g] .. group_offsets[g + 1]]`.
    group_offsets: Vec<u32>,
    /// Wave position (into `bottom_up[..len - 1]`) → `group_order` index.
    wave_to_group: Vec<u32>,
    /// `group_order` index → parent's `group_order` index (`u32::MAX` when
    /// the parent is the root — the node is its group's subtree root).
    group_parent: Vec<u32>,
}

impl RoutingTree {
    /// Builds the shortest-path tree of `topo` rooted at the sink.
    ///
    /// # Errors
    /// Returns `Err` with the set of unreachable nodes if the physical graph
    /// is partitioned (the paper assumes this never happens, but callers on
    /// random placements need to detect and resample).
    pub fn shortest_path_tree(topo: &Topology) -> Result<Self, Vec<NodeId>> {
        let n = topo.len();
        let mut parent: Vec<Option<NodeId>> = vec![None; n];
        let mut depth = vec![u32::MAX; n];
        let mut order = Vec::with_capacity(n);

        depth[0] = 0;
        let mut frontier = vec![NodeId::ROOT];
        order.push(NodeId::ROOT);
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for &u in &frontier {
                for &v in topo.neighbors(u) {
                    if depth[v.index()] == u32::MAX {
                        depth[v.index()] = depth[u.index()] + 1;
                        parent[v.index()] = Some(u);
                        next.push(v);
                    } else if depth[v.index()] == depth[u.index()] + 1 {
                        // Tie-break on Euclidean distance for determinism
                        // and shorter (cheaper) links.
                        let cur = parent[v.index()].expect("tie implies parent set");
                        let d_cur = topo.position(v).dist(&topo.position(cur));
                        let d_new = topo.position(v).dist(&topo.position(u));
                        if d_new < d_cur {
                            parent[v.index()] = Some(u);
                        }
                    }
                }
            }
            next.sort_unstable();
            next.dedup();
            order.extend_from_slice(&next);
            frontier = next;
        }

        let unreachable: Vec<NodeId> = topo
            .node_ids()
            .filter(|id| depth[id.index()] == u32::MAX)
            .collect();
        if !unreachable.is_empty() {
            return Err(unreachable);
        }
        // Connectivity and the BFS order must agree — on a 1-sensor network
        // this is the whole tree, so a mismatch would silently drop the
        // only measurement.
        debug_assert_eq!(order.len(), n, "BFS order must cover the connected graph");

        let mut children: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for id in topo.node_ids().skip(1) {
            let p = parent[id.index()].expect("non-root has parent");
            children[p.index()].push(id);
        }

        let mut bottom_up = order;
        bottom_up.reverse();

        Ok(RoutingTree::finish(parent, children, depth, bottom_up))
    }

    /// Rebuilds the shortest-path tree over the *surviving* disk graph
    /// after crash-stop node failures: only nodes with `alive[i] == true`
    /// participate, orphaned subtrees are re-parented through whatever live
    /// detour exists, and nodes that end up with no live path to the sink
    /// are returned as the orphan list (never an error — a partitioned
    /// survivor graph is an expected runtime condition, unlike a
    /// partitioned deployment).
    ///
    /// Dead and orphaned nodes keep their slots (the tree stays
    /// full-length) but have no parent, no children, depth `u32::MAX`, and
    /// do not appear in [`RoutingTree::bottom_up`] — the wave engines skip
    /// them naturally.
    ///
    /// # Panics
    /// Panics if `alive` is shorter than the topology or the sink itself
    /// (`alive\[0\]`) is dead — the sink is mains-powered and outside the
    /// failure model.
    pub fn spanning_alive(topo: &Topology, alive: &[bool]) -> (Self, Vec<NodeId>) {
        let n = topo.len();
        assert!(alive.len() >= n, "alive mask shorter than topology");
        assert!(alive[0], "the sink cannot fail");
        let mut parent: Vec<Option<NodeId>> = vec![None; n];
        let mut depth = vec![u32::MAX; n];
        let mut order = Vec::with_capacity(n);

        depth[0] = 0;
        let mut frontier = vec![NodeId::ROOT];
        order.push(NodeId::ROOT);
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for &u in &frontier {
                for &v in topo.neighbors(u) {
                    if !alive[v.index()] {
                        continue;
                    }
                    if depth[v.index()] == u32::MAX {
                        depth[v.index()] = depth[u.index()] + 1;
                        parent[v.index()] = Some(u);
                        next.push(v);
                    } else if depth[v.index()] == depth[u.index()] + 1 {
                        // Same tie-break as `shortest_path_tree`: prefer the
                        // geometrically closer parent, deterministically.
                        let cur = parent[v.index()].expect("tie implies parent set");
                        let d_cur = topo.position(v).dist(&topo.position(cur));
                        let d_new = topo.position(v).dist(&topo.position(u));
                        if d_new < d_cur {
                            parent[v.index()] = Some(u);
                        }
                    }
                }
            }
            next.sort_unstable();
            next.dedup();
            order.extend_from_slice(&next);
            frontier = next;
        }

        let orphans: Vec<NodeId> = topo
            .node_ids()
            .filter(|id| alive[id.index()] && depth[id.index()] == u32::MAX)
            .collect();

        let mut children: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for &id in order.iter().skip(1) {
            let p = parent[id.index()].expect("connected non-root has parent");
            children[p.index()].push(id);
        }

        let mut bottom_up = order;
        bottom_up.reverse();

        (
            RoutingTree::finish(parent, children, depth, bottom_up),
            orphans,
        )
    }

    /// Builds a routing tree from explicit parent pointers (`None` exactly
    /// for the root at index 0). Used for custom logical topologies, e.g.
    /// the §2 multi-measurement expansion where artificial children must
    /// hang off their real node regardless of hop-count ties.
    ///
    /// # Errors
    /// Returns the offending node ids if the pointers do not form a tree
    /// rooted at node 0 (cycle, unreachable node, or non-root without a
    /// parent).
    pub fn from_parents(parent: Vec<Option<NodeId>>) -> Result<Self, Vec<NodeId>> {
        let n = parent.len();
        if n == 0 || parent[0].is_some() {
            return Err(vec![NodeId::ROOT]);
        }
        let mut children: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        let mut bad = Vec::new();
        for (i, p) in parent.iter().enumerate().skip(1) {
            match p {
                Some(p) if p.index() < n && p.index() != i => {
                    children[p.index()].push(NodeId(i as u32));
                }
                _ => bad.push(NodeId(i as u32)),
            }
        }
        if !bad.is_empty() {
            return Err(bad);
        }
        // BFS from the root assigns depths and detects unreachable nodes
        // (which is what a cycle reduces to).
        let mut depth = vec![u32::MAX; n];
        depth[0] = 0;
        let mut order = vec![NodeId::ROOT];
        let mut head = 0usize;
        while head < order.len() {
            let u = order[head];
            head += 1;
            for &c in &children[u.index()] {
                depth[c.index()] = depth[u.index()] + 1;
                order.push(c);
            }
        }
        let unreachable: Vec<NodeId> = (0..n as u32)
            .map(NodeId)
            .filter(|id| depth[id.index()] == u32::MAX)
            .collect();
        if !unreachable.is_empty() {
            return Err(unreachable);
        }
        let mut bottom_up = order;
        bottom_up.reverse();
        Ok(RoutingTree::finish(parent, children, depth, bottom_up))
    }

    /// Flattens the constructor state into the struct-of-arrays form every
    /// wave runs on: CSR children, the id → wave-slot permutation, level
    /// runs, per-position parent slots, and the root-subtree grouping.
    /// Shared by all three constructors so the invariants hold for built,
    /// repaired, and hand-made trees alike.
    fn finish(
        parent: Vec<Option<NodeId>>,
        children: Vec<Vec<NodeId>>,
        depth: Vec<u32>,
        bottom_up: Vec<NodeId>,
    ) -> RoutingTree {
        let n = parent.len();

        let mut child_offsets = Vec::with_capacity(n + 1);
        let mut children_flat = Vec::with_capacity(n.saturating_sub(1));
        for kids in &children {
            child_offsets.push(children_flat.len() as u32);
            children_flat.extend_from_slice(kids);
        }
        child_offsets.push(children_flat.len() as u32);

        let mut wave_slot = vec![u32::MAX; n];
        for (pos, &u) in bottom_up.iter().enumerate() {
            wave_slot[u.index()] = pos as u32;
        }

        // bottom_up is reversed BFS, so depth is weakly decreasing along
        // it: the levels are exactly its maximal equal-depth runs.
        let mut level_offsets = vec![0u32];
        for pos in 1..bottom_up.len() {
            if depth[bottom_up[pos].index()] != depth[bottom_up[pos - 1].index()] {
                level_offsets.push(pos as u32);
            }
        }
        level_offsets.push(bottom_up.len() as u32);

        let parent_slot: Vec<u32> = bottom_up
            .iter()
            .map(|&u| parent[u.index()].map_or(u32::MAX, |p| wave_slot[p.index()]))
            .collect();

        // Root-subtree grouping: group g = the subtree of children(root)[g].
        // Every non-root tree node inherits its parent's group (parents
        // come earlier in top-down order, so one pass settles it).
        let roots = &children[0];
        let g_count = roots.len();
        let mut group_of = vec![u32::MAX; n];
        for (g, &c) in roots.iter().enumerate() {
            group_of[c.index()] = g as u32;
        }
        for &u in bottom_up.iter().rev().skip(1) {
            if group_of[u.index()] == u32::MAX {
                let p = parent[u.index()].expect("non-root tree node has parent");
                group_of[u.index()] = group_of[p.index()];
            }
        }

        // Counting sort by group, stable in bottom-up order: each group is
        // contiguous and internally children-before-parents, so a worker
        // owning a group range can aggregate it independently while the
        // within-group merge order stays exactly the sequential one.
        let gsize = bottom_up.len().saturating_sub(1);
        let mut group_offsets = vec![0u32; g_count + 1];
        for &u in &bottom_up[..gsize] {
            group_offsets[group_of[u.index()] as usize + 1] += 1;
        }
        for g in 0..g_count {
            group_offsets[g + 1] += group_offsets[g];
        }
        let mut cursor: Vec<u32> = group_offsets[..g_count].to_vec();
        let mut group_order = vec![NodeId::ROOT; gsize];
        let mut wave_to_group = vec![0u32; gsize];
        let mut group_slot = vec![u32::MAX; n];
        for (pos, &u) in bottom_up[..gsize].iter().enumerate() {
            let g = group_of[u.index()] as usize;
            let j = cursor[g];
            cursor[g] += 1;
            group_order[j as usize] = u;
            wave_to_group[pos] = j;
            group_slot[u.index()] = j;
        }
        let group_parent: Vec<u32> = group_order
            .iter()
            .map(|&u| {
                let p = parent[u.index()].expect("grouped node has parent");
                if p.is_root() {
                    u32::MAX
                } else {
                    group_slot[p.index()]
                }
            })
            .collect();

        RoutingTree {
            parent,
            children_flat,
            child_offsets,
            depth,
            bottom_up,
            wave_slot,
            level_offsets,
            parent_slot,
            group_order,
            group_offsets,
            wave_to_group,
            group_parent,
        }
    }

    /// Number of nodes in the tree (root included).
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Never true (a tree always contains at least the root).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Parent of `id`, or `None` for the root.
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.parent[id.index()]
    }

    /// Children of `id` in the routing tree.
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        let i = id.index();
        &self.children_flat[self.child_offsets[i] as usize..self.child_offsets[i + 1] as usize]
    }

    /// Hop distance from the root (`u32::MAX` for nodes outside a repaired
    /// tree, see [`RoutingTree::spanning_alive`]).
    pub fn depth(&self, id: NodeId) -> u32 {
        self.depth[id.index()]
    }

    /// True iff `id` is connected to the sink through this tree. Always
    /// true for trees built by [`RoutingTree::shortest_path_tree`] /
    /// [`RoutingTree::from_parents`]; repaired trees exclude dead and
    /// orphaned nodes.
    pub fn contains(&self, id: NodeId) -> bool {
        self.depth[id.index()] != u32::MAX
    }

    /// Marks every node of the subtree rooted at `root` (root included) in
    /// `mask`. The mask is *not* cleared first, so callers can union
    /// several subtrees.
    pub fn mark_subtree(&self, root: NodeId, mask: &mut [bool]) {
        let mut stack = vec![root];
        while let Some(u) = stack.pop() {
            if !mask[u.index()] {
                mask[u.index()] = true;
                stack.extend_from_slice(self.children(u));
            }
        }
    }

    /// True iff `id` has no children.
    pub fn is_leaf(&self, id: NodeId) -> bool {
        self.child_offsets[id.index()] == self.child_offsets[id.index() + 1]
    }

    /// Nodes in children-before-parents order (ends at the root).
    /// Processing nodes in this order implements a convergecast wave.
    pub fn bottom_up(&self) -> &[NodeId] {
        &self.bottom_up
    }

    /// Number of nodes actually in the tree (excluding dead/orphaned
    /// slots): the length of [`RoutingTree::bottom_up`].
    pub fn tree_size(&self) -> usize {
        self.bottom_up.len()
    }

    /// Position of `id` in [`RoutingTree::bottom_up`] (its *wave slot*),
    /// or `None` for nodes outside the tree.
    pub fn wave_slot(&self, id: NodeId) -> Option<usize> {
        let s = self.wave_slot[id.index()];
        (s != u32::MAX).then_some(s as usize)
    }

    /// Number of equal-depth runs of [`RoutingTree::bottom_up`] (the tree
    /// height plus one; the deepest level is run 0, the root run last).
    pub fn levels(&self) -> usize {
        self.level_offsets.len() - 1
    }

    /// Boundaries of the equal-depth runs of [`RoutingTree::bottom_up`]:
    /// level run `k` is `bottom_up[offsets[k] .. offsets[k + 1]]`. Always
    /// `levels() + 1` entries, first `0`, last `tree_size()`.
    pub fn level_offsets(&self) -> &[u32] {
        &self.level_offsets
    }

    /// Wave slot of each node's parent, aligned with
    /// [`RoutingTree::bottom_up`] (`u32::MAX` for the root's entry). Lets
    /// the wave engine deliver to parent-indexed scratch without chasing
    /// `parent()` and re-permuting per node.
    pub(crate) fn parent_slots(&self) -> &[u32] {
        &self.parent_slot
    }

    /// Number of root subtrees (= `children(root).len()`): the unit of
    /// within-wave parallelism.
    pub(crate) fn groups(&self) -> usize {
        self.group_offsets.len() - 1
    }

    /// Non-root tree nodes, each root subtree contiguous, bottom-up order
    /// within a subtree. Group `g` spans
    /// `group_order[group_offsets[g] .. group_offsets[g + 1]]`.
    pub(crate) fn group_order(&self) -> &[NodeId] {
        &self.group_order
    }

    /// Group boundaries into [`RoutingTree::group_order`].
    pub(crate) fn group_offsets(&self) -> &[u32] {
        &self.group_offsets
    }

    /// Wave position → group-order index, aligned with
    /// `bottom_up[..tree_size() - 1]`.
    pub(crate) fn wave_to_group(&self) -> &[u32] {
        &self.wave_to_group
    }

    /// Group-order index → parent's group-order index (`u32::MAX` when the
    /// parent is the root). Parents live in the same group as their
    /// children, so workers owning whole groups never write across ranges.
    pub(crate) fn group_parent(&self) -> &[u32] {
        &self.group_parent
    }

    /// Nodes in parents-before-children order (starts at the root).
    pub fn top_down(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.bottom_up.iter().rev().copied()
    }

    /// Size of the subtree rooted at each node (including the node itself;
    /// the root's entry equals [`RoutingTree::len`]).
    pub fn subtree_sizes(&self) -> Vec<usize> {
        let mut size = vec![1usize; self.len()];
        for &u in self.bottom_up() {
            if let Some(p) = self.parent(u) {
                size[p.index()] += size[u.index()];
            }
        }
        size
    }

    /// Maximum node depth (tree height in hops). Nodes outside a repaired
    /// tree do not count.
    pub fn height(&self) -> u32 {
        self.depth
            .iter()
            .copied()
            .filter(|&d| d != u32::MAX)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Point;

    fn line(n: usize) -> (Topology, RoutingTree) {
        let positions = (0..n).map(|i| Point::new(i as f64, 0.0)).collect();
        let topo = Topology::build(positions, 1.5);
        let tree = RoutingTree::shortest_path_tree(&topo).unwrap();
        (topo, tree)
    }

    #[test]
    fn line_tree_is_a_path() {
        let (_, tree) = line(6);
        for i in 1..6u32 {
            assert_eq!(tree.parent(NodeId(i)), Some(NodeId(i - 1)));
            assert_eq!(tree.depth(NodeId(i)), i);
        }
        assert_eq!(tree.parent(NodeId::ROOT), None);
        assert!(tree.is_leaf(NodeId(5)));
        assert_eq!(tree.height(), 5);
    }

    #[test]
    fn bottom_up_visits_children_first() {
        let (_, tree) = line(10);
        let mut seen = [false; 10];
        for &u in tree.bottom_up() {
            for &c in tree.children(u) {
                assert!(seen[c.index()], "child {c} not before parent {u}");
            }
            seen[u.index()] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn top_down_visits_parents_first() {
        let (_, tree) = line(10);
        let mut seen = [false; 10];
        for u in tree.top_down() {
            if let Some(p) = tree.parent(u) {
                assert!(seen[p.index()], "parent {p} not before child {u}");
            }
            seen[u.index()] = true;
        }
    }

    #[test]
    fn subtree_sizes_sum_up() {
        let positions = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(-1.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(1.0, 1.0),
        ];
        let topo = Topology::build(positions, 1.2);
        let tree = RoutingTree::shortest_path_tree(&topo).unwrap();
        let sizes = tree.subtree_sizes();
        assert_eq!(sizes[NodeId::ROOT.index()], 5);
        // Node 1 has children {3, 4}.
        assert_eq!(sizes[1], 3);
        assert_eq!(sizes[2], 1);
    }

    #[test]
    fn single_sensor_tree() {
        // The smallest legal network: the sink plus one sensor. The whole
        // fuzz battery runs on this shape, so every accessor must behave.
        let (_, tree) = line(2);
        assert_eq!(tree.len(), 2);
        assert_eq!(tree.parent(NodeId(1)), Some(NodeId::ROOT));
        assert_eq!(tree.children(NodeId::ROOT), &[NodeId(1)]);
        assert!(tree.is_leaf(NodeId(1)));
        assert_eq!(tree.height(), 1);
        assert_eq!(tree.bottom_up(), &[NodeId(1), NodeId::ROOT]);
        assert_eq!(tree.subtree_sizes(), vec![2, 1]);
    }

    #[test]
    fn coincident_positions_collapse_to_a_star() {
        // A degenerate "line" where every node sits on the same point:
        // zero-length links everywhere and all tie-breaks are exact ties.
        // BFS must still terminate with a depth-1 star (everyone hears the
        // sink directly) and a deterministic parent assignment.
        let positions = vec![Point::new(3.0, 3.0); 5];
        let topo = Topology::build(positions, 1.0);
        let tree = RoutingTree::shortest_path_tree(&topo).unwrap();
        for i in 1..5u32 {
            assert_eq!(tree.parent(NodeId(i)), Some(NodeId::ROOT));
            assert_eq!(tree.depth(NodeId(i)), 1);
        }
        assert_eq!(tree.height(), 1);
    }

    #[test]
    fn line_at_exact_radio_range_stays_connected() {
        // Nodes spaced exactly one radio range apart: the boundary case the
        // fuzzer's density knob can hit. The disk graph treats `dist ==
        // range` as connected, so the line must build, not partition.
        let positions = (0..6).map(|i| Point::new(i as f64 * 2.0, 0.0)).collect();
        let topo = Topology::build(positions, 2.0);
        let tree = RoutingTree::shortest_path_tree(&topo).unwrap();
        assert_eq!(tree.height(), 5);
        for i in 1..6u32 {
            assert_eq!(tree.parent(NodeId(i)), Some(NodeId(i - 1)));
        }
    }

    #[test]
    fn partitioned_graph_reports_unreachable() {
        let positions = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(50.0, 50.0),
        ];
        let topo = Topology::build(positions, 2.0);
        let err = RoutingTree::shortest_path_tree(&topo).unwrap_err();
        assert_eq!(err, vec![NodeId(2)]);
    }

    #[test]
    fn from_parents_builds_custom_trees() {
        // root <- 1 <- 2, root <- 3.
        let tree = RoutingTree::from_parents(vec![
            None,
            Some(NodeId(0)),
            Some(NodeId(1)),
            Some(NodeId(0)),
        ])
        .unwrap();
        assert_eq!(tree.depth(NodeId(2)), 2);
        assert_eq!(tree.children(NodeId(0)), &[NodeId(1), NodeId(3)]);
        // Convergecast order still respects children-before-parents.
        let mut seen = [false; 4];
        for &u in tree.bottom_up() {
            for &c in tree.children(u) {
                assert!(seen[c.index()]);
            }
            seen[u.index()] = true;
        }
    }

    #[test]
    fn from_parents_rejects_cycles_and_orphans() {
        // 1 and 2 point at each other: unreachable from the root.
        let err =
            RoutingTree::from_parents(vec![None, Some(NodeId(2)), Some(NodeId(1))]).unwrap_err();
        assert_eq!(err, vec![NodeId(1), NodeId(2)]);
        // Root with a parent is invalid.
        assert!(RoutingTree::from_parents(vec![Some(NodeId(1)), None]).is_err());
        // Self-parent is invalid.
        assert!(RoutingTree::from_parents(vec![None, Some(NodeId(1))]).is_err());
    }

    #[test]
    fn spanning_alive_reparents_around_a_dead_relay() {
        // 0 - 1 - 2 with a detour 0 - 3 - 2: killing 1 re-parents 2 via 3.
        let positions = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(1.0, 1.0), // within 1.5 of both 0 and 2
        ];
        let topo = Topology::build(positions, 1.5);
        let full = RoutingTree::shortest_path_tree(&topo).unwrap();
        assert_eq!(full.parent(NodeId(2)), Some(NodeId(1)));

        let alive = vec![true, false, true, true];
        let (repaired, orphans) = RoutingTree::spanning_alive(&topo, &alive);
        assert!(orphans.is_empty());
        assert_eq!(repaired.parent(NodeId(2)), Some(NodeId(3)));
        assert!(!repaired.contains(NodeId(1)));
        assert!(repaired.bottom_up().iter().all(|&u| u != NodeId(1)));
        assert_eq!(repaired.len(), 4, "repaired trees keep every slot");
        assert_eq!(repaired.height(), 2);
    }

    #[test]
    fn spanning_alive_returns_orphans_on_partition() {
        // A line 0-1-2-3: killing 1 strands {2, 3} with no detour. The
        // repair must terminate and report them instead of looping.
        let (topo, _) = line(4);
        let alive = vec![true, false, true, true];
        let (repaired, orphans) = RoutingTree::spanning_alive(&topo, &alive);
        assert_eq!(orphans, vec![NodeId(2), NodeId(3)]);
        assert!(!repaired.contains(NodeId(2)));
        assert!(!repaired.contains(NodeId(3)));
        assert!(repaired.contains(NodeId(0)));
        assert_eq!(repaired.bottom_up(), &[NodeId(0)]);
        // Dead nodes are not orphans: they are simply gone.
        assert!(!orphans.contains(&NodeId(1)));
    }

    #[test]
    fn mark_subtree_unions() {
        let tree = RoutingTree::from_parents(vec![
            None,
            Some(NodeId(0)),
            Some(NodeId(1)),
            Some(NodeId(0)),
        ])
        .unwrap();
        let mut mask = vec![false; 4];
        tree.mark_subtree(NodeId(1), &mut mask);
        assert_eq!(mask, vec![false, true, true, false]);
        tree.mark_subtree(NodeId(3), &mut mask);
        assert_eq!(mask, vec![false, true, true, true]);
    }

    /// Exhaustively checks the struct-of-arrays index invariants the wave
    /// engine relies on (DESIGN.md §3.3g).
    fn assert_soa_invariants(tree: &RoutingTree) {
        let t = tree.tree_size();
        let bu = tree.bottom_up();
        // wave_slot is the inverse of bottom_up.
        for (pos, &u) in bu.iter().enumerate() {
            assert_eq!(tree.wave_slot(u), Some(pos));
        }
        // Levels partition bottom_up into weakly-shallower runs; the root
        // run is last and holds exactly the root.
        let lo = tree.level_offsets();
        assert_eq!(lo[0], 0);
        assert_eq!(*lo.last().unwrap() as usize, t);
        for k in 0..tree.levels() {
            let run = &bu[lo[k] as usize..lo[k + 1] as usize];
            let d = tree.depth(run[0]);
            assert!(run.iter().all(|&u| tree.depth(u) == d));
            if k + 1 < tree.levels() {
                assert!(tree.depth(bu[lo[k + 1] as usize]) < d);
            }
        }
        assert_eq!(bu[t - 1], NodeId::ROOT);
        // parent_slots points each wave position at its parent's position.
        let ps = tree.parent_slots();
        for (pos, &u) in bu.iter().enumerate() {
            match tree.parent(u) {
                Some(p) => assert_eq!(ps[pos] as usize, tree.wave_slot(p).unwrap()),
                None => assert_eq!(ps[pos], u32::MAX),
            }
        }
        // Groups partition the non-root nodes by root subtree, each group
        // contiguous, children-before-parents within a group, groups in
        // children(root) order.
        let go = tree.group_order();
        let offs = tree.group_offsets();
        assert_eq!(tree.groups(), tree.children(NodeId::ROOT).len());
        assert_eq!(go.len(), t.saturating_sub(1));
        let mut seen = vec![false; tree.len()];
        for (g, &top) in tree.children(NodeId::ROOT).iter().enumerate() {
            let range = offs[g] as usize..offs[g + 1] as usize;
            let mut mask = vec![false; tree.len()];
            tree.mark_subtree(top, &mut mask);
            assert_eq!(
                range.len(),
                mask.iter().filter(|&&b| b).count(),
                "group {g} must cover exactly its subtree"
            );
            for &u in &go[range] {
                assert!(mask[u.index()], "node {u} leaked into group {g}");
                for &c in tree.children(u) {
                    assert!(seen[c.index()], "child {c} after parent {u} in group");
                }
                seen[u.index()] = true;
            }
        }
        // wave_to_group and group_parent are consistent cross-indexes.
        let wg = tree.wave_to_group();
        for (pos, &u) in bu[..t - 1].iter().enumerate() {
            assert_eq!(go[wg[pos] as usize], u);
        }
        let gp = tree.group_parent();
        for (j, &u) in go.iter().enumerate() {
            let p = tree.parent(u).unwrap();
            if p.is_root() {
                assert_eq!(gp[j], u32::MAX);
            } else {
                assert_eq!(go[gp[j] as usize], p);
            }
        }
    }

    #[test]
    fn soa_indexes_hold_on_built_trees() {
        // A branching random-ish placement, a line, and the minimal tree.
        let mut positions = vec![Point::new(0.0, 0.0)];
        for i in 0..40u32 {
            let a = i as f64 * 0.7;
            let r = 0.6 + (i % 7) as f64 * 0.45;
            positions.push(Point::new(a.cos() * r, a.sin() * r));
        }
        let topo = Topology::build(positions, 1.1);
        if let Ok(tree) = RoutingTree::shortest_path_tree(&topo) {
            assert_soa_invariants(&tree);
        }
        let (_, line_tree) = line(9);
        assert_soa_invariants(&line_tree);
        let (_, tiny) = line(2);
        assert_soa_invariants(&tiny);
    }

    #[test]
    fn soa_indexes_hold_on_repaired_and_custom_trees() {
        let (topo, _) = line(6);
        let alive = vec![true, true, true, false, true, true];
        let (repaired, _) = RoutingTree::spanning_alive(&topo, &alive);
        assert_soa_invariants(&repaired);
        let custom = RoutingTree::from_parents(vec![
            None,
            Some(NodeId(0)),
            Some(NodeId(1)),
            Some(NodeId(0)),
            Some(NodeId(3)),
            Some(NodeId(1)),
        ])
        .unwrap();
        assert_soa_invariants(&custom);
    }

    #[test]
    fn parents_are_strictly_shallower() {
        let (_, tree) = line(8);
        for i in 1..8u32 {
            let id = NodeId(i);
            let p = tree.parent(id).unwrap();
            assert_eq!(tree.depth(p) + 1, tree.depth(id));
        }
    }
}
