//! 2-D geometry primitives for node placement.

/// A point in the deployment area, in meters.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Horizontal coordinate in meters.
    pub x: f64,
    /// Vertical coordinate in meters.
    pub y: f64,
}

impl Point {
    /// Creates a point from coordinates in meters.
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`, in meters.
    pub fn dist(&self, other: &Point) -> f64 {
        self.dist_sq(other).sqrt()
    }

    /// Squared Euclidean distance to `other`. Cheaper than [`Point::dist`]
    /// when only comparisons against a squared radius are needed.
    pub fn dist_sq(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dist_is_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.dist(&b), 5.0);
        assert_eq!(a.dist_sq(&b), 25.0);
    }

    #[test]
    fn dist_is_symmetric_and_zero_on_self() {
        let a = Point::new(1.5, -2.5);
        let b = Point::new(-7.0, 0.25);
        assert_eq!(a.dist(&b), b.dist(&a));
        assert_eq!(a.dist(&a), 0.0);
    }
}
