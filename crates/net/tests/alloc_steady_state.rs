//! Steady-state waves must not touch the heap.
//!
//! The engine's scratch pool, the reusable [`NodeBits`] reception masks,
//! and the slot-based convergecast API exist so that a long-running
//! continuous query performs zero allocations per round once warmed up.
//! This test pins that property with a counting global allocator: warm the
//! network up, then assert that further broadcast/convergecast rounds
//! allocate nothing.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use wsn_net::{
    Aggregate, MessageSizes, Network, NodeBits, Point, RadioModel, RoutingTree, Topology,
};

/// Wraps the system allocator and counts allocation events (allocs and
/// grows; frees are irrelevant to the steady-state claim) **per thread**:
/// the gate must see only the wave engine running on this test's thread,
/// not unrelated lazy initialization on harness threads (libtest's main
/// thread initializes its channel context whenever it first *blocks* on
/// the result receiver — which races the measured window).
struct CountingAlloc;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

fn bump() {
    // `try_with`: a thread allocating during its own TLS teardown must
    // not panic inside the allocator.
    let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCS.with(|c| c.get())
}

/// A Copy payload: per-subtree contribution count.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Count(u64);

impl Aggregate for Count {
    fn merge(&mut self, other: Self) {
        self.0 += other.0;
    }
    fn payload_bits(&self, sizes: &MessageSizes) -> u64 {
        sizes.counter_bits
    }
}

fn grid_network(side: usize) -> Network {
    let positions = (0..side * side)
        .map(|i| Point::new((i % side) as f64 * 8.0, (i / side) as f64 * 8.0))
        .collect();
    let topo = Topology::build(positions, 12.0);
    let tree = RoutingTree::shortest_path_tree(&topo).unwrap();
    Network::new(topo, tree, RadioModel::default(), MessageSizes::default())
}

/// One protocol-shaped round: refill the contribution slots in place, run
/// a convergecast over them, answer with two broadcasts, close the round.
fn round(net: &mut Network, slots: &mut [Option<Count>], mask: &mut NodeBits) {
    for s in slots.iter_mut().skip(1) {
        *s = Some(Count(1));
    }
    let total = net.convergecast_slots(slots, |_, _| {});
    assert_eq!(total, Some(Count((net.len() - 1) as u64)));
    net.broadcast_into(64, mask);
    assert!(mask.all());
    // The allocation-free guarantee covers the internal scratch mask too.
    assert!(net.broadcast(64).all());
    net.end_round();
}

#[test]
fn steady_state_rounds_do_not_allocate() {
    let mut net = grid_network(14);
    let n = net.len();
    let mut slots: Vec<Option<Count>> = vec![None; n];
    let mut mask = NodeBits::new();

    // Warm-up: lets the scratch pool, the reception masks and the ledger
    // reach their steady-state capacities.
    for _ in 0..3 {
        round(&mut net, &mut slots, &mut mask);
    }

    let before = allocations();
    for _ in 0..5 {
        round(&mut net, &mut slots, &mut mask);
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "steady-state rounds must not touch the heap"
    );
}
