//! Property-based tests of the network substrate.
//!
//! Compiled only with `--features proptest` (plus an ad-hoc
//! `cargo add proptest --dev`) so the default build needs no network
//! access; see crates/net/Cargo.toml.
#![cfg(feature = "proptest")]

use proptest::prelude::*;
use wsn_net::{
    Aggregate, EnergyLedger, MessageSizes, Network, NodeId, Point, RadioModel, RoutingTree,
    Topology,
};

#[derive(Debug, Clone, Default)]
struct Sum(u64);
impl Aggregate for Sum {
    fn merge(&mut self, other: Self) {
        self.0 += other.0;
    }
    fn payload_bits(&self, sizes: &MessageSizes) -> u64 {
        sizes.counter_bits
    }
}

fn topology_from(points: &[(f64, f64)], range: f64) -> Topology {
    let positions: Vec<Point> = points.iter().map(|&(x, y)| Point::new(x, y)).collect();
    Topology::build(positions, range)
}

proptest! {
    #[test]
    fn disk_graph_is_symmetric_and_respects_range(
        points in prop::collection::vec((0.0f64..100.0, 0.0f64..100.0), 2..80),
        range in 5.0f64..60.0,
    ) {
        let topo = topology_from(&points, range);
        for u in topo.node_ids() {
            for &v in topo.neighbors(u) {
                prop_assert!(topo.neighbors(v).contains(&u));
                prop_assert!(topo.position(u).dist(&topo.position(v)) <= range + 1e-9);
                prop_assert_ne!(u, v);
            }
        }
    }

    #[test]
    fn spt_depths_are_shortest_hop_counts(
        points in prop::collection::vec((0.0f64..60.0, 0.0f64..60.0), 2..50),
        range in 15.0f64..40.0,
    ) {
        let topo = topology_from(&points, range);
        let Ok(tree) = RoutingTree::shortest_path_tree(&topo) else {
            return Ok(()); // disconnected draw: nothing to check
        };
        // BFS depths from scratch must match the tree's depths.
        let n = topo.len();
        let mut dist = vec![u32::MAX; n];
        dist[0] = 0;
        let mut queue = std::collections::VecDeque::from([NodeId::ROOT]);
        while let Some(u) = queue.pop_front() {
            for &v in topo.neighbors(u) {
                if dist[v.index()] == u32::MAX {
                    dist[v.index()] = dist[u.index()] + 1;
                    queue.push_back(v);
                }
            }
        }
        for id in topo.node_ids() {
            prop_assert_eq!(tree.depth(id), dist[id.index()]);
            if let Some(p) = tree.parent(id) {
                prop_assert_eq!(tree.depth(p) + 1, tree.depth(id));
                prop_assert!(tree.children(p).contains(&id));
            }
        }
        // Subtree sizes sum to n at the root.
        prop_assert_eq!(tree.subtree_sizes()[0], n);
    }

    #[test]
    fn fragmentation_never_loses_bits(payload in 0u64..100_000) {
        let sizes = MessageSizes::default();
        let (frags, total) = sizes.fragment(payload);
        prop_assert!(frags >= 1);
        prop_assert_eq!(total, payload + frags * sizes.header_bits);
        // Each fragment's payload fits.
        prop_assert!(payload <= frags * sizes.max_payload_bits);
        if frags > 1 {
            prop_assert!(payload > (frags - 1) * sizes.max_payload_bits);
        }
    }

    #[test]
    fn convergecast_reaches_root_with_full_aggregate(
        points in prop::collection::vec((0.0f64..50.0, 0.0f64..50.0), 2..40),
        contributions in prop::collection::vec(0u64..100, 40),
    ) {
        let topo = topology_from(&points, 25.0);
        let Ok(tree) = RoutingTree::shortest_path_tree(&topo) else {
            return Ok(());
        };
        let n = topo.sensor_count();
        let mut net = Network::new(topo, tree, RadioModel::default(), MessageSizes::default());
        let agg = net.convergecast(|id| Some(Sum(contributions[id.index() % contributions.len()])));
        let expect: u64 = (1..=n).map(|i| contributions[i % contributions.len()]).sum();
        prop_assert_eq!(agg.map(|s| s.0), Some(expect));
    }

    #[test]
    fn broadcast_reaches_every_node_without_loss(
        points in prop::collection::vec((0.0f64..50.0, 0.0f64..50.0), 2..40),
        payload in 0u64..4096,
    ) {
        let topo = topology_from(&points, 25.0);
        let Ok(tree) = RoutingTree::shortest_path_tree(&topo) else {
            return Ok(());
        };
        let mut net = Network::new(topo, tree, RadioModel::default(), MessageSizes::default());
        let received = net.broadcast(payload);
        prop_assert!(received.all());
    }

    #[test]
    fn ledger_totals_match_charges(charges in prop::collection::vec((0u32..5, 0.0f64..1e-3), 1..100)) {
        let mut ledger = EnergyLedger::new(5);
        let mut expect = [0.0f64; 5];
        for &(node, joules) in &charges {
            ledger.charge(NodeId(node), joules);
            expect[node as usize] += joules;
        }
        for i in 0..5u32 {
            prop_assert!((ledger.consumed(NodeId(i)) - expect[i as usize]).abs() < 1e-12);
        }
        let max_sensor = expect[1..].iter().copied().fold(0.0, f64::max);
        prop_assert!((ledger.max_sensor_consumption() - max_sensor).abs() < 1e-12);
    }

    #[test]
    fn tx_energy_is_monotone_in_bits_and_range(
        bits_a in 0u64..10_000, bits_b in 0u64..10_000,
        r_a in 1.0f64..100.0, r_b in 1.0f64..100.0,
    ) {
        let m = RadioModel::default();
        let (lo_bits, hi_bits) = (bits_a.min(bits_b), bits_a.max(bits_b));
        prop_assert!(m.tx_energy(lo_bits, 35.0) <= m.tx_energy(hi_bits, 35.0));
        let (lo_r, hi_r) = (r_a.min(r_b), r_a.max(r_b));
        prop_assert!(m.tx_energy(1000, lo_r) <= m.tx_energy(1000, hi_r));
    }
}
