//! LCLL-R — the *range-anchored* reconstruction of Liu et al.'s
//! hierarchical refining \[16\].
//!
//! [`crate::lcll`] reconstructs LCLL's refinement as a search relative to
//! the last quantile (displacement-driven). This module implements the
//! other faithful reading of \[16\]: a **static two-level bucket hierarchy
//! anchored to the value range**.
//!
//! * Level 0: `b` equal buckets over the whole universe `[r_min, r_max]`
//!   (with the default 128-byte payload, `b = 64`).
//! * Level 1: the *focus bucket* — the top-level bucket currently holding
//!   the quantile — is kept subdivided (unit buckets whenever the top
//!   bucket is at most `b` wide, which holds for every workload in the
//!   paper).
//!
//! Validation: a node whose measurement moved between cells of this
//! partition (top-level buckets, or unit cells inside the focus bucket)
//! transmits two signed deltas (§5.1.6's improved validation). The root
//! therefore always knows the exact histogram, and as long as the quantile
//! stays inside the focus bucket it answers **without any refinement**.
//! When the quantile escapes to another top-level bucket, one *refocus*
//! round-trip (zoom-out/zoom-in) rebuilds the sub-histogram there.
//!
//! Compared to the displacement-driven variants this trades much heavier
//! validation (every bucket crossing reports, and inside the focus bucket
//! *every* value change reports) for near-zero refinement — and, crucially,
//! it reacts to value-range re-scaling: wider ranges mean wider top
//! buckets, fewer escapes, fewer refinements (§5.2.5's pessimistic-setting
//! behaviour of LCLL-H).

use wsn_net::Network;

use crate::buckets::BucketPartition;
use crate::descent::{descend, DescentConfig};
use crate::init::{run_init, InitStrategy};
use crate::payloads::{DeltaHistogram, Histogram};
use crate::protocol::{ContinuousQuantile, QueryConfig};
use crate::retrieval::RankAnchor;
use crate::Value;

/// The range-anchored LCLL variant.
#[derive(Debug, Clone)]
pub struct LcllRange {
    query: QueryConfig,
    /// Top-level partition over the full range (static).
    top: BucketPartition,
    /// Count per top-level bucket; the focus bucket's entry equals the sum
    /// of `sub_counts`.
    top_counts: Vec<u64>,
    /// Index of the focus bucket.
    focus: usize,
    /// Partition of the focus bucket.
    sub: BucketPartition,
    /// Count per focus sub-bucket.
    sub_counts: Vec<u64>,
    /// Per-node view of the focus bucket (index into `top`); may go stale
    /// under message loss.
    node_focus: Vec<usize>,
    prev: Vec<Value>,
    last_quantile: Value,
    initialized: bool,
    last_refinements: u32,
    init: InitStrategy,
}

impl LcllRange {
    /// Creates an LCLL-R query; `b` comes from the message size like the
    /// other LCLL variants.
    pub fn new(query: QueryConfig, sizes: &wsn_net::MessageSizes) -> Self {
        let b = (sizes.max_payload_bits / sizes.bucket_bits).max(2) as usize;
        let top = BucketPartition::new(query.range_min, query.range_max, b);
        let (lo, hi) = top.bounds(0);
        let sub = BucketPartition::new(lo, hi, b);
        LcllRange {
            query,
            top,
            top_counts: vec![0; top.buckets],
            focus: 0,
            sub,
            sub_counts: vec![0; sub.buckets],
            node_focus: Vec::new(),
            prev: Vec::new(),
            last_quantile: query.range_min,
            initialized: false,
            last_refinements: 0,
            init: InitStrategy::default(),
        }
    }

    /// Selects the initialization strategy.
    pub fn with_init(mut self, init: InitStrategy) -> Self {
        self.init = init;
        self
    }

    /// Number of top-level buckets.
    pub fn buckets(&self) -> usize {
        self.top.buckets
    }

    /// Refinement convergecasts in the most recent round.
    pub fn last_refinements(&self) -> u32 {
        self.last_refinements
    }

    /// Wire code of a value in the disjoint partition {top buckets except
    /// the focus} ∪ {sub-buckets of the focus}: codes `0..b` are top-level
    /// buckets, codes `b..b+sub.buckets` are focus cells.
    fn code(&self, v: Value, focus: usize, sub: &BucketPartition) -> usize {
        let t = self.top.index_of(v).expect("values stay in range");
        if t == focus {
            self.top.buckets + sub.index_of(v).expect("inside focus")
        } else {
            t
        }
    }

    /// Re-derives the partition of top bucket `i`.
    fn sub_partition(&self, i: usize) -> BucketPartition {
        let (lo, hi) = self.top.bounds(i);
        BucketPartition::new(lo, hi, self.top.buckets)
    }

    /// Rebuilds root state from a full collection (initialization).
    fn rebuild_from_values(&mut self, sorted: &[Value], quantile: Value) {
        self.top_counts = vec![0; self.top.buckets];
        for &v in sorted {
            self.top_counts[self.top.index_of(v).expect("in range")] += 1;
        }
        self.focus = self.top.index_of(quantile).expect("in range");
        self.sub = self.sub_partition(self.focus);
        self.sub_counts = vec![0; self.sub.buckets];
        for &v in sorted {
            if let Some(j) = self.sub.index_of(v) {
                self.sub_counts[j] += 1;
            }
        }
    }

    /// Locates the 1-based rank `k` in the current two-level histogram.
    /// Returns `Located::SubCell` when it falls inside the focus bucket.
    fn locate(&self, k: u64) -> Option<Located> {
        let mut cum = 0u64;
        for t in 0..self.top.buckets {
            let c = if t == self.focus {
                self.sub_counts.iter().sum()
            } else {
                self.top_counts[t]
            };
            if cum + c >= k {
                if t != self.focus {
                    return Some(Located::TopBucket {
                        bucket: t,
                        below: cum,
                    });
                }
                // Walk the focus cells.
                for (j, &sc) in self.sub_counts.iter().enumerate() {
                    if cum + sc >= k {
                        return Some(Located::SubCell {
                            cell: j,
                            below: cum,
                            inside: sc,
                        });
                    }
                    cum += sc;
                }
                return None; // inconsistent (loss)
            }
            cum += c;
        }
        None
    }

    /// Refocuses onto top bucket `bucket`: broadcasts its bounds, collects
    /// the unit sub-histogram from the nodes inside, updates node focus
    /// views, and returns the quantile (descending further if the bucket is
    /// wider than `b`).
    fn refocus(&mut self, net: &mut Network, values: &[Value], bucket: usize, below: u64) -> Value {
        // The old focus bucket's total re-materializes at top level.
        self.top_counts[self.focus] = self.sub_counts.iter().sum();

        let part = self.sub_partition(bucket);
        self.last_refinements += 1;
        let n = net.len();
        let received = net.broadcast(net.sizes().refinement_request_bits());
        let mut contributions: Vec<Option<Histogram>> = vec![None; n];
        for idx in 1..n {
            if !received.get(idx) {
                continue;
            }
            self.node_focus[idx] = bucket;
            if let Some(j) = part.index_of(values[idx - 1]) {
                contributions[idx] = Some(Histogram::unit(part.buckets, j));
            }
        }
        let hist = net
            .convergecast_slots(&mut contributions, |_, _| {})
            .unwrap_or_else(|| Histogram::zeros(part.buckets));

        self.focus = bucket;
        self.sub = part;
        self.sub_counts = hist.counts().to_vec();

        // Locate within the fresh sub histogram.
        let k = self.query.k;
        let mut cum = below;
        for j in 0..self.sub.buckets {
            let c = self.sub_counts[j];
            if cum + c >= k {
                let (lo, hi) = self.sub.bounds(j);
                if lo == hi {
                    return lo;
                }
                // Top bucket wider than b (huge universes): descend.
                let cfg = DescentConfig {
                    b: self.top.buckets,
                    k,
                    n_total: self.query_n(),
                    direct_capacity: Some(net.sizes().values_per_message() as u64),
                    max_refinements: 100,
                };
                let outcome = descend(
                    net,
                    values,
                    cfg,
                    lo,
                    hi,
                    RankAnchor::BelowLo(cum),
                    Some(c),
                    &mut self.last_refinements,
                    |_, _, _| {},
                );
                return outcome.map(|o| o.quantile).unwrap_or(self.last_quantile);
            }
            cum += c;
        }
        self.last_quantile // inconsistent (loss)
    }

    fn query_n(&self) -> u64 {
        self.top_counts
            .iter()
            .enumerate()
            .map(|(t, &c)| {
                if t == self.focus {
                    self.sub_counts.iter().sum()
                } else {
                    c
                }
            })
            .sum()
    }

    fn init_round(&mut self, net: &mut Network, values: &[Value]) -> Value {
        self.node_focus = vec![self.focus; net.len()];
        let out = run_init(net, values, self.query, self.init);
        let q = out.quantile;
        // LCLL-R needs the full histogram; with a b-ary init we fall back
        // to deriving it from ground truth... which we refuse to do:
        // instead, always derive state from a collection. With the TAG
        // strategy the collection is already paid for; with BarySearch we
        // charge one extra full histogram convergecast (top + focus).
        match out.sorted {
            Some(sorted) => self.rebuild_from_values(&sorted, q),
            None => {
                // One histogram convergecast over the full range plus one
                // over the focus bucket re-establishes the exact state.
                let top = self.top;
                self.last_refinements += 1;
                let n = net.len();
                let received = net.broadcast(net.sizes().refinement_request_bits());
                let mut contributions: Vec<Option<Histogram>> = vec![None; n];
                for idx in 1..n {
                    if !received.get(idx) {
                        continue;
                    }
                    if let Some(j) = top.index_of(values[idx - 1]) {
                        contributions[idx] = Some(Histogram::unit(top.buckets, j));
                    }
                }
                let hist = net
                    .convergecast_slots(&mut contributions, |_, _| {})
                    .unwrap_or_else(|| Histogram::zeros(top.buckets));
                self.top_counts = hist.counts().to_vec();
                // Materialize focus from the known values (root-side
                // bookkeeping only; focus histogram is fetched next).
                self.focus = self.top.index_of(q).expect("in range");
                self.sub = self.sub_partition(self.focus);
                let below: u64 = self.top_counts[..self.focus].iter().sum();
                let q2 = self.refocus(net, values, self.focus, below);
                debug_assert_eq!(q2, q);
            }
        }

        for f in &mut self.node_focus {
            *f = self.focus;
        }
        self.prev = values.to_vec();
        self.last_quantile = q;
        // Focus announcement (bucket bounds) so every node can classify
        // itself; with the BarySearch path the refocus broadcast already
        // did this, but the TAG path needs it.
        for i in net
            .broadcast(net.sizes().refinement_request_bits())
            .iter_ones()
        {
            self.node_focus[i] = self.focus;
        }
        self.initialized = true;
        net.end_round();
        q
    }
}

/// Where the k-th value sits in the two-level histogram.
#[derive(Debug, Clone, Copy)]
enum Located {
    /// In a non-focus top-level bucket (a refocus is needed unless the
    /// bucket is a single value wide).
    TopBucket { bucket: usize, below: u64 },
    /// In cell `cell` of the focus bucket.
    SubCell {
        cell: usize,
        below: u64,
        inside: u64,
    },
}

impl ContinuousQuantile for LcllRange {
    fn name(&self) -> &'static str {
        "LCLL-R"
    }

    fn round(&mut self, net: &mut Network, values: &[Value]) -> Value {
        if !self.initialized {
            return self.init_round(net, values);
        }
        self.last_refinements = 0;
        let n = net.len();
        let code_len = self.top.buckets + self.sub.buckets;

        // --- Validation: deltas over the two-level partition ---
        net.set_phase(wsn_net::Phase::Validation);
        let mut contributions: Vec<Option<DeltaHistogram>> = Vec::with_capacity(n);
        contributions.push(None);
        for idx in 1..n {
            // Nodes with a stale focus view (loss) classify against their
            // own view; their codes may then disagree with the root's —
            // exactly the desynchronization loss causes in reality. For
            // wire-length simplicity the stale view is clamped to the
            // current sub length.
            let focus = self.node_focus[idx];
            let sub = if focus == self.focus {
                self.sub
            } else {
                self.sub_partition(focus)
            };
            let old = self.code(self.prev[idx - 1], focus, &sub);
            let new = self.code(values[idx - 1], focus, &sub);
            contributions.push((old != new).then(|| {
                DeltaHistogram::movement(
                    code_len.max(self.top.buckets + sub.buckets),
                    old.min(code_len - 1),
                    new.min(code_len - 1),
                )
            }));
        }
        self.prev.copy_from_slice(values);
        if let Some(deltas) = net.convergecast_slots(&mut contributions, |_, _| {}) {
            let apply = |base: u64, d: i64| {
                if d >= 0 {
                    base + d as u64
                } else {
                    base.saturating_sub((-d) as u64)
                }
            };
            for t in 0..self.top.buckets {
                if t != self.focus {
                    self.top_counts[t] = apply(self.top_counts[t], deltas.deltas[t]);
                }
            }
            for j in 0..self.sub.buckets {
                let d = deltas.deltas[self.top.buckets + j];
                self.sub_counts[j] = apply(self.sub_counts[j], d);
            }
        }

        // --- Locate; refocus only when the quantile escaped ---
        // (Refocus/descent traffic below is refinement; during the init
        // round `refocus` runs under the Init phase instead.)
        net.set_phase(wsn_net::Phase::Refinement);
        let result = match self.locate(self.query.k) {
            Some(Located::SubCell {
                cell,
                below,
                inside,
            }) => {
                let (lo, hi) = self.sub.bounds(cell);
                if lo == hi {
                    lo
                } else {
                    // Huge universes: one descent inside the cell.
                    let cfg = DescentConfig {
                        b: self.top.buckets,
                        k: self.query.k,
                        n_total: self.query_n(),
                        direct_capacity: Some(net.sizes().values_per_message() as u64),
                        max_refinements: 100,
                    };
                    let outcome = descend(
                        net,
                        values,
                        cfg,
                        lo,
                        hi,
                        RankAnchor::BelowLo(below),
                        Some(inside),
                        &mut self.last_refinements,
                        |_, _, _| {},
                    );
                    outcome.map(|o| o.quantile).unwrap_or(self.last_quantile)
                }
            }
            Some(Located::TopBucket { bucket, below }) => {
                let (lo, hi) = self.top.bounds(bucket);
                if lo == hi {
                    lo
                } else {
                    self.refocus(net, values, bucket, below)
                }
            }
            None => self.last_quantile, // loss-induced inconsistency
        };

        self.last_quantile = result;
        net.end_round();
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rank;
    use wsn_net::{MessageSizes, Point, RadioModel, RoutingTree, Topology};

    fn line_net(n_sensors: usize) -> Network {
        let positions = (0..=n_sensors)
            .map(|i| Point::new(i as f64 * 10.0, 0.0))
            .collect();
        let topo = Topology::build(positions, 12.0);
        let tree = RoutingTree::shortest_path_tree(&topo).unwrap();
        Network::new(topo, tree, RadioModel::default(), MessageSizes::default())
    }

    fn drifting_values(n: usize, t: u32) -> Vec<Value> {
        (0..n)
            .map(|i| 200 + (i as Value * 13) % 90 + ((t as Value * 9) % 150))
            .collect()
    }

    #[test]
    fn lcll_r_is_exact_over_many_rounds() {
        let n = 30;
        let mut net = line_net(n);
        let query = QueryConfig::median(n, 0, 1023);
        let mut alg = LcllRange::new(query, &MessageSizes::default());
        for t in 0..50 {
            let values = drifting_values(n, t);
            assert_eq!(
                alg.round(&mut net, &values),
                rank::kth_smallest(&values, query.k),
                "round {t}"
            );
        }
    }

    #[test]
    fn quantile_inside_focus_needs_no_refinement() {
        let n = 20;
        let mut net = line_net(n);
        let query = QueryConfig::median(n, 0, 1023);
        let mut alg = LcllRange::new(query, &MessageSizes::default());
        let v0: Vec<Value> = (0..n).map(|i| 500 + i as Value).collect();
        alg.round(&mut net, &v0);
        // Shuffle values *within* buckets — the two-level histogram stays
        // exact through deltas, so no refinement convergecast fires.
        for t in 1..6 {
            let values: Vec<Value> = (0..n).map(|i| 500 + ((i + t) % n) as Value).collect();
            let got = alg.round(&mut net, &values);
            assert_eq!(got, rank::kth_smallest(&values, query.k));
            assert_eq!(alg.last_refinements(), 0, "t={t}");
        }
    }

    #[test]
    fn escaping_the_focus_costs_exactly_one_refocus() {
        let n = 20;
        let mut net = line_net(n);
        let query = QueryConfig::median(n, 0, 1023);
        let mut alg = LcllRange::new(query, &MessageSizes::default());
        let v0: Vec<Value> = (0..n).map(|i| 100 + i as Value).collect();
        alg.round(&mut net, &v0);
        // Jump far: quantile lands in a distant top bucket.
        let v1: Vec<Value> = (0..n).map(|i| 900 + i as Value).collect();
        let got = alg.round(&mut net, &v1);
        assert_eq!(got, rank::kth_smallest(&v1, query.k));
        assert_eq!(alg.last_refinements(), 1, "distance-independent refocus");
    }

    #[test]
    fn wider_range_means_fewer_refocuses() {
        // The §5.2.5 pessimistic-setting effect: same absolute movement,
        // wider buckets, fewer escapes.
        let count_refinements = |range_max: Value| {
            let n = 30;
            let mut net = line_net(n);
            let query = QueryConfig::median(n, 0, range_max);
            let mut alg = LcllRange::new(query, &MessageSizes::default());
            let mut total = 0u32;
            for t in 0..60 {
                let values: Vec<Value> = (0..n).map(|i| 500 + i as Value + t * 7).collect();
                alg.round(&mut net, &values);
                total += alg.last_refinements();
            }
            total
        };
        let narrow = count_refinements(1023); // bucket width 16, unit cells
        let wide = count_refinements(4095); // bucket width 64, unit cells
        assert!(
            wide < narrow,
            "wider buckets ({wide}) must refocus less than narrow ({narrow})"
        );
    }

    #[test]
    fn handles_extreme_ranks_and_duplicates() {
        let n = 24;
        for &k in &[1u64, 12, 24] {
            let mut net = line_net(n);
            let query = QueryConfig {
                k,
                range_min: 0,
                range_max: 255,
            };
            let mut alg = LcllRange::new(query, &MessageSizes::default());
            for t in 0..15 {
                let values: Vec<Value> = (0..n)
                    .map(|i| (((i + t as usize) % 7) * 30) as Value)
                    .collect();
                assert_eq!(
                    alg.round(&mut net, &values),
                    rank::kth_smallest(&values, k),
                    "k={k} t={t}"
                );
            }
        }
    }

    #[test]
    fn works_on_huge_universes_via_descent() {
        let n = 20;
        let mut net = line_net(n);
        let query = QueryConfig::median(n, 0, (1 << 20) - 1);
        let mut alg = LcllRange::new(query, &MessageSizes::default());
        for t in 0..10 {
            let values: Vec<Value> = (0..n)
                .map(|i| 500_000 + i as Value * 97 + t as Value * 1313)
                .collect();
            assert_eq!(
                alg.round(&mut net, &values),
                rank::kth_smallest(&values, query.k),
                "t={t}"
            );
        }
    }

    #[test]
    fn bary_init_is_exact_too() {
        let n = 25;
        let mut net = line_net(n);
        let query = QueryConfig::median(n, 0, 2047);
        let mut alg =
            LcllRange::new(query, &MessageSizes::default()).with_init(InitStrategy::BarySearch);
        for t in 0..20 {
            let values = drifting_values(n, t);
            assert_eq!(
                alg.round(&mut net, &values),
                rank::kth_smallest(&values, query.k),
                "t={t}"
            );
        }
    }
}
