//! Initialization-round helpers.
//!
//! All continuous protocols bootstrap with a TAG-equivalent full collection
//! (§3.2: "During the initialization round t = 0, POS computes the first
//! quantile by using an aggregation technique equivalent to TAG, i.e., all
//! measurements are forwarded to the root node"). IQ reuses the collected
//! distribution to size its initial interval Ξ (§4.2.1).

use wsn_net::Network;

use crate::payloads::ValueList;
use crate::protocol::{measurement, QueryConfig};
use crate::rank::Counts;
use crate::snapshot::SnapshotQuery;
use crate::Value;

/// How a continuous protocol bootstraps its first quantile (§3.2 / §4.2.1:
/// "The initialization can be performed by using TAG or by using a
/// histogram-based solution like the one described in \[21\]").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InitStrategy {
    /// TAG-equivalent full collection (what POS does; the default).
    #[default]
    Tag,
    /// The cost-model `b`-ary snapshot search of \[21\].
    BarySearch,
}

/// What an initialization round produced.
#[derive(Debug, Clone)]
pub struct InitOutcome {
    /// The initial quantile `v_k⁰`.
    pub quantile: Value,
    /// Root counts relative to it.
    pub counts: Counts,
    /// The full sorted collection (TAG strategy only).
    pub sorted: Option<Vec<Value>>,
    /// Width/occupancy of the last refinement interval (`b`-ary strategy),
    /// for IQ's Ξ sizing (§4.2.1).
    pub last_interval: Option<(u64, u64)>,
}

/// Runs the chosen initialization and returns the quantile plus whatever
/// distribution knowledge the strategy yields.
pub fn run_init(
    net: &mut Network,
    values: &[Value],
    query: QueryConfig,
    strategy: InitStrategy,
) -> InitOutcome {
    // Everything from here until the protocol's first validation —
    // including the filter broadcast callers issue afterwards — is
    // initialization traffic.
    net.set_phase(wsn_net::Phase::Init);
    match strategy {
        InitStrategy::Tag => {
            let sorted = collect_all(net, values);
            let quantile = quantile_from_sorted(&sorted, query.k, query.range_min);
            let counts = Counts::of(&sorted, quantile);
            InitOutcome {
                quantile,
                counts,
                sorted: Some(sorted),
                last_interval: None,
            }
        }
        InitStrategy::BarySearch => {
            let sizes = *net.sizes();
            let snap = SnapshotQuery::new(query, &sizes);
            match snap.run(net, values) {
                Some(out) => InitOutcome {
                    quantile: out.quantile,
                    counts: out.counts,
                    sorted: None,
                    last_interval: out.last_interval,
                },
                // Loss corrupted the init; start from a degenerate state
                // that the continuous rounds will repair.
                None => InitOutcome {
                    quantile: query.range_min,
                    counts: Counts {
                        l: 0,
                        e: 0,
                        g: values.len() as u64,
                    },
                    sorted: None,
                    last_interval: None,
                },
            }
        }
    }
}

/// Collects every sensor measurement at the root and returns them sorted
/// ascending. Charges the full convergecast cost.
pub fn collect_all(net: &mut Network, values: &[Value]) -> Vec<Value> {
    let collected = net
        .convergecast_fill(
            |id| Some(ValueList::single(measurement(values, id))),
            |_, _| {},
        )
        .map(|l: ValueList| l.vals)
        .unwrap_or_default();
    let mut sorted = collected;
    sorted.sort_unstable();
    // Under message loss (§6 extension) the collection may be incomplete;
    // callers clamp the rank via `quantile_from_sorted`.
    sorted
}

/// The k-th value of an init collection, tolerating short collections
/// caused by message loss (clamps the rank; falls back to `fallback` when
/// nothing arrived at all).
pub fn quantile_from_sorted(sorted: &[Value], k: u64, fallback: Value) -> Value {
    if sorted.is_empty() {
        return fallback;
    }
    sorted[(k as usize - 1).min(sorted.len() - 1)]
}

/// IQ's initial half-width `ξ` from the collected distribution: the mean
/// gap below the quantile, `ξ = c · (v_k − v_1)/k` (§4.2.1), rounded up so
/// a non-degenerate interval survives integer truncation. Floored at 1:
/// with a single sensor (`k = 1`) or a constant prefix the span is 0, and
/// a zero half-width would collapse IQ's interval Ξ to a point.
pub fn initial_xi_mean_gap(sorted: &[Value], k: u64, c: f64) -> Value {
    assert!(k >= 1 && (k as usize) <= sorted.len());
    let span = (sorted[k as usize - 1] - sorted[0]) as f64;
    ((c * span / k as f64).ceil() as Value).max(1)
}

/// IQ's outlier-robust alternative: the median gap between consecutive
/// values up to the quantile (§4.2.1).
pub fn initial_xi_median_gap(sorted: &[Value], k: u64) -> Value {
    assert!(k >= 1 && (k as usize) <= sorted.len());
    if k < 2 {
        return 1;
    }
    let mut gaps: Vec<Value> = sorted[..k as usize]
        .windows(2)
        .map(|w| w[1] - w[0])
        .collect();
    let mid = gaps.len() / 2;
    let (_, m, _) = gaps.select_nth_unstable(mid);
    (*m).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_net::{MessageSizes, Network, Point, RadioModel, RoutingTree, Topology};

    fn line_net(sensors: usize) -> Network {
        let positions = (0..=sensors)
            .map(|i| Point::new(i as f64 * 8.0, 0.0))
            .collect();
        let topo = Topology::build(positions, 10.0);
        let tree = RoutingTree::shortest_path_tree(&topo).unwrap();
        Network::new(topo, tree, RadioModel::default(), MessageSizes::default())
    }

    #[test]
    fn mean_gap_xi() {
        // sorted = 0..=9, k = 5: span v_5 - v_1 = 4, xi = ceil(1 * 4/5) = 1.
        let sorted: Vec<Value> = (0..10).collect();
        assert_eq!(initial_xi_mean_gap(&sorted, 5, 1.0), 1);
        assert_eq!(initial_xi_mean_gap(&sorted, 5, 3.0), 3);
    }

    #[test]
    fn mean_gap_xi_survives_a_degenerate_span() {
        // One sensor (k = 1) or a constant prefix: span 0 must not collapse
        // IQ's interval to a point.
        assert_eq!(initial_xi_mean_gap(&[42], 1, 1.0), 1);
        assert_eq!(initial_xi_mean_gap(&[5, 5, 5, 9], 3, 1.0), 1);
    }

    #[test]
    fn single_sensor_init_is_exact_under_both_strategies() {
        // The 1-node network of the fuzzer's degenerate class: the sink has
        // exactly one sensor below it, k = 1, and both init strategies must
        // report that sensor's measurement.
        let query = QueryConfig::phi(0.5, 1, 0, 1023);
        for strategy in [InitStrategy::Tag, InitStrategy::BarySearch] {
            let mut net = line_net(1);
            let out = run_init(&mut net, &[77], query, strategy);
            assert_eq!(out.quantile, 77, "{strategy:?}");
            assert!(out.counts.is_valid_quantile(query.k), "{strategy:?}");
        }
    }

    #[test]
    fn empty_collection_falls_back_gracefully() {
        // A sink-only network is rejected at `Topology::build` ("need a
        // root and at least one sensor"), but message loss can still leave
        // an init collection empty — the quantile helper must fall back
        // instead of indexing.
        assert_eq!(quantile_from_sorted(&[], 1, -1), -1);
        assert_eq!(
            quantile_from_sorted(&[8], 5, -1),
            8,
            "short collections clamp the rank"
        );
    }

    #[test]
    fn median_gap_ignores_outliers() {
        // Gaps below k: 1,1,1,100 -> median gap 1 (mean would be ~26).
        let sorted = vec![0, 1, 2, 3, 103, 200];
        assert_eq!(initial_xi_median_gap(&sorted, 5), 1);
    }

    #[test]
    fn median_gap_floor_is_one() {
        let sorted = vec![5, 5, 5, 5];
        assert_eq!(initial_xi_median_gap(&sorted, 4), 1);
        assert_eq!(initial_xi_median_gap(&sorted, 1), 1);
    }
}
