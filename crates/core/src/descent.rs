//! Shared `b`-ary histogram descent (the refinement core of HBC §4.1 and
//! LCLL-H \[16\]).
//!
//! Given a candidate interval known to contain the k-th value, the root
//! repeatedly broadcasts a refinement request; nodes whose measurement
//! falls inside answer with a (compressed) histogram over the agreed
//! partition; the root picks the bucket containing the target rank and
//! recurses until the bucket width is 1 — or, when enabled and the
//! candidate count provably fits one message, requests the values directly
//! (\[21\]).

use wsn_net::Network;

use crate::buckets::BucketPartition;
use crate::payloads::Histogram;
use crate::rank::Counts;
use crate::retrieval::{direct_retrieval, RankAnchor};
use crate::Value;

/// Static parameters of a descent.
#[derive(Debug, Clone, Copy)]
pub struct DescentConfig {
    /// Bucket count per refinement level.
    pub b: usize,
    /// Target rank (1-based, global).
    pub k: u64,
    /// Total number of network values `|N|`.
    pub n_total: u64,
    /// When `Some(c)`, switch to direct value retrieval once at most `c`
    /// candidates remain.
    pub direct_capacity: Option<u64>,
    /// Hard iteration cap (loss protection).
    pub max_refinements: u32,
}

/// Result of a successful descent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DescentOutcome {
    /// The k-th value.
    pub quantile: Value,
    /// Root counts relative to the quantile itself.
    pub counts: Counts,
    /// Bounds of the last refinement *request* broadcast, if any — what
    /// every node remembers as its partition in HBC's §4.1.2 variant.
    pub last_request: Option<(Value, Value)>,
    /// Root counts relative to `last_request` (`l` = below it, `e` =
    /// inside, `g` = above), when a request was made.
    pub last_request_counts: Option<Counts>,
}

/// Broadcasts a refinement request for `part`'s interval and returns the
/// aggregated histogram. `on_receive(idx, lo, hi)` fires for every node
/// that received the request (protocols hook per-node state updates here,
/// e.g. HBC's §4.1.2 interval tracking).
pub fn histogram_request(
    net: &mut Network,
    values: &[Value],
    part: BucketPartition,
    on_receive: impl FnMut(usize, Value, Value),
) -> Histogram {
    let mut scratch = WaveScratch::default();
    histogram_request_reuse(net, values, part, on_receive, &mut scratch)
}

/// Reusable buffers for repeated request waves ([`histogram_request`] in
/// the descent loop): reception flags and per-node contribution slots, so
/// one descent performs no per-iteration heap allocation.
#[derive(Debug, Default)]
struct WaveScratch {
    received: wsn_net::NodeBits,
    contributions: Vec<Option<Histogram>>,
}

/// [`histogram_request`] with caller-owned scratch buffers.
fn histogram_request_reuse(
    net: &mut Network,
    values: &[Value],
    part: BucketPartition,
    mut on_receive: impl FnMut(usize, Value, Value),
    scratch: &mut WaveScratch,
) -> Histogram {
    net.broadcast_into(net.sizes().refinement_request_bits(), &mut scratch.received);
    let n = net.len();
    scratch.contributions.clear();
    scratch.contributions.resize(n, None);
    for idx in 1..n {
        if !scratch.received.get(idx) {
            continue;
        }
        on_receive(idx, part.lo, part.hi);
        if let Some(i) = part.index_of(values[idx - 1]) {
            scratch.contributions[idx] = Some(Histogram::unit(part.buckets, i));
        }
    }
    net.convergecast_slots(&mut scratch.contributions, |_, _| {})
        .unwrap_or_else(|| Histogram::zeros(part.buckets))
}

/// Runs the descent from `[lo, hi]` (which must contain the k-th value).
///
/// `inside` is the exact candidate count in the interval when already
/// known. `refinements` is incremented per convergecast. Returns the
/// quantile and fresh counts, or `None` when the bookkeeping turns out
/// inconsistent (possible only under message loss).
#[allow(clippy::too_many_arguments)]
pub fn descend(
    net: &mut Network,
    values: &[Value],
    cfg: DescentConfig,
    mut lo: Value,
    mut hi: Value,
    mut anchor: RankAnchor,
    mut inside: Option<u64>,
    refinements: &mut u32,
    mut on_receive: impl FnMut(usize, Value, Value),
) -> Option<DescentOutcome> {
    let mut last_request: Option<(Value, Value)> = None;
    let mut last_request_counts: Option<Counts> = None;
    let mut scratch = WaveScratch::default();
    loop {
        if lo > hi || *refinements >= cfg.max_refinements {
            return None;
        }
        if lo == hi {
            if let Some(e) = inside {
                let below = match anchor {
                    RankAnchor::BelowLo(b) => b,
                    RankAnchor::AtMostHi(t) => t.saturating_sub(e),
                };
                return Some(DescentOutcome {
                    quantile: lo,
                    counts: Counts {
                        l: below,
                        e,
                        g: cfg.n_total.saturating_sub(below + e),
                    },
                    last_request,
                    last_request_counts,
                });
            }
            // Unit interval with unknown occupancy (a hint collapsed the
            // interval): fall through — one unit-bucket histogram request
            // learns the counts the root must carry forward.
        }

        let bound = inside.unwrap_or_else(|| match anchor {
            RankAnchor::BelowLo(b) => cfg.n_total.saturating_sub(b),
            RankAnchor::AtMostHi(t) => t,
        });
        if let Some(capacity) = cfg.direct_capacity {
            if bound <= capacity {
                *refinements += 1;
                let r = direct_retrieval(net, values, lo, hi, cfg.k, cfg.n_total, anchor);
                return r.quantile.map(|q| DescentOutcome {
                    quantile: q,
                    counts: r.counts,
                    last_request: None,
                    last_request_counts: None,
                });
            }
        }

        *refinements += 1;
        let part = BucketPartition::new(lo, hi, cfg.b);
        let hist = histogram_request_reuse(net, values, part, &mut on_receive, &mut scratch);
        let total = hist.total();
        let mut below = match anchor {
            RankAnchor::BelowLo(b) => b,
            RankAnchor::AtMostHi(t) => t.saturating_sub(total),
        };
        last_request = Some((part.lo, part.hi));
        last_request_counts = Some(Counts {
            l: below,
            e: total,
            g: cfg.n_total.saturating_sub(below + total),
        });
        let rank_in = cfg.k.saturating_sub(below);
        if rank_in == 0 || rank_in > total {
            return None;
        }
        let mut cum = 0u64;
        let mut chosen = part.buckets - 1;
        for i in 0..part.buckets {
            let c = hist.counts()[i];
            if cum + c >= rank_in {
                chosen = i;
                break;
            }
            cum += c;
        }
        below += cum;
        let (s, e) = part.bounds(chosen);
        lo = s;
        hi = e;
        anchor = RankAnchor::BelowLo(below);
        inside = Some(hist.counts()[chosen]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_net::{MessageSizes, Point, RadioModel, RoutingTree, Topology};

    fn line_net(n_sensors: usize) -> Network {
        let positions = (0..=n_sensors)
            .map(|i| Point::new(i as f64 * 10.0, 0.0))
            .collect();
        let topo = Topology::build(positions, 12.0);
        let tree = RoutingTree::shortest_path_tree(&topo).unwrap();
        Network::new(topo, tree, RadioModel::default(), MessageSizes::default())
    }

    fn cfg(b: usize, k: u64, n: u64, direct: Option<u64>) -> DescentConfig {
        DescentConfig {
            b,
            k,
            n_total: n,
            direct_capacity: direct,
            max_refinements: 100,
        }
    }

    #[test]
    fn descent_pins_down_the_kth_value() {
        let mut net = line_net(20);
        let values: Vec<Value> = (0..20).map(|i| (i * 37) % 500).collect();
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for k in 1..=20u64 {
            let mut refinements = 0;
            let out = descend(
                &mut net,
                &values,
                cfg(8, k, 20, None),
                0,
                511,
                RankAnchor::BelowLo(0),
                Some(20),
                &mut refinements,
                |_, _, _| {},
            )
            .unwrap();
            assert_eq!(out.quantile, sorted[k as usize - 1], "k={k}");
            assert!(out.counts.is_valid_quantile(k));
            assert!(refinements >= 1);
            let (lb, ub) = out.last_request.unwrap();
            assert!(lb <= out.quantile && out.quantile <= ub);
            assert!(out.last_request_counts.unwrap().n() <= 20);
        }
    }

    #[test]
    fn direct_retrieval_short_circuits() {
        let mut net = line_net(10);
        let values: Vec<Value> = (0..10).map(|i| i * 50).collect();
        let mut with_direct = 0;
        descend(
            &mut net,
            &values,
            cfg(4, 5, 10, Some(64)),
            0,
            1023,
            RankAnchor::BelowLo(0),
            Some(10),
            &mut with_direct,
            |_, _, _| {},
        )
        .unwrap();
        assert_eq!(with_direct, 1, "10 candidates fit one message");

        let mut without = 0;
        descend(
            &mut net,
            &values,
            cfg(4, 5, 10, None),
            0,
            1023,
            RankAnchor::BelowLo(0),
            Some(10),
            &mut without,
            |_, _, _| {},
        )
        .unwrap();
        assert!(without > 1);
    }

    #[test]
    fn atmost_anchor_resolves_after_first_histogram() {
        let mut net = line_net(10);
        let values: Vec<Value> = vec![1, 2, 3, 10, 11, 12, 13, 20, 21, 22];
        // k = 5 -> 11; candidates in [5, 15], #<=15 is 7.
        let mut refinements = 0;
        let out = descend(
            &mut net,
            &values,
            cfg(4, 5, 10, None),
            5,
            15,
            RankAnchor::AtMostHi(7),
            None,
            &mut refinements,
            |_, _, _| {},
        )
        .unwrap();
        assert_eq!(out.quantile, 11);
    }

    #[test]
    fn inconsistent_rank_returns_none() {
        let mut net = line_net(5);
        let values: Vec<Value> = vec![100, 101, 102, 103, 104];
        // Interval does not contain the k-th value at all.
        let mut refinements = 0;
        let out = descend(
            &mut net,
            &values,
            cfg(4, 3, 5, None),
            0,
            50,
            RankAnchor::BelowLo(0),
            None,
            &mut refinements,
            |_, _, _| {},
        );
        assert!(out.is_none());
    }

    #[test]
    fn on_receive_sees_every_request() {
        let mut net = line_net(6);
        let values: Vec<Value> = vec![5, 15, 25, 35, 45, 55];
        let mut seen = Vec::new();
        let mut refinements = 0;
        descend(
            &mut net,
            &values,
            cfg(2, 3, 6, None),
            0,
            63,
            RankAnchor::BelowLo(0),
            Some(6),
            &mut refinements,
            |idx, lo, hi| seen.push((idx, lo, hi)),
        )
        .unwrap();
        // Every refinement reaches all 6 sensors.
        assert_eq!(seen.len() as u32, refinements * 6);
    }
}
