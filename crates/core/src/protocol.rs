//! The common protocol interface all algorithms implement.

use wsn_net::{Network, NodeId};

use crate::rank;
use crate::Value;

/// Static parameters of a continuous quantile query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryConfig {
    /// The requested rank `k` (1-based): the k-th smallest value is the
    /// answer. `k = ⌊φ·|N|⌋` per Definition 2.1.
    pub k: u64,
    /// Smallest possible measurement `r_min`.
    pub range_min: Value,
    /// Largest possible measurement `r_max`.
    pub range_max: Value,
}

impl QueryConfig {
    /// A query for the `φ`-quantile over `n` sensors.
    pub fn phi(phi: f64, n: usize, range_min: Value, range_max: Value) -> Self {
        assert!(range_min <= range_max, "empty value range");
        QueryConfig {
            k: rank::rank_of_phi(phi, n),
            range_min,
            range_max,
        }
    }

    /// The median query (`φ = 0.5`), the paper's focus.
    pub fn median(n: usize, range_min: Value, range_max: Value) -> Self {
        Self::phi(0.5, n, range_min, range_max)
    }

    /// Number of values in the integer universe, `τ = r_max − r_min + 1`.
    pub fn range_size(&self) -> u64 {
        (self.range_max - self.range_min + 1) as u64
    }
}

/// A continuous quantile query protocol.
///
/// The first [`ContinuousQuantile::round`] call is the initialization round
/// `t = 0`; subsequent calls are update rounds. `values[i]` is the current
/// measurement of sensor `NodeId(i+1)` (the root measures nothing).
///
/// The paper's protocols are **exact**: absent message loss, the returned
/// value equals `kth_smallest(values, k)` each round. The sketch family
/// ([`crate::QDigestQuantile`], [`crate::GkSinkQuantile`]) instead
/// guarantees a bounded rank error, advertised via
/// [`ContinuousQuantile::rank_tolerance`].
pub trait ContinuousQuantile {
    /// Short identifier used in reports ("TAG", "POS", "HBC", …).
    fn name(&self) -> &'static str;

    /// Executes one query round over the given measurements and returns the
    /// quantile as determined at the root node.
    fn round(&mut self, net: &mut Network, values: &[Value]) -> Value;

    /// Largest rank error (distance of the answer's true rank span from
    /// `k`) this protocol may commit on a reliable network over `n`
    /// values. Exact protocols return 0 (the default); approximate ones
    /// return their certified bound, e.g. `⌊ε·n⌋`. The differential
    /// oracle holds every protocol to exactly this bound.
    fn rank_tolerance(&self, n: u64) -> u64 {
        let _ = n;
        0
    }

    /// Notifies the protocol that the routing tree was rebuilt by the
    /// dynamics layer (mobility epoch, churn, drift) before the next
    /// round. The default is a no-op: the paper's protocols keep only
    /// value state at the sink and per-node filters keyed by node id, both
    /// of which survive a re-parented tree — the next validation round
    /// re-collects over the new topology. Protocols that cache
    /// tree-structural state (subtree sizes, per-slot buffers sized to a
    /// wave order) must override this and invalidate it.
    fn topology_changed(&mut self) {}
}

/// The measurement of sensor `id` in a round's value slice.
#[inline]
pub fn measurement(values: &[Value], id: NodeId) -> Value {
    debug_assert!(!id.is_root(), "the root takes no measurements");
    values[id.index() - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_rank() {
        let q = QueryConfig::median(1000, 0, 1023);
        assert_eq!(q.k, 500);
        assert_eq!(q.range_size(), 1024);
    }

    #[test]
    fn phi_rank_extremes() {
        assert_eq!(QueryConfig::phi(0.0, 10, 0, 9).k, 1);
        assert_eq!(QueryConfig::phi(1.0, 10, 0, 9).k, 10);
        assert_eq!(QueryConfig::phi(0.25, 100, 0, 9).k, 25);
    }

    #[test]
    fn measurement_maps_node_ids() {
        let values = vec![10, 20, 30];
        assert_eq!(measurement(&values, NodeId(1)), 10);
        assert_eq!(measurement(&values, NodeId(3)), 30);
    }

    #[test]
    #[should_panic(expected = "empty value range")]
    fn rejects_inverted_range() {
        let _ = QueryConfig::median(10, 5, 4);
    }
}
