//! GK — the summary-based exact method of §3.1 (\[10\]): compute a
//! mergeable quantile summary in-network, use its rank bounds to narrow a
//! candidate interval, count exactly, and recurse — "transmitting
//! O(log³ |N|) values" instead of TAG's O(|N|).
//!
//! The paper classifies this as an exact *snapshot* technique and does not
//! evaluate it; we include it as an extension baseline (`exactcmp` sweep)
//! because it rounds out the design space: per-node cost independent of
//! the value range (unlike POS/HBC/LCLL) *and* sublinear in `|N|` (unlike
//! TAG/IQ validation) — at the price of ignoring temporal correlation
//! entirely (every round is a fresh snapshot).
//!
//! Each iteration is: (1) a [`RankSummary`] convergecast restricted to the
//! candidate interval, pruned to one message's worth of entries at every
//! hop; (2) an exact counting round-trip for the summary-derived
//! sub-interval; (3) direct value retrieval once few enough candidates
//! remain.

use wsn_net::{Aggregate, MessageSizes, Network};

use crate::protocol::{ContinuousQuantile, QueryConfig};
use crate::retrieval::{direct_retrieval, RankAnchor};
use crate::summary::RankSummary;
use crate::Value;

/// Exact counting response: values below / inside a probed sub-interval.
#[derive(Debug, Clone, Copy, Default)]
struct CountPair {
    below: u64,
    inside: u64,
}

impl Aggregate for CountPair {
    fn merge(&mut self, other: Self) {
        self.below += other.below;
        self.inside += other.inside;
    }
    fn payload_bits(&self, sizes: &MessageSizes) -> u64 {
        2 * sizes.counter_bits
    }
}

/// The GK-style exact quantile protocol (per-round snapshot).
#[derive(Debug, Clone)]
pub struct Gk {
    query: QueryConfig,
    /// Summary entries per forwarded message (derived from payload size).
    capacity: usize,
    last: Option<Value>,
    last_iterations: u32,
    /// Reusable reception-flag buffer for the per-iteration broadcasts
    /// (scratch only, never observable state).
    recv: wsn_net::NodeBits,
}

/// Hard cap on narrowing iterations per round.
const MAX_ITERATIONS: u32 = 64;

impl Gk {
    /// Creates a GK query; the summary capacity is whatever fits one
    /// payload (entries cost one value plus two counters).
    pub fn new(query: QueryConfig, sizes: &MessageSizes) -> Self {
        let entry_bits = sizes.summary_entry_bits();
        let capacity = ((sizes.max_payload_bits - sizes.counter_bits) / entry_bits).max(4) as usize;
        Gk {
            query,
            capacity,
            last: None,
            last_iterations: 0,
            recv: wsn_net::NodeBits::new(),
        }
    }

    /// Summary capacity per message.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Narrowing iterations used by the last round.
    pub fn last_iterations(&self) -> u32 {
        self.last_iterations
    }

    /// Summary convergecast over values inside `[lo, hi]`.
    fn summary_pass(
        &mut self,
        net: &mut Network,
        values: &[Value],
        lo: Value,
        hi: Value,
    ) -> RankSummary {
        // Interval announcement.
        net.broadcast_into(net.sizes().refinement_request_bits(), &mut self.recv);
        let n = net.len();
        let mut contributions: Vec<Option<RankSummary>> = vec![None; n];
        for idx in 1..n {
            if !self.recv.get(idx) {
                continue;
            }
            let v = values[idx - 1];
            if v >= lo && v <= hi {
                contributions[idx] = Some(RankSummary::singleton(v));
            }
        }
        let capacity = self.capacity;
        net.convergecast_with(
            |id| contributions[id.index()].take(),
            |_, s: &mut RankSummary| s.prune(capacity),
        )
        .unwrap_or_else(RankSummary::empty)
    }

    /// Exact counting round-trip: how many values of `[lo, hi]` fall below
    /// `probe_lo`, and how many inside `[probe_lo, probe_hi]`.
    fn counting_pass(
        &mut self,
        net: &mut Network,
        values: &[Value],
        lo: Value,
        hi: Value,
        probe_lo: Value,
        probe_hi: Value,
    ) -> CountPair {
        let bits = 2 * net.sizes().value_bits + net.sizes().refinement_request_bits();
        net.broadcast_into(bits, &mut self.recv);
        let n = net.len();
        let mut contributions: Vec<Option<CountPair>> = vec![None; n];
        for idx in 1..n {
            if !self.recv.get(idx) {
                continue;
            }
            let v = values[idx - 1];
            if v >= lo && v <= hi {
                let pair = if v < probe_lo {
                    CountPair {
                        below: 1,
                        inside: 0,
                    }
                } else if v <= probe_hi {
                    CountPair {
                        below: 0,
                        inside: 1,
                    }
                } else {
                    continue;
                };
                contributions[idx] = Some(pair);
            }
        }
        net.convergecast_slots(&mut contributions, |_, _| {})
            .unwrap_or_default()
    }
}

impl ContinuousQuantile for Gk {
    fn name(&self) -> &'static str {
        "GK"
    }

    fn round(&mut self, net: &mut Network, values: &[Value]) -> Value {
        self.last_iterations = 0;
        let n_total = values.len() as u64;
        let k = self.query.k;
        let capacity_direct = net.sizes().values_per_message() as u64;

        let mut lo = self.query.range_min;
        let mut hi = self.query.range_max;
        let mut below = 0u64; // exact #values < lo
        let mut inside = n_total; // exact #values in [lo, hi]

        let result = loop {
            if self.last_iterations >= MAX_ITERATIONS {
                break self.last.unwrap_or(lo);
            }
            if lo == hi {
                break lo;
            }
            if inside <= capacity_direct {
                self.last_iterations += 1;
                let r =
                    direct_retrieval(net, values, lo, hi, k, n_total, RankAnchor::BelowLo(below));
                break match r.quantile {
                    Some(q) => q,
                    None => self.last.unwrap_or(lo),
                };
            }

            self.last_iterations += 1;
            let summary = self.summary_pass(net, values, lo, hi);
            let rank_in = k.saturating_sub(below);
            if rank_in == 0 || rank_in > summary.count {
                break self.last.unwrap_or(lo); // loss inconsistency
            }
            let Some((s_lo, s_hi)) = summary.enclosing_interval(rank_in) else {
                break self.last.unwrap_or(lo);
            };

            // Exact counting pins the anchor for the next iteration.
            let counts = self.counting_pass(net, values, lo, hi, s_lo, s_hi);
            let new_below = below + counts.below;
            if k <= new_below || k > new_below + counts.inside {
                // Bounds were conservative but the count disagrees — only
                // possible under loss.
                break self.last.unwrap_or(lo);
            }
            if (s_lo, s_hi) == (lo, hi) && counts.inside == inside {
                // No progress (pathological duplicates): bisect instead.
                let mid = lo + (hi - lo) / 2;
                let half = self.counting_pass(net, values, lo, hi, lo, mid);
                self.last_iterations += 1;
                if k <= below + half.inside {
                    hi = mid;
                    inside = half.inside;
                } else {
                    below += half.inside;
                    lo = mid + 1;
                    inside -= half.inside;
                }
                continue;
            }
            lo = s_lo;
            hi = s_hi;
            below = new_below;
            inside = counts.inside;
        };

        self.last = Some(result);
        net.end_round();
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rank;
    use wsn_net::{Point, RadioModel, RoutingTree, Topology};

    fn line_net(n_sensors: usize) -> Network {
        let positions = (0..=n_sensors)
            .map(|i| Point::new(i as f64 * 10.0, 0.0))
            .collect();
        let topo = Topology::build(positions, 12.0);
        let tree = RoutingTree::shortest_path_tree(&topo).unwrap();
        Network::new(topo, tree, RadioModel::default(), MessageSizes::default())
    }

    #[test]
    fn gk_is_exact_over_many_rounds() {
        let n = 40;
        let mut net = line_net(n);
        let query = QueryConfig::median(n, 0, 65_535);
        let mut gk = Gk::new(query, &MessageSizes::default());
        for t in 0..20u32 {
            let values: Vec<Value> = (0..n)
                .map(|i| {
                    ((i as u32).wrapping_mul(2654435761).wrapping_add(t * 97) % 60_000) as Value
                })
                .collect();
            assert_eq!(
                gk.round(&mut net, &values),
                rank::kth_smallest(&values, query.k),
                "round {t}"
            );
        }
    }

    #[test]
    fn gk_is_exact_for_every_rank() {
        let n = 30;
        let values: Vec<Value> = (0..n).map(|i| ((i * 313) % 1000) as Value).collect();
        for k in [1u64, 7, 15, 23, 30] {
            let mut net = line_net(n);
            let query = QueryConfig {
                k,
                range_min: 0,
                range_max: 1023,
            };
            let mut gk = Gk::new(query, &MessageSizes::default());
            assert_eq!(gk.round(&mut net, &values), rank::kth_smallest(&values, k));
        }
    }

    #[test]
    fn duplicates_trigger_bisection_fallback_safely() {
        let n = 40;
        let mut net = line_net(n);
        let query = QueryConfig::median(n, 0, 1023);
        let mut gk = Gk::new(query, &MessageSizes::default());
        let values = vec![512; n];
        assert_eq!(gk.round(&mut net, &values), 512);
    }

    #[test]
    fn iterations_stay_logarithmic() {
        let n = 60;
        let mut net = line_net(n);
        let query = QueryConfig::median(n, 0, (1 << 30) - 1);
        let mut gk = Gk::new(query, &MessageSizes::default());
        let values: Vec<Value> = (0..n)
            .map(|i| ((i as i64 * 7_777_777) % (1 << 30)).abs())
            .collect();
        assert_eq!(
            gk.round(&mut net, &values),
            rank::kth_smallest(&values, query.k)
        );
        assert!(
            gk.last_iterations() <= 8,
            "iterations {}",
            gk.last_iterations()
        );
    }

    fn grid_net(n_sensors: usize) -> Network {
        let cols = (n_sensors as f64).sqrt().ceil() as usize + 1;
        let positions: Vec<Point> = (0..=n_sensors)
            .map(|i| Point::new((i % cols) as f64 * 9.0, (i / cols) as f64 * 9.0))
            .collect();
        let topo = Topology::build(positions, 13.0);
        let tree = RoutingTree::shortest_path_tree(&topo).unwrap();
        Network::new(topo, tree, RadioModel::default(), MessageSizes::default())
    }

    #[test]
    fn per_node_values_are_sublinear_in_n() {
        // The headline property of [10]: intermediate nodes forward a
        // bounded summary, not the whole subtree. (On realistic tree
        // depths; a degenerate line topology compounds prune slack, which
        // is the known weakness of merge-prune summaries on paths.)
        // (per-hop value average, hotspot energy)
        let run = |n: usize, alg: &mut dyn ContinuousQuantile| {
            let mut net = grid_net(n);
            let values: Vec<Value> = (0..n).map(|i| (i * 131 % 60_000) as Value).collect();
            alg.round(&mut net, &values);
            (
                net.stats().values as f64 / n as f64,
                net.ledger().max_sensor_consumption(),
            )
        };
        let sizes = MessageSizes::default();
        // Both sizes engage the summary machinery (> 64 candidates).
        let q_small = QueryConfig::median(160, 0, 65_535);
        let q_large = QueryConfig::median(640, 0, 65_535);
        let (small, gk_hot_small) = run(160, &mut Gk::new(q_small, &sizes));
        let (large, gk_hot_large) = run(640, &mut Gk::new(q_large, &sizes));
        assert!(
            large < small * 2.5,
            "per-hop values grew {small} -> {large}"
        );
        // The paper's metric is the hotspot. TAG's funnel node forwards
        // k = |N|/2 values, so its hotspot scales ~linearly in |N|; GK's
        // bounded summaries must scale much slower (the O(log³) claim).
        let (_, tag_hot_small) = run(160, &mut crate::Tag::new(q_small));
        let (_, tag_hot_large) = run(640, &mut crate::Tag::new(q_large));
        let gk_growth = gk_hot_large / gk_hot_small;
        let tag_growth = tag_hot_large / tag_hot_small;
        assert!(
            gk_growth < tag_growth * 0.85,
            "GK hotspot growth ({gk_growth:.2}x) should be well below TAG's ({tag_growth:.2}x)"
        );
    }

    #[test]
    fn capacity_derived_from_message_size() {
        let gk = Gk::new(QueryConfig::median(10, 0, 100), &MessageSizes::default());
        // (1024 - 16) / 48 = 21 entries.
        assert_eq!(gk.capacity(), 21);
    }
}
