//! Wire encodings for every convergecast payload — the proof that the
//! bit counts charged by the energy model correspond to a real, decodable
//! message format.
//!
//! Values are offset-encoded against the query's `range_min` so a 16-bit
//! field covers any universe of up to 65536 values (the paper's setting);
//! counters saturate at field capacity, which for ≤ 65535 nodes is
//! lossless. Each `encode_*` returns the encoded bytes and asserts — in
//! tests — that the bit count equals the corresponding
//! [`wsn_net::Aggregate::payload_bits`].

use wsn_net::codec::{BitReader, BitWriter};
use wsn_net::MessageSizes;

use crate::payloads::{DeltaHistogram, Histogram, MovementCounters, MultiCounters, ValueList};
use crate::qdigest::QDigest;
use crate::summary::{Entry, RankSummary};
use crate::validation::{HintStyle, ValidationPayload};
use crate::Value;

/// Encoding context: the static knowledge every node shares (field widths
/// and the value offset).
#[derive(Debug, Clone, Copy)]
pub struct WireContext {
    /// Field widths.
    pub sizes: MessageSizes,
    /// Values are transmitted as `v - range_min`.
    pub range_min: Value,
}

impl WireContext {
    /// Creates a context.
    pub fn new(sizes: MessageSizes, range_min: Value) -> Self {
        WireContext { sizes, range_min }
    }

    fn put_value(&self, w: &mut BitWriter, v: Value) {
        w.put((v - self.range_min) as u64, self.sizes.value_bits as u32);
    }

    fn get_value(&self, r: &mut BitReader<'_>) -> Option<Value> {
        Some(r.get(self.sizes.value_bits as u32)? as Value + self.range_min)
    }

    fn put_counter(&self, w: &mut BitWriter, c: u64) {
        let width = self.sizes.counter_bits as u32;
        let max = if width >= 64 {
            u64::MAX
        } else {
            (1 << width) - 1
        };
        w.put(c.min(max), width);
    }

    /// Encodes a [`ValueList`].
    pub fn encode_values(&self, list: &ValueList) -> Vec<u8> {
        let mut w = BitWriter::new();
        for &v in &list.vals {
            self.put_value(&mut w, v);
        }
        debug_assert_eq!(w.len_bits(), list_bits(list, &self.sizes));
        w.into_bytes()
    }

    /// Decodes a [`ValueList`] of `n` values.
    pub fn decode_values(&self, bytes: &[u8], n: usize) -> Option<ValueList> {
        let mut r = BitReader::new(bytes);
        let mut vals = Vec::with_capacity(n);
        for _ in 0..n {
            vals.push(self.get_value(&mut r)?);
        }
        Some(ValueList { vals })
    }

    /// Encodes [`MovementCounters`].
    pub fn encode_counters(&self, c: &MovementCounters) -> Vec<u8> {
        let mut w = BitWriter::new();
        for f in [c.outof_lt, c.into_lt, c.outof_gt, c.into_gt] {
            self.put_counter(&mut w, f);
        }
        w.into_bytes()
    }

    /// Decodes [`MovementCounters`].
    pub fn decode_counters(&self, bytes: &[u8]) -> Option<MovementCounters> {
        let mut r = BitReader::new(bytes);
        let width = self.sizes.counter_bits as u32;
        Some(MovementCounters {
            outof_lt: r.get(width)?,
            into_lt: r.get(width)?,
            outof_gt: r.get(width)?,
            into_gt: r.get(width)?,
        })
    }

    /// Encodes a [`MultiCounters`] shared-wave payload: the per-lane
    /// counter blocks concatenated in lane order.
    pub fn encode_multi_counters(&self, m: &MultiCounters) -> Vec<u8> {
        let mut w = BitWriter::new();
        for c in &m.lanes {
            for f in [c.outof_lt, c.into_lt, c.outof_gt, c.into_gt] {
                self.put_counter(&mut w, f);
            }
        }
        w.into_bytes()
    }

    /// Decodes a [`MultiCounters`] payload of `n_lanes` counter blocks.
    /// Rejects truncated and oversized buffers like the sketch decoders.
    pub fn decode_multi_counters(&self, bytes: &[u8], n_lanes: usize) -> Option<MultiCounters> {
        payload_fits(bytes, 0, n_lanes, 4 * self.sizes.counter_bits)?;
        let mut r = BitReader::new(bytes);
        let width = self.sizes.counter_bits as u32;
        let mut m = MultiCounters::zeros(n_lanes);
        for c in &mut m.lanes {
            c.outof_lt = r.get(width)?;
            c.into_lt = r.get(width)?;
            c.outof_gt = r.get(width)?;
            c.into_gt = r.get(width)?;
        }
        exactly_consumed(&mut r, bytes.len())?;
        Some(m)
    }

    /// Encodes a compressed [`Histogram`] as (index, count) pairs.
    pub fn encode_histogram(&self, h: &Histogram) -> Vec<u8> {
        let mut w = BitWriter::new();
        for (i, &c) in h.counts().iter().enumerate() {
            if c > 0 {
                w.put(i as u64, self.sizes.bucket_index_bits as u32);
                self.put_counter(&mut w, c);
            }
        }
        w.into_bytes()
    }

    /// Decodes a compressed histogram with `b` buckets and `nonempty`
    /// entries on the wire.
    pub fn decode_histogram(&self, bytes: &[u8], b: usize, nonempty: usize) -> Option<Histogram> {
        let mut r = BitReader::new(bytes);
        let mut h = Histogram::zeros(b);
        for _ in 0..nonempty {
            let i = r.get(self.sizes.bucket_index_bits as u32)? as usize;
            let c = r.get(self.sizes.bucket_bits as u32)?;
            if i >= b {
                return None;
            }
            h.counts_mut()[i] = c;
        }
        Some(h)
    }

    /// Encodes a [`DeltaHistogram`] as (index, signed delta) pairs.
    pub fn encode_deltas(&self, d: &DeltaHistogram) -> Vec<u8> {
        let mut w = BitWriter::new();
        for (i, &delta) in d.deltas.iter().enumerate() {
            if delta != 0 {
                w.put(i as u64, self.sizes.bucket_index_bits as u32);
                w.put_signed(delta, self.sizes.bucket_bits as u32);
            }
        }
        w.into_bytes()
    }

    /// Decodes a delta histogram with `b` cells and `nonzero` entries.
    pub fn decode_deltas(&self, bytes: &[u8], b: usize, nonzero: usize) -> Option<DeltaHistogram> {
        let mut r = BitReader::new(bytes);
        let mut d = DeltaHistogram::zeros(b);
        for _ in 0..nonzero {
            let i = r.get(self.sizes.bucket_index_bits as u32)? as usize;
            let delta = r.get_signed(self.sizes.bucket_bits as u32)?;
            if i >= b {
                return None;
            }
            d.deltas[i] = delta;
        }
        Some(d)
    }

    /// Encodes a [`QDigest`]: the total count, then one `(heap node id,
    /// count)` pair per live entry. Node ids over a `2^value_bits`
    /// universe span `[1, 2^(value_bits+1))`, hence the extra bit in
    /// [`MessageSizes::sketch_entry_bits`]. Counters saturate at field
    /// capacity (lossless for the paper's ≤ 65535-node setting).
    pub fn encode_sketch(&self, d: &QDigest) -> Vec<u8> {
        let mut w = BitWriter::new();
        self.put_counter(&mut w, d.count());
        for &(id, c) in d.entries() {
            w.put(id, self.sizes.value_bits as u32 + 1);
            self.put_counter(&mut w, c);
        }
        w.into_bytes()
    }

    /// Decodes a [`QDigest`] with `n_entries` entries on the wire, for the
    /// query universe `[range_min, range_max]` and compression parameter
    /// `k`. The digest's count is re-derived from the entries (the leading
    /// count field is redundant on a lossless link and is only
    /// sanity-checked against the sum modulo counter saturation).
    pub fn decode_sketch(
        &self,
        bytes: &[u8],
        n_entries: usize,
        range_max: Value,
        k: u64,
    ) -> Option<QDigest> {
        let entry_bits = self.sizes.value_bits + 1 + self.sizes.counter_bits;
        payload_fits(bytes, self.sizes.counter_bits, n_entries, entry_bits)?;
        let mut r = BitReader::new(bytes);
        let wire_count = r.get(self.sizes.counter_bits as u32)?;
        let mut entries = Vec::with_capacity(n_entries);
        for _ in 0..n_entries {
            let id = r.get(self.sizes.value_bits as u32 + 1)?;
            let c = r.get(self.sizes.counter_bits as u32)?;
            entries.push((id, c));
        }
        exactly_consumed(&mut r, bytes.len())?;
        let d = QDigest::from_entries(self.range_min, range_max, k, entries)?;
        let width = self.sizes.counter_bits as u32;
        let saturated = if width >= 64 {
            u64::MAX
        } else {
            (1 << width) - 1
        };
        (wire_count == d.count().min(saturated)).then_some(d)
    }

    /// Encodes a [`RankSummary`]: the total count, then one
    /// `(value, rmin, rmax)` triple per entry — see
    /// [`MessageSizes::summary_entry_bits`].
    pub fn encode_summary(&self, s: &RankSummary) -> Vec<u8> {
        let mut w = BitWriter::new();
        self.put_counter(&mut w, s.count);
        for e in &s.entries {
            self.put_value(&mut w, e.value);
            self.put_counter(&mut w, e.rmin);
            self.put_counter(&mut w, e.rmax);
        }
        w.into_bytes()
    }

    /// Decodes a [`RankSummary`] with `n_entries` entries on the wire.
    pub fn decode_summary(&self, bytes: &[u8], n_entries: usize) -> Option<RankSummary> {
        let entry_bits = self.sizes.value_bits + 2 * self.sizes.counter_bits;
        payload_fits(bytes, self.sizes.counter_bits, n_entries, entry_bits)?;
        let mut r = BitReader::new(bytes);
        let count = r.get(self.sizes.counter_bits as u32)?;
        let mut entries = Vec::with_capacity(n_entries);
        for _ in 0..n_entries {
            let value = self.get_value(&mut r)?;
            let rmin = r.get(self.sizes.counter_bits as u32)?;
            let rmax = r.get(self.sizes.counter_bits as u32)?;
            if rmin > rmax {
                return None;
            }
            entries.push(Entry { value, rmin, rmax });
        }
        exactly_consumed(&mut r, bytes.len())?;
        Some(RankSummary { entries, count })
    }

    /// Encodes a [`ValidationPayload`]: four counters, the hint field(s),
    /// then the Ξ values.
    pub fn encode_validation(&self, p: &ValidationPayload, filter: Value) -> Vec<u8> {
        let mut w = BitWriter::new();
        for f in [
            p.counters.outof_lt,
            p.counters.into_lt,
            p.counters.outof_gt,
            p.counters.into_gt,
        ] {
            self.put_counter(&mut w, f);
        }
        let field_max = self.range_min + (1 << self.sizes.value_bits) - 1;
        match p.style {
            HintStyle::MinMax => {
                // Absent hints (sentinels) encode as the filter itself —
                // a neutral bound the receiver merges losslessly.
                let lo = if p.hint_min == Value::MAX {
                    filter
                } else {
                    p.hint_min
                };
                let hi = if p.hint_max == Value::MIN {
                    filter
                } else {
                    p.hint_max
                };
                self.put_value(&mut w, lo.clamp(self.range_min, field_max));
                self.put_value(&mut w, hi.clamp(self.range_min, field_max));
            }
            HintStyle::MaxDiff => {
                let width = self.sizes.value_bits as u32;
                let max = if width >= 64 {
                    u64::MAX
                } else {
                    (1 << width) - 1
                };
                w.put(p.max_diff.min(max), width);
            }
        }
        for &v in &p.extra.vals {
            self.put_value(&mut w, v);
        }
        w.into_bytes()
    }
}

fn list_bits(list: &ValueList, sizes: &MessageSizes) -> u64 {
    list.vals.len() as u64 * sizes.value_bits
}

/// Rejects a claimed entry count the buffer cannot physically hold —
/// before any allocation sized by it — so truncated payloads fail fast
/// and a hostile `n_entries` cannot drive `Vec::with_capacity` to
/// arbitrary sizes.
fn payload_fits(bytes: &[u8], header_bits: u64, n_entries: usize, entry_bits: u64) -> Option<()> {
    let need = header_bits.checked_add((n_entries as u64).checked_mul(entry_bits)?)?;
    (need <= bytes.len() as u64 * 8).then_some(())
}

/// Rejects an oversized buffer: after the declared entries, at most the
/// final byte's zero padding may remain. Trailing garbage — extra bytes,
/// or nonzero padding bits — means the sender and receiver disagree on
/// the payload shape, so the decode must fail rather than silently drop
/// data.
fn exactly_consumed(r: &mut BitReader<'_>, total_bytes: usize) -> Option<()> {
    let left = total_bytes as u64 * 8 - r.pos_bits();
    if left >= 8 {
        return None;
    }
    (left == 0 || r.get(left as u32) == Some(0)).then_some(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_net::Aggregate;

    fn ctx() -> WireContext {
        WireContext::new(MessageSizes::default(), 0)
    }

    fn bits_of(bytes_len_bits: u64) -> u64 {
        bytes_len_bits
    }

    #[test]
    fn value_list_roundtrip_and_size() {
        let c = ctx();
        let list = ValueList {
            vals: vec![0, 1, 1023, 65535],
        };
        let bytes = c.encode_values(&list);
        let decoded = c.decode_values(&bytes, 4).unwrap();
        assert_eq!(decoded, list);
        assert_eq!(
            bits_of(bytes.len() as u64 * 8).div_ceil(8),
            list.payload_bits(&c.sizes).div_ceil(8)
        );
    }

    #[test]
    fn offset_encoding_covers_negative_universes() {
        let c = WireContext::new(MessageSizes::default(), -500);
        let list = ValueList {
            vals: vec![-500, -1, 0, 65035],
        };
        let bytes = c.encode_values(&list);
        assert_eq!(c.decode_values(&bytes, 4).unwrap(), list);
    }

    #[test]
    fn counters_roundtrip_and_size() {
        let c = ctx();
        let m = MovementCounters {
            outof_lt: 3,
            into_lt: 65535,
            outof_gt: 0,
            into_gt: 7,
        };
        let bytes = c.encode_counters(&m);
        assert_eq!(c.decode_counters(&bytes).unwrap(), m);
        assert_eq!(bytes.len() as u64, m.payload_bits(&c.sizes) / 8);
    }

    #[test]
    fn histogram_roundtrip_and_compressed_size() {
        let c = ctx();
        let mut h = Histogram::zeros(11);
        h.counts_mut()[0] = 9;
        h.counts_mut()[7] = 123;
        let bytes = c.encode_histogram(&h);
        let decoded = c.decode_histogram(&bytes, 11, h.nonempty()).unwrap();
        assert_eq!(decoded, h);
        assert_eq!(bytes.len() as u64 * 8, h.payload_bits(&c.sizes));
    }

    #[test]
    fn delta_roundtrip_with_negative_entries() {
        let c = ctx();
        let mut d = DeltaHistogram::zeros(66);
        d.deltas[2] = -5;
        d.deltas[65] = 17;
        let bytes = c.encode_deltas(&d);
        let decoded = c.decode_deltas(&bytes, 66, d.nonzero()).unwrap();
        assert_eq!(decoded, d);
        assert_eq!(bytes.len() as u64 * 8, d.payload_bits(&c.sizes));
    }

    #[test]
    fn sketch_roundtrip_and_size_matches_charge() {
        let c = ctx();
        let mut d = QDigest::singleton(0, 1023, 8, 5);
        for v in [5, 5, 17, 900, 1023, 0, 512, 300] {
            d.merge(QDigest::singleton(0, 1023, 8, v));
        }
        let bytes = c.encode_sketch(&d);
        let decoded = c.decode_sketch(&bytes, d.len(), 1023, 8).unwrap();
        assert_eq!(decoded, d);
        assert_eq!(bytes.len() as u64, d.payload_bits(&c.sizes).div_ceil(8));
        // A corrupted count field is rejected.
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert!(c.decode_sketch(&bad, d.len(), 1023, 8).is_none());
    }

    #[test]
    fn summary_roundtrip_and_size_matches_charge() {
        let c = ctx();
        let mut s = RankSummary::singleton(42);
        for v in [7, 9000, 42, 65535, 0] {
            s.merge(RankSummary::singleton(v));
        }
        s.prune(4);
        let bytes = c.encode_summary(&s);
        let decoded = c.decode_summary(&bytes, s.entries.len()).unwrap();
        assert_eq!(decoded, s);
        assert_eq!(bytes.len() as u64, s.payload_bits(&c.sizes).div_ceil(8));
    }

    #[test]
    fn multi_counters_roundtrip_and_size() {
        let c = ctx();
        let mut m = MultiCounters::zeros(3);
        m.lanes[0].outof_lt = 9;
        m.lanes[2].into_gt = 65535;
        let bytes = c.encode_multi_counters(&m);
        assert_eq!(c.decode_multi_counters(&bytes, 3).unwrap(), m);
        assert_eq!(bytes.len() as u64 * 8, m.payload_bits(&c.sizes));
        // Wrong lane count, truncation and oversize all fail cleanly.
        assert!(c.decode_multi_counters(&bytes, 4).is_none());
        assert!(c
            .decode_multi_counters(&bytes[..bytes.len() - 1], 3)
            .is_none());
        let mut fat = bytes.clone();
        fat.push(0);
        assert!(c.decode_multi_counters(&fat, 3).is_none());
    }

    #[test]
    fn truncated_and_oversized_payloads_fail_cleanly() {
        let c = ctx();
        let mut d = QDigest::singleton(0, 1023, 8, 5);
        for v in [5, 17, 900, 1023, 0, 512, 300] {
            d.merge(QDigest::singleton(0, 1023, 8, v));
        }
        let sketch = c.encode_sketch(&d);
        let mut s = RankSummary::singleton(42);
        for v in [7, 9000, 42, 65535, 0] {
            s.merge(RankSummary::singleton(v));
        }
        let summary = c.encode_summary(&s);

        // Every strict byte prefix is rejected as truncated.
        for cut in 0..sketch.len() {
            assert!(
                c.decode_sketch(&sketch[..cut], d.len(), 1023, 8).is_none(),
                "cut={cut}"
            );
        }
        for cut in 0..summary.len() {
            assert!(
                c.decode_summary(&summary[..cut], s.entries.len()).is_none(),
                "cut={cut}"
            );
        }

        // Oversized buffers (trailing bytes) are rejected, zero or not.
        for extra in [0u8, 0xFF] {
            let mut fat = sketch.clone();
            fat.push(extra);
            assert!(c.decode_sketch(&fat, d.len(), 1023, 8).is_none());
            let mut fat = summary.clone();
            fat.push(extra);
            assert!(c.decode_summary(&fat, s.entries.len()).is_none());
        }

        // Nonzero padding bits in the final byte are rejected.
        let pad = sketch.len() as u64 * 8 - (c.sizes.counter_bits + d.len() as u64 * 33);
        if pad > 0 {
            let mut dirty = sketch.clone();
            *dirty.last_mut().unwrap() |= 1;
            assert!(c.decode_sketch(&dirty, d.len(), 1023, 8).is_none());
        }

        // Hostile entry counts fail fast without allocating.
        for n in [d.len() + 1, 1 << 20, usize::MAX / 64, usize::MAX] {
            assert!(c.decode_sketch(&sketch, n, 1023, 8).is_none());
        }
        for n in [s.entries.len() + 1, 1 << 20, usize::MAX] {
            assert!(c.decode_summary(&summary, n).is_none());
        }

        // Byte-level corruption over round-tripped encodings never panics
        // (it may decode to a different-but-valid payload or fail — both
        // are clean outcomes).
        for i in 0..sketch.len() {
            let mut b = sketch.clone();
            b[i] ^= 0xA5;
            let _ = c.decode_sketch(&b, d.len(), 1023, 8);
        }
        for i in 0..summary.len() {
            let mut b = summary.clone();
            b[i] ^= 0xA5;
            let _ = c.decode_summary(&b, s.entries.len());
        }
    }

    #[test]
    fn validation_payload_size_matches_charge() {
        let c = ctx();
        for style in [HintStyle::MinMax, HintStyle::MaxDiff] {
            let mut p = crate::validation::node_validation(3, 900, 500, style, Some((-5, 5)))
                .expect("state changed");
            p.extra.vals.push(505);
            let bytes = c.encode_validation(&p, 500);
            // Bit-exact up to the final byte's padding.
            let charged = p.payload_bits(&c.sizes);
            assert_eq!(bytes.len() as u64, charged.div_ceil(8), "{style:?}");
        }
    }
}
