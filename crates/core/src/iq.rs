//! IQ — Interval-based Quantiles, the paper's heuristic contribution
//! (§4.2).
//!
//! IQ bets on temporal correlation: nodes transmit their raw measurement
//! during validation whenever it falls inside an adaptive interval
//! `Ξ = [v_k + ξ_l, v_k + ξ_r]` around the last quantile. If the new k-th
//! value lands inside Ξ the root reads it straight out of the validation
//! payload — zero refinements. Otherwise a *single* refinement convergecast
//! requests exactly the `f` largest (or smallest) values beyond Ξ, with
//! intermediate nodes pruning to the top `f` (§4.2.2), so a round ends
//! after at most two convergecasts. The interval bounds adapt to the
//! recent quantile trend:
//!
//! ```text
//! ξ_l = min( min_{i=t−m+2..t} (v_k^i − v_k^{i−1}), 0 )
//! ξ_r = max( max_{i=t−m+2..t} (v_k^i − v_k^{i−1}), 0 )
//! ```
//!
//! Worst case the validation forwards `O(|N|)` values per node — the price
//! for avoiding refinement rounds, and the reason HBC wins when the
//! quantile moves fast (§5.2.2).

use std::collections::VecDeque;

use wsn_net::{Network, PayloadSize};

use crate::init::{initial_xi_mean_gap, initial_xi_median_gap, run_init, InitStrategy};
use crate::payloads::ValueList;
use crate::protocol::{ContinuousQuantile, QueryConfig};
use crate::rank::{Counts, Direction};
use crate::recovery;
use crate::validation::{node_validation, HintStyle, ValidationPayload};
use crate::Value;

/// How IQ's initial interval half-width ξ is derived from the init-round
/// distribution (§4.2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum XiInit {
    /// `ξ = c·(v_k − v_1)/k` — the mean gap below the quantile.
    MeanGap,
    /// The median gap between consecutive values up to the quantile
    /// (outlier-robust).
    MedianGap,
}

/// Configuration of the IQ algorithm.
#[derive(Debug, Clone, Copy)]
pub struct IqConfig {
    /// History window `m`: how many recent quantiles feed the ξ update.
    pub m: usize,
    /// Tweaking constant `c` of the mean-gap initializer.
    pub c: f64,
    /// Initializer choice.
    pub xi_init: XiInit,
    /// Bound the refinement interval with HBC-style hints (§5.1.6: "IQ was
    /// implemented … with the same hints as HBC").
    pub use_hints: bool,
    /// Initialization strategy (§4.2.1: "The initialization algorithm is
    /// independent from our solution"; TAG by default like POS).
    pub init: InitStrategy,
}

impl Default for IqConfig {
    fn default() -> Self {
        IqConfig {
            m: 4,
            c: 1.0,
            xi_init: XiInit::MeanGap,
            use_hints: true,
            init: InitStrategy::Tag,
        }
    }
}

/// The IQ continuous quantile protocol.
#[derive(Debug, Clone)]
pub struct Iq {
    query: QueryConfig,
    config: IqConfig,
    counts: Counts,
    root_filter: Value,
    root_history: VecDeque<Value>,
    root_xi: (Value, Value),
    node_filter: Vec<Value>,
    node_xi: Vec<(Value, Value)>,
    node_history: Vec<VecDeque<Value>>,
    prev: Vec<Value>,
    initialized: bool,
    last_refinements: u32,
    last_a_size: usize,
    /// Reusable reception-flag buffer for broadcasts (scratch only, never
    /// observable state).
    recv: wsn_net::NodeBits,
}

impl Iq {
    /// Creates an IQ query.
    pub fn new(query: QueryConfig, config: IqConfig) -> Self {
        assert!(config.m >= 2, "history window m must be at least 2");
        Iq {
            query,
            config,
            counts: Counts::default(),
            root_filter: 0,
            root_history: VecDeque::new(),
            root_xi: (0, 0),
            node_filter: Vec::new(),
            node_xi: Vec::new(),
            node_history: Vec::new(),
            prev: Vec::new(),
            initialized: false,
            last_refinements: 0,
            last_a_size: 0,
            recv: wsn_net::NodeBits::new(),
        }
    }

    /// Refinement convergecasts in the last round (0 or 1 absent loss).
    pub fn last_refinements(&self) -> u32 {
        self.last_refinements
    }

    /// Size of the validation multiset `A` received in the last round.
    pub fn last_validation_set_size(&self) -> usize {
        self.last_a_size
    }

    /// The root's current interval offsets `(ξ_l, ξ_r)`.
    pub fn xi(&self) -> (Value, Value) {
        self.root_xi
    }

    /// The state shared by all POS-family protocols (see
    /// [`crate::adaptive::Adaptive`]).
    pub(crate) fn shared_state(&self) -> (Value, Counts, &[Value]) {
        (self.root_filter, self.counts, &self.prev)
    }

    /// Adopts shared state exported by a sibling protocol. Ξ restarts
    /// degenerate and re-adapts from the quantile trend.
    pub(crate) fn adopt(&mut self, n: usize, filter: Value, counts: Counts, prev: &[Value]) {
        self.root_filter = filter;
        self.counts = counts;
        self.prev = prev.to_vec();
        self.root_xi = (0, 0);
        self.root_history = VecDeque::from(vec![filter]);
        self.node_filter = vec![filter; n];
        self.node_xi = vec![(0, 0); n];
        self.node_history = vec![VecDeque::from(vec![filter]); n];
        self.initialized = true;
    }

    fn init_round(&mut self, net: &mut Network, values: &[Value]) -> Value {
        let out = run_init(net, values, self.query, self.config.init);
        let q = out.quantile;
        self.counts = out.counts;
        self.root_filter = q;
        let xi = match &out.sorted {
            Some(sorted) if !sorted.is_empty() => {
                let k_avail = self.query.k.min(sorted.len() as u64);
                match self.config.xi_init {
                    XiInit::MeanGap => initial_xi_mean_gap(sorted, k_avail, self.config.c),
                    XiInit::MedianGap => initial_xi_median_gap(sorted, k_avail),
                }
            }
            // §4.2.1 for b-ary init: a representative refinement
            // interval's length divided by its candidate count.
            _ => match out.last_interval {
                Some((width, count)) if count > 0 => {
                    (self.config.c * width as f64 / count as f64).ceil() as Value
                }
                _ => 1,
            },
        }
        .max(1);
        self.root_xi = (-xi, xi);
        self.root_history = VecDeque::with_capacity(self.config.m);
        self.root_history.push_back(q);

        let n = net.len();
        self.node_filter = vec![q; n];
        self.node_xi = vec![(-xi, xi); n];
        self.node_history = vec![VecDeque::with_capacity(self.config.m); n];
        self.prev = values.to_vec();

        // Filter broadcast carries the tuple (v_k, ξ) (§4.2.1).
        let bits = PayloadSize::new(net.sizes()).values(2).bits();
        net.broadcast_into(bits, &mut self.recv);
        for i in 0..n {
            self.node_history[i].push_back(q);
            if self.recv.get(i) {
                self.node_filter[i] = q;
                self.node_xi[i] = (-xi, xi);
            }
        }
        self.initialized = true;
        net.end_round();
        q
    }

    /// One refinement convergecast requesting the `f` extreme values in
    /// `[lo, hi]`; intermediate nodes prune to the top `f` (+ ties).
    fn refine(
        &mut self,
        net: &mut Network,
        values: &[Value],
        lo: Value,
        hi: Value,
        f: u64,
        largest: bool,
    ) -> Vec<Value> {
        self.last_refinements += 1;
        net.set_phase(wsn_net::Phase::Refinement);
        // Request: f plus the interval bounds.
        let bits = PayloadSize::new(net.sizes()).counters(1).values(2).bits();
        net.broadcast_into(bits, &mut self.recv);
        let n = net.len();
        let mut contributions: Vec<Option<ValueList>> = vec![None; n];
        for idx in 1..n {
            if !self.recv.get(idx) {
                continue;
            }
            let v = values[idx - 1];
            if v >= lo && v <= hi {
                contributions[idx] = Some(ValueList::single(v));
            }
        }
        let f = f as usize;
        net.convergecast_with(
            |id| contributions[id.index()].take(),
            |_, l: &mut ValueList| {
                if largest {
                    l.keep_largest_with_ties(f);
                } else {
                    l.keep_smallest_with_ties(f);
                }
            },
        )
        .map(|l| l.vals)
        .unwrap_or_default()
    }

    /// Appends `q` to a quantile history and derives the new `(ξ_l, ξ_r)`.
    fn update_history(history: &mut VecDeque<Value>, m: usize, q: Value) -> (Value, Value) {
        if history.len() == m {
            history.pop_front();
        }
        history.push_back(q);
        if history.len() < 2 {
            return (0, 0);
        }
        let mut xi_l = 0;
        let mut xi_r = 0;
        for w in 0..history.len() - 1 {
            let delta = history[w + 1] - history[w];
            xi_l = xi_l.min(delta);
            xi_r = xi_r.max(delta);
        }
        (xi_l, xi_r)
    }

    /// Concludes the round: broadcasts the new quantile when it changed and
    /// updates every node's filter, ξ and history (nodes infer "unchanged"
    /// from the absence of a broadcast, §4.2.2).
    fn conclude(&mut self, net: &mut Network, q: Value) {
        // The filter broadcast disseminates the refined answer.
        net.set_phase(wsn_net::Phase::Refinement);
        let changed = q != self.root_filter;
        self.root_filter = q;
        self.root_xi = Self::update_history(&mut self.root_history, self.config.m, q);

        if changed {
            net.broadcast_into(net.sizes().value_bits, &mut self.recv);
        } else {
            self.recv.set_all(net.len());
        }
        for i in 0..self.node_filter.len() {
            let node_q = if self.recv.get(i) {
                q
            } else {
                self.node_filter[i]
            };
            self.node_filter[i] = node_q;
            self.node_xi[i] =
                Self::update_history(&mut self.node_history[i], self.config.m, node_q);
        }
    }
}

impl ContinuousQuantile for Iq {
    fn name(&self) -> &'static str {
        "IQ"
    }

    fn round(&mut self, net: &mut Network, values: &[Value]) -> Value {
        if !self.initialized {
            return self.init_round(net, values);
        }
        self.last_refinements = 0;
        let n = net.len();

        // --- Validation (counters + hint + multiset A) ---
        net.set_phase(wsn_net::Phase::Validation);
        let mut contributions: Vec<Option<ValidationPayload>> = Vec::with_capacity(n);
        contributions.push(None);
        for idx in 1..n {
            contributions.push(node_validation(
                self.prev[idx - 1],
                values[idx - 1],
                self.node_filter[idx],
                HintStyle::MaxDiff,
                Some(self.node_xi[idx]),
            ));
        }
        self.prev.copy_from_slice(values);
        // Incomplete validations corrupt the maintained counts; re-issue
        // the wave for missing subtrees when wave recovery is enabled.
        let validation =
            recovery::collect_with_recovery(net, |id| contributions[id.index()].clone());

        let (mut a_set, max_diff) = match validation {
            Some(v) => {
                let n_total = self.counts.n();
                let l = (self.counts.l + v.counters.into_lt).saturating_sub(v.counters.outof_lt);
                let g = (self.counts.g + v.counters.into_gt).saturating_sub(v.counters.outof_gt);
                self.counts = Counts {
                    l,
                    g,
                    e: n_total.saturating_sub(l + g),
                };
                (v.extra.vals, v.max_diff)
            }
            None => (Vec::new(), 0),
        };
        a_set.sort_unstable();
        self.last_a_size = a_set.len();

        let k = self.query.k;
        let q_old = self.root_filter;
        let n_total = self.counts.n();
        let Counts { l, e, .. } = self.counts;

        let result = match self.counts.quantile_moved(k) {
            None => q_old,
            Some(Direction::Down) => {
                // a: values of A below the old quantile (Fig. 3).
                let a = a_set.partition_point(|&x| x < q_old) as u64;
                if l - a < k {
                    // The new k-th value is inside A (§4.2.2).
                    let idx = (a - (l - k) - 1) as usize;
                    let q = a_set[idx.min(a_set.len() - 1)];
                    let lt = a_set[..a as usize].partition_point(|&x| x < q) as u64;
                    let lnew = (l - a) + lt;
                    let enew = a_set.iter().filter(|&&x| x == q).count() as u64;
                    self.counts = Counts {
                        l: lnew,
                        e: enew,
                        g: n_total.saturating_sub(lnew + enew),
                    };
                    q
                } else {
                    // One refinement: the f₁ largest values below Ξ.
                    let f1 = (l - a) - k + 1;
                    let hi = q_old + self.root_xi.0 - 1;
                    let lo = if self.config.use_hints && max_diff > 0 {
                        (q_old - max_diff as Value).max(self.query.range_min)
                    } else {
                        self.query.range_min
                    };
                    let mut r = self.refine(net, values, lo, hi, f1, true);
                    r.sort_unstable_by(|x, y| y.cmp(x)); // descending
                    if (r.len() as u64) < f1 {
                        q_old // inconsistency: only possible under loss
                    } else {
                        let q = r[f1 as usize - 1];
                        let count_ge = r.iter().filter(|&&x| x >= q).count() as u64;
                        let lnew = (l - a).saturating_sub(count_ge);
                        let enew = r.iter().filter(|&&x| x == q).count() as u64;
                        self.counts = Counts {
                            l: lnew,
                            e: enew,
                            g: n_total.saturating_sub(lnew + enew),
                        };
                        q
                    }
                }
            }
            Some(Direction::Up) => {
                let b = (a_set.len() - a_set.partition_point(|&x| x <= q_old)) as u64;
                if l + e + b >= k {
                    let skip = a_set.partition_point(|&x| x <= q_old);
                    let idx = skip + (k - (l + e) - 1) as usize;
                    let q = a_set[idx.min(a_set.len() - 1)];
                    let gt_before = a_set[skip..].partition_point(|&x| x < q) as u64;
                    let lnew = (l + e) + gt_before;
                    let enew = a_set.iter().filter(|&&x| x == q).count() as u64;
                    self.counts = Counts {
                        l: lnew,
                        e: enew,
                        g: n_total.saturating_sub(lnew + enew),
                    };
                    q
                } else {
                    // One refinement: the f₂ smallest values above Ξ.
                    let f2 = k - (l + e + b);
                    let lo = q_old + self.root_xi.1 + 1;
                    let hi = if self.config.use_hints && max_diff > 0 {
                        (q_old + max_diff as Value).min(self.query.range_max)
                    } else {
                        self.query.range_max
                    };
                    let mut r = self.refine(net, values, lo, hi, f2, false);
                    r.sort_unstable();
                    if (r.len() as u64) < f2 {
                        q_old
                    } else {
                        let q = r[f2 as usize - 1];
                        let lt = r.iter().filter(|&&x| x < q).count() as u64;
                        let lnew = (l + e + b) + lt;
                        let enew = r.iter().filter(|&&x| x == q).count() as u64;
                        self.counts = Counts {
                            l: lnew,
                            e: enew,
                            g: n_total.saturating_sub(lnew + enew),
                        };
                        q
                    }
                }
            }
        };

        self.conclude(net, result);
        net.end_round();
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rank;
    use wsn_net::{MessageSizes, Point, RadioModel, RoutingTree, Topology};

    fn line_net(n_sensors: usize) -> Network {
        let positions = (0..=n_sensors)
            .map(|i| Point::new(i as f64 * 10.0, 0.0))
            .collect();
        let topo = Topology::build(positions, 12.0);
        let tree = RoutingTree::shortest_path_tree(&topo).unwrap();
        Network::new(topo, tree, RadioModel::default(), MessageSizes::default())
    }

    fn drifting_values(n: usize, t: u32) -> Vec<Value> {
        (0..n)
            .map(|i| 300 + (i as Value * 17) % 120 + ((t as Value * 5) % 200))
            .collect()
    }

    #[test]
    fn iq_is_exact_over_many_rounds() {
        for config in [
            IqConfig::default(),
            IqConfig {
                use_hints: false,
                ..IqConfig::default()
            },
            IqConfig {
                xi_init: XiInit::MedianGap,
                m: 6,
                ..IqConfig::default()
            },
        ] {
            let n = 30;
            let mut net = line_net(n);
            let query = QueryConfig::median(n, 0, 1023);
            let mut iq = Iq::new(query, config);
            for t in 0..50 {
                let values = drifting_values(n, t);
                let got = iq.round(&mut net, &values);
                assert_eq!(
                    got,
                    rank::kth_smallest(&values, query.k),
                    "round {t}, cfg {config:?}"
                );
            }
        }
    }

    #[test]
    fn at_most_one_refinement_per_round() {
        let n = 25;
        let mut net = line_net(n);
        let query = QueryConfig::median(n, 0, 100_000);
        let mut iq = Iq::new(query, IqConfig::default());
        for t in 0..30 {
            // Erratic jumps to force refinements.
            let values: Vec<Value> = (0..n)
                .map(|i| (i as Value * 997 + t as Value * 7919) % 100_000)
                .collect();
            let got = iq.round(&mut net, &values);
            assert_eq!(got, rank::kth_smallest(&values, query.k), "round {t}");
            assert!(iq.last_refinements() <= 1, "round {t}");
        }
    }

    #[test]
    fn steady_trend_avoids_refinements() {
        let n = 30;
        let mut net = line_net(n);
        let query = QueryConfig::median(n, 0, 10_000);
        let mut iq = Iq::new(query, IqConfig::default());
        let mut refinements = 0;
        for t in 0..40 {
            // Uniform upward drift of 3 per round: after Ξ adapts, the new
            // quantile is always inside Ξ.
            let values: Vec<Value> = (0..n)
                .map(|i| 1000 + i as Value * 10 + t as Value * 3)
                .collect();
            let got = iq.round(&mut net, &values);
            assert_eq!(got, rank::kth_smallest(&values, query.k));
            if t > 5 {
                refinements += iq.last_refinements();
            }
        }
        assert_eq!(refinements, 0, "adapted Ξ should absorb a steady trend");
    }

    #[test]
    fn xi_tracks_trend_direction() {
        let n = 20;
        let mut net = line_net(n);
        let query = QueryConfig::median(n, 0, 10_000);
        let mut iq = Iq::new(query, IqConfig::default());
        for t in 0..10 {
            let values: Vec<Value> = (0..n).map(|i| 1000 + i as Value + t as Value * 5).collect();
            iq.round(&mut net, &values);
        }
        let (xl, xr) = iq.xi();
        assert_eq!(xl, 0, "upward trend zeroes ξ_l (§4.2.2)");
        assert!(xr > 0, "upward trend grows ξ_r");
    }

    #[test]
    fn unchanged_quantile_is_silent_except_xi_members() {
        let n = 20;
        let mut net = line_net(n);
        let query = QueryConfig::median(n, 0, 1023);
        let mut iq = Iq::new(query, IqConfig::default());
        let values = drifting_values(n, 1);
        iq.round(&mut net, &values);
        iq.round(&mut net, &values);
        // Third identical round: Ξ has collapsed ((0,0) deltas) and nothing
        // moves — zero traffic.
        let before = net.stats().messages;
        iq.round(&mut net, &values);
        assert_eq!(net.stats().messages, before);
    }

    #[test]
    fn exact_with_duplicates() {
        let n = 18;
        let mut net = line_net(n);
        let query = QueryConfig::median(n, 0, 31);
        let mut iq = Iq::new(query, IqConfig::default());
        for t in 0..15 {
            let values: Vec<Value> = (0..n)
                .map(|i| ((i + t as usize) % 6) as Value * 3)
                .collect();
            assert_eq!(
                iq.round(&mut net, &values),
                rank::kth_smallest(&values, query.k),
                "t={t}"
            );
        }
    }

    #[test]
    fn exact_for_extreme_ranks() {
        let n = 20;
        for &k in &[1u64, 4, 19, 20] {
            let mut net = line_net(n);
            let query = QueryConfig {
                k,
                range_min: 0,
                range_max: 2047,
            };
            let mut iq = Iq::new(query, IqConfig::default());
            for t in 0..20 {
                let values = drifting_values(n, t * 2);
                assert_eq!(
                    iq.round(&mut net, &values),
                    rank::kth_smallest(&values, k),
                    "k={k} t={t}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn rejects_degenerate_history_window() {
        let _ = Iq::new(
            QueryConfig::median(10, 0, 100),
            IqConfig {
                m: 1,
                ..IqConfig::default()
            },
        );
    }
}
