//! TAG exact quantile baseline (Madden et al. \[17\]).
//!
//! Every round, measurements flow to the root. With the §5.1.6 optimization
//! the root is assumed to know `|N|` and to have disseminated `k` once, so
//! each node only forwards the `k` smallest values of its subtree — the
//! worst-case `O(|N|)` per-node transmitted values the paper quotes.

use wsn_net::Network;

use crate::payloads::ValueList;
use crate::protocol::{measurement, ContinuousQuantile, QueryConfig};
use crate::rank::kth_smallest;
use crate::Value;

/// The TAG quantile protocol.
#[derive(Debug, Clone)]
pub struct Tag {
    query: QueryConfig,
    last: Option<Value>,
}

impl Tag {
    /// Creates a TAG query for the given configuration.
    pub fn new(query: QueryConfig) -> Self {
        Tag { query, last: None }
    }

    /// The most recent result, if any round has run.
    pub fn last_quantile(&self) -> Option<Value> {
        self.last
    }
}

impl ContinuousQuantile for Tag {
    fn name(&self) -> &'static str {
        "TAG"
    }

    fn round(&mut self, net: &mut Network, values: &[Value]) -> Value {
        // Every TAG round *is* the initialization collection (§3.2 calls
        // POS's init "an aggregation technique equivalent to TAG"), so its
        // traffic is attributed to the Init phase.
        net.set_phase(wsn_net::Phase::Init);
        let k = self.query.k as usize;
        let collected = net
            .convergecast_with(
                |id| Some(ValueList::single(measurement(values, id))),
                |_, l: &mut ValueList| l.keep_smallest(k),
            )
            .map(|l| l.vals)
            .unwrap_or_default();
        net.end_round();
        // The root holds the k smallest network values; the answer is their
        // maximum. An empty collection (total message loss) keeps the last
        // answer.
        let q = if collected.is_empty() {
            self.last.unwrap_or(self.query.range_min)
        } else {
            kth_smallest(&collected, self.query.k.min(collected.len() as u64).max(1))
        };
        self.last = Some(q);
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rank;
    use wsn_net::{MessageSizes, Point, RadioModel, RoutingTree, Topology};

    fn line_net(n_sensors: usize) -> wsn_net::Network {
        let positions = (0..=n_sensors)
            .map(|i| Point::new(i as f64 * 10.0, 0.0))
            .collect();
        let topo = Topology::build(positions, 12.0);
        let tree = RoutingTree::shortest_path_tree(&topo).unwrap();
        wsn_net::Network::new(topo, tree, RadioModel::default(), MessageSizes::default())
    }

    #[test]
    fn tag_returns_exact_median_every_round() {
        let mut net = line_net(9);
        let query = QueryConfig::median(9, 0, 100);
        let mut tag = Tag::new(query);
        for round in 0..5 {
            let values: Vec<Value> = (0..9)
                .map(|i| ((i * 13 + round * 7) % 100) as Value)
                .collect();
            let got = tag.round(&mut net, &values);
            assert_eq!(got, rank::kth_smallest(&values, query.k), "round {round}");
        }
        assert_eq!(tag.last_quantile(), Some(tag.last.unwrap()));
    }

    #[test]
    fn intermediate_nodes_forward_at_most_k_values() {
        let mut net = line_net(10);
        let query = QueryConfig {
            k: 3,
            range_min: 0,
            range_max: 100,
        };
        let mut tag = Tag::new(query);
        let values: Vec<Value> = (0..10).map(|i| i as Value).collect();
        tag.round(&mut net, &values);
        // Along a 10-node line, unpruned forwarding would carry
        // 1+2+...+10 = 55 values; with k = 3 pruning it is 1+2+3*8 = 27.
        assert_eq!(net.stats().values, 27);
    }

    #[test]
    fn works_for_extreme_ranks() {
        let mut net = line_net(7);
        let values: Vec<Value> = vec![4, 9, 2, 7, 7, 1, 5];
        let mut min_q = Tag::new(QueryConfig {
            k: 1,
            range_min: 0,
            range_max: 10,
        });
        assert_eq!(min_q.round(&mut net, &values), 1);
        let mut max_q = Tag::new(QueryConfig {
            k: 7,
            range_min: 0,
            range_max: 10,
        });
        assert_eq!(max_q.round(&mut net, &values), 9);
    }
}
