//! The cost model from the authors' snapshot paper \[21\] (§4.1).
//!
//! A `b`-ary histogram search over a universe of `τ` values needs
//! `⌈log_b τ⌉` refinement iterations; each iteration costs (at the hotspot
//! node) a refinement request of `s_h + s_r` bits plus a histogram reply of
//! `s_h + b·s_b` bits. Minimizing
//!
//! ```text
//! cost(b) = log_b(τ) · (c + b·s_b),   c = 2·s_h + s_r
//! ```
//!
//! over continuous `b` yields `b_exact = exp(W(c / (e·s_b)) + 1)` where `W`
//! is the (principal branch of the) Lambert W function — the lower-bound
//! estimate the paper quotes. [`optimal_buckets`] refines the estimate by
//! scanning integer `b`, the "exact" solution of \[21\].

use wsn_net::MessageSizes;

/// Principal branch `W₀` of the Lambert W function for `x ≥ 0`, i.e. the
/// unique `w ≥ 0` with `w·e^w = x`. Computed by Halley iteration; accurate
/// to ~1e-12 over the range used here.
///
/// ```
/// let w = cqp_core::cost_model::lambert_w0(std::f64::consts::E);
/// assert!((w - 1.0).abs() < 1e-10); // W(e) = 1
/// ```
///
/// # Panics
/// Panics on negative input (`W₀` is real for `x ≥ −1/e`, but the cost
/// model only ever evaluates it on non-negative arguments).
pub fn lambert_w0(x: f64) -> f64 {
    assert!(x >= 0.0, "lambert_w0 requires x >= 0");
    if x == 0.0 {
        return 0.0;
    }
    // Initial guess: ln(1+x) is within ~20% everywhere on x >= 0.
    let mut w = if x < std::f64::consts::E {
        x / (1.0 + x) * (1.0 + (1.0 + x).ln()).max(1.0)
    } else {
        let l = x.ln();
        l - l.ln().max(0.0)
    };
    for _ in 0..50 {
        let ew = w.exp();
        let f = w * ew - x;
        let denom = ew * (w + 1.0) - (w + 2.0) * f / (2.0 * w + 2.0);
        let step = f / denom;
        w -= step;
        if step.abs() < 1e-14 * (1.0 + w.abs()) {
            break;
        }
    }
    w
}

/// The fixed per-iteration overhead `c = 2·s_h + s_r` in bits: one
/// refinement-request broadcast plus one histogram-reply header.
fn per_iteration_overhead(sizes: &MessageSizes) -> f64 {
    (2 * sizes.header_bits + sizes.refinement_request_bits()) as f64
}

/// The closed-form continuous estimate `b_exact = exp(W(c/(e·s_b)) + 1)`
/// (the paper's lower-bound approximation of `b_opt`).
pub fn optimal_buckets_estimate(sizes: &MessageSizes) -> f64 {
    let c = per_iteration_overhead(sizes);
    let z = c / (std::f64::consts::E * sizes.bucket_bits as f64);
    (lambert_w0(z) + 1.0).exp()
}

/// Expected hotspot cost in bits of a full `b`-ary search over `range_size`
/// values: `⌈log_b τ⌉ · (c + b·s_b)`.
pub fn bary_search_cost(sizes: &MessageSizes, b: usize, range_size: u64) -> f64 {
    assert!(b >= 2, "need at least two buckets");
    let iterations = iterations_for(b, range_size);
    iterations as f64 * (per_iteration_overhead(sizes) + b as f64 * sizes.bucket_bits as f64)
}

/// Number of `b`-ary refinement iterations to pin down one value out of
/// `range_size`: `⌈log_b τ⌉`.
pub fn iterations_for(b: usize, range_size: u64) -> u32 {
    assert!(b >= 2);
    if range_size <= 1 {
        return 0;
    }
    let mut iterations = 0u32;
    let mut remaining = range_size;
    while remaining > 1 {
        remaining = remaining.div_ceil(b as u64);
        iterations += 1;
    }
    iterations
}

/// The integer-optimal bucket count for a universe of `range_size` values:
/// scans `b ∈ [2, values_per_message]` and returns the argmin of
/// [`bary_search_cost`] (the "exact" solution of \[21\]; capped at one
/// payload's worth of buckets).
pub fn optimal_buckets(sizes: &MessageSizes, range_size: u64) -> usize {
    let max_b = (sizes.max_payload_bits / sizes.bucket_bits).max(2) as usize;
    let mut best_b = 2;
    let mut best_cost = f64::INFINITY;
    for b in 2..=max_b {
        let cost = bary_search_cost(sizes, b, range_size.max(2));
        if cost < best_cost {
            best_cost = cost;
            best_b = b;
        }
    }
    best_b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lambert_w_fixed_points() {
        // W(0) = 0, W(e) = 1, W(2e^2) = 2.
        assert_eq!(lambert_w0(0.0), 0.0);
        assert!((lambert_w0(std::f64::consts::E) - 1.0).abs() < 1e-10);
        assert!((lambert_w0(2.0 * (2.0f64).exp()) - 2.0).abs() < 1e-10);
    }

    #[test]
    fn lambert_w_inverts_w_exp_w() {
        for i in 0..200 {
            let x = i as f64 * 0.37;
            let w = lambert_w0(x);
            assert!((w * w.exp() - x).abs() < 1e-8 * (1.0 + x), "x={x} w={w}");
        }
    }

    #[test]
    fn estimate_matches_default_sizes() {
        let sizes = MessageSizes::default();
        // c = 2*128 + 32 = 288 bits, z = 288/(e*16) ≈ 6.62,
        // W(6.62) ≈ 1.414 -> b ≈ e^2.414 ≈ 11.2.
        let b = optimal_buckets_estimate(&sizes);
        assert!((10.0..13.0).contains(&b), "b_exact = {b}");
    }

    #[test]
    fn integer_optimum_is_near_estimate() {
        let sizes = MessageSizes::default();
        let est = optimal_buckets_estimate(&sizes);
        let b = optimal_buckets(&sizes, 1024);
        assert!((b as f64 - est).abs() <= 6.0, "b={b} est={est}");
        assert!(b >= 2);
    }

    #[test]
    fn iterations_count_is_logarithmic() {
        assert_eq!(iterations_for(2, 1024), 10);
        assert_eq!(iterations_for(2, 1), 0);
        assert_eq!(iterations_for(10, 1000), 3);
        assert_eq!(iterations_for(10, 1001), 4);
    }

    #[test]
    fn optimal_beats_binary_search() {
        // The whole point of [21]: a binary search (b = 2) is not optimal.
        let sizes = MessageSizes::default();
        let b = optimal_buckets(&sizes, 1 << 20);
        let cost_opt = bary_search_cost(&sizes, b, 1 << 20);
        let cost_bin = bary_search_cost(&sizes, 2, 1 << 20);
        assert!(
            cost_opt < cost_bin,
            "optimal {cost_opt} should beat binary {cost_bin}"
        );
    }

    #[test]
    fn bigger_headers_push_b_up() {
        // With more per-message overhead, fewer/larger histograms win.
        let small = MessageSizes::default();
        let big = MessageSizes {
            header_bits: 1024,
            ..small
        };
        assert!(optimal_buckets(&big, 1024) > optimal_buckets(&small, 1024));
    }
}
