//! GKS — an ε-tolerant *continuous* variant of the GK summary method
//! (Greenwald & Khanna, "Space-Efficient Online Computation of Quantile
//! Summaries"), maintaining sink-side state across epochs.
//!
//! The exact [`crate::Gk`] treats every round as a fresh snapshot and pays
//! the full summary/counting cascade each time. GKS exploits the
//! continuous-query structure the paper builds on (§4): most rounds the
//! quantile barely moves, so a *validation* exchange — broadcast the
//! current answer, convergecast the exact `(l, e, g)` counts against it —
//! suffices to certify that the standing answer is still within the error
//! budget `⌊ε·n⌋` ranks of the true k-th value. Only when validation
//! fails does a *refinement epoch* run: a GK-style narrowing loop
//! ([`crate::summary::RankSummary`] convergecasts + exact counting),
//! extended with an ε early-exit — the loop stops as soon as any summary
//! entry's certified global rank interval `[below + rmin, below + rmax]`
//! fits inside `[k − tol, k + tol]`. The final interval is kept as sink
//! state and seeds the next epoch, so slow drift re-certifies from a
//! narrow interval instead of the full value range.
//!
//! With `ε = 0` the early-exit degenerates to requiring an exact pin and
//! the protocol behaves like a validation-gated exact GK.

use wsn_net::{Aggregate, MessageSizes, Network};

use crate::protocol::{ContinuousQuantile, QueryConfig};
use crate::rank::{Counts, Side};
use crate::retrieval::{direct_retrieval, RankAnchor};
use crate::summary::RankSummary;
use crate::Value;

/// Exact counting response: values below / inside a probed sub-interval.
#[derive(Debug, Clone, Copy, Default)]
struct CountPair {
    below: u64,
    inside: u64,
}

impl Aggregate for CountPair {
    fn merge(&mut self, other: Self) {
        self.below += other.below;
        self.inside += other.inside;
    }
    fn payload_bits(&self, sizes: &MessageSizes) -> u64 {
        2 * sizes.counter_bits
    }
}

/// Validation counts aggregate: `(l, e, g)` against the standing answer.
#[derive(Debug, Clone, Copy, Default)]
struct CountsMsg(Counts);

impl Aggregate for CountsMsg {
    fn merge(&mut self, other: Self) {
        self.0.l += other.0.l;
        self.0.e += other.0.e;
        self.0.g += other.0.g;
    }
    fn payload_bits(&self, sizes: &MessageSizes) -> u64 {
        3 * sizes.counter_bits
    }
}

/// Sink state carried across epochs: the last refined interval and the
/// exact below-count it was certified with.
#[derive(Debug, Clone)]
struct SinkState {
    lo: Value,
    hi: Value,
}

/// Hard cap on narrowing iterations per epoch (matches [`crate::Gk`]).
const MAX_ITERATIONS: u32 = 64;

/// The GK sink-summary protocol: ε-tolerant continuous quantiles with
/// near-zero traffic on unchanged rounds.
#[derive(Debug, Clone)]
pub struct GkSinkQuantile {
    query: QueryConfig,
    /// Error budget, in thousandths (`ε = eps_milli / 1000`).
    eps_milli: u32,
    /// Summary entries per forwarded message.
    capacity: usize,
    last: Option<Value>,
    state: Option<SinkState>,
    last_iterations: u32,
    /// True when the previous round ended in a refinement epoch
    /// (observable for tests/metrics, not on the wire).
    refined_last_round: bool,
    recv: wsn_net::NodeBits,
}

impl GkSinkQuantile {
    /// Creates a GKS query with error budget `ε = eps_milli/1000`.
    /// `capacity` bounds summary entries per message; 0 derives the
    /// largest capacity that fits one payload (like [`crate::Gk`]).
    pub fn new(query: QueryConfig, sizes: &MessageSizes, eps_milli: u32, capacity: u32) -> Self {
        let derived =
            ((sizes.max_payload_bits - sizes.counter_bits) / sizes.summary_entry_bits()).max(4);
        let capacity = if capacity == 0 {
            derived as usize
        } else {
            (capacity as usize).max(2)
        };
        GkSinkQuantile {
            query,
            eps_milli: eps_milli.min(1000),
            capacity,
            last: None,
            state: None,
            last_iterations: 0,
            refined_last_round: false,
            recv: wsn_net::NodeBits::new(),
        }
    }

    /// The configured error budget in thousandths.
    pub fn eps_milli(&self) -> u32 {
        self.eps_milli
    }

    /// Summary capacity per message.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Narrowing iterations used by the last round (0 = validation only).
    pub fn last_iterations(&self) -> u32 {
        self.last_iterations
    }

    /// True when the previous round needed a refinement epoch.
    pub fn refined_last_round(&self) -> bool {
        self.refined_last_round
    }

    /// The error budget in ranks at population size `n`.
    fn tol(&self, n: u64) -> u64 {
        self.eps_milli as u64 * n / 1000
    }

    /// Validation exchange: broadcast the standing answer, collect exact
    /// `(l, e, g)` counts against it.
    fn validation_pass(&mut self, net: &mut Network, values: &[Value], q: Value) -> Counts {
        net.broadcast_into(net.sizes().value_bits, &mut self.recv);
        let n = net.len();
        let mut contributions: Vec<Option<CountsMsg>> = vec![None; n];
        for idx in 1..n {
            if !self.recv.get(idx) {
                continue;
            }
            let mut c = Counts::default();
            match crate::rank::side(values[idx - 1], q) {
                Side::Lt => c.l = 1,
                Side::Eq => c.e = 1,
                Side::Gt => c.g = 1,
            }
            contributions[idx] = Some(CountsMsg(c));
        }
        net.convergecast_slots(&mut contributions, |_, _| {})
            .unwrap_or_default()
            .0
    }

    /// Summary convergecast over values inside `[lo, hi]`.
    fn summary_pass(
        &mut self,
        net: &mut Network,
        values: &[Value],
        lo: Value,
        hi: Value,
    ) -> RankSummary {
        net.broadcast_into(net.sizes().refinement_request_bits(), &mut self.recv);
        let n = net.len();
        let mut contributions: Vec<Option<RankSummary>> = vec![None; n];
        for idx in 1..n {
            if !self.recv.get(idx) {
                continue;
            }
            let v = values[idx - 1];
            if v >= lo && v <= hi {
                contributions[idx] = Some(RankSummary::singleton(v));
            }
        }
        let capacity = self.capacity;
        net.convergecast_with(
            |id| contributions[id.index()].take(),
            |_, s: &mut RankSummary| s.prune(capacity),
        )
        .unwrap_or_else(RankSummary::empty)
    }

    /// Exact counting round-trip: how many values of `[lo, hi]` fall
    /// below `probe_lo`, and how many inside `[probe_lo, probe_hi]`.
    fn counting_pass(
        &mut self,
        net: &mut Network,
        values: &[Value],
        lo: Value,
        hi: Value,
        probe_lo: Value,
        probe_hi: Value,
    ) -> CountPair {
        let bits = 2 * net.sizes().value_bits + net.sizes().refinement_request_bits();
        net.broadcast_into(bits, &mut self.recv);
        let n = net.len();
        let mut contributions: Vec<Option<CountPair>> = vec![None; n];
        for idx in 1..n {
            if !self.recv.get(idx) {
                continue;
            }
            let v = values[idx - 1];
            if v >= lo && v <= hi {
                let pair = if v < probe_lo {
                    CountPair {
                        below: 1,
                        inside: 0,
                    }
                } else if v <= probe_hi {
                    CountPair {
                        below: 0,
                        inside: 1,
                    }
                } else {
                    continue;
                };
                contributions[idx] = Some(pair);
            }
        }
        net.convergecast_slots(&mut contributions, |_, _| {})
            .unwrap_or_default()
    }

    /// An entry whose certified global rank interval
    /// `[below + rmin, below + rmax]` fits inside `[k − tol, k + tol]`
    /// (an answer provably within the budget), if any. Prefers the entry
    /// whose interval midpoint is closest to `k`.
    fn certified_answer(summary: &RankSummary, below: u64, k: u64, tol: u64) -> Option<Value> {
        let lo_ok = k.saturating_sub(tol);
        let hi_ok = k + tol;
        summary
            .entries
            .iter()
            .filter(|e| below + e.rmin >= lo_ok && below + e.rmax <= hi_ok)
            .min_by_key(|e| {
                let mid = 2 * below + e.rmin + e.rmax; // 2× midpoint
                mid.abs_diff(2 * k)
            })
            .map(|e| e.value)
    }

    /// One refinement epoch: GK-style narrowing with ε early-exit,
    /// seeded from the previous epoch's interval when it still brackets
    /// the target rank. Returns the new answer.
    fn refine(&mut self, net: &mut Network, values: &[Value]) -> Value {
        let n_total = values.len() as u64;
        let k = self.query.k;
        let tol = self.tol(n_total);
        let capacity_direct = net.sizes().values_per_message() as u64;

        let mut lo = self.query.range_min;
        let mut hi = self.query.range_max;
        let mut below = 0u64;
        let mut inside = n_total;

        // Seed from cross-epoch state: one counting pass verifies the old
        // interval still brackets rank k. Slow drift keeps this narrow
        // interval valid, skipping the expensive full-range iterations.
        if let Some(state) = self.state.clone() {
            if (state.lo, state.hi) != (lo, hi) {
                self.last_iterations += 1;
                let c = self.counting_pass(net, values, lo, hi, state.lo, state.hi);
                if c.below < k && k <= c.below + c.inside {
                    lo = state.lo;
                    hi = state.hi;
                    below = c.below;
                    inside = c.inside;
                }
            }
        }

        let result = loop {
            if self.last_iterations >= MAX_ITERATIONS {
                break self.last.unwrap_or(lo);
            }
            if lo == hi {
                break lo;
            }
            if inside <= capacity_direct {
                self.last_iterations += 1;
                let r =
                    direct_retrieval(net, values, lo, hi, k, n_total, RankAnchor::BelowLo(below));
                break match r.quantile {
                    Some(q) => q,
                    None => self.last.unwrap_or(lo),
                };
            }

            self.last_iterations += 1;
            let summary = self.summary_pass(net, values, lo, hi);
            let rank_in = k.saturating_sub(below);
            if rank_in == 0 || rank_in > summary.count {
                break self.last.unwrap_or(lo); // loss inconsistency
            }
            // ε early-exit: any entry already certified within the budget
            // ends the epoch without further traffic.
            if let Some(q) = Self::certified_answer(&summary, below, k, tol) {
                break q;
            }
            let Some((s_lo, s_hi)) = summary.enclosing_interval(rank_in) else {
                break self.last.unwrap_or(lo);
            };

            let counts = self.counting_pass(net, values, lo, hi, s_lo, s_hi);
            let new_below = below + counts.below;
            if k <= new_below || k > new_below + counts.inside {
                break self.last.unwrap_or(lo); // loss inconsistency
            }
            if (s_lo, s_hi) == (lo, hi) && counts.inside == inside {
                // No progress (pathological duplicates): bisect instead.
                let mid = lo + (hi - lo) / 2;
                let half = self.counting_pass(net, values, lo, hi, lo, mid);
                self.last_iterations += 1;
                if k <= below + half.inside {
                    hi = mid;
                    inside = half.inside;
                } else {
                    below += half.inside;
                    lo = mid + 1;
                    inside -= half.inside;
                }
                continue;
            }
            lo = s_lo;
            hi = s_hi;
            below = new_below;
            inside = counts.inside;
        };

        self.state = Some(SinkState { lo, hi });
        result
    }
}

impl ContinuousQuantile for GkSinkQuantile {
    fn name(&self) -> &'static str {
        "GKS"
    }

    fn round(&mut self, net: &mut Network, values: &[Value]) -> Value {
        self.last_iterations = 0;
        self.refined_last_round = false;

        // Validation: certify the standing answer against exact counts.
        if let Some(q) = self.last {
            net.set_phase(wsn_net::Phase::Validation);
            let counts = self.validation_pass(net, values, q);
            let n_obs = counts.n();
            let k = self.query.k;
            let tol = self.tol(n_obs);
            // Accept iff the answer's rank span [l+1, l+e] is within tol
            // of k: l < k + tol and l + e + tol ≥ k. Degenerates to the
            // exact validity condition (l < k ≤ l+e) at tol = 0.
            let accept = n_obs >= k && counts.l < k + tol && counts.l + counts.e + tol >= k;
            if accept {
                net.end_round();
                return q;
            }
            net.set_phase(wsn_net::Phase::Refinement);
        } else {
            net.set_phase(wsn_net::Phase::Init);
        }

        self.refined_last_round = true;
        let result = self.refine(net, values);
        self.last = Some(result);
        net.end_round();
        result
    }

    /// Advertised bound `⌊ε·n⌋`: both the validation acceptance rule and
    /// the refinement early-exit certify answers to exactly this budget.
    fn rank_tolerance(&self, n: u64) -> u64 {
        self.tol(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_net::{Point, RadioModel, RoutingTree, Topology};

    fn line_net(n_sensors: usize) -> Network {
        let positions = (0..=n_sensors)
            .map(|i| Point::new(i as f64 * 10.0, 0.0))
            .collect();
        let topo = Topology::build(positions, 12.0);
        let tree = RoutingTree::shortest_path_tree(&topo).unwrap();
        Network::new(topo, tree, RadioModel::default(), MessageSizes::default())
    }

    /// True rank error of answer `v` (mirrors the runner's definition).
    fn rank_error(values: &[Value], v: Value, k: u64) -> u64 {
        let l = values.iter().filter(|&&x| x < v).count() as u64;
        let le = values.iter().filter(|&&x| x <= v).count() as u64;
        if l < k && k <= le {
            0
        } else if k <= l {
            l + 1 - k
        } else {
            k - le.max(1)
        }
    }

    fn drifting_values(n: usize, t: u64, range: u64) -> Vec<Value> {
        (0..n as u64)
            .map(|i| {
                let mut z = i.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(t / 4);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                ((z >> 33) % range) as Value
            })
            .collect()
    }

    #[test]
    fn zero_tolerance_degenerates_to_exact() {
        let n = 50;
        let mut net = line_net(n);
        let query = QueryConfig::median(n, 0, 4095);
        let mut alg = GkSinkQuantile::new(query, &MessageSizes::default(), 0, 0);
        assert_eq!(alg.rank_tolerance(n as u64), 0);
        for t in 0..12u64 {
            let values = drifting_values(n, t, 4096);
            let ans = alg.round(&mut net, &values);
            assert_eq!(
                rank_error(&values, ans, query.k),
                0,
                "t={t}: answer {ans} not exact"
            );
        }
    }

    #[test]
    fn boundary_ranks_have_no_off_by_one() {
        // φ = 0 (rank 1, the minimum) and φ = 1 (rank n, the maximum) are
        // where acceptance off-by-ones live: an interval test accepting
        // rank 0 or n+1 would return a neighbor of the extremum. At ε = 0
        // the answer must sit exactly at the boundary rank.
        let n = 60;
        for (phi, k) in [(0.0, 1u64), (1.0, n as u64)] {
            let query = QueryConfig::phi(phi, n, 0, 4095);
            assert_eq!(query.k, k, "phi={phi}");
            for eps_milli in [0u32, 100] {
                let mut net = line_net(n);
                let mut alg = GkSinkQuantile::new(query, &MessageSizes::default(), eps_milli, 0);
                let tol = alg.rank_tolerance(n as u64);
                for t in 0..10u64 {
                    let values = drifting_values(n, t, 4096);
                    let ans = alg.round(&mut net, &values);
                    assert!(
                        rank_error(&values, ans, k) <= tol,
                        "phi={phi} eps={eps_milli} t={t}: answer {ans}, tol {tol}"
                    );
                }
            }
        }
    }

    #[test]
    fn answers_stay_within_the_advertised_tolerance() {
        let n = 80;
        let query = QueryConfig::median(n, 0, 1 << 14);
        for eps_milli in [20u32, 100, 300] {
            let mut net = line_net(n);
            let mut alg = GkSinkQuantile::new(query, &MessageSizes::default(), eps_milli, 0);
            let tol = alg.rank_tolerance(n as u64);
            for t in 0..15u64 {
                let values = drifting_values(n, t, 1 << 14);
                let ans = alg.round(&mut net, &values);
                assert!(
                    rank_error(&values, ans, query.k) <= tol,
                    "eps={eps_milli} t={t}: answer {ans}, tol {tol}"
                );
            }
        }
    }

    #[test]
    fn unchanged_rounds_skip_refinement() {
        // n > values_per_message so an epoch engages the full summary
        // cascade, not just direct retrieval.
        let n = 100;
        let mut net = line_net(n);
        let query = QueryConfig::median(n, 0, 16_383);
        let mut alg = GkSinkQuantile::new(query, &MessageSizes::default(), 100, 0);
        let values = drifting_values(n, 0, 16_384);
        alg.round(&mut net, &values);
        assert!(alg.refined_last_round(), "init round must refine");
        let bits_after_init = net.stats().bits;
        // Static data: every further round is validation-only.
        for _ in 0..5 {
            alg.round(&mut net, &values);
            assert!(!alg.refined_last_round(), "static round must not refine");
        }
        let per_round = (net.stats().bits - bits_after_init) / 5;
        // Validation: one value broadcast + one counts convergecast. Far
        // below a single summary pass over the same network.
        let mut probe = GkSinkQuantile::new(query, &MessageSizes::default(), 100, 0);
        let mut net2 = line_net(n);
        probe.round(&mut net2, &values); // init epoch, includes ≥1 summary pass
        let epoch_bits = net2.stats().bits;
        assert!(
            per_round * 3 < epoch_bits,
            "validation round ({per_round} bits) should be far under an epoch ({epoch_bits} bits)"
        );
    }

    #[test]
    fn drift_within_tolerance_keeps_the_standing_answer() {
        let n = 40;
        let mut net = line_net(n);
        let query = QueryConfig::median(n, 0, 100_000);
        let mut alg = GkSinkQuantile::new(query, &MessageSizes::default(), 200, 0);
        let base: Vec<Value> = (0..n as i64).map(|i| i * 1000).collect();
        let first = alg.round(&mut net, &base);
        // Shift a couple of values: the true median's rank moves by < tol.
        let mut drifted = base.clone();
        drifted[0] += 50_000; // one value crosses the median
        let second = alg.round(&mut net, &drifted);
        assert_eq!(first, second, "within-tolerance drift must not refine");
        assert!(!alg.refined_last_round());
        let tol = alg.rank_tolerance(n as u64);
        assert!(rank_error(&drifted, second, query.k) <= tol);
    }

    #[test]
    fn capacity_override_and_derivation() {
        let sizes = MessageSizes::default();
        let q = QueryConfig::median(10, 0, 100);
        assert_eq!(GkSinkQuantile::new(q, &sizes, 100, 0).capacity(), 21);
        assert_eq!(GkSinkQuantile::new(q, &sizes, 100, 8).capacity(), 8);
        assert_eq!(GkSinkQuantile::new(q, &sizes, 100, 1).capacity(), 2);
    }

    #[test]
    fn certified_answer_respects_the_window() {
        use crate::summary::Entry;
        let s = RankSummary {
            entries: vec![
                Entry {
                    value: 10,
                    rmin: 1,
                    rmax: 3,
                },
                Entry {
                    value: 20,
                    rmin: 4,
                    rmax: 6,
                },
                Entry {
                    value: 30,
                    rmin: 8,
                    rmax: 14,
                },
            ],
            count: 14,
        };
        // k=5, tol=1: only the middle entry's [4,6] fits [4,6].
        assert_eq!(GkSinkQuantile::certified_answer(&s, 0, 5, 1), Some(20));
        // tol=0: nothing is pinned exactly.
        assert_eq!(GkSinkQuantile::certified_answer(&s, 0, 5, 0), None);
        // A below-offset shifts every certified interval by `below`.
        assert_eq!(GkSinkQuantile::certified_answer(&s, 10, 15, 2), Some(20));
        assert_eq!(GkSinkQuantile::certified_answer(&s, 10, 12, 2), Some(10));
    }
}
