//! Rank/order-statistic helpers shared by all protocols, plus the oracle
//! used to verify exactness.

use crate::Value;

/// Which side of a threshold a value falls on. The three intervals
/// `lt = (−∞, q)`, `eq = [q, q]`, `gt = (q, ∞)` of POS §3.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// Strictly below the threshold.
    Lt,
    /// Equal to the threshold.
    Eq,
    /// Strictly above the threshold.
    Gt,
}

/// Classifies `v` against threshold `q`.
#[inline]
pub fn side(v: Value, q: Value) -> Side {
    match v.cmp(&q) {
        std::cmp::Ordering::Less => Side::Lt,
        std::cmp::Ordering::Equal => Side::Eq,
        std::cmp::Ordering::Greater => Side::Gt,
    }
}

/// Classifies `v` against the closed interval `[lb, ub]` — the three-way
/// partition used by the §4.1.2 broadcast-elimination variant of HBC
/// (`side(v, q)` is the special case `lb == ub == q`).
#[inline]
pub fn side_interval(v: Value, lb: Value, ub: Value) -> Side {
    debug_assert!(lb <= ub);
    if v < lb {
        Side::Lt
    } else if v > ub {
        Side::Gt
    } else {
        Side::Eq
    }
}

/// The rank `k` of a φ-quantile over `n` values (Definition 2.1:
/// `k = ⌊φ·|N|⌋`, clamped to `[1, n]` so it is a valid 1-based rank).
///
/// # Panics
/// Panics if `φ ∉ [0, 1]` or `n == 0` — no 1-based rank exists over an
/// empty value set, and without the guard the clamp would be `clamp(1, 0)`
/// (which trips std's `min <= max` assertion with a much less useful
/// message). Callers that can legitimately see empty sets — e.g. the
/// sketch sink paths aggregating empty partial summaries — should use
/// [`try_rank_of_phi`] instead.
pub fn rank_of_phi(phi: f64, n: usize) -> u64 {
    assert!((0.0..=1.0).contains(&phi), "φ must be in [0,1]");
    assert!(n > 0, "rank_of_phi: no rank exists over an empty value set");
    ((phi * n as f64).floor() as u64).clamp(1, n as u64)
}

/// Non-panicking [`rank_of_phi`]: `None` when no valid rank exists, i.e.
/// `n == 0` (nothing to rank) or `φ ∉ [0, 1]`.
pub fn try_rank_of_phi(phi: f64, n: usize) -> Option<u64> {
    if n == 0 || !(0.0..=1.0).contains(&phi) {
        return None;
    }
    Some(rank_of_phi(phi, n))
}

/// The k-th smallest value (1-based), computed centrally — the ground
/// truth every protocol must reproduce.
///
/// # Panics
/// Panics if `k` is not in `[1, values.len()]`.
pub fn kth_smallest(values: &[Value], k: u64) -> Value {
    assert!(
        k >= 1 && k as usize <= values.len(),
        "rank {k} out of range for {} values",
        values.len()
    );
    let mut sorted = values.to_vec();
    let idx = k as usize - 1;
    // select_nth_unstable is O(n) expected.
    let (_, v, _) = sorted.select_nth_unstable(idx);
    *v
}

/// The centralized oracle: the true φ-quantile of `values`, computed by
/// brute force. This is the referee every protocol answer is judged
/// against — exact by construction, independent of any in-network code
/// path (`rank_of_phi` + [`kth_smallest`]).
///
/// # Panics
/// Panics on an empty slice (no quantile exists — an empty partial
/// summary must be handled by the caller) or φ outside `[0, 1]`.
pub fn oracle(values: &[Value], phi: f64) -> Value {
    assert!(
        !values.is_empty(),
        "rank::oracle: no quantile exists over an empty value set"
    );
    kth_smallest(values, rank_of_phi(phi, values.len()))
}

/// Deterministic value permutation used by the metamorphic battery:
/// rotation by `rot` positions. Any permutation preserves the multiset and
/// therefore every order statistic; rotation is the cheapest one that
/// still moves every element (for `rot ≠ 0 mod len`).
pub fn rotated(values: &[Value], rot: usize) -> Vec<Value> {
    let n = values.len();
    if n == 0 {
        return Vec::new();
    }
    (0..n).map(|i| values[(i + rot) % n]).collect()
}

/// Applies the order-preserving affine map `v ↦ a·v + b` (`a > 0`) to every
/// value. Order statistics are equivariant under it:
/// `kth(affine(V)) = a·kth(V) + b`.
///
/// # Panics
/// Panics unless `a > 0` (a non-positive slope does not preserve order).
pub fn affine(values: &[Value], a: Value, b: Value) -> Vec<Value> {
    assert!(a > 0, "affine rank metamorphism needs a positive slope");
    values.iter().map(|&v| a * v + b).collect()
}

/// Metamorphic property 1: the k-th smallest value is invariant under any
/// permutation of the input. Returns `true` when it holds for the given
/// rotation (the fuzzer's witness permutation).
pub fn kth_invariant_under_rotation(values: &[Value], k: u64, rot: usize) -> bool {
    kth_smallest(&rotated(values, rot), k) == kth_smallest(values, k)
}

/// Metamorphic property 2: the k-th smallest value is equivariant under
/// the order-preserving affine map `v ↦ a·v + b` with `a > 0`.
pub fn kth_equivariant_under_affine(values: &[Value], k: u64, a: Value, b: Value) -> bool {
    kth_smallest(&affine(values, a, b), k) == a * kth_smallest(values, k) + b
}

/// Counts of values below / equal to / above a threshold — the POS state
/// variables `l`, `e`, `g` (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Counts {
    /// Number of values strictly below the threshold.
    pub l: u64,
    /// Number of values equal to the threshold.
    pub e: u64,
    /// Number of values strictly above the threshold.
    pub g: u64,
}

impl Counts {
    /// Computes the counts of `values` against `q` directly (used during
    /// initialization, when all measurements are at the root anyway).
    pub fn of(values: &[Value], q: Value) -> Self {
        let mut c = Counts::default();
        for &v in values {
            match side(v, q) {
                Side::Lt => c.l += 1,
                Side::Eq => c.e += 1,
                Side::Gt => c.g += 1,
            }
        }
        c
    }

    /// Total number of values.
    pub fn n(&self) -> u64 {
        self.l + self.e + self.g
    }

    /// True iff the threshold these counts refer to *is* the k-th value:
    /// `l < k ∧ l + e ≥ k` (§3.2; for the median, `g ≤ |N|/2 ∧ l ≤ |N|/2`).
    pub fn is_valid_quantile(&self, k: u64) -> bool {
        self.l < k && self.l + self.e >= k
    }

    /// Direction the quantile moved if the counts are invalid.
    pub fn quantile_moved(&self, k: u64) -> Option<Direction> {
        if self.l >= k {
            Some(Direction::Down)
        } else if self.l + self.e < k {
            Some(Direction::Up)
        } else {
            None
        }
    }
}

/// Which way the quantile moved relative to the previous round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// New quantile is smaller (`l ≥ k`).
    Down,
    /// New quantile is larger (`l + e < k`).
    Up,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn side_classification() {
        assert_eq!(side(1, 5), Side::Lt);
        assert_eq!(side(5, 5), Side::Eq);
        assert_eq!(side(9, 5), Side::Gt);
    }

    #[test]
    fn rank_of_phi_median() {
        assert_eq!(rank_of_phi(0.5, 1000), 500);
        assert_eq!(rank_of_phi(0.5, 5), 2);
        assert_eq!(rank_of_phi(0.0, 10), 1); // clamped up
        assert_eq!(rank_of_phi(1.0, 10), 10);
        // The single-value set: both boundaries collapse to rank 1.
        assert_eq!(rank_of_phi(0.0, 1), 1);
        assert_eq!(rank_of_phi(1.0, 1), 1);
    }

    #[test]
    #[should_panic(expected = "empty value set")]
    fn rank_of_phi_rejects_empty_sets() {
        let _ = rank_of_phi(0.5, 0);
    }

    #[test]
    fn try_rank_of_phi_signals_degenerate_inputs() {
        assert_eq!(try_rank_of_phi(0.5, 0), None, "empty set");
        assert_eq!(try_rank_of_phi(-0.1, 10), None, "φ below range");
        assert_eq!(try_rank_of_phi(1.5, 10), None, "φ above range");
        assert_eq!(try_rank_of_phi(0.5, 1000), Some(500));
        assert_eq!(try_rank_of_phi(0.0, 10), Some(1));
        assert_eq!(try_rank_of_phi(1.0, 10), Some(10));
    }

    #[test]
    #[should_panic(expected = "no quantile exists over an empty value set")]
    fn oracle_rejects_empty_slices_with_a_clear_message() {
        let _ = oracle(&[], 0.5);
    }

    #[test]
    fn kth_smallest_matches_sorting() {
        let values = vec![5, 1, 9, 3, 3, 7];
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for k in 1..=6u64 {
            assert_eq!(kth_smallest(&values, k), sorted[k as usize - 1]);
        }
    }

    #[test]
    fn median_is_robust_to_outliers() {
        // The paper's §1 example: {3,3,3,3,103} -> median 3, average 23.
        let values = vec![3, 3, 3, 3, 103];
        assert_eq!(kth_smallest(&values, rank_of_phi(0.5, 5)), 3);
    }

    #[test]
    fn oracle_is_kth_of_phi() {
        let values = vec![9, 1, 5, 3, 7];
        // Definition 2.1: k = ⌊φ·n⌋ clamped to [1, n]; ⌊0.5·5⌋ = 2.
        assert_eq!(oracle(&values, 0.5), 3);
        assert_eq!(oracle(&values, 0.0), 1); // rank clamped up to 1
        assert_eq!(oracle(&values, 1.0), 9);
    }

    #[test]
    fn rotation_preserves_every_rank() {
        let values = vec![4, 8, 15, 16, 23, 42];
        for rot in 0..=6 {
            for k in 1..=6 {
                assert!(
                    kth_invariant_under_rotation(&values, k, rot),
                    "k={k} rot={rot}"
                );
            }
        }
        assert_eq!(rotated(&values, 2), vec![15, 16, 23, 42, 4, 8]);
        assert!(rotated(&[], 3).is_empty());
    }

    #[test]
    fn affine_maps_are_rank_equivariant() {
        let values = vec![-3, 0, 2, 2, 11];
        for (a, b) in [(1, 0), (2, -5), (3, 1000)] {
            for k in 1..=5 {
                assert!(
                    kth_equivariant_under_affine(&values, k, a, b),
                    "k={k} a={a} b={b}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "positive slope")]
    fn affine_rejects_non_positive_slopes() {
        let _ = affine(&[1, 2], 0, 3);
    }

    #[test]
    fn counts_partition_the_values() {
        let values = vec![1, 2, 2, 3, 4, 4, 4];
        let c = Counts::of(&values, 3);
        assert_eq!(c, Counts { l: 3, e: 1, g: 3 });
        assert_eq!(c.n(), 7);
    }

    #[test]
    fn validity_condition() {
        // values: 1 2 2 3 4 4 4, median k = 3 -> value 2.
        let values = vec![1, 2, 2, 3, 4, 4, 4];
        assert!(Counts::of(&values, 2).is_valid_quantile(3));
        assert!(!Counts::of(&values, 3).is_valid_quantile(3));
        assert!(!Counts::of(&values, 1).is_valid_quantile(3));
    }

    #[test]
    fn movement_direction() {
        let values = vec![1, 2, 2, 3, 4, 4, 4];
        // Threshold 4: l = 4 >= k=3 -> down.
        assert_eq!(
            Counts::of(&values, 4).quantile_moved(3),
            Some(Direction::Down)
        );
        // Threshold 1: l+e = 1 < 3 -> up.
        assert_eq!(
            Counts::of(&values, 1).quantile_moved(3),
            Some(Direction::Up)
        );
        assert_eq!(Counts::of(&values, 2).quantile_moved(3), None);
    }

    #[test]
    fn validity_iff_threshold_is_kth() {
        // Exhaustive cross-check on a small universe.
        let values = vec![2, 2, 5, 7, 7, 7, 9];
        for k in 1..=7u64 {
            let truth = kth_smallest(&values, k);
            for q in 0..=10 {
                assert_eq!(
                    Counts::of(&values, q).is_valid_quantile(k),
                    q == truth,
                    "k={k} q={q}"
                );
            }
        }
    }
}
