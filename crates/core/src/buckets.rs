//! Equi-width bucket partitioning shared by the histogram protocols
//! (HBC §4.1, LCLL \[16\]).
//!
//! An inclusive integer interval `[lo, hi]` of width `W = hi − lo + 1` is
//! divided into `b' = min(b, W)` buckets. Node-side bucket assignment and
//! root-side bucket bounds use the same integer arithmetic, so every node
//! agrees with the root on the partition without extra communication.

use crate::Value;

/// A partition of `[lo, hi]` into at most `b` equal-width buckets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BucketPartition {
    /// Lower end of the partitioned interval (inclusive).
    pub lo: Value,
    /// Upper end of the partitioned interval (inclusive).
    pub hi: Value,
    /// Actual number of buckets, `min(b, width)`.
    pub buckets: usize,
}

impl BucketPartition {
    /// Creates the partition.
    ///
    /// # Panics
    /// Panics if the interval is empty or `b == 0`.
    pub fn new(lo: Value, hi: Value, b: usize) -> Self {
        assert!(lo <= hi, "empty interval [{lo}, {hi}]");
        assert!(b >= 1, "need at least one bucket");
        let width = (hi - lo + 1) as u64;
        BucketPartition {
            lo,
            hi,
            buckets: (b as u64).min(width) as usize,
        }
    }

    /// Interval width in values.
    pub fn width(&self) -> u64 {
        (self.hi - self.lo + 1) as u64
    }

    /// Bucket index of `v`, or `None` if `v` lies outside `[lo, hi]`.
    pub fn index_of(&self, v: Value) -> Option<usize> {
        if v < self.lo || v > self.hi {
            return None;
        }
        let offset = (v - self.lo) as u128;
        Some((offset * self.buckets as u128 / self.width() as u128) as usize)
    }

    /// Inclusive value range `[start, end]` of bucket `i`.
    ///
    /// # Panics
    /// Panics if `i >= buckets`.
    pub fn bounds(&self, i: usize) -> (Value, Value) {
        assert!(i < self.buckets, "bucket {i} out of {}", self.buckets);
        let w = self.width() as u128;
        let b = self.buckets as u128;
        let start = self.lo + ((i as u128 * w).div_ceil(b)) as Value;
        let end = self.lo + (((i as u128 + 1) * w).div_ceil(b)) as Value - 1;
        (start, end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_interval_without_gaps() {
        for &(lo, hi, b) in &[
            (0i64, 1023i64, 10usize),
            (-50, 49, 7),
            (3, 3, 4),
            (0, 5, 64),
        ] {
            let p = BucketPartition::new(lo, hi, b);
            let mut expected_start = lo;
            for i in 0..p.buckets {
                let (s, e) = p.bounds(i);
                assert_eq!(s, expected_start, "gap before bucket {i}");
                assert!(s <= e, "empty bucket {i} in ({lo},{hi},{b})");
                expected_start = e + 1;
            }
            assert_eq!(expected_start, hi + 1, "partition must end at hi");
        }
    }

    #[test]
    fn index_matches_bounds() {
        let p = BucketPartition::new(-100, 154, 9);
        for v in -100..=154 {
            let i = p.index_of(v).unwrap();
            let (s, e) = p.bounds(i);
            assert!(s <= v && v <= e, "v={v} got bucket {i} = [{s},{e}]");
        }
    }

    #[test]
    fn out_of_range_has_no_bucket() {
        let p = BucketPartition::new(0, 9, 2);
        assert_eq!(p.index_of(-1), None);
        assert_eq!(p.index_of(10), None);
        assert_eq!(p.index_of(0), Some(0));
        assert_eq!(p.index_of(9), Some(1));
    }

    #[test]
    fn narrow_interval_degrades_to_unit_buckets() {
        let p = BucketPartition::new(5, 7, 64);
        assert_eq!(p.buckets, 3);
        assert_eq!(p.bounds(0), (5, 5));
        assert_eq!(p.bounds(2), (7, 7));
    }

    #[test]
    fn buckets_differ_by_at_most_one_in_width() {
        let p = BucketPartition::new(0, 999, 7);
        let widths: Vec<i64> = (0..p.buckets)
            .map(|i| {
                let (s, e) = p.bounds(i);
                e - s + 1
            })
            .collect();
        let min = *widths.iter().min().unwrap();
        let max = *widths.iter().max().unwrap();
        assert!(max - min <= 1, "widths {widths:?}");
    }

    #[test]
    fn every_refinement_strictly_shrinks() {
        // Descending through buckets must terminate: a bucket is strictly
        // narrower than its interval whenever width >= 2.
        let p = BucketPartition::new(0, 1023, 11);
        for i in 0..p.buckets {
            let (s, e) = p.bounds(i);
            assert!((e - s + 1) < 1024);
        }
    }
}
