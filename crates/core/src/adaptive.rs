//! Runtime switching between HBC and IQ.
//!
//! §4.2 observes that POS, HBC and IQ share enough structure to "switch
//! between these approaches without reinitializing the network and always
//! use the best algorithm within a given environment, however we leave
//! heuristics to select the best solution for future research". This module
//! implements that future work with a simple cost-tracking heuristic:
//!
//! * run the current protocol and keep an exponentially weighted moving
//!   average (EWMA) of its per-round bits on air;
//! * after a minimum dwell time, switch when the other protocol's last
//!   known EWMA undercuts the current one by a margin;
//! * periodically trial the other protocol anyway so its estimate never
//!   goes permanently stale.
//!
//! A switch transfers the shared state (filter, counts, previous values)
//! and costs one broadcast — the mode announcement (nodes must know which
//! validation format to use next round).

use wsn_net::Network;

use crate::hbc::{Hbc, HbcConfig};
use crate::iq::{Iq, IqConfig};
use crate::protocol::{ContinuousQuantile, QueryConfig};
use crate::Value;

/// Which protocol is currently driving the query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Interval-based Quantiles.
    Iq,
    /// Histogram-Based Continuous.
    Hbc,
}

/// Tuning knobs of the switching heuristic.
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveConfig {
    /// EWMA smoothing factor for per-round cost (weight of the new sample).
    pub ewma_alpha: f64,
    /// Minimum rounds in a mode before a switch is considered.
    pub min_dwell: u32,
    /// Switch when `other_ewma < margin * current_ewma`.
    pub margin: f64,
    /// Force a trial of the other mode when its estimate is older than
    /// this many rounds.
    pub staleness: u32,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            ewma_alpha: 0.25,
            min_dwell: 8,
            margin: 0.85,
            staleness: 60,
        }
    }
}

/// The adaptive HBC↔IQ protocol.
#[derive(Debug, Clone)]
pub struct Adaptive {
    hbc: Hbc,
    iq: Iq,
    mode: Mode,
    config: AdaptiveConfig,
    initialized: bool,
    ewma: [Option<f64>; 2],
    age: [u32; 2],
    rounds_in_mode: u32,
    switches: u32,
}

impl Adaptive {
    /// Creates an adaptive query starting in IQ mode.
    pub fn new(query: QueryConfig, sizes: &wsn_net::MessageSizes) -> Self {
        Adaptive::with_configs(
            query,
            HbcConfig::default(),
            IqConfig::default(),
            AdaptiveConfig::default(),
            sizes,
        )
    }

    /// Fully parameterized constructor.
    pub fn with_configs(
        query: QueryConfig,
        hbc: HbcConfig,
        iq: IqConfig,
        config: AdaptiveConfig,
        sizes: &wsn_net::MessageSizes,
    ) -> Self {
        Adaptive {
            hbc: Hbc::new(query, hbc, sizes),
            iq: Iq::new(query, iq),
            mode: Mode::Iq,
            config,
            initialized: false,
            ewma: [None, None],
            age: [0, 0],
            rounds_in_mode: 0,
            switches: 0,
        }
    }

    /// The protocol currently in charge.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// How many mode switches happened so far.
    pub fn switches(&self) -> u32 {
        self.switches
    }

    fn slot(mode: Mode) -> usize {
        match mode {
            Mode::Iq => 0,
            Mode::Hbc => 1,
        }
    }

    fn other(mode: Mode) -> Mode {
        match mode {
            Mode::Iq => Mode::Hbc,
            Mode::Hbc => Mode::Iq,
        }
    }

    /// Transfers shared state into `target` and charges the mode
    /// announcement broadcast.
    fn switch_to(&mut self, net: &mut Network, target: Mode) {
        let n = net.len();
        let (filter, counts, prev) = match self.mode {
            Mode::Iq => {
                let (f, c, p) = self.iq.shared_state();
                (f, c, p.to_vec())
            }
            Mode::Hbc => {
                let (f, c, p) = self.hbc.shared_state();
                (f, c, p.to_vec())
            }
        };
        match target {
            Mode::Iq => self.iq.adopt(n, filter, counts, &prev),
            Mode::Hbc => self.hbc.adopt(n, filter, counts, &prev),
        }
        // Mode announcement: one value-sized flag.
        net.broadcast(net.sizes().value_bits);
        self.mode = target;
        self.rounds_in_mode = 0;
        self.switches += 1;
    }

    fn maybe_switch(&mut self, net: &mut Network) {
        if self.rounds_in_mode < self.config.min_dwell {
            return;
        }
        let cur = Self::slot(self.mode);
        let oth = Self::slot(Self::other(self.mode));
        let stale = self.age[oth] > self.config.staleness;
        let better = match (self.ewma[cur], self.ewma[oth]) {
            (Some(c), Some(o)) => o < self.config.margin * c,
            (_, None) => true, // never measured: trial it
            _ => false,
        };
        if stale || better {
            self.switch_to(net, Self::other(self.mode));
        }
    }
}

impl ContinuousQuantile for Adaptive {
    fn name(&self) -> &'static str {
        "Adaptive"
    }

    fn round(&mut self, net: &mut Network, values: &[Value]) -> Value {
        if !self.initialized {
            // Initialize through IQ (any member works, §4.2.1).
            let q = self.iq.round(net, values);
            self.initialized = true;
            self.rounds_in_mode = 1;
            return q;
        }

        let bits_before = net.stats().bits;
        let q = match self.mode {
            Mode::Iq => self.iq.round(net, values),
            Mode::Hbc => self.hbc.round(net, values),
        };
        let cost = (net.stats().bits - bits_before) as f64;

        let cur = Self::slot(self.mode);
        let a = self.config.ewma_alpha;
        self.ewma[cur] = Some(match self.ewma[cur] {
            Some(prev) => (1.0 - a) * prev + a * cost,
            None => cost,
        });
        self.age[cur] = 0;
        self.age[Self::slot(Self::other(self.mode))] += 1;
        self.rounds_in_mode += 1;

        self.maybe_switch(net);
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rank;
    use wsn_net::{MessageSizes, Point, RadioModel, RoutingTree, Topology};

    fn line_net(n_sensors: usize) -> Network {
        let positions = (0..=n_sensors)
            .map(|i| Point::new(i as f64 * 10.0, 0.0))
            .collect();
        let topo = Topology::build(positions, 12.0);
        let tree = RoutingTree::shortest_path_tree(&topo).unwrap();
        Network::new(topo, tree, RadioModel::default(), MessageSizes::default())
    }

    #[test]
    fn adaptive_is_exact_across_switches() {
        let n = 30;
        let mut net = line_net(n);
        let query = QueryConfig::median(n, 0, 10_000);
        let mut alg = Adaptive::new(query, &MessageSizes::default());
        for t in 0..120 {
            // Alternate between calm and wild phases to force switching.
            let values: Vec<Value> = if (t / 30) % 2 == 0 {
                (0..n).map(|i| 3000 + i as Value * 3 + t as Value).collect()
            } else {
                (0..n)
                    .map(|i| (i as Value * 991 + t as Value * 7919) % 10_000)
                    .collect()
            };
            let got = alg.round(&mut net, &values);
            assert_eq!(got, rank::kth_smallest(&values, query.k), "round {t}");
        }
        assert!(alg.switches() > 0, "phases should trigger switching");
    }

    #[test]
    fn dwell_time_prevents_thrashing() {
        let n = 20;
        let mut net = line_net(n);
        let query = QueryConfig::median(n, 0, 1000);
        let mut alg = Adaptive::new(query, &MessageSizes::default());
        for t in 0..50 {
            let values: Vec<Value> = (0..n).map(|i| 100 + i as Value + t as Value).collect();
            alg.round(&mut net, &values);
        }
        // With min_dwell = 8 over 50 rounds there can be at most ~6 switches.
        assert!(alg.switches() <= 6, "switches {}", alg.switches());
    }

    #[test]
    fn starts_in_iq_mode() {
        let alg = Adaptive::new(QueryConfig::median(10, 0, 100), &MessageSizes::default());
        assert_eq!(alg.mode(), Mode::Iq);
    }
}
