//! Protocol-level wave recovery: detect incomplete convergecasts and
//! re-issue them.
//!
//! The network's ARQ and recovery passes (see `wsn_net::reliability`) fight
//! losses link by link, but a wave can still come up short — the retry
//! budget runs out, or a relay's whole subtree payload dies. The exact
//! continuous protocols cannot tolerate that silently: a missing `into`
//! counter corrupts the maintained rank forever, not just for one round.
//!
//! [`collect_with_recovery`] closes the loop end-to-end. It runs a
//! convergecast, consults the [`WaveReport`](wsn_net::WaveReport) for the
//! subtrees whose contribution never arrived, and re-issues the wave for
//! exactly those nodes — repeating until the wave is complete or the
//! re-issue budget is spent. Contribution closures must therefore be
//! idempotent (cheap clones of precomputed payloads, not fresh state
//! transitions).

use wsn_net::{Aggregate, Network, NodeId, Phase};

/// Upper bound on wave re-issues per [`collect_with_recovery`] call, so a
/// hopeless wave (e.g. a partitioned subtree) terminates.
pub const MAX_WAVE_REISSUES: u32 = 4;

/// Runs a convergecast and, when the network reports an incomplete wave,
/// re-issues it for the still-missing subtrees (up to
/// [`MAX_WAVE_REISSUES`] times), merging late contributions into the
/// result.
///
/// `contribute` may be called more than once per node and must return the
/// same payload each time. With wave recovery disabled
/// (`recovery_passes == 0`) this is exactly [`Network::convergecast`]: the
/// protocols keep their unreliable-path behaviour bit for bit.
pub fn collect_with_recovery<T, F>(net: &mut Network, mut contribute: F) -> Option<T>
where
    T: Aggregate + Send + 'static,
    F: FnMut(NodeId) -> Option<T>,
{
    // Routed through the slot engine so within-run parallelism can engage
    // (contributions are materialised in the exact sequential wave order;
    // see `Network::convergecast_fill`).
    let result = net.convergecast_fill(&mut contribute, |_, _| {});
    reissue_incomplete(net, result, contribute)
}

/// [`collect_with_recovery`] over caller-materialised contribution slots
/// (`slots[i]` is node `i`'s payload; the wave *takes* them). Steady-state
/// loops that rebuild their contributions every round keep one reusable
/// buffer this way instead of funnelling per-node clones through a closure.
///
/// `contribute` is only consulted for re-issued waves, to regenerate the
/// payloads of nodes whose subtree dropped; it must reproduce exactly what
/// the caller put in `slots`. With wave recovery disabled it is never
/// called.
pub fn collect_slots_with_recovery<T, F>(
    net: &mut Network,
    slots: &mut [Option<T>],
    contribute: F,
) -> Option<T>
where
    T: Aggregate + Send + 'static,
    F: FnMut(NodeId) -> Option<T>,
{
    let result = net.convergecast_slots(slots, |_, _| {});
    reissue_incomplete(net, result, contribute)
}

/// Shared re-issue loop: merges late contributions from the still-missing
/// subtrees into `result` until the wave is complete or the budget is
/// spent.
fn reissue_incomplete<T, F>(
    net: &mut Network,
    mut result: Option<T>,
    mut contribute: F,
) -> Option<T>
where
    T: Aggregate + Send + 'static,
    F: FnMut(NodeId) -> Option<T>,
{
    if net.reliability().recovery_passes == 0 || net.last_wave().is_complete() {
        return result;
    }

    // Union of the dropped subtrees: the nodes whose contribution the sink
    // has not seen yet. The re-issued waves are recovery traffic, whatever
    // phase the original wave ran in.
    let caller_phase = net.phase();
    net.set_phase(Phase::Recovery);
    let mut missing = Vec::new();
    net.mark_dropped_subtrees(&mut missing);
    let mut scratch = Vec::new();
    for _ in 0..MAX_WAVE_REISSUES {
        let reissued = net.convergecast(|id| {
            if missing[id.index()] {
                contribute(id)
            } else {
                None
            }
        });
        if let Some(late) = reissued {
            match result.as_mut() {
                Some(acc) => acc.merge(late),
                None => result = Some(late),
            }
        }
        if net.last_wave().is_complete() {
            break;
        }
        // Keep only nodes that are *still* missing: the intersection with
        // this wave's dropped subtrees. Without this, contributions that
        // did arrive would be re-collected — and double-counted — on the
        // next round of the loop.
        net.mark_dropped_subtrees(&mut scratch);
        for (m, s) in missing.iter_mut().zip(&scratch) {
            *m = *m && *s;
        }
        if !missing.contains(&true) {
            break;
        }
    }
    net.set_phase(caller_phase);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_net::loss::LossModel;
    use wsn_net::{MessageSizes, Point, RadioModel, ReliabilityConfig, RoutingTree, Topology};

    /// Counts contributors; each node contributes exactly 1.
    #[derive(Debug, Clone, PartialEq)]
    struct Count(u64);

    impl Aggregate for Count {
        fn merge(&mut self, other: Self) {
            self.0 += other.0;
        }
        fn payload_bits(&self, sizes: &MessageSizes) -> u64 {
            sizes.counter_bits
        }
    }

    fn line_network(n: usize) -> Network {
        let positions = (0..n).map(|i| Point::new(i as f64 * 10.0, 0.0)).collect();
        let topo = Topology::build(positions, 12.0);
        let tree = RoutingTree::shortest_path_tree(&topo).unwrap();
        Network::new(topo, tree, RadioModel::default(), MessageSizes::default())
    }

    #[test]
    fn reissue_collects_every_contribution_exactly_once() {
        let mut net = line_network(8);
        net.set_loss(Some(LossModel::new(0.3, 17)));
        net.set_reliability(ReliabilityConfig::recovering(2, 2));
        let mut complete = 0;
        for _ in 0..200 {
            let got = collect_with_recovery(&mut net, |_| Some(Count(1)));
            // Recovery may still fall short under sustained bad luck, but a
            // complete collection must count every sensor exactly once —
            // never more (the double-count hazard this module guards
            // against).
            if let Some(Count(c)) = got {
                assert!(c <= 7, "double-counted contributions: {c}");
                if c == 7 {
                    complete += 1;
                }
            }
        }
        assert!(complete > 190, "complete {complete}/200");
    }

    #[test]
    fn disabled_recovery_is_a_plain_convergecast() {
        let mut plain = line_network(5);
        plain.set_loss(Some(LossModel::new(0.3, 5)));
        let mut gated = plain.clone();
        for _ in 0..100 {
            let a = plain.convergecast(|_| Some(Count(1)));
            let b = collect_with_recovery(&mut gated, |_| Some(Count(1)));
            assert_eq!(a, b);
        }
        assert_eq!(plain.stats(), gated.stats());
    }

    #[test]
    fn slot_and_closure_collection_are_identical() {
        // The slot-based entry point must replay the closure-based one bit
        // for bit: same traffic, same results, same recovery behaviour.
        let mut by_closure = line_network(8);
        by_closure.set_loss(Some(LossModel::new(0.3, 99)));
        by_closure.set_reliability(ReliabilityConfig::recovering(2, 2));
        let mut by_slots = by_closure.clone();
        let mut slots: Vec<Option<Count>> = Vec::new();
        for _ in 0..100 {
            let a = collect_with_recovery(&mut by_closure, |_| Some(Count(1)));
            slots.clear();
            slots.resize(by_slots.len(), None);
            for s in slots.iter_mut().skip(1) {
                *s = Some(Count(1));
            }
            let b = collect_slots_with_recovery(&mut by_slots, &mut slots, |_| Some(Count(1)));
            assert_eq!(a, b);
        }
        assert_eq!(by_closure.stats(), by_slots.stats());
        assert_eq!(
            by_closure.ledger().consumed_per_node(),
            by_slots.ledger().consumed_per_node(),
            "bit-identical energy trace"
        );
    }

    #[test]
    fn total_loss_gives_up_after_the_reissue_budget() {
        let mut net = line_network(4);
        net.set_loss(Some(LossModel::new(1.0, 1)));
        net.set_reliability(ReliabilityConfig::recovering(1, 1));
        let got = collect_with_recovery(&mut net, |_| Some(Count(1)));
        assert!(got.is_none());
        // 1 initial wave + at most MAX_WAVE_REISSUES re-issues.
        assert!(net.stats().convergecasts <= 1 + MAX_WAVE_REISSUES as u64);
    }
}
