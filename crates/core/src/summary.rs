//! Mergeable rank-bound summaries — the substrate for the
//! Greenwald–Khanna-style exact method of §3.1 (\[10\]: "they solve the
//! given problem by transmitting O(log³ |N|) values").
//!
//! A [`RankSummary`] stores a subset of the values seen so far, each with
//! conservative bounds `[rmin, rmax]` on its global rank (1-based). The
//! two operations a TAG-style aggregation tree needs are:
//!
//! * **merge** — combine two summaries over disjoint value multisets; the
//!   classic combine rule adds the neighbor bounds of the other summary,
//!   and provably preserves rank-bound validity;
//! * **prune** — shrink to at most `capacity` entries by keeping evenly
//!   spaced entries (always including the extremes); pruning widens no
//!   bound, it only loses resolution *between* kept entries.
//!
//! The invariant (`rmin(v) ≤ true rank of v ≤ rmax(v)`, property-tested)
//! is exactly what the exact-quantile extension needs: an interval
//! guaranteed to contain the k-th value, shrinking geometrically per
//! iteration.

use wsn_net::{Aggregate, MessageSizes};

use crate::Value;

/// One summary entry: a value with conservative global-rank bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Entry {
    /// The value itself.
    pub value: Value,
    /// Smallest possible rank of this occurrence (1-based).
    pub rmin: u64,
    /// Largest possible rank of this occurrence.
    pub rmax: u64,
}

/// A mergeable quantile summary with conservative rank bounds.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RankSummary {
    /// Entries sorted by value (ties allowed, kept in merge order).
    pub entries: Vec<Entry>,
    /// Total number of values summarized.
    pub count: u64,
}

impl RankSummary {
    /// A summary of one measurement.
    pub fn singleton(value: Value) -> Self {
        RankSummary {
            entries: vec![Entry {
                value,
                rmin: 1,
                rmax: 1,
            }],
            count: 1,
        }
    }

    /// An empty summary.
    pub fn empty() -> Self {
        RankSummary::default()
    }

    /// Merges `other` into `self` (disjoint underlying multisets).
    ///
    /// For each entry `e` of one side, the other side contributes between
    /// `rmin(pred)` and `rmax(succ) − 1` values below-or-at `e` — the
    /// standard mergeable-summary combine rule.
    pub fn merge_summary(&mut self, other: &RankSummary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let a = &self.entries;
        let b = &other.entries;
        let mut merged = Vec::with_capacity(a.len() + b.len());

        // Standard mergeable-summary combine rule: for an entry `e` of one
        // side, the other side (`peers`, total `peer_count` values)
        // contributes at least `rmin(largest peer ≤ e)` values below it,
        // and at most `rmax(smallest peer > e) − 1` (or all of them when
        // no peer is larger).
        let combine = |e: &Entry, peers: &[Entry], peer_count: u64| -> Entry {
            let below_min = peers
                .iter()
                .rev()
                .find(|p| p.value <= e.value)
                .map(|p| p.rmin)
                .unwrap_or(0);
            let below_max = match peers.iter().find(|p| p.value > e.value) {
                Some(succ) => succ.rmax - 1,
                None => peer_count,
            };
            Entry {
                value: e.value,
                rmin: e.rmin + below_min,
                rmax: e.rmax + below_max,
            }
        };

        let mut i = 0;
        let mut j = 0;
        while i < a.len() || j < b.len() {
            let take_a = match (a.get(i), b.get(j)) {
                (Some(x), Some(y)) => x.value <= y.value,
                (Some(_), None) => true,
                _ => false,
            };
            if take_a {
                merged.push(combine(&a[i], b, other.count));
                i += 1;
            } else {
                merged.push(combine(&b[j], a, self.count));
                j += 1;
            }
        }
        self.entries = merged;
        self.count += other.count;
    }

    /// Prunes to at most `capacity` entries, keeping both extremes and
    /// evenly spaced interior entries. Bounds are untouched (pruning only
    /// loses resolution).
    pub fn prune(&mut self, capacity: usize) {
        let capacity = capacity.max(2);
        if self.entries.len() <= capacity {
            return;
        }
        let n = self.entries.len();
        let mut kept = Vec::with_capacity(capacity);
        for s in 0..capacity {
            let idx = s * (n - 1) / (capacity - 1);
            kept.push(self.entries[idx]);
        }
        // Collapse equal-value runs to the *hull* of their bounds. Even
        // spacing can pick several entries with the same value whose bounds
        // drifted apart across merge→prune cycles; keeping only exact
        // triple-duplicates (the old behavior) retained stale overlapping
        // bounds for the same value. The hull (min rmin, max rmax) is
        // conservative: it can only widen the admissible rank span, so
        // every `enclosing_interval` derived from it stays sound.
        kept.dedup_by(|next, prev| {
            if next.value != prev.value {
                return false;
            }
            prev.rmin = prev.rmin.min(next.rmin);
            prev.rmax = prev.rmax.max(next.rmax);
            true
        });
        self.entries = kept;
    }

    /// A value interval `[lo, hi]` guaranteed to contain the k-th smallest
    /// element, derived from the rank bounds. `None` on an empty summary
    /// or out-of-range `k`.
    pub fn enclosing_interval(&self, k: u64) -> Option<(Value, Value)> {
        if self.entries.is_empty() || k == 0 || k > self.count {
            return None;
        }
        // lo: the largest entry whose rmax < k cannot be the k-th, but the
        // k-th cannot be below the largest entry with rmax <= k... use:
        // lo = max value with rmax <= k (the k-th is >= it), falling back
        // to the minimum entry (whose rank bound covers 1).
        let lo = self
            .entries
            .iter()
            .rev()
            .find(|e| e.rmax <= k)
            .map(|e| e.value)
            .unwrap_or(self.entries[0].value);
        // hi: the smallest entry with rmin >= k (the k-th is <= it).
        let hi = self
            .entries
            .iter()
            .find(|e| e.rmin >= k)
            .map(|e| e.value)
            .unwrap_or(self.entries[self.entries.len() - 1].value);
        Some((lo.min(hi), hi.max(lo)))
    }
}

impl Aggregate for RankSummary {
    fn merge(&mut self, other: Self) {
        self.merge_summary(&other);
    }
    /// Wire size: per entry one value and two counters (rmin, rmax), plus
    /// one counter for the total count.
    fn payload_bits(&self, sizes: &MessageSizes) -> u64 {
        sizes.counter_bits + self.entries.len() as u64 * sizes.summary_entry_bits()
    }
    fn value_count(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Checks the core invariant against the ground-truth multiset.
    fn assert_valid(summary: &RankSummary, values: &[Value]) {
        let mut sorted = values.to_vec();
        sorted.sort_unstable();
        assert_eq!(summary.count, values.len() as u64);
        for e in &summary.entries {
            // The true rank span of e.value among all values.
            let lo = sorted.partition_point(|&v| v < e.value) as u64 + 1;
            let hi = sorted.partition_point(|&v| v <= e.value) as u64;
            assert!(
                e.rmin <= hi && e.rmax >= lo,
                "entry {e:?} incompatible with true rank span [{lo}, {hi}]"
            );
            assert!(e.rmin <= e.rmax, "crossed bounds {e:?}");
            assert!(e.rmax <= values.len() as u64, "rmax beyond count {e:?}");
        }
    }

    fn build_tree_merge(values: &[Value], capacity: usize) -> RankSummary {
        // Merge pairwise like a balanced aggregation tree, pruning at each
        // step — exactly what intermediate nodes do.
        let mut layer: Vec<RankSummary> =
            values.iter().map(|&v| RankSummary::singleton(v)).collect();
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            for pair in layer.chunks(2) {
                let mut s = pair[0].clone();
                if let Some(b) = pair.get(1) {
                    s.merge_summary(b);
                }
                s.prune(capacity);
                next.push(s);
            }
            layer = next;
        }
        layer.pop().unwrap_or_else(RankSummary::empty)
    }

    #[test]
    fn singleton_bounds() {
        let s = RankSummary::singleton(42);
        assert_valid(&s, &[42]);
        assert_eq!(s.enclosing_interval(1), Some((42, 42)));
    }

    #[test]
    fn merge_without_pruning_is_tight() {
        let values = vec![5, 1, 9, 3, 7];
        let mut s = RankSummary::empty();
        for &v in &values {
            s.merge_summary(&RankSummary::singleton(v));
        }
        assert_valid(&s, &values);
        // Without pruning every value is present with usable bounds.
        for k in 1..=5u64 {
            let (lo, hi) = s.enclosing_interval(k).unwrap();
            let mut sorted = values.clone();
            sorted.sort_unstable();
            let truth = sorted[k as usize - 1];
            assert!(lo <= truth && truth <= hi, "k={k}: [{lo},{hi}] vs {truth}");
        }
    }

    #[test]
    fn tree_merge_with_pruning_stays_valid() {
        let values: Vec<Value> = (0..200).map(|i| (i * 37) % 500).collect();
        for capacity in [4usize, 8, 16, 64] {
            let s = build_tree_merge(&values, capacity);
            assert_valid(&s, &values);
            assert!(s.entries.len() <= capacity);
            // Enclosing interval must contain the true median.
            let mut sorted = values.clone();
            sorted.sort_unstable();
            let k = 100u64;
            let truth = sorted[99];
            let (lo, hi) = s.enclosing_interval(k).unwrap();
            assert!(
                lo <= truth && truth <= hi,
                "cap={capacity}: [{lo},{hi}] vs {truth}"
            );
        }
    }

    #[test]
    fn interval_shrinks_with_capacity() {
        let values: Vec<Value> = (0..512).map(|i| i as Value).collect();
        let wide = build_tree_merge(&values, 4);
        let tight = build_tree_merge(&values, 64);
        let (wl, wh) = wide.enclosing_interval(256).unwrap();
        let (tl, th) = tight.enclosing_interval(256).unwrap();
        assert!(th - tl <= wh - wl, "more entries must not widen bounds");
    }

    #[test]
    fn duplicates_are_handled() {
        let values = vec![7; 50];
        let s = build_tree_merge(&values, 8);
        assert_valid(&s, &values);
        assert_eq!(s.enclosing_interval(25), Some((7, 7)));
    }

    #[test]
    fn prune_collapses_equal_values_to_the_bound_hull() {
        // Same-value entries with diverged (stale, overlapping) bounds, as
        // repeated merge→prune cycles can produce. Even spacing at
        // capacity 3 keeps indices 0, 1, 3 — two entries of value 5 with
        // different bounds — which must collapse to one entry carrying the
        // union of the bounds.
        let mut s = RankSummary {
            entries: vec![
                Entry {
                    value: 5,
                    rmin: 2,
                    rmax: 4,
                },
                Entry {
                    value: 5,
                    rmin: 3,
                    rmax: 6,
                },
                Entry {
                    value: 5,
                    rmin: 1,
                    rmax: 5,
                },
                Entry {
                    value: 9,
                    rmin: 7,
                    rmax: 8,
                },
            ],
            count: 8,
        };
        s.prune(3);
        assert_eq!(
            s.entries,
            vec![
                Entry {
                    value: 5,
                    rmin: 2,
                    rmax: 6,
                },
                Entry {
                    value: 9,
                    rmin: 7,
                    rmax: 8,
                },
            ]
        );
    }

    #[test]
    fn repeated_merge_prune_cycles_keep_intervals_sound() {
        // Heavy-duplicate data maximizes equal-value collisions in prune.
        // Stress many rounds of "merge a fresh batch, prune hard" — the
        // lifecycle of a long-lived sink summary — and require that every
        // rank's enclosing interval still contains the true k-th value.
        let mut all: Vec<Value> = Vec::new();
        let mut s = RankSummary::empty();
        let mut x = 9u64; // splitmix-ish scramble, deterministic
        for round in 0..40 {
            let batch: Vec<Value> = (0..17)
                .map(|_| {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    ((x >> 33) % 12) as Value // only 12 distinct values
                })
                .collect();
            let incoming = build_tree_merge(&batch, 5);
            s.merge_summary(&incoming);
            s.prune(7);
            all.extend_from_slice(&batch);
            assert_valid(&s, &all);
            let mut sorted = all.clone();
            sorted.sort_unstable();
            for k in [1u64, all.len() as u64 / 2, all.len() as u64] {
                let truth = sorted[k as usize - 1];
                let (lo, hi) = s.enclosing_interval(k).unwrap();
                assert!(
                    lo <= truth && truth <= hi,
                    "round {round} k={k}: [{lo},{hi}] vs {truth}"
                );
            }
        }
    }

    #[test]
    fn payload_size_counts_entries() {
        let sizes = MessageSizes::default();
        let mut s = RankSummary::singleton(1);
        s.merge_summary(&RankSummary::singleton(2));
        // 1 count counter + 2 entries × (value + 2 counters).
        assert_eq!(s.payload_bits(&sizes), 16 + 2 * (16 + 32));
        assert_eq!(s.value_count(), 2);
    }
}
