#![warn(missing_docs)]
//! # cqp-core — exact continuous quantile queries in WSNs
//!
//! Implementations of every algorithm evaluated in *"Continuous Quantile
//! Query Processing in Wireless Sensor Networks"* (EDBT 2014):
//!
//! | Module | Algorithm | Source |
//! |---|---|---|
//! | [`tag`] | TAG exact quantile (k-smallest forwarding) | Madden et al. \[17\], §5.1.6 |
//! | [`pos`] | POS — binary-search continuous quantiles | Cox et al. \[9\], §3.2 |
//! | [`lcll`] | LCLL-H / LCLL-S — message-size histograms | Liu et al. \[16\], §5.1.6 |
//! | [`hbc`] | **HBC** — cost-model `b`-ary continuous refinement | paper §4.1 |
//! | [`iq`] | **IQ** — interval heuristic, ≤ 1 refinement | paper §4.2 |
//! | [`adaptive`] | HBC↔IQ runtime switching | paper §4.2 / §6 future work |
//! | [`cost_model`] | optimal bucket count via Lambert W | prior work \[21\], §4.1 |
//! | [`qdigest`] | **QD** — q-digest mergeable sketch (approximate) | Shrivastava et al., extension |
//! | [`gk_sink`] | **GKS** — ε-tolerant GK sink summary (approximate) | Greenwald–Khanna, extension |
//!
//! The paper's protocols are *exact*: the value returned each round equals
//! the true k-th smallest measurement (asserted against an oracle
//! throughout the test suite). They differ only in how much communication
//! — and therefore energy — they spend to learn it. The sketch family
//! (QD, GKS) instead certifies a bounded rank error `⌊ε·n⌋`, advertised
//! through [`ContinuousQuantile::rank_tolerance`] and enforced by the same
//! differential oracle at that tolerance.
//!
//! Protocols speak to the network exclusively through
//! [`wsn_net::Network`] convergecast/broadcast primitives; all energy
//! accounting lives in `wsn-net`.
//!
//! ```
//! use cqp_core::{ContinuousQuantile, Iq, QueryConfig};
//! use cqp_core::iq::IqConfig;
//! use wsn_net::{MessageSizes, Network, Point, RadioModel, RoutingTree, Topology};
//!
//! // A sink plus four sensors on a line, 12 m radio range.
//! let positions = (0..5).map(|i| Point::new(i as f64 * 10.0, 0.0)).collect();
//! let topo = Topology::build(positions, 12.0);
//! let tree = RoutingTree::shortest_path_tree(&topo).unwrap();
//! let mut net = Network::new(topo, tree, RadioModel::default(), MessageSizes::default());
//!
//! // Continuous median over the integer universe [0, 1023].
//! let query = QueryConfig::median(4, 0, 1023);
//! let mut iq = Iq::new(query, IqConfig::default());
//! assert_eq!(iq.round(&mut net, &[17, 42, 99, 7]), 17);  // init round
//! assert_eq!(iq.round(&mut net, &[18, 43, 99, 9]), 18);  // continuous round
//! assert!(net.ledger().max_sensor_consumption() > 0.0);
//! ```

pub mod adaptive;
pub mod buckets;
pub mod cost_model;
pub mod descent;
pub mod gk;
pub mod gk_sink;
pub mod hbc;
pub mod init;
pub mod iq;
pub mod lcll;
pub mod lcll_range;
pub mod payloads;
pub mod pos;
pub mod protocol;
pub mod qdigest;
pub mod rank;
pub mod recovery;
pub mod retrieval;
pub mod sampled;
pub mod service;
pub mod snapshot;
pub mod summary;
pub mod tag;
pub mod validation;
pub mod wire;

pub use adaptive::Adaptive;
pub use gk::Gk;
pub use gk_sink::GkSinkQuantile;
pub use hbc::{Hbc, HbcConfig};
pub use iq::{Iq, IqConfig};
pub use lcll::{Lcll, RefiningStrategy};
pub use lcll_range::LcllRange;
pub use pos::Pos;
pub use protocol::{ContinuousQuantile, QueryConfig};
pub use qdigest::{QDigest, QDigestQuantile};
pub use sampled::SampledQuantile;
pub use service::{ExecGroup, PlanCache, QuerySpec, Service, TrafficPlan};
pub use tag::Tag;

/// A sensor measurement (re-exported from `wsn-net`).
pub type Value = wsn_net::Value;
