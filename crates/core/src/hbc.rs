//! HBC — the Histogram Based Continuous algorithm (paper §4.1).
//!
//! POS-style validation plus a `b`-ary histogram descent in place of POS's
//! binary search, with `b` chosen by the cost model of \[21\]
//! ([`crate::cost_model`]). Includes both improvements the paper evaluates:
//!
//! * **direct value retrieval** once the candidate interval is known to
//!   hold at most one message's worth of values (\[21\]),
//! * the **§4.1.2 broadcast-elimination variant**, where nodes partition
//!   the value space by the bounds of the last refinement request instead
//!   of a single filter value, making the final threshold broadcast
//!   unnecessary (mutually exclusive with direct retrieval, as the paper
//!   notes).

use wsn_net::Network;

use crate::cost_model;
use crate::descent::{descend, DescentConfig};
use crate::init::{run_init, InitStrategy};
use crate::protocol::{ContinuousQuantile, QueryConfig};
use crate::rank::{Counts, Direction};
use crate::recovery;
use crate::retrieval::RankAnchor;
use crate::validation::{node_validation_interval, HintStyle, ValidationPayload};
use crate::Value;

/// Safety cap on histogram iterations (only message loss can exceed the
/// logarithmic bound).
const MAX_REFINEMENTS: u32 = 100;

/// Configuration of the HBC algorithm.
#[derive(Debug, Clone, Copy)]
pub struct HbcConfig {
    /// Bucket count; `None` derives it from the cost model (§4.1: `b` is
    /// computed once, not per round — the paper found recomputation
    /// marginal).
    pub buckets: Option<usize>,
    /// Enable direct value retrieval (\[21\]).
    pub direct_retrieval: bool,
    /// Enable the §4.1.2 variant (disables `direct_retrieval`; the paper
    /// notes the two cannot simply be combined).
    pub eliminate_threshold_broadcast: bool,
    /// Initialization strategy (§3.2: TAG by default).
    pub init: InitStrategy,
}

impl Default for HbcConfig {
    fn default() -> Self {
        HbcConfig {
            buckets: None,
            direct_retrieval: true,
            eliminate_threshold_broadcast: false,
            init: InitStrategy::Tag,
        }
    }
}

/// The HBC continuous quantile protocol.
#[derive(Debug, Clone)]
pub struct Hbc {
    query: QueryConfig,
    config: HbcConfig,
    b: usize,
    counts: Counts,
    /// Root's current `eq` interval (a single value in the basic variant).
    root_lb: Value,
    root_ub: Value,
    /// Per-node `eq` interval bounds.
    node_lb: Vec<Value>,
    node_ub: Vec<Value>,
    prev: Vec<Value>,
    /// Reusable per-node validation contribution slots (rebuilt each round
    /// in place; the convergecast takes the payloads out again), so the
    /// steady-state round performs no per-round heap allocation.
    val_slots: Vec<Option<ValidationPayload>>,
    initialized: bool,
    last_refinements: u32,
}

impl Hbc {
    /// Creates an HBC query.
    pub fn new(query: QueryConfig, config: HbcConfig, sizes: &wsn_net::MessageSizes) -> Self {
        let b = config
            .buckets
            .unwrap_or_else(|| cost_model::optimal_buckets(sizes, query.range_size()));
        assert!(b >= 2, "need at least two buckets");
        Hbc {
            query,
            config,
            b,
            counts: Counts::default(),
            root_lb: 0,
            root_ub: 0,
            node_lb: Vec::new(),
            node_ub: Vec::new(),
            prev: Vec::new(),
            val_slots: Vec::new(),
            initialized: false,
            last_refinements: 0,
        }
    }

    /// The bucket count in use.
    pub fn buckets(&self) -> usize {
        self.b
    }

    /// Histogram/retrieval convergecasts in the most recent round.
    pub fn last_refinements(&self) -> u32 {
        self.last_refinements
    }

    fn variant(&self) -> bool {
        self.config.eliminate_threshold_broadcast
    }

    /// The state shared by all POS-family protocols (filter + counts),
    /// used by [`crate::adaptive::Adaptive`] to switch algorithms without
    /// reinitializing the network (§4.2).
    pub(crate) fn shared_state(&self) -> (Value, Counts, &[Value]) {
        (self.root_lb, self.counts, &self.prev)
    }

    /// Adopts shared state exported by a sibling protocol. `n` is the node
    /// count including the root.
    pub(crate) fn adopt(&mut self, n: usize, filter: Value, counts: Counts, prev: &[Value]) {
        self.root_lb = filter;
        self.root_ub = filter;
        self.node_lb = vec![filter; n];
        self.node_ub = vec![filter; n];
        self.counts = counts;
        self.prev = prev.to_vec();
        self.initialized = true;
    }

    fn init_round(&mut self, net: &mut Network, values: &[Value]) -> Value {
        let out = run_init(net, values, self.query, self.config.init);
        let q = out.quantile;
        self.counts = out.counts;
        self.root_lb = q;
        self.root_ub = q;
        self.node_lb = vec![q; net.len()];
        self.node_ub = vec![q; net.len()];
        self.prev = values.to_vec();
        for i in net.broadcast(net.sizes().value_bits).iter_ones() {
            self.node_lb[i] = q;
            self.node_ub[i] = q;
        }
        self.initialized = true;
        net.end_round();
        q
    }

    /// Descends through histogram refinements until the quantile is pinned
    /// down, starting from interval `[lo, hi]`.
    fn refine(
        &mut self,
        net: &mut Network,
        values: &[Value],
        lo: Value,
        hi: Value,
        anchor: RankAnchor,
        inside: Option<u64>,
    ) -> Value {
        net.set_phase(wsn_net::Phase::Refinement);
        let capacity = net.sizes().values_per_message() as u64;
        let cfg = DescentConfig {
            b: self.b,
            k: self.query.k,
            n_total: self.counts.n(),
            direct_capacity: (self.config.direct_retrieval && !self.variant()).then_some(capacity),
            max_refinements: MAX_REFINEMENTS,
        };
        let variant = self.variant();
        let node_lb = &mut self.node_lb;
        let node_ub = &mut self.node_ub;
        let outcome = descend(
            net,
            values,
            cfg,
            lo,
            hi,
            anchor,
            inside,
            &mut self.last_refinements,
            |idx, req_lo, req_hi| {
                if variant {
                    // §4.1.2: refinement bounds take over the node's
                    // partition of the value space.
                    node_lb[idx] = req_lo;
                    node_ub[idx] = req_hi;
                }
            },
        );
        match outcome {
            Some(o) => {
                if self.variant() {
                    // §4.1.2: root and nodes both keep the bounds of the
                    // last refinement request as their partition; counts
                    // are relative to that interval.
                    let (lb, ub) = o.last_request.unwrap_or((o.quantile, o.quantile));
                    self.root_lb = lb;
                    self.root_ub = ub;
                    self.counts = o.last_request_counts.unwrap_or(o.counts);
                } else {
                    self.counts = o.counts;
                }
                o.quantile
            }
            // Only reachable under message loss.
            None => self.root_lb,
        }
    }

    /// Basic variant: updates root and node filters to the newly found
    /// quantile, broadcasting it when it changed.
    fn conclude(&mut self, net: &mut Network, q: Value) {
        // The threshold broadcast disseminates the refined answer.
        net.set_phase(wsn_net::Phase::Refinement);
        let changed = q != self.root_lb || q != self.root_ub;
        self.root_lb = q;
        self.root_ub = q;
        if changed {
            for i in net.broadcast(net.sizes().value_bits).iter_ones() {
                self.node_lb[i] = q;
                self.node_ub[i] = q;
            }
        }
    }
}

impl ContinuousQuantile for Hbc {
    fn name(&self) -> &'static str {
        if self.variant() {
            "HBC-nb"
        } else {
            "HBC"
        }
    }

    fn round(&mut self, net: &mut Network, values: &[Value]) -> Value {
        if !self.initialized {
            return self.init_round(net, values);
        }
        self.last_refinements = 0;
        let n = net.len();

        // --- Validation ---
        net.set_phase(wsn_net::Phase::Validation);
        self.val_slots.clear();
        self.val_slots.resize(n, None);
        for idx in 1..n {
            self.val_slots[idx] = node_validation_interval(
                self.prev[idx - 1],
                values[idx - 1],
                self.node_lb[idx],
                self.node_ub[idx],
                HintStyle::MaxDiff,
                None,
            );
        }
        // Incomplete validations corrupt the maintained counts; re-issue
        // the wave for missing subtrees when wave recovery is enabled. The
        // re-issue closure regenerates a node's payload from the same
        // inputs (`prev` only rolls forward afterwards).
        let (prev, node_lb, node_ub) = (&self.prev, &self.node_lb, &self.node_ub);
        let validation = recovery::collect_slots_with_recovery(net, &mut self.val_slots, |id| {
            let idx = id.index();
            node_validation_interval(
                prev[idx - 1],
                values[idx - 1],
                node_lb[idx],
                node_ub[idx],
                HintStyle::MaxDiff,
                None,
            )
        });
        self.prev.copy_from_slice(values);

        if let Some(v) = &validation {
            let n_total = self.counts.n();
            let l = (self.counts.l + v.counters.into_lt).saturating_sub(v.counters.outof_lt);
            let g = (self.counts.g + v.counters.into_gt).saturating_sub(v.counters.outof_gt);
            self.counts = Counts {
                l,
                g,
                e: n_total.saturating_sub(l + g),
            };
        }

        let k = self.query.k;
        let result = if self.counts.is_valid_quantile(k) {
            if self.root_lb == self.root_ub {
                self.root_lb
            } else {
                // §4.1.2: the k-th value sits inside the last refinement
                // interval; refine it (inside count = e is known).
                let (lo, hi) = (self.root_lb, self.root_ub);
                let anchor = RankAnchor::BelowLo(self.counts.l);
                let inside = Some(self.counts.e);
                self.refine(net, values, lo, hi, anchor, inside)
            }
        } else {
            let dir = self.counts.quantile_moved(k).expect("invalid counts");
            let empty = ValidationPayload {
                counters: Default::default(),
                hint_min: Value::MAX,
                hint_max: Value::MIN,
                max_diff: 0,
                extra: Default::default(),
                style: HintStyle::MaxDiff,
            };
            let v = validation.as_ref().unwrap_or(&empty);
            match dir {
                Direction::Down => {
                    let lo = v.lower_bound(self.root_lb).max(self.query.range_min);
                    let hi = self.root_lb - 1;
                    self.refine(
                        net,
                        values,
                        lo,
                        hi,
                        RankAnchor::AtMostHi(self.counts.l),
                        None,
                    )
                }
                Direction::Up => {
                    let lo = self.root_ub + 1;
                    let hi = v.upper_bound(self.root_ub).min(self.query.range_max);
                    let anchor = RankAnchor::BelowLo(self.counts.l + self.counts.e);
                    self.refine(net, values, lo, hi, anchor, None)
                }
            }
        };

        if !self.variant() {
            self.conclude(net, result);
        }
        net.end_round();
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rank;
    use wsn_net::{MessageSizes, Network, Point, RadioModel, RoutingTree, Topology};

    fn line_net(n_sensors: usize) -> Network {
        let positions = (0..=n_sensors)
            .map(|i| Point::new(i as f64 * 10.0, 0.0))
            .collect();
        let topo = Topology::build(positions, 12.0);
        let tree = RoutingTree::shortest_path_tree(&topo).unwrap();
        Network::new(topo, tree, RadioModel::default(), MessageSizes::default())
    }

    fn new_hbc(query: QueryConfig, config: HbcConfig) -> Hbc {
        Hbc::new(query, config, &MessageSizes::default())
    }

    fn drifting_values(n: usize, t: u32) -> Vec<Value> {
        (0..n)
            .map(|i| 100 + (i as Value * 11) % 80 + ((t as Value * 17) % 120))
            .collect()
    }

    #[test]
    fn bucket_count_comes_from_cost_model() {
        let hbc = new_hbc(QueryConfig::median(100, 0, 1023), HbcConfig::default());
        let expect = cost_model::optimal_buckets(&MessageSizes::default(), 1024);
        assert_eq!(hbc.buckets(), expect);
    }

    #[test]
    fn hbc_is_exact_over_many_rounds() {
        for config in [
            HbcConfig::default(),
            HbcConfig {
                direct_retrieval: false,
                ..HbcConfig::default()
            },
            HbcConfig {
                eliminate_threshold_broadcast: true,
                direct_retrieval: false,
                ..HbcConfig::default()
            },
        ] {
            let n = 30;
            let mut net = line_net(n);
            let query = QueryConfig::median(n, 0, 1023);
            let mut hbc = new_hbc(query, config);
            for t in 0..40 {
                let values = drifting_values(n, t);
                let got = hbc.round(&mut net, &values);
                assert_eq!(
                    got,
                    rank::kth_smallest(&values, query.k),
                    "round {t} cfg {config:?}"
                );
            }
        }
    }

    #[test]
    fn unchanged_rounds_are_free() {
        let n = 20;
        let mut net = line_net(n);
        let query = QueryConfig::median(n, 0, 1023);
        let mut hbc = new_hbc(query, HbcConfig::default());
        let values = drifting_values(n, 3);
        hbc.round(&mut net, &values);
        let before = net.stats().messages;
        hbc.round(&mut net, &values);
        assert_eq!(net.stats().messages, before);
        assert_eq!(hbc.last_refinements(), 0);
    }

    #[test]
    fn hbc_survives_extreme_jumps() {
        let n = 25;
        let mut net = line_net(n);
        let query = QueryConfig::median(n, 0, 100_000);
        let mut hbc = new_hbc(query, HbcConfig::default());
        let v0: Vec<Value> = (0..n).map(|i| 50_000 + i as Value).collect();
        hbc.round(&mut net, &v0);
        let v1: Vec<Value> = (0..n).map(|i| (i as Value * 13) % 300).collect();
        assert_eq!(hbc.round(&mut net, &v1), rank::kth_smallest(&v1, query.k));
        let v2: Vec<Value> = (0..n).map(|i| 99_000 + (i as Value * 7) % 500).collect();
        assert_eq!(hbc.round(&mut net, &v2), rank::kth_smallest(&v2, query.k));
    }

    #[test]
    fn variant_skips_final_broadcast() {
        let n = 20;
        let query = QueryConfig::median(n, 0, 1023);

        let run = |config: HbcConfig| {
            let mut net = line_net(n);
            let mut hbc = new_hbc(query, config);
            let v0 = drifting_values(n, 0);
            hbc.round(&mut net, &v0);
            let base = net.stats().broadcasts;
            let v1 = drifting_values(n, 1); // shifts the median
            hbc.round(&mut net, &v1);
            net.stats().broadcasts - base
        };

        let basic = run(HbcConfig {
            direct_retrieval: false,
            ..HbcConfig::default()
        });
        let variant = run(HbcConfig {
            direct_retrieval: false,
            eliminate_threshold_broadcast: true,
            ..HbcConfig::default()
        });
        assert!(
            variant < basic,
            "variant {variant} should broadcast less than basic {basic}"
        );
    }

    #[test]
    fn direct_retrieval_reduces_refinements() {
        let n = 30;
        let query = QueryConfig::median(n, 0, 1 << 16);
        let run = |direct: bool| {
            let mut net = line_net(n);
            let mut hbc = new_hbc(
                query,
                HbcConfig {
                    direct_retrieval: direct,
                    ..HbcConfig::default()
                },
            );
            let v0: Vec<Value> = (0..n).map(|i| 1000 * i as Value).collect();
            hbc.round(&mut net, &v0);
            let v1: Vec<Value> = v0.iter().map(|v| v + 4000).collect();
            let got = hbc.round(&mut net, &v1);
            assert_eq!(got, rank::kth_smallest(&v1, query.k));
            hbc.last_refinements()
        };
        assert!(run(true) <= run(false));
    }

    #[test]
    fn exact_for_skewed_quantiles() {
        let n = 24;
        let mut net = line_net(n);
        for &k in &[1u64, 6, 18, 24] {
            let query = QueryConfig {
                k,
                range_min: 0,
                range_max: 1023,
            };
            let mut hbc = new_hbc(query, HbcConfig::default());
            for t in 0..15 {
                let values = drifting_values(n, t * 3);
                assert_eq!(
                    hbc.round(&mut net, &values),
                    rank::kth_smallest(&values, k),
                    "k={k} t={t}"
                );
            }
        }
    }
}
