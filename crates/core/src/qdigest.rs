//! Q-digest — the mergeable, compression-bounded quantile sketch of
//! Shrivastava et al. ("Medians and Beyond", SenSys 2004), built bottom-up
//! along the convergecast tree.
//!
//! The sketch is a sparse complete binary tree over the integer universe
//! `[range_min, range_max]` padded to a power of two `σ`: heap-indexed
//! nodes (root = 1, leaves `σ .. 2σ−1`) each carry a count of values known
//! to lie somewhere in the node's leaf range. Compression pushes
//! low-weight sibling pairs into their parent whenever the triple
//! `count(v) + count(sibling) + count(parent)` stays below the threshold
//! `⌊n/k⌋`, trading value resolution for size: after compression at most
//! `3k` entries survive, regardless of `n`.
//!
//! Two properties make the sketch safe to aggregate in-network:
//!
//! * **weight bound** — every *internal* entry's count stays `≤ ⌊n/k⌋`,
//!   where `n` is the digest's own total. Merging preserves it because
//!   `⌊n_a/k⌋ + ⌊n_b/k⌋ ≤ ⌊(n_a+n_b)/k⌋` (floor subadditivity), so the
//!   bound holds under *any* merge order — exactly what a convergecast
//!   tree with arbitrary shape needs.
//! * **rank error** — a φ-quantile answered from the digest is off by at
//!   most `depth · ⌊n/k⌋` ranks (the counts parked at ancestors of the
//!   reported value are the only ambiguity). Choosing
//!   `k = ⌈depth·1000/ε_milli⌉` certifies an `⌊ε·n⌋` error bound.
//!
//! [`QDigestQuantile`] wraps the sketch as a [`ContinuousQuantile`]: every
//! round is one convergecast of per-sensor singleton digests, merged and
//! re-compressed at each hop inside the wave sweep, answered at the sink.

use wsn_net::{Aggregate, MessageSizes, Network};

use crate::protocol::{ContinuousQuantile, QueryConfig};
use crate::Value;

/// A q-digest sketch over a power-of-two integer universe.
///
/// Entries are kept sorted by heap node id; the representation is fully
/// deterministic (merge and compression never depend on insertion order
/// beyond the multiset itself), which the engine's bit-exact parallel
/// parity relies on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QDigest {
    /// Smallest representable value (universe offset).
    range_min: Value,
    /// Largest *declared* value; answers are clamped to it (the power-of-
    /// two padding can make the tree span values beyond the query range).
    range_max: Value,
    /// Universe size: smallest power of two `≥ range_max − range_min + 1`.
    sigma: u64,
    /// Compression parameter `k`: threshold is `⌊n/k⌋`.
    k: u64,
    /// `(heap node id, count)`, sorted by node id, counts non-zero.
    entries: Vec<(u64, u64)>,
    /// Total number of summarized values `n`.
    count: u64,
}

/// Smallest power of two `≥ x` (for `x ≥ 1`).
fn next_pow2(x: u64) -> u64 {
    x.max(1).next_power_of_two()
}

impl QDigest {
    /// An empty digest for values in `[range_min, range_max]` with
    /// compression parameter `k ≥ 1`.
    pub fn new(range_min: Value, range_max: Value, k: u64) -> Self {
        assert!(range_min <= range_max, "empty value range");
        QDigest {
            range_min,
            range_max,
            sigma: next_pow2((range_max - range_min + 1) as u64),
            k: k.max(1),
            entries: Vec::new(),
            count: 0,
        }
    }

    /// A digest holding a single value (a sensor's per-round
    /// contribution). Values outside the declared range are clamped —
    /// the continuous-query contract already promises measurements in
    /// `[range_min, range_max]`.
    pub fn singleton(range_min: Value, range_max: Value, k: u64, v: Value) -> Self {
        let mut d = QDigest::new(range_min, range_max, k);
        let off = (v.clamp(range_min, range_max) - range_min) as u64;
        d.entries.push((d.sigma + off, 1));
        d.count = 1;
        d
    }

    /// Tree depth: `log2(σ)` (0 for a single-value universe).
    pub fn depth(&self) -> u32 {
        self.sigma.trailing_zeros()
    }

    /// Total number of summarized values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Number of live `(node, count)` entries — what goes on the wire.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no values have been summarized.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The live `(heap node id, count)` entries, sorted by node id — the
    /// exact content the wire codec serializes.
    pub fn entries(&self) -> &[(u64, u64)] {
        &self.entries
    }

    /// Rebuilds a digest from decoded wire entries. The total count is
    /// re-derived as the entry-count sum (compression moves counts, never
    /// drops them). Returns `None` if entries are unsorted, zero-count, or
    /// name nodes outside the universe tree.
    pub fn from_entries(
        range_min: Value,
        range_max: Value,
        k: u64,
        entries: Vec<(u64, u64)>,
    ) -> Option<Self> {
        let mut d = QDigest::new(range_min, range_max, k);
        let mut count = 0u64;
        for (i, &(id, c)) in entries.iter().enumerate() {
            if c == 0 || id < 1 || id >= 2 * d.sigma {
                return None;
            }
            if i > 0 && entries[i - 1].0 >= id {
                return None;
            }
            count += c;
        }
        d.entries = entries;
        d.count = count;
        Some(d)
    }

    /// The compression threshold `⌊n/k⌋` at the current count.
    pub fn threshold(&self) -> u64 {
        self.count / self.k
    }

    /// Merges `other` (same universe and `k`) into `self` by node-wise
    /// count addition, then re-compresses. The weight bound survives:
    /// each side's internal entries are `≤ ⌊n_side/k⌋`, and floor
    /// subadditivity makes their sum `≤ ⌊(n_a+n_b)/k⌋`.
    pub fn merge_digest(&mut self, other: &QDigest) {
        debug_assert_eq!(self.sigma, other.sigma, "universe mismatch");
        debug_assert_eq!(self.range_min, other.range_min, "universe mismatch");
        debug_assert_eq!(self.k, other.k, "compression mismatch");
        if other.count == 0 {
            return;
        }
        let a = std::mem::take(&mut self.entries);
        let b = &other.entries;
        let mut merged = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0, 0);
        while i < a.len() || j < b.len() {
            match (a.get(i), b.get(j)) {
                (Some(&(ia, ca)), Some(&(ib, cb))) if ia == ib => {
                    merged.push((ia, ca + cb));
                    i += 1;
                    j += 1;
                }
                (Some(&(ia, ca)), Some(&(ib, _))) if ia < ib => {
                    merged.push((ia, ca));
                    i += 1;
                }
                (Some(_), Some(&(ib, cb))) => {
                    merged.push((ib, cb));
                    j += 1;
                }
                (Some(&e), None) => {
                    merged.push(e);
                    i += 1;
                }
                (None, Some(&e)) => {
                    merged.push(e);
                    j += 1;
                }
                (None, None) => unreachable!(),
            }
        }
        self.entries = merged;
        self.count += other.count;
        self.compress();
    }

    /// One bottom-up compression pass: for every sibling pair (deepest
    /// level first) whose triple sum with the parent stays below the
    /// threshold, the children's counts move into the parent. Bounds the
    /// digest to `O(k)` entries without ever *losing* a count — only its
    /// value resolution.
    pub fn compress(&mut self) {
        let threshold = self.threshold();
        if threshold == 0 || self.entries.is_empty() {
            return;
        }
        // Sorted by id ⇒ sorted by level; process levels deepest-first.
        // Entries within one level stay sorted; pushed-up counts land on
        // level−1 ids which are merged into the next level's scan.
        let mut current = std::mem::take(&mut self.entries);
        let mut levels: Vec<Vec<(u64, u64)>> = vec![Vec::new(); self.depth() as usize + 1];
        for (id, c) in current.drain(..) {
            levels[(63 - id.leading_zeros()) as usize].push((id, c));
        }
        for level in (1..levels.len()).rev() {
            let nodes = std::mem::take(&mut levels[level]);
            let mut survivors: Vec<(u64, u64)> = Vec::with_capacity(nodes.len());
            let mut promoted: Vec<(u64, u64)> = Vec::new();
            let mut i = 0;
            while i < nodes.len() {
                let (id, c) = nodes[i];
                // Sibling pair occupies ids (2m, 2m+1); sorted order puts
                // them adjacent when both are present.
                let (sib_c, consumed) = match nodes.get(i + 1) {
                    Some(&(id2, c2)) if id2 == (id | 1) && id & 1 == 0 => (c2, 2),
                    _ => (0, 1),
                };
                let parent = id >> 1;
                let parent_c = levels[level - 1]
                    .binary_search_by_key(&parent, |&(p, _)| p)
                    .map(|idx| levels[level - 1][idx].1)
                    .unwrap_or(0);
                if c + sib_c + parent_c < threshold {
                    promoted.push((parent, c + sib_c));
                } else {
                    survivors.push((id, c));
                    if consumed == 2 {
                        survivors.push((id | 1, sib_c));
                    }
                }
                i += consumed;
            }
            levels[level] = survivors;
            // Fold promotions into the parent level, keeping it sorted.
            for (parent, add) in promoted {
                match levels[level - 1].binary_search_by_key(&parent, |&(p, _)| p) {
                    Ok(idx) => levels[level - 1][idx].1 += add,
                    Err(idx) => levels[level - 1].insert(idx, (parent, add)),
                }
            }
        }
        // Reassemble sorted by id (levels ascending, sorted within).
        let mut entries = Vec::with_capacity(levels.iter().map(Vec::len).sum());
        for level in levels {
            entries.extend(level);
        }
        self.entries = entries;
    }

    /// Leaf range `[lo, hi]` of heap node `id`, as 0-based value offsets
    /// from `range_min` (heap leaf ids shifted down by `σ`).
    fn leaf_span(&self, id: u64) -> (u64, u64) {
        let level = 63 - id.leading_zeros();
        let shift = self.depth() - level;
        let lo = (id << shift) - self.sigma;
        let hi = lo + (1u64 << shift) - 1;
        (lo, hi)
    }

    /// Answers the `k_rank`-th smallest value (1-based, clamped to
    /// `[1, n]`): scan entries in q-digest order (increasing max-leaf,
    /// deeper node first on ties) accumulating counts until `≥ k_rank`,
    /// and report that node's largest representable value. `None` on an
    /// empty digest.
    ///
    /// The reported value's true rank is within `depth·⌊n/k⌋` of
    /// `k_rank`: everything scanned before it is certainly `≤` it, and
    /// only counts parked at its ancestors (each `≤ ⌊n/k⌋` by the weight
    /// bound) are ambiguous.
    pub fn query(&self, k_rank: u64) -> Option<Value> {
        if self.count == 0 {
            return None;
        }
        let k_rank = k_rank.clamp(1, self.count);
        let mut order: Vec<(u64, u64, u64)> = self
            .entries
            .iter()
            .map(|&(id, c)| {
                let (lo, hi) = self.leaf_span(id);
                (hi, lo, c)
            })
            .collect();
        // Increasing hi; ties broken deeper-first (larger lo), so a node
        // precedes its ancestors — the postorder the error bound needs.
        order.sort_unstable_by(|a, b| {
            (a.0, std::cmp::Reverse(a.1)).cmp(&(b.0, std::cmp::Reverse(b.1)))
        });
        let mut cum = 0u64;
        for (hi, _, c) in order {
            cum += c;
            if cum >= k_rank {
                // Clamping to range_max is sound: no value lives beyond
                // it, so the scanned counts stay ≤ the clamped answer.
                return Some((self.range_min + hi as Value).min(self.range_max));
            }
        }
        // Counts always sum to `count ≥ k_rank`; unreachable in practice.
        None
    }

    /// Asserts the structural invariants (test/debug aid): entries sorted
    /// and unique, counts positive and summing to `n`, and every internal
    /// entry `≤ ⌊n/k⌋`.
    pub fn assert_invariants(&self) {
        let threshold = self.threshold();
        let mut sum = 0u64;
        for w in self.entries.windows(2) {
            assert!(w[0].0 < w[1].0, "entries unsorted: {w:?}");
        }
        for &(id, c) in &self.entries {
            assert!(c > 0, "zero-count entry at node {id}");
            assert!(id >= 1 && id < 2 * self.sigma, "node {id} out of tree");
            if id < self.sigma {
                assert!(
                    c <= threshold,
                    "internal node {id} weight {c} exceeds ⌊n/k⌋ = {threshold}"
                );
            }
            sum += c;
        }
        assert_eq!(sum, self.count, "counts do not sum to n");
    }
}

impl Aggregate for QDigest {
    fn merge(&mut self, other: Self) {
        self.merge_digest(&other);
    }
    /// Wire size: the total count plus one sketch entry (node id +
    /// count) per live node — see [`MessageSizes::sketch_entry_bits`].
    fn payload_bits(&self, sizes: &MessageSizes) -> u64 {
        sizes.counter_bits + self.entries.len() as u64 * sizes.sketch_entry_bits()
    }
    fn value_count(&self) -> usize {
        self.entries.len()
    }
}

/// The q-digest protocol: one sketch convergecast per round, answered at
/// the sink with a certified `⌊ε·n⌋` rank-error bound.
#[derive(Debug, Clone)]
pub struct QDigestQuantile {
    query: QueryConfig,
    /// Error budget, in thousandths (`ε = eps_milli / 1000`).
    eps_milli: u32,
    /// Compression parameter `k = ⌈depth·1000/eps_milli⌉`.
    k_comp: u64,
    /// `log2(σ)` for the query universe.
    depth: u32,
    last: Option<Value>,
}

impl QDigestQuantile {
    /// Creates a q-digest query with error budget `ε = eps_milli/1000`
    /// (clamped to `[1, 1000]`).
    pub fn new(query: QueryConfig, eps_milli: u32) -> Self {
        let eps_milli = eps_milli.clamp(1, 1000);
        let depth = next_pow2(query.range_size()).trailing_zeros();
        // k ≥ depth/ε ⇒ per-level slack ⌊n/k⌋ ≤ ε·n/depth ⇒ total rank
        // error ≤ depth·⌊n/k⌋ ≤ ⌊ε·n⌋.
        let k_comp = ((depth as u64) * 1000).div_ceil(eps_milli as u64).max(1);
        QDigestQuantile {
            query,
            eps_milli,
            k_comp,
            depth,
            last: None,
        }
    }

    /// The compression parameter in use.
    pub fn compression(&self) -> u64 {
        self.k_comp
    }

    /// The configured error budget in thousandths.
    pub fn eps_milli(&self) -> u32 {
        self.eps_milli
    }
}

impl ContinuousQuantile for QDigestQuantile {
    fn name(&self) -> &'static str {
        "QD"
    }

    fn round(&mut self, net: &mut Network, values: &[Value]) -> Value {
        // Every round is a fresh snapshot sweep, like TAG — charged as
        // the init phase (no validation/refinement split exists here).
        net.set_phase(wsn_net::Phase::Init);
        let (range_min, range_max, k_comp) =
            (self.query.range_min, self.query.range_max, self.k_comp);
        let digest = net
            .convergecast_with(
                |id| {
                    Some(QDigest::singleton(
                        range_min,
                        range_max,
                        k_comp,
                        crate::protocol::measurement(values, id),
                    ))
                },
                // Merge already re-compresses; nothing extra per hop.
                |_, _: &mut QDigest| {},
            )
            .unwrap_or_else(|| QDigest::new(range_min, range_max, k_comp));
        net.end_round();
        let q = digest
            .query(self.query.k)
            .unwrap_or(self.last.unwrap_or(range_min));
        self.last = Some(q);
        q
    }

    /// Certified bound: `depth · ⌊n/k⌋ ≤ ⌊ε·n⌋`. For small `n < k` the
    /// threshold is 0, no compression happens, and the sketch is exact.
    fn rank_tolerance(&self, n: u64) -> u64 {
        (self.depth as u64) * (n / self.k_comp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rank;
    use wsn_net::{Point, RadioModel, RoutingTree, Topology};

    fn line_net(n_sensors: usize) -> Network {
        let positions = (0..=n_sensors)
            .map(|i| Point::new(i as f64 * 10.0, 0.0))
            .collect();
        let topo = Topology::build(positions, 12.0);
        let tree = RoutingTree::shortest_path_tree(&topo).unwrap();
        Network::new(topo, tree, RadioModel::default(), MessageSizes::default())
    }

    /// True rank error of answer `v` against the full multiset.
    fn rank_error(values: &[Value], v: Value, k: u64) -> u64 {
        let l = values.iter().filter(|&&x| x < v).count() as u64;
        let le = values.iter().filter(|&&x| x <= v).count() as u64;
        if l < k && k <= le {
            0
        } else if k <= l {
            l + 1 - k
        } else {
            k - le
        }
    }

    fn pseudo_values(n: usize, salt: u64, range: u64) -> Vec<Value> {
        (0..n as u64)
            .map(|i| {
                let mut z = i.wrapping_add(salt).wrapping_mul(0x9E3779B97F4A7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                ((z >> 33) % range) as Value
            })
            .collect()
    }

    #[test]
    fn weight_bound_holds_under_insert_and_merge() {
        for k in [2u64, 5, 20] {
            let values = pseudo_values(500, 1, 1 << 12);
            let mut d = QDigest::new(0, (1 << 12) - 1, k);
            for &v in &values {
                d.merge_digest(&QDigest::singleton(0, (1 << 12) - 1, k, v));
                d.assert_invariants();
            }
            assert_eq!(d.count(), 500);
            // Post-compression size is O(k), independent of n.
            assert!(
                d.len() as u64 <= 3 * k + d.depth() as u64,
                "k={k}: {} entries",
                d.len()
            );
        }
    }

    #[test]
    fn merge_is_build_order_independent_in_error() {
        // Mergeability: whatever tree shape builds the digest, the answer
        // stays within the certified bound (exact equality of the digests
        // is NOT promised — only the bound).
        let n = 400;
        let values = pseudo_values(n, 7, 1 << 10);
        let k_comp = 40u64;
        let build = |chunk: usize| {
            let mut acc = QDigest::new(0, 1023, k_comp);
            for group in values.chunks(chunk) {
                let mut sub = QDigest::new(0, 1023, k_comp);
                for &v in group {
                    sub.merge_digest(&QDigest::singleton(0, 1023, k_comp, v));
                }
                acc.merge_digest(&sub);
            }
            acc.assert_invariants();
            acc
        };
        let bound = 10 * (n as u64 / k_comp); // depth 10 universe
        for chunk in [1usize, 3, 50, 400] {
            let d = build(chunk);
            for k in [1u64, 100, 200, 399] {
                let ans = d.query(k).unwrap();
                assert!(
                    rank_error(&values, ans, k) <= bound,
                    "chunk={chunk} k={k}: answer {ans}"
                );
            }
        }
    }

    #[test]
    fn uncompressed_digest_is_exact() {
        // n < k ⇒ threshold 0 ⇒ no compression ⇒ exact answers.
        let values = pseudo_values(30, 3, 1 << 9);
        let mut d = QDigest::new(0, 511, 1000);
        for &v in &values {
            d.merge_digest(&QDigest::singleton(0, 511, 1000, v));
        }
        for k in 1..=30u64 {
            assert_eq!(d.query(k), Some(rank::kth_smallest(&values, k)), "k={k}");
        }
    }

    #[test]
    fn empty_and_degenerate_universes() {
        let d = QDigest::new(5, 5, 4);
        assert!(d.is_empty());
        assert_eq!(d.query(1), None);
        assert_eq!(d.depth(), 0);
        let s = QDigest::singleton(5, 5, 4, 5);
        assert_eq!(s.query(1), Some(5));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn protocol_meets_its_advertised_tolerance() {
        let n = 120;
        let mut net = line_net(n);
        let query = QueryConfig::median(n, 0, 4095);
        for eps_milli in [50u32, 100, 250] {
            let mut alg = QDigestQuantile::new(query, eps_milli);
            let tol = alg.rank_tolerance(n as u64);
            assert!(tol <= (eps_milli as u64 * n as u64) / 1000);
            for t in 0..6u64 {
                let values = pseudo_values(n, t * 13 + 1, 4096);
                let ans = alg.round(&mut net, &values);
                assert!(
                    rank_error(&values, ans, query.k) <= tol,
                    "eps={eps_milli} t={t}: answer {ans}, tol {tol}"
                );
            }
        }
    }

    fn grid_net(n_sensors: usize) -> Network {
        let cols = (n_sensors as f64).sqrt().ceil() as usize + 1;
        let positions: Vec<Point> = (0..=n_sensors)
            .map(|i| Point::new((i % cols) as f64 * 9.0, (i / cols) as f64 * 9.0))
            .collect();
        let topo = Topology::build(positions, 13.0);
        let tree = RoutingTree::shortest_path_tree(&topo).unwrap();
        Network::new(topo, tree, RadioModel::default(), MessageSizes::default())
    }

    #[test]
    fn sketch_hotspot_beats_value_forwarding_at_scale() {
        // The headline: the funnel link carries O(k) sketch entries
        // (independent of n), not TAG's k = n/2 raw values. The win
        // appears once n/2 values outweigh the ~3k-entry sketch.
        let n = 600;
        let query = QueryConfig::median(n, 0, 1023);
        let values = pseudo_values(n, 5, 1024);
        let mut net_q = grid_net(n);
        let mut qd = QDigestQuantile::new(query, 250);
        qd.round(&mut net_q, &values);
        let mut net_t = grid_net(n);
        let mut tag = crate::Tag::new(query);
        tag.round(&mut net_t, &values);
        let (qd_hot, tag_hot) = (
            net_q.ledger().max_sensor_consumption(),
            net_t.ledger().max_sensor_consumption(),
        );
        assert!(
            qd_hot < tag_hot,
            "sketch hotspot {qd_hot} vs TAG hotspot {tag_hot}"
        );
    }

    #[test]
    fn payload_bits_charge_every_entry() {
        let sizes = MessageSizes::default();
        let mut d = QDigest::new(0, 1023, 4);
        d.merge_digest(&QDigest::singleton(0, 1023, 4, 17));
        d.merge_digest(&QDigest::singleton(0, 1023, 4, 900));
        assert_eq!(
            d.payload_bits(&sizes),
            sizes.counter_bits + 2 * sizes.sketch_entry_bits()
        );
        assert_eq!(d.value_count(), 2);
    }
}
