//! Multi-query service planning: query slots, per-round traffic plans and
//! a plan cache.
//!
//! The paper frames the sink as serving a *single* continuous quantile
//! query; a real deployment serves a workload — many concurrent continuous
//! queries `{φ, ε, epoch, algorithm}` over one shared network. This module
//! is the pure planning half of that service layer (the execution half,
//! which owns protocols and a `Network`, lives in `wsn_sim::service`),
//! modeled on the planner / plan-cache split of federated query routers:
//!
//! * a [`Service`] holds the registered queries in stable **slots** (the
//!   slot index doubles as the audit *lane*, so per-query energy
//!   attribution survives admits and retires of other queries);
//! * [`Service::plan`] compiles the queries *due* in a round (those whose
//!   `epoch` divides the round number) into a [`TrafficPlan`]: queries
//!   with identical `(algorithm, φ, ε, epoch)` — whose certified intervals
//!   coincide, the degenerate case of overlap — form one [`ExecGroup`]
//!   whose **leader** executes protocol waves while **followers** reuse
//!   the leader's refinement result at zero marginal traffic;
//! * plans are cached keyed on `(topology epoch, due-set shape)`, so
//!   admitting or retiring a query only invalidates the plans of rounds
//!   where that query was actually due — every other cached plan keeps
//!   hitting.

/// One registered continuous query, in planner-opaque form: `algo` is a
/// caller-chosen shape id for the protocol configuration (the simulator
/// hashes its `AlgorithmKind`), so the planner dedups without knowing any
/// protocol internals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuerySpec {
    /// Opaque algorithm shape id (must capture every protocol parameter
    /// that affects execution — two specs with equal fields must behave
    /// identically when run solo).
    pub algo: u64,
    /// Quantile fraction in milli-units, `0..=1000` (`0` = minimum,
    /// `1000` = maximum; rank clamping is the protocol's business).
    pub phi_milli: u32,
    /// Rank tolerance in milli-units (`0` = exact).
    pub eps_milli: u32,
    /// Reporting epoch in rounds: the query is due every `epoch`-th round
    /// (`0` is treated as every round).
    pub epoch: u32,
}

impl QuerySpec {
    /// Whether this query must report in `round` (epoch-0 queries report
    /// every round).
    pub fn is_due(&self, round: u32) -> bool {
        round.is_multiple_of(self.epoch.max(1))
    }

    /// The dedup key: two due queries sharing it answer identically when
    /// run solo (same protocol shape, same rank target, same tolerance,
    /// same *state evolution* — the epoch matters because a protocol's
    /// state advances only on due rounds).
    fn group_key(&self) -> (u64, u32, u32, u32) {
        (self.algo, self.phi_milli, self.eps_milli, self.epoch.max(1))
    }
}

/// One execution group of a [`TrafficPlan`]: the leader's protocol runs
/// its waves, the followers copy its certified answer for free.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecGroup {
    /// Slot whose protocol instance executes.
    pub leader: usize,
    /// Slots that reuse the leader's result (same dedup key).
    pub followers: Vec<usize>,
}

/// The compiled plan for one round: which slots are due, and which
/// protocol instances actually execute.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TrafficPlan {
    /// Bitmask over slots (bit `s` = slot `s` is due this round).
    pub due_mask: u64,
    /// Execution groups in ascending leader-slot order — the canonical
    /// execution order, which keeps multi-query runs deterministic.
    pub groups: Vec<ExecGroup>,
}

impl TrafficPlan {
    /// Number of protocol executions this plan performs.
    pub fn executions(&self) -> usize {
        self.groups.len()
    }

    /// Number of due queries served (executions + free riders).
    pub fn served(&self) -> usize {
        self.groups.iter().map(|g| 1 + g.followers.len()).sum()
    }
}

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

#[inline]
fn fnv(hash: u64, word: u64) -> u64 {
    let mut h = hash;
    for b in word.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Cached compiled plans, keyed on `(topology epoch, due-set shape)`.
/// Bounded FIFO: at most [`PlanCache::CAP`] entries, oldest evicted first.
#[derive(Debug, Clone, Default)]
pub struct PlanCache {
    entries: Vec<((u64, u64), TrafficPlan)>,
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compile.
    pub misses: u64,
}

impl PlanCache {
    /// Maximum cached plans (a workload has at most one distinct due-set
    /// shape per lcm of its epochs, so 32 covers realistic mixes).
    pub const CAP: usize = 32;

    fn get(&mut self, key: (u64, u64)) -> Option<TrafficPlan> {
        match self.entries.iter().find(|(k, _)| *k == key) {
            Some((_, plan)) => {
                self.hits += 1;
                Some(plan.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    fn put(&mut self, key: (u64, u64), plan: TrafficPlan) {
        if self.entries.len() >= Self::CAP {
            self.entries.remove(0);
        }
        self.entries.push((key, plan));
    }

    /// Total lookups served (hits + misses).
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in milli-units (`1000` before any lookup — an untouched
    /// cache has not thrashed). The monitoring plane's cache-thrash
    /// watchdog compares this against its floor.
    pub fn hit_rate_milli(&self) -> u32 {
        if self.lookups() == 0 {
            1000
        } else {
            (self.hits.saturating_mul(1000) / self.lookups()) as u32
        }
    }

    /// Cached plans currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True iff nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The registered query set: stable slots plus the plan cache.
#[derive(Debug, Clone, Default)]
pub struct Service {
    slots: Vec<Option<QuerySpec>>,
    cache: PlanCache,
}

impl Service {
    /// Maximum concurrently registered queries (the due mask is a `u64`).
    pub const MAX_QUERIES: usize = 64;

    /// An empty service.
    pub fn new() -> Self {
        Service::default()
    }

    /// Registers a query, reusing the lowest free slot, and returns its
    /// slot index (= audit lane).
    ///
    /// # Panics
    /// Panics when [`Service::MAX_QUERIES`] queries are already active.
    pub fn admit(&mut self, spec: QuerySpec) -> usize {
        if let Some(slot) = self.slots.iter().position(Option::is_none) {
            self.slots[slot] = Some(spec);
            return slot;
        }
        assert!(
            self.slots.len() < Self::MAX_QUERIES,
            "service is full ({} queries)",
            Self::MAX_QUERIES
        );
        self.slots.push(Some(spec));
        self.slots.len() - 1
    }

    /// Retires the query in `slot`, returning its spec (`None` when the
    /// slot was already empty). The slot becomes reusable; cached plans
    /// for due sets that never included this query keep hitting.
    pub fn retire(&mut self, slot: usize) -> Option<QuerySpec> {
        self.slots.get_mut(slot).and_then(Option::take)
    }

    /// The spec in `slot`, if any.
    pub fn get(&self, slot: usize) -> Option<&QuerySpec> {
        self.slots.get(slot).and_then(Option::as_ref)
    }

    /// Active `(slot, spec)` pairs in slot order.
    pub fn active(&self) -> impl Iterator<Item = (usize, &QuerySpec)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(s, q)| q.as_ref().map(|q| (s, q)))
    }

    /// Number of active queries.
    pub fn active_count(&self) -> usize {
        self.slots.iter().filter(|q| q.is_some()).count()
    }

    /// Highest slot ever used + 1 (the lane-book width).
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// The plan cache (hit/miss counters for reports).
    pub fn cache(&self) -> &PlanCache {
        &self.cache
    }

    /// The shape hash of the queries due in `round`: FNV-1a over the due
    /// `(slot, spec)` pairs in slot order. Two rounds with the same due
    /// set — regardless of what *other* queries exist — share a shape, so
    /// admits/retires only invalidate the plans they actually change.
    fn due_shape(&self, round: u32) -> (u64, u64) {
        let mut mask = 0u64;
        let mut shape = FNV_OFFSET;
        for (slot, spec) in self.active() {
            if spec.is_due(round) {
                mask |= 1u64 << slot;
                shape = fnv(shape, slot as u64);
                shape = fnv(shape, spec.algo);
                shape = fnv(shape, spec.phi_milli as u64);
                shape = fnv(shape, spec.eps_milli as u64);
                shape = fnv(shape, spec.epoch as u64);
            }
        }
        (mask, shape)
    }

    /// Compiles (or fetches from cache) the traffic plan for `round`.
    /// `topology_epoch` is the network's repair counter: a repaired
    /// routing tree invalidates every cached plan by changing the key.
    pub fn plan(&mut self, round: u32, topology_epoch: u64) -> TrafficPlan {
        let (due_mask, shape) = self.due_shape(round);
        let key = (topology_epoch, shape);
        if let Some(plan) = self.cache.get(key) {
            debug_assert_eq!(plan.due_mask, due_mask);
            return plan;
        }
        let mut groups: Vec<(u64, u32, u32, u32, ExecGroup)> = Vec::new();
        for (slot, spec) in self.active() {
            if !spec.is_due(round) {
                continue;
            }
            let gk = spec.group_key();
            match groups
                .iter_mut()
                .find(|(a, p, e, ep, _)| (*a, *p, *e, *ep) == gk)
            {
                Some((_, _, _, _, g)) => g.followers.push(slot),
                None => groups.push((
                    gk.0,
                    gk.1,
                    gk.2,
                    gk.3,
                    ExecGroup {
                        leader: slot,
                        followers: Vec::new(),
                    },
                )),
            }
        }
        let plan = TrafficPlan {
            due_mask,
            groups: groups.into_iter().map(|(_, _, _, _, g)| g).collect(),
        };
        self.cache.put(key, plan.clone());
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(algo: u64, phi: u32, epoch: u32) -> QuerySpec {
        QuerySpec {
            algo,
            phi_milli: phi,
            eps_milli: 0,
            epoch,
        }
    }

    #[test]
    fn admit_reuses_the_lowest_free_slot() {
        let mut svc = Service::new();
        assert_eq!(svc.admit(spec(1, 500, 1)), 0);
        assert_eq!(svc.admit(spec(2, 500, 1)), 1);
        assert_eq!(svc.admit(spec(3, 500, 1)), 2);
        assert_eq!(svc.retire(1), Some(spec(2, 500, 1)));
        assert_eq!(svc.retire(1), None, "already empty");
        assert_eq!(svc.admit(spec(4, 500, 1)), 1, "lowest free slot");
        assert_eq!(svc.active_count(), 3);
        assert_eq!(svc.slot_count(), 3);
    }

    #[test]
    fn identical_specs_group_under_one_leader() {
        let mut svc = Service::new();
        svc.admit(spec(1, 500, 1)); // 0
        svc.admit(spec(1, 500, 1)); // 1: duplicate of 0
        svc.admit(spec(1, 250, 1)); // 2: different phi
        svc.admit(spec(2, 500, 1)); // 3: different algorithm
        svc.admit(spec(1, 500, 2)); // 4: different epoch — must NOT group
        let plan = svc.plan(0, 0);
        assert_eq!(plan.due_mask, 0b11111);
        assert_eq!(plan.executions(), 4);
        assert_eq!(plan.served(), 5);
        assert_eq!(plan.groups[0].leader, 0);
        assert_eq!(plan.groups[0].followers, vec![1]);
        assert!(plan
            .groups
            .iter()
            .all(|g| g.leader != 4 || g.followers.is_empty()));
    }

    #[test]
    fn epochs_gate_dueness() {
        let mut svc = Service::new();
        svc.admit(spec(1, 500, 1)); // 0: every round
        svc.admit(spec(1, 500, 2)); // 1: even rounds
        svc.admit(spec(1, 500, 3)); // 2: every third round
        svc.admit(spec(1, 500, 0)); // 3: epoch 0 = every round
        assert_eq!(svc.plan(0, 0).due_mask, 0b1111, "round 0: all due");
        assert_eq!(svc.plan(1, 0).due_mask, 0b1001);
        assert_eq!(svc.plan(2, 0).due_mask, 0b1011);
        assert_eq!(svc.plan(3, 0).due_mask, 0b1101);
        assert_eq!(svc.plan(6, 0).due_mask, 0b1111);
    }

    #[test]
    fn cache_hits_on_repeated_shapes_and_survives_unrelated_retires() {
        let mut svc = Service::new();
        svc.admit(spec(1, 500, 1)); // 0
        svc.admit(spec(1, 250, 2)); // 1
        svc.plan(0, 0); // miss: {0,1}
        svc.plan(1, 0); // miss: {0}
        svc.plan(2, 0); // hit: {0,1}
        svc.plan(3, 0); // hit: {0}
        assert_eq!(svc.cache().hits, 2);
        assert_eq!(svc.cache().misses, 2);
        // Retiring query 1 leaves the odd-round plan ({0} due) untouched:
        // its shape never included slot 1.
        svc.retire(1);
        svc.plan(5, 0); // hit: same {0} shape as round 1
        assert_eq!(svc.cache().hits, 3);
        svc.plan(4, 0); // miss: {0,1} shrank to {0}... a new even-round shape?
                        // No — {0} alone IS the round-1 shape, so it hits too.
        assert_eq!(svc.cache().hits, 4, "even rounds now share the odd shape");
        // A topology repair invalidates everything.
        svc.plan(6, 1);
        assert_eq!(svc.cache().misses, 3);
    }

    #[test]
    fn hit_rate_is_milli_of_lookups() {
        let mut svc = Service::new();
        assert_eq!(svc.cache().hit_rate_milli(), 1000, "untouched cache");
        svc.admit(spec(1, 500, 1));
        svc.plan(0, 0); // miss
        assert_eq!(svc.cache().lookups(), 1);
        assert_eq!(svc.cache().hit_rate_milli(), 0);
        svc.plan(1, 0); // hit
        svc.plan(2, 0); // hit
        assert_eq!(svc.cache().lookups(), 3);
        assert_eq!(svc.cache().hit_rate_milli(), 666);
    }

    #[test]
    fn cache_is_bounded_fifo() {
        let mut svc = Service::new();
        svc.admit(spec(1, 500, 1));
        for epoch in 0..(PlanCache::CAP as u64 + 8) {
            // Distinct topology epochs force distinct keys.
            svc.plan(0, epoch);
        }
        assert_eq!(svc.cache().len(), PlanCache::CAP);
        assert_eq!(svc.cache().misses, PlanCache::CAP as u64 + 8);
    }

    #[test]
    fn due_is_epoch_division() {
        let q = spec(1, 500, 4);
        assert!(q.is_due(0));
        assert!(!q.is_due(1));
        assert!(!q.is_due(3));
        assert!(q.is_due(4));
        assert!(q.is_due(8));
        assert!(spec(1, 500, 0).is_due(7), "epoch 0 reports every round");
    }

    #[test]
    fn empty_service_plans_nothing() {
        let mut svc = Service::new();
        let plan = svc.plan(0, 0);
        assert_eq!(plan.due_mask, 0);
        assert!(plan.groups.is_empty());
        assert_eq!(plan.served(), 0);
    }
}
