//! POS — binary-search continuous quantiles (Cox et al. \[9\], §3.2).
//!
//! Rounds after initialization consist of a *validation* convergecast
//! (movement counters + min/max hints) and, when the filter is no longer
//! the k-th value, a *refinement* phase: the root repeatedly broadcasts the
//! midpoint of the candidate interval as a probe threshold; nodes whose
//! measurement switches interval answer with counter messages, halving the
//! interval each time. When the remaining candidates are guaranteed to fit
//! into a single message the root requests them directly and broadcasts the
//! final filter (§3.2 improvements).

use wsn_net::Network;

use crate::init::{run_init, InitStrategy};
use crate::payloads::{MovementCounters, ValueList};
use crate::protocol::{ContinuousQuantile, QueryConfig};
use crate::rank::{kth_smallest, side, Counts, Direction};
use crate::recovery;
use crate::validation::{node_validation, HintStyle, ValidationPayload};
use crate::Value;

/// Safety cap on refinement iterations: a clean binary search over a 64-bit
/// universe needs at most 64; only message loss can exceed this.
const MAX_REFINEMENTS: u32 = 80;

/// The POS continuous quantile protocol.
#[derive(Debug, Clone)]
pub struct Pos {
    query: QueryConfig,
    /// Root state: counts w.r.t. `root_filter`.
    counts: Counts,
    root_filter: Value,
    /// Per-node filter / probe threshold (may diverge under message loss).
    node_filter: Vec<Value>,
    /// Per-node previous-round measurement.
    prev: Vec<Value>,
    initialized: bool,
    /// Refinement iterations executed in the most recent round.
    last_refinements: u32,
    /// Direct value retrieval enabled (§3.2 improvement; on by default).
    direct_retrieval: bool,
    init: InitStrategy,
    /// Reusable reception-flag buffer for the probe/broadcast loop (scratch
    /// only, never observable state).
    recv: wsn_net::NodeBits,
}

impl Pos {
    /// Creates a POS query.
    pub fn new(query: QueryConfig) -> Self {
        Pos {
            query,
            counts: Counts::default(),
            root_filter: 0,
            node_filter: Vec::new(),
            prev: Vec::new(),
            initialized: false,
            last_refinements: 0,
            direct_retrieval: true,
            init: InitStrategy::default(),
            recv: wsn_net::NodeBits::new(),
        }
    }

    /// Selects the initialization strategy (§3.2: TAG by default).
    pub fn with_init(mut self, init: InitStrategy) -> Self {
        self.init = init;
        self
    }

    /// Disables the direct-retrieval improvement (ablation studies).
    pub fn without_direct_retrieval(mut self) -> Self {
        self.direct_retrieval = false;
        self
    }

    /// Refinement iterations used by the last round (0 when validation
    /// alone settled the quantile).
    pub fn last_refinements(&self) -> u32 {
        self.last_refinements
    }

    fn init_round(&mut self, net: &mut Network, values: &[Value]) -> Value {
        let out = run_init(net, values, self.query, self.init);
        let q = out.quantile;
        self.counts = out.counts;
        self.root_filter = q;
        self.node_filter = vec![q; net.len()];
        self.prev = values.to_vec();
        // Filter broadcast: one value.
        net.broadcast_into(net.sizes().value_bits, &mut self.recv);
        for i in self.recv.iter_ones() {
            self.node_filter[i] = q;
        }
        self.initialized = true;
        net.end_round();
        q
    }

    /// Broadcasts probe threshold `mid` and collects movement counters from
    /// nodes whose measurement switched interval, updating per-node
    /// thresholds and the root counts.
    fn probe(&mut self, net: &mut Network, values: &[Value], mid: Value) -> Counts {
        net.broadcast_into(net.sizes().value_bits, &mut self.recv);
        let n = net.len();
        let mut contributions: Vec<Option<MovementCounters>> = vec![None; n];
        for idx in 1..n {
            if !self.recv.get(idx) {
                continue; // node missed the probe; it cannot react
            }
            let old_thr = self.node_filter[idx];
            self.node_filter[idx] = mid;
            let v = values[idx - 1];
            let old_side = side(v, old_thr);
            let new_side = side(v, mid);
            if old_side != new_side {
                let mut c = MovementCounters::default();
                match old_side {
                    crate::rank::Side::Lt => c.outof_lt = 1,
                    crate::rank::Side::Gt => c.outof_gt = 1,
                    crate::rank::Side::Eq => {}
                }
                match new_side {
                    crate::rank::Side::Lt => c.into_lt = 1,
                    crate::rank::Side::Gt => c.into_gt = 1,
                    crate::rank::Side::Eq => {}
                }
                contributions[idx] = Some(c);
            }
        }
        let merged = net
            .convergecast_slots(&mut contributions, |_, _| {})
            .unwrap_or_default();
        let n_total = self.counts.n();
        let l = (self.counts.l + merged.into_lt).saturating_sub(merged.outof_lt);
        let g = (self.counts.g + merged.into_gt).saturating_sub(merged.outof_gt);
        let e = n_total.saturating_sub(l + g);
        self.root_filter = mid;
        Counts { l, e, g }
    }

    /// Requests all values in `[lo, hi]` directly, determines the quantile
    /// and re-establishes root/node state. `anchor` is what the root knows
    /// about ranks outside the interval.
    fn direct_retrieval(
        &mut self,
        net: &mut Network,
        values: &[Value],
        lo: Value,
        hi: Value,
        anchor: RankAnchor,
    ) -> Value {
        // Request: the interval bounds.
        net.broadcast_into(net.sizes().refinement_request_bits(), &mut self.recv);
        let n = net.len();
        let mut contributions: Vec<Option<ValueList>> = vec![None; n];
        for idx in 1..n {
            if !self.recv.get(idx) {
                continue;
            }
            let v = values[idx - 1];
            if v >= lo && v <= hi {
                contributions[idx] = Some(ValueList::single(v));
            }
        }
        let collected = net
            .convergecast_slots(&mut contributions, |_, _| {})
            .map(|l: ValueList| l.vals)
            .unwrap_or_default();

        // #values < lo: either known directly, or derived from the exact
        // count of values ≤ hi minus what the interval just returned.
        let below = match anchor {
            RankAnchor::BelowLo(b) => b,
            RankAnchor::AtMostHi(t) => t.saturating_sub(collected.len() as u64),
        };
        let rank_within = self.query.k.saturating_sub(below).max(1);
        let q = if collected.is_empty() {
            // Only possible under message loss; keep the previous filter.
            self.root_filter
        } else {
            kth_smallest(&collected, rank_within.min(collected.len() as u64))
        };

        let in_lt = collected.iter().filter(|&&v| v < q).count() as u64;
        let in_eq = collected.iter().filter(|&&v| v == q).count() as u64;
        let l = below + in_lt;
        let e = in_eq;
        self.counts = Counts {
            l,
            e,
            g: self.counts.n().saturating_sub(l + e),
        };
        self.root_filter = q;
        // Final filter broadcast (§3.2: "with this improvement a final
        // broadcast becomes necessary").
        net.broadcast_into(net.sizes().value_bits, &mut self.recv);
        for i in self.recv.iter_ones() {
            self.node_filter[i] = q;
        }
        q
    }
}

impl ContinuousQuantile for Pos {
    fn name(&self) -> &'static str {
        "POS"
    }

    fn round(&mut self, net: &mut Network, values: &[Value]) -> Value {
        if !self.initialized {
            return self.init_round(net, values);
        }
        self.last_refinements = 0;
        let n = net.len();

        // --- Validation ---
        net.set_phase(wsn_net::Phase::Validation);
        let mut contributions: Vec<Option<ValidationPayload>> = Vec::with_capacity(n);
        contributions.push(None); // root
        for idx in 1..n {
            contributions.push(node_validation(
                self.prev[idx - 1],
                values[idx - 1],
                self.node_filter[idx],
                HintStyle::MinMax,
                None,
            ));
        }
        self.prev.copy_from_slice(values);
        // A silently incomplete validation would corrupt the maintained
        // rank forever; with wave recovery enabled the collection re-issues
        // the wave for missing subtrees (cloning keeps the closure
        // idempotent).
        let validation =
            recovery::collect_with_recovery(net, |id| contributions[id.index()].clone());

        if let Some(v) = &validation {
            let n_total = self.counts.n();
            let l = (self.counts.l + v.counters.into_lt).saturating_sub(v.counters.outof_lt);
            let g = (self.counts.g + v.counters.into_gt).saturating_sub(v.counters.outof_gt);
            self.counts = Counts {
                l,
                g,
                e: n_total.saturating_sub(l + g),
            };
        }

        if self.counts.is_valid_quantile(self.query.k) {
            net.end_round();
            return self.root_filter;
        }

        // --- Refinement: binary search with hints ---
        net.set_phase(wsn_net::Phase::Refinement);
        let filter = self.root_filter;
        let dir = self
            .counts
            .quantile_moved(self.query.k)
            .expect("invalid counts imply a direction");
        let empty = ValidationPayload {
            counters: MovementCounters::default(),
            hint_min: Value::MAX,
            hint_max: Value::MIN,
            max_diff: 0,
            extra: ValueList::default(),
            style: HintStyle::MinMax,
        };
        let v = validation.as_ref().unwrap_or(&empty);
        // `below`/`above`: exact counts outside [lo, hi] when known
        // (None = only the trivial bound is available).
        let (mut lo, mut hi, mut below, mut above) = match dir {
            Direction::Down => (
                v.lower_bound(filter).max(self.query.range_min),
                filter - 1,
                None,
                Some(self.counts.n() - self.counts.l),
            ),
            Direction::Up => (
                filter + 1,
                v.upper_bound(filter).min(self.query.range_max),
                Some(self.counts.l + self.counts.e),
                None,
            ),
        };

        let capacity = net.sizes().values_per_message() as u64;
        let result = loop {
            if lo > hi {
                // Inconsistent state: only reachable under message loss.
                break self.root_filter;
            }
            // Upper bound on candidate count in [lo, hi].
            let known_outside = below.unwrap_or(0) + above.unwrap_or(0);
            let ub = self.counts.n().saturating_sub(known_outside);
            if self.direct_retrieval && ub <= capacity {
                self.last_refinements += 1;
                let anchor = match (below, above) {
                    (Some(b), _) => RankAnchor::BelowLo(b),
                    // #≤hi = n − #>hi is exact; the retrieval response
                    // resolves the split around lo.
                    (None, Some(a)) => RankAnchor::AtMostHi(self.counts.n() - a),
                    (None, None) => unreachable!("one side is always known"),
                };
                break self.direct_retrieval(net, values, lo, hi, anchor);
            }

            if self.last_refinements >= MAX_REFINEMENTS {
                break self.root_filter;
            }
            self.last_refinements += 1;
            let mid = lo + (hi - lo) / 2;
            self.counts = self.probe(net, values, mid);
            if self.counts.is_valid_quantile(self.query.k) {
                break mid;
            }
            match self.counts.quantile_moved(self.query.k).expect("invalid") {
                Direction::Down => {
                    hi = mid - 1;
                    above = Some(self.counts.n() - self.counts.l);
                }
                Direction::Up => {
                    lo = mid + 1;
                    below = Some(self.counts.l + self.counts.e);
                }
            }
        };

        net.end_round();
        result
    }
}

/// What the root knows about ranks outside a retrieval interval `[lo, hi]`:
/// either the exact count of values `< lo`, or the exact count of values
/// `≤ hi` (from which `< lo` follows once the interval's content arrives).
#[derive(Debug, Clone, Copy)]
enum RankAnchor {
    BelowLo(u64),
    AtMostHi(u64),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rank;
    use wsn_net::{MessageSizes, Point, RadioModel, RoutingTree, Topology};

    fn line_net(n_sensors: usize) -> Network {
        let positions = (0..=n_sensors)
            .map(|i| Point::new(i as f64 * 10.0, 0.0))
            .collect();
        let topo = Topology::build(positions, 12.0);
        let tree = RoutingTree::shortest_path_tree(&topo).unwrap();
        Network::new(topo, tree, RadioModel::default(), MessageSizes::default())
    }

    fn drifting_values(n: usize, t: u32) -> Vec<Value> {
        (0..n)
            .map(|i| 100 + (i as Value * 7) % 50 + (t as Value * 3) % 40)
            .collect()
    }

    #[test]
    fn pos_is_exact_over_many_rounds() {
        let n = 30;
        let mut net = line_net(n);
        let query = QueryConfig::median(n, 0, 1023);
        let mut pos = Pos::new(query);
        for t in 0..40 {
            let values = drifting_values(n, t);
            let got = pos.round(&mut net, &values);
            assert_eq!(got, rank::kth_smallest(&values, query.k), "round {t}");
        }
    }

    #[test]
    fn stable_values_need_no_refinement() {
        let n = 20;
        let mut net = line_net(n);
        let query = QueryConfig::median(n, 0, 1023);
        let mut pos = Pos::new(query);
        let values = drifting_values(n, 0);
        pos.round(&mut net, &values);
        let msgs_before = net.stats().messages;
        pos.round(&mut net, &values);
        assert_eq!(pos.last_refinements(), 0);
        // An unchanged round generates zero traffic: no node moved.
        assert_eq!(net.stats().messages, msgs_before);
    }

    #[test]
    fn pos_tracks_abrupt_changes() {
        let n = 25;
        let mut net = line_net(n);
        let query = QueryConfig::median(n, 0, 1023);
        let mut pos = Pos::new(query);
        let v0: Vec<Value> = (0..n).map(|i| 100 + i as Value).collect();
        pos.round(&mut net, &v0);
        // Jump the whole distribution far up.
        let v1: Vec<Value> = (0..n).map(|i| 900 + ((i * 3) % 50) as Value).collect();
        let got = pos.round(&mut net, &v1);
        assert_eq!(got, rank::kth_smallest(&v1, query.k));
        // And far down.
        let v2: Vec<Value> = (0..n).map(|i| 5 + ((i * 5) % 30) as Value).collect();
        let got = pos.round(&mut net, &v2);
        assert_eq!(got, rank::kth_smallest(&v2, query.k));
    }

    #[test]
    fn pos_handles_duplicate_heavy_data() {
        let n = 16;
        let mut net = line_net(n);
        let query = QueryConfig::median(n, 0, 15);
        let mut pos = Pos::new(query);
        for t in 0..10 {
            let values: Vec<Value> = (0..n).map(|i| ((i + t as usize) % 4) as Value).collect();
            let got = pos.round(&mut net, &values);
            assert_eq!(got, rank::kth_smallest(&values, query.k), "round {t}");
        }
    }

    #[test]
    fn pos_exact_for_non_median_quantiles() {
        let n = 20;
        let mut net = line_net(n);
        for &k in &[1u64, 5, 15, 20] {
            let query = QueryConfig {
                k,
                range_min: 0,
                range_max: 1023,
            };
            let mut pos = Pos::new(query);
            for t in 0..12 {
                let values = drifting_values(n, t * 5);
                let got = pos.round(&mut net, &values);
                assert_eq!(got, rank::kth_smallest(&values, k), "k={k} t={t}");
            }
        }
    }

    #[test]
    fn refinements_stay_logarithmic() {
        let n = 40;
        let mut net = line_net(n);
        let query = QueryConfig::median(n, 0, 1 << 16);
        let mut pos = Pos::new(query);
        let v0: Vec<Value> = (0..n).map(|i| (i as Value) * 100).collect();
        pos.round(&mut net, &v0);
        let v1: Vec<Value> = v0.iter().map(|v| v + 1500).collect();
        pos.round(&mut net, &v1);
        assert!(
            pos.last_refinements() <= 17,
            "refinements {}",
            pos.last_refinements()
        );
    }
}
