//! Snapshot quantile queries — the cost-model `b`-ary search of the
//! authors' prior work \[21\], which both HBC (§4.1) and the protocol
//! initializations (§3.2, §4.2.1) build on.
//!
//! A snapshot query knows nothing about previous rounds: the root descends
//! from the full value universe `[r_min, r_max]` with histogram
//! convergecasts of `b = b_opt` buckets (`b_opt` from
//! [`crate::cost_model`]) until the k-th value is isolated, optionally
//! short-circuiting through direct value retrieval (\[21\]).

use wsn_net::Network;

use crate::cost_model;
use crate::descent::{descend, DescentConfig};
use crate::protocol::QueryConfig;
use crate::rank::Counts;
use crate::retrieval::RankAnchor;
use crate::Value;

/// Result of a snapshot query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotOutcome {
    /// The k-th smallest value.
    pub quantile: Value,
    /// Counts relative to the quantile — exactly the state a continuous
    /// protocol needs to take over (§3.2).
    pub counts: Counts,
    /// Histogram/retrieval convergecasts spent.
    pub refinements: u32,
    /// Width and occupancy of the last refinement interval, when a
    /// histogram request was made — what IQ's §4.2.1 uses to size its
    /// initial Ξ ("selecting a representative refinement interval and
    /// dividing its length by the number of candidates contained in it").
    pub last_interval: Option<(u64, u64)>,
}

/// A snapshot φ-quantile query using the \[21\] cost model.
#[derive(Debug, Clone, Copy)]
pub struct SnapshotQuery {
    query: QueryConfig,
    b: usize,
    direct_retrieval: bool,
}

impl SnapshotQuery {
    /// Creates a snapshot query; `b` comes from the cost model.
    pub fn new(query: QueryConfig, sizes: &wsn_net::MessageSizes) -> Self {
        SnapshotQuery {
            query,
            b: cost_model::optimal_buckets(sizes, query.range_size()),
            direct_retrieval: true,
        }
    }

    /// Overrides the bucket count (e.g. `b = 2` reproduces the binary
    /// search of Shamir \[22\] / POS \[9\]).
    pub fn with_buckets(mut self, b: usize) -> Self {
        assert!(b >= 2, "need at least two buckets");
        self.b = b;
        self
    }

    /// Disables direct value retrieval (ablation).
    pub fn without_direct_retrieval(mut self) -> Self {
        self.direct_retrieval = false;
        self
    }

    /// The bucket count in use.
    pub fn buckets(&self) -> usize {
        self.b
    }

    /// Executes the query over the current measurements. Assumes (like
    /// §5.1.6 does for TAG) that the root knows `|N|`.
    pub fn run(&self, net: &mut Network, values: &[Value]) -> Option<SnapshotOutcome> {
        let n_total = values.len() as u64;
        let capacity = net.sizes().values_per_message() as u64;
        let cfg = DescentConfig {
            b: self.b,
            k: self.query.k,
            n_total,
            direct_capacity: self.direct_retrieval.then_some(capacity),
            max_refinements: 200,
        };
        let mut refinements = 0;
        let outcome = descend(
            net,
            values,
            cfg,
            self.query.range_min,
            self.query.range_max,
            RankAnchor::BelowLo(0),
            Some(n_total),
            &mut refinements,
            |_, _, _| {},
        )?;
        Some(SnapshotOutcome {
            quantile: outcome.quantile,
            counts: outcome.counts,
            refinements,
            last_interval: outcome.last_request.map(|(lo, hi)| {
                let width = (hi - lo + 1) as u64;
                let count = outcome.last_request_counts.map(|c| c.e).unwrap_or_default();
                (width, count)
            }),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rank::kth_smallest;
    use wsn_net::{MessageSizes, Point, RadioModel, RoutingTree, Topology};

    fn line_net(n_sensors: usize) -> Network {
        let positions = (0..=n_sensors)
            .map(|i| Point::new(i as f64 * 10.0, 0.0))
            .collect();
        let topo = Topology::build(positions, 12.0);
        let tree = RoutingTree::shortest_path_tree(&topo).unwrap();
        Network::new(topo, tree, RadioModel::default(), MessageSizes::default())
    }

    #[test]
    fn snapshot_finds_every_rank() {
        let n = 30;
        let values: Vec<Value> = (0..n).map(|i| ((i * 37) % 500) as Value).collect();
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for k in [1u64, 7, 15, 23, 30] {
            let mut net = line_net(n);
            let query = QueryConfig {
                k,
                range_min: 0,
                range_max: 511,
            };
            let snap =
                SnapshotQuery::new(query, &MessageSizes::default()).without_direct_retrieval();
            let out = snap.run(&mut net, &values).unwrap();
            assert_eq!(out.quantile, sorted[k as usize - 1], "k={k}");
            assert!(out.counts.is_valid_quantile(k));
            assert!(out.refinements >= 1);
        }
    }

    #[test]
    fn binary_override_reproduces_b2_search() {
        let n = 20;
        let values: Vec<Value> = (0..n).map(|i| i as Value * 13).collect();
        let mut net = line_net(n);
        let query = QueryConfig::median(n, 0, 1023);
        let snap = SnapshotQuery::new(query, &MessageSizes::default())
            .with_buckets(2)
            .without_direct_retrieval();
        assert_eq!(snap.buckets(), 2);
        let out = snap.run(&mut net, &values).unwrap();
        assert_eq!(out.quantile, kth_smallest(&values, query.k));
        // Binary search: roughly log2(1024) = 10 iterations.
        assert!(
            out.refinements >= 8 && out.refinements <= 12,
            "{}",
            out.refinements
        );
    }

    #[test]
    fn cost_model_b_beats_binary_in_refinements() {
        let n = 40;
        let values: Vec<Value> = (0..n).map(|i| ((i * 97) % 4096) as Value).collect();
        let query = QueryConfig::median(n, 0, 4095);
        let sizes = MessageSizes::default();
        let run = |snap: SnapshotQuery| {
            let mut net = line_net(n);
            snap.run(&mut net, &values).unwrap().refinements
        };
        let opt = run(SnapshotQuery::new(query, &sizes).without_direct_retrieval());
        let bin = run(SnapshotQuery::new(query, &sizes)
            .with_buckets(2)
            .without_direct_retrieval());
        assert!(opt < bin, "b_opt {opt} vs binary {bin}");
    }

    #[test]
    fn direct_retrieval_collapses_small_networks() {
        let n = 20; // everything fits one message
        let values: Vec<Value> = (0..n).map(|i| i as Value).collect();
        let mut net = line_net(n);
        let query = QueryConfig::median(n, 0, 1 << 20);
        let snap = SnapshotQuery::new(query, &MessageSizes::default());
        let out = snap.run(&mut net, &values).unwrap();
        assert_eq!(out.quantile, kth_smallest(&values, query.k));
        assert_eq!(out.refinements, 1);
    }

    #[test]
    fn last_interval_feeds_xi_estimation() {
        let n = 30;
        let values: Vec<Value> = (0..n).map(|i| i as Value * 11).collect();
        let mut net = line_net(n);
        let query = QueryConfig::median(n, 0, 1023);
        let snap = SnapshotQuery::new(query, &MessageSizes::default()).without_direct_retrieval();
        let out = snap.run(&mut net, &values).unwrap();
        let (width, count) = out.last_interval.unwrap();
        assert!(width >= 1);
        assert!(count >= 1, "the quantile sits in the last interval");
    }
}
