//! LCLL — the message-size-driven histogram baseline (Liu et al. \[16\], as
//! configured in §5.1.6 of the paper).
//!
//! LCLL chooses its bucket count from the message size — with the default
//! 128-byte payload and 2-byte counts, `b = 64` — and comes in two
//! refinement flavors:
//!
//! * **Hierarchical refining (LCLL-H)**: zoom *out* of the last quantile
//!   position through geometrically growing probe windows until the new
//!   k-th value is covered, then zoom back *in* with `b`-ary histogram
//!   descents — `O(log_b d)` refinement convergecasts for a quantile
//!   displacement `d`, independent of `|N|` and of measurement noise.
//! * **Slip refining (LCLL-S)**: slide a width-`b` window of *unit*
//!   buckets step by step from the old quantile toward the new one —
//!   `O(d / b)` highly selective refinements (only nodes inside the small
//!   window respond).
//!
//! Validation uses the improved scheme of §5.1.6: a node whose measurement
//! slipped between the three partitions (`below` / `at` / `above` the last
//! quantile) transmits two signed bucket deltas; boundary-partition nodes
//! stay silent. LCLL sends no hints, which is exactly why LCLL-H needs the
//! geometric zoom-out stage.

use wsn_net::Network;

use crate::buckets::BucketPartition;
use crate::descent::{descend, histogram_request, DescentConfig};
use crate::init::{run_init, InitStrategy};
use crate::payloads::DeltaHistogram;
use crate::protocol::{ContinuousQuantile, QueryConfig};
use crate::rank::{side, Counts, Direction, Side};
use crate::recovery;
use crate::Value;

/// Refinement strategy of LCLL (§5.1.6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefiningStrategy {
    /// Geometric zoom-out + `b`-ary zoom-in: `O(log d)` refinements.
    Hierarchical,
    /// Stepwise window sliding with unit buckets: `O(d / b)` refinements.
    Slip,
}

/// Safety cap on refinement convergecasts per round.
const MAX_REFINEMENTS: u32 = 10_000;

/// The LCLL continuous quantile protocol.
#[derive(Debug, Clone)]
pub struct Lcll {
    query: QueryConfig,
    strategy: RefiningStrategy,
    b: usize,
    /// Whether direct value retrieval (\[21\]) may shortcut H-descents.
    direct_retrieval: bool,
    counts: Counts,
    root_filter: Value,
    node_filter: Vec<Value>,
    prev: Vec<Value>,
    initialized: bool,
    last_refinements: u32,
    init: InitStrategy,
}

impl Lcll {
    /// Creates an LCLL query; `b` is derived from the message size as \[16\]
    /// suggests (`payload / bucket size`).
    pub fn new(
        query: QueryConfig,
        strategy: RefiningStrategy,
        sizes: &wsn_net::MessageSizes,
    ) -> Self {
        let b = (sizes.max_payload_bits / sizes.bucket_bits).max(2) as usize;
        Lcll {
            query,
            strategy,
            b,
            direct_retrieval: true,
            counts: Counts::default(),
            root_filter: 0,
            node_filter: Vec::new(),
            prev: Vec::new(),
            initialized: false,
            last_refinements: 0,
            init: InitStrategy::default(),
        }
    }

    /// Selects the initialization strategy.
    pub fn with_init(mut self, init: InitStrategy) -> Self {
        self.init = init;
        self
    }

    /// Disables the direct-retrieval improvement (ablation).
    pub fn without_direct_retrieval(mut self) -> Self {
        self.direct_retrieval = false;
        self
    }

    /// The bucket count in use (64 with default message sizes).
    pub fn buckets(&self) -> usize {
        self.b
    }

    /// Refinement convergecasts in the most recent round.
    pub fn last_refinements(&self) -> u32 {
        self.last_refinements
    }

    fn init_round(&mut self, net: &mut Network, values: &[Value]) -> Value {
        let out = run_init(net, values, self.query, self.init);
        let q = out.quantile;
        self.counts = out.counts;
        self.root_filter = q;
        self.node_filter = vec![q; net.len()];
        self.prev = values.to_vec();
        for i in net.broadcast(net.sizes().value_bits).iter_ones() {
            self.node_filter[i] = q;
        }
        self.initialized = true;
        net.end_round();
        q
    }

    /// Hierarchical refining: geometric zoom-out then `b`-ary descent.
    fn refine_hierarchical(
        &mut self,
        net: &mut Network,
        values: &[Value],
        dir: Direction,
    ) -> Value {
        net.set_phase(wsn_net::Phase::Refinement);
        let k = self.query.k;
        let n_total = self.counts.n();
        let capacity = net.sizes().values_per_message() as u64;
        let cfg = DescentConfig {
            b: self.b,
            k,
            n_total,
            direct_capacity: self.direct_retrieval.then_some(capacity),
            max_refinements: MAX_REFINEMENTS,
        };

        // Zoom out: probe adjacent windows of width b, b², b³, … away from
        // the old quantile until the probed window covers the k-th value.
        let mut width = self.b as u64;
        match dir {
            Direction::Down => {
                let mut below = self.counts.l; // #< current window start
                let mut hi = self.root_filter - 1;
                loop {
                    if hi < self.query.range_min || self.last_refinements >= MAX_REFINEMENTS {
                        return self.root_filter;
                    }
                    let w = width.min(self.query.range_size()) as Value;
                    let lo = (hi - w + 1).max(self.query.range_min);
                    self.last_refinements += 1;
                    let part = BucketPartition::new(lo, hi, self.b);
                    let hist = histogram_request(net, values, part, |_, _, _| {});
                    let c = hist.total();
                    if k > below - c.min(below) {
                        // Covered: descend inside the probed window using
                        // the histogram we already have.
                        let below_window = below - c.min(below);
                        let rank_in = k - below_window;
                        let mut cum = 0u64;
                        let mut chosen = part.buckets - 1;
                        for i in 0..part.buckets {
                            if cum + hist.counts()[i] >= rank_in {
                                chosen = i;
                                break;
                            }
                            cum += hist.counts()[i];
                        }
                        let (s, e) = part.bounds(chosen);
                        let anchor = crate::retrieval::RankAnchor::BelowLo(below_window + cum);
                        let outcome = descend(
                            net,
                            values,
                            cfg,
                            s,
                            e,
                            anchor,
                            Some(hist.counts()[chosen]),
                            &mut self.last_refinements,
                            |_, _, _| {},
                        );
                        return match outcome {
                            Some(o) => {
                                self.counts = o.counts;
                                o.quantile
                            }
                            None => self.root_filter,
                        };
                    }
                    below -= c;
                    hi = lo - 1;
                    width = width.saturating_mul(self.b as u64);
                }
            }
            Direction::Up => {
                let mut at_most = self.counts.l + self.counts.e; // #< window start
                let mut lo = self.root_filter + 1;
                loop {
                    if lo > self.query.range_max || self.last_refinements >= MAX_REFINEMENTS {
                        return self.root_filter;
                    }
                    let w = width.min(self.query.range_size()) as Value;
                    let hi = (lo + w - 1).min(self.query.range_max);
                    self.last_refinements += 1;
                    let part = BucketPartition::new(lo, hi, self.b);
                    let hist = histogram_request(net, values, part, |_, _, _| {});
                    let c = hist.total();
                    if k <= at_most + c {
                        let rank_in = k - at_most;
                        let mut cum = 0u64;
                        let mut chosen = part.buckets - 1;
                        for i in 0..part.buckets {
                            if cum + hist.counts()[i] >= rank_in {
                                chosen = i;
                                break;
                            }
                            cum += hist.counts()[i];
                        }
                        let (s, e) = part.bounds(chosen);
                        let anchor = crate::retrieval::RankAnchor::BelowLo(at_most + cum);
                        let outcome = descend(
                            net,
                            values,
                            cfg,
                            s,
                            e,
                            anchor,
                            Some(hist.counts()[chosen]),
                            &mut self.last_refinements,
                            |_, _, _| {},
                        );
                        return match outcome {
                            Some(o) => {
                                self.counts = o.counts;
                                o.quantile
                            }
                            None => self.root_filter,
                        };
                    }
                    at_most += c;
                    lo = hi + 1;
                    width = width.saturating_mul(self.b as u64);
                }
            }
        }
    }

    /// Slip refining: slide a width-`b` unit-bucket window stepwise.
    fn refine_slip(&mut self, net: &mut Network, values: &[Value], dir: Direction) -> Value {
        net.set_phase(wsn_net::Phase::Refinement);
        let k = self.query.k;
        let n_total = self.counts.n();
        let step = self.b as Value;
        match dir {
            Direction::Down => {
                let mut below = self.counts.l;
                let mut hi = self.root_filter - 1;
                loop {
                    if hi < self.query.range_min || self.last_refinements >= MAX_REFINEMENTS {
                        return self.root_filter;
                    }
                    let lo = (hi - step + 1).max(self.query.range_min);
                    self.last_refinements += 1;
                    // Unit buckets: one bucket per value in the window.
                    let part = BucketPartition::new(lo, hi, (hi - lo + 1) as usize);
                    let hist = histogram_request(net, values, part, |_, _, _| {});
                    let c = hist.total();
                    let below_window = below - c.min(below);
                    if k > below_window {
                        let rank_in = k - below_window;
                        let mut cum = 0u64;
                        for i in 0..part.buckets {
                            if cum + hist.counts()[i] >= rank_in {
                                let q = lo + i as Value;
                                let l = below_window + cum;
                                let e = hist.counts()[i];
                                self.counts = Counts {
                                    l,
                                    e,
                                    g: n_total.saturating_sub(l + e),
                                };
                                return q;
                            }
                            cum += hist.counts()[i];
                        }
                        return self.root_filter; // loss inconsistency
                    }
                    below = below_window;
                    hi = lo - 1;
                }
            }
            Direction::Up => {
                let mut at_most = self.counts.l + self.counts.e;
                let mut lo = self.root_filter + 1;
                loop {
                    if lo > self.query.range_max || self.last_refinements >= MAX_REFINEMENTS {
                        return self.root_filter;
                    }
                    let hi = (lo + step - 1).min(self.query.range_max);
                    self.last_refinements += 1;
                    let part = BucketPartition::new(lo, hi, (hi - lo + 1) as usize);
                    let hist = histogram_request(net, values, part, |_, _, _| {});
                    let c = hist.total();
                    if k <= at_most + c {
                        let rank_in = k - at_most;
                        let mut cum = 0u64;
                        for i in 0..part.buckets {
                            if cum + hist.counts()[i] >= rank_in {
                                let q = lo + i as Value;
                                let l = at_most + cum;
                                let e = hist.counts()[i];
                                self.counts = Counts {
                                    l,
                                    e,
                                    g: n_total.saturating_sub(l + e),
                                };
                                return q;
                            }
                            cum += hist.counts()[i];
                        }
                        return self.root_filter;
                    }
                    at_most += c;
                    lo = hi + 1;
                }
            }
        }
    }
}

impl ContinuousQuantile for Lcll {
    fn name(&self) -> &'static str {
        match self.strategy {
            RefiningStrategy::Hierarchical => "LCLL-H",
            RefiningStrategy::Slip => "LCLL-S",
        }
    }

    fn round(&mut self, net: &mut Network, values: &[Value]) -> Value {
        if !self.initialized {
            return self.init_round(net, values);
        }
        self.last_refinements = 0;
        let n = net.len();

        // --- Validation: delta pairs over {below, at, above} ---
        net.set_phase(wsn_net::Phase::Validation);
        let mut contributions: Vec<Option<DeltaHistogram>> = Vec::with_capacity(n);
        contributions.push(None);
        for idx in 1..n {
            let f = self.node_filter[idx];
            let old = side(self.prev[idx - 1], f);
            let new = side(values[idx - 1], f);
            contributions.push(
                (old != new)
                    .then(|| DeltaHistogram::movement(3, bucket_code(old), bucket_code(new))),
            );
        }
        self.prev.copy_from_slice(values);
        // Incomplete validations corrupt the maintained counts; re-issue
        // the wave for missing subtrees when wave recovery is enabled.
        if let Some(deltas) =
            recovery::collect_with_recovery(net, |id| contributions[id.index()].clone())
        {
            let apply = |base: u64, d: i64| -> u64 {
                if d >= 0 {
                    base + d as u64
                } else {
                    base.saturating_sub((-d) as u64)
                }
            };
            self.counts = Counts {
                l: apply(self.counts.l, deltas.deltas[0]),
                e: apply(self.counts.e, deltas.deltas[1]),
                g: apply(self.counts.g, deltas.deltas[2]),
            };
        }

        let k = self.query.k;
        let result = if self.counts.is_valid_quantile(k) {
            self.root_filter
        } else {
            let dir = self.counts.quantile_moved(k).expect("invalid counts");
            match self.strategy {
                RefiningStrategy::Hierarchical => self.refine_hierarchical(net, values, dir),
                RefiningStrategy::Slip => self.refine_slip(net, values, dir),
            }
        };

        if result != self.root_filter {
            self.root_filter = result;
            for i in net.broadcast(net.sizes().value_bits).iter_ones() {
                self.node_filter[i] = result;
            }
        }
        net.end_round();
        result
    }
}

/// Wire code of a partition side: 0 = below, 1 = at, 2 = above.
fn bucket_code(s: Side) -> usize {
    match s {
        Side::Lt => 0,
        Side::Eq => 1,
        Side::Gt => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rank;
    use wsn_net::{MessageSizes, Point, RadioModel, RoutingTree, Topology};

    fn line_net(n_sensors: usize) -> Network {
        let positions = (0..=n_sensors)
            .map(|i| Point::new(i as f64 * 10.0, 0.0))
            .collect();
        let topo = Topology::build(positions, 12.0);
        let tree = RoutingTree::shortest_path_tree(&topo).unwrap();
        Network::new(topo, tree, RadioModel::default(), MessageSizes::default())
    }

    fn new_lcll(query: QueryConfig, strategy: RefiningStrategy) -> Lcll {
        Lcll::new(query, strategy, &MessageSizes::default())
    }

    fn drifting_values(n: usize, t: u32) -> Vec<Value> {
        (0..n)
            .map(|i| 200 + (i as Value * 13) % 90 + ((t as Value * 9) % 150))
            .collect()
    }

    #[test]
    fn bucket_count_from_message_size() {
        let lcll = new_lcll(
            QueryConfig::median(10, 0, 1023),
            RefiningStrategy::Hierarchical,
        );
        assert_eq!(lcll.buckets(), 64);
    }

    #[test]
    fn both_strategies_are_exact() {
        for strategy in [RefiningStrategy::Hierarchical, RefiningStrategy::Slip] {
            let n = 30;
            let mut net = line_net(n);
            let query = QueryConfig::median(n, 0, 1023);
            let mut lcll = new_lcll(query, strategy);
            for t in 0..40 {
                let values = drifting_values(n, t);
                let got = lcll.round(&mut net, &values);
                assert_eq!(
                    got,
                    rank::kth_smallest(&values, query.k),
                    "{strategy:?} round {t}"
                );
            }
        }
    }

    #[test]
    fn slip_refinements_grow_linearly_with_distance() {
        let n = 20;
        let query = QueryConfig::median(n, 0, 100_000);
        let jump = |d: Value| {
            let mut net = line_net(n);
            let mut lcll = new_lcll(query, RefiningStrategy::Slip);
            let v0: Vec<Value> = (0..n).map(|i| 50_000 + i as Value).collect();
            lcll.round(&mut net, &v0);
            let v1: Vec<Value> = v0.iter().map(|v| v + d).collect();
            assert_eq!(lcll.round(&mut net, &v1), rank::kth_smallest(&v1, query.k));
            lcll.last_refinements()
        };
        let small = jump(100);
        let large = jump(6_400);
        assert!(
            large >= small * 8,
            "slip should be ~linear: d=100 -> {small}, d=6400 -> {large}"
        );
    }

    #[test]
    fn hierarchical_refinements_grow_logarithmically() {
        let n = 20;
        let query = QueryConfig::median(n, 0, 10_000_000);
        let jump = |d: Value| {
            let mut net = line_net(n);
            let mut lcll =
                new_lcll(query, RefiningStrategy::Hierarchical).without_direct_retrieval();
            let v0: Vec<Value> = (0..n).map(|i| 5_000_000 + i as Value).collect();
            lcll.round(&mut net, &v0);
            let v1: Vec<Value> = v0.iter().map(|v| v + d).collect();
            assert_eq!(lcll.round(&mut net, &v1), rank::kth_smallest(&v1, query.k));
            lcll.last_refinements()
        };
        let small = jump(1_000);
        let large = jump(4_000_000);
        assert!(
            large <= small + 6,
            "hierarchical should be ~log: d=1e3 -> {small}, d=4e6 -> {large}"
        );
    }

    #[test]
    fn quiet_rounds_are_free() {
        let n = 15;
        let mut net = line_net(n);
        let query = QueryConfig::median(n, 0, 1023);
        let mut lcll = new_lcll(query, RefiningStrategy::Slip);
        let values = drifting_values(n, 2);
        lcll.round(&mut net, &values);
        let before = net.stats().messages;
        lcll.round(&mut net, &values);
        assert_eq!(net.stats().messages, before);
    }

    #[test]
    fn exact_with_heavy_duplicates_and_small_range() {
        for strategy in [RefiningStrategy::Hierarchical, RefiningStrategy::Slip] {
            let n = 16;
            let mut net = line_net(n);
            let query = QueryConfig::median(n, 0, 7);
            let mut lcll = new_lcll(query, strategy);
            for t in 0..12 {
                let values: Vec<Value> = (0..n).map(|i| ((i as u32 + t) % 5) as Value).collect();
                assert_eq!(
                    lcll.round(&mut net, &values),
                    rank::kth_smallest(&values, query.k),
                    "{strategy:?} t={t}"
                );
            }
        }
    }

    #[test]
    fn exact_for_extreme_ranks() {
        for strategy in [RefiningStrategy::Hierarchical, RefiningStrategy::Slip] {
            let n = 20;
            let mut net = line_net(n);
            for &k in &[1u64, 20] {
                let query = QueryConfig {
                    k,
                    range_min: 0,
                    range_max: 1023,
                };
                let mut lcll = new_lcll(query, strategy);
                for t in 0..10 {
                    let values = drifting_values(n, t * 4);
                    assert_eq!(
                        lcll.round(&mut net, &values),
                        rank::kth_smallest(&values, k),
                        "{strategy:?} k={k} t={t}"
                    );
                }
            }
        }
    }
}
