//! Direct value retrieval — the "send values directly if the refinement
//! interval is nearly empty" improvement from \[21\], used by POS, HBC and
//! LCLL.
//!
//! The root broadcasts an interval request; every node whose measurement
//! lies inside responds, lists are merged on the way up, and the root
//! selects the k-th value from the received multiset.

use wsn_net::Network;

use crate::payloads::ValueList;
use crate::rank::{kth_smallest, Counts};
use crate::Value;

/// What the root knows about ranks outside a retrieval interval `[lo, hi]`:
/// either the exact count of values `< lo`, or the exact count of values
/// `≤ hi` (from which `< lo` follows once the interval's content arrives).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RankAnchor {
    /// Exact number of network values strictly below `lo`.
    BelowLo(u64),
    /// Exact number of network values at most `hi`.
    AtMostHi(u64),
}

/// Result of a direct retrieval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Retrieved {
    /// The k-th value, or `None` when nothing was received (message loss).
    pub quantile: Option<Value>,
    /// Fresh root counts relative to `quantile` (meaningless when `None`).
    pub counts: Counts,
}

/// Broadcasts a request for all values in `[lo, hi]` and determines the
/// global k-th value from the responses. `n_total` is `|N|`.
pub fn direct_retrieval(
    net: &mut Network,
    values: &[Value],
    lo: Value,
    hi: Value,
    k: u64,
    n_total: u64,
    anchor: RankAnchor,
) -> Retrieved {
    let n = net.len();
    let received = net.broadcast(net.sizes().refinement_request_bits());
    let mut contributions: Vec<Option<ValueList>> = vec![None; n];
    for idx in 1..n {
        if !received.get(idx) {
            continue;
        }
        let v = values[idx - 1];
        if v >= lo && v <= hi {
            contributions[idx] = Some(ValueList::single(v));
        }
    }
    let collected = net
        .convergecast_slots(&mut contributions, |_, _| {})
        .map(|l: ValueList| l.vals)
        .unwrap_or_default();

    if collected.is_empty() {
        return Retrieved {
            quantile: None,
            counts: Counts::default(),
        };
    }

    let below = match anchor {
        RankAnchor::BelowLo(b) => b,
        RankAnchor::AtMostHi(t) => t.saturating_sub(collected.len() as u64),
    };
    let rank_within = k.saturating_sub(below).max(1).min(collected.len() as u64);
    let q = kth_smallest(&collected, rank_within);

    let in_lt = collected.iter().filter(|&&v| v < q).count() as u64;
    let in_eq = collected.iter().filter(|&&v| v == q).count() as u64;
    let l = below + in_lt;
    Retrieved {
        quantile: Some(q),
        counts: Counts {
            l,
            e: in_eq,
            g: n_total.saturating_sub(l + in_eq),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_net::{MessageSizes, Point, RadioModel, RoutingTree, Topology};

    fn line_net(n_sensors: usize) -> Network {
        let positions = (0..=n_sensors)
            .map(|i| Point::new(i as f64 * 10.0, 0.0))
            .collect();
        let topo = Topology::build(positions, 12.0);
        let tree = RoutingTree::shortest_path_tree(&topo).unwrap();
        Network::new(topo, tree, RadioModel::default(), MessageSizes::default())
    }

    #[test]
    fn retrieval_finds_kth_with_below_anchor() {
        let mut net = line_net(10);
        let values: Vec<Value> = vec![1, 2, 3, 10, 11, 12, 13, 20, 21, 22];
        // k = 5 -> 11. Values < 10: three. Interval [10, 15].
        let r = direct_retrieval(&mut net, &values, 10, 15, 5, 10, RankAnchor::BelowLo(3));
        assert_eq!(r.quantile, Some(11));
        assert_eq!(r.counts, Counts { l: 4, e: 1, g: 5 });
    }

    #[test]
    fn retrieval_finds_kth_with_atmost_anchor() {
        let mut net = line_net(10);
        let values: Vec<Value> = vec![1, 2, 3, 10, 11, 12, 13, 20, 21, 22];
        // #<= 15 is 7; interval [10, 15] holds 4 values, so below = 3.
        let r = direct_retrieval(&mut net, &values, 10, 15, 5, 10, RankAnchor::AtMostHi(7));
        assert_eq!(r.quantile, Some(11));
    }

    #[test]
    fn retrieval_handles_duplicates() {
        let mut net = line_net(8);
        let values: Vec<Value> = vec![5, 5, 5, 7, 7, 7, 7, 9];
        let r = direct_retrieval(&mut net, &values, 6, 8, 5, 8, RankAnchor::BelowLo(3));
        assert_eq!(r.quantile, Some(7));
        assert_eq!(r.counts.e, 4);
        assert_eq!(r.counts.l, 3);
    }

    #[test]
    fn empty_interval_returns_none() {
        let mut net = line_net(4);
        let values: Vec<Value> = vec![1, 2, 3, 4];
        let r = direct_retrieval(&mut net, &values, 50, 60, 2, 4, RankAnchor::BelowLo(4));
        assert_eq!(r.quantile, None);
    }

    #[test]
    fn only_interval_nodes_transmit() {
        let mut net = line_net(6);
        let values: Vec<Value> = vec![1, 2, 50, 51, 90, 91];
        direct_retrieval(&mut net, &values, 40, 60, 3, 6, RankAnchor::BelowLo(2));
        // Exactly the values 50 and 51 travel; along the line each is
        // forwarded toward the root by every intermediate hop.
        // Node ids 3,4 hold 50,51 at depths 3 and 4 -> 3 + 4 = 7 value hops.
        assert_eq!(net.stats().values, 7);
    }
}
