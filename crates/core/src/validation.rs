//! The shared validation convergecast of the POS family (§3.2, §4.1, §4.2).
//!
//! At the beginning of every update round each node compares the interval
//! (`lt`/`eq`/`gt` of the current filter) of its new measurement against
//! that of its previous one. Nodes whose measurement *switched* intervals
//! contribute movement counters plus a hint bounding the new quantile; IQ
//! nodes additionally contribute their raw value whenever it falls inside
//! the interval Ξ.

use wsn_net::{Aggregate, MessageSizes};

use crate::payloads::{MovementCounters, ValueList};
use crate::rank::{side_interval, Side};
use crate::Value;

/// How hints are encoded in validation packets (§5.1.6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HintStyle {
    /// POS: two hints — the minimum and maximum measurement among all
    /// values that changed their state.
    MinMax,
    /// HBC/IQ: a single value — the maximum distance between the filter
    /// and any measurement that changed its state. Cheaper on the wire but
    /// yields a symmetric (possibly wider) refinement interval.
    MaxDiff,
}

impl HintStyle {
    /// Number of value-sized hint fields on the wire.
    fn hint_fields(self) -> usize {
        match self {
            HintStyle::MinMax => 2,
            HintStyle::MaxDiff => 1,
        }
    }
}

/// The aggregated validation payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationPayload {
    /// Movement counters (aggregated by summing).
    pub counters: MovementCounters,
    /// Minimum changed measurement (MinMax style; `Value::MAX` when none).
    pub hint_min: Value,
    /// Maximum changed measurement (MinMax style; `Value::MIN` when none).
    pub hint_max: Value,
    /// Maximum |measurement − filter| among changed values (MaxDiff style).
    pub max_diff: u64,
    /// IQ's multiset `A`: raw measurements inside Ξ (empty for POS/HBC).
    pub extra: ValueList,
    /// Wire encoding of hints — identical on all nodes, not transmitted.
    pub style: HintStyle,
}

impl ValidationPayload {
    fn empty(style: HintStyle) -> Self {
        ValidationPayload {
            counters: MovementCounters::default(),
            hint_min: Value::MAX,
            hint_max: Value::MIN,
            max_diff: 0,
            extra: ValueList::default(),
            style,
        }
    }

    /// Lower bound on the new quantile when it moved *down* past the
    /// filter: no measurement below this bound changed state, so (per the
    /// hint argument of POS) the new quantile cannot lie below it.
    pub fn lower_bound(&self, filter: Value) -> Value {
        match self.style {
            HintStyle::MinMax => self.hint_min.min(filter),
            HintStyle::MaxDiff => filter - self.max_diff as Value,
        }
    }

    /// Upper bound on the new quantile when it moved *up* past the filter.
    pub fn upper_bound(&self, filter: Value) -> Value {
        match self.style {
            HintStyle::MinMax => self.hint_max.max(filter),
            HintStyle::MaxDiff => filter + self.max_diff as Value,
        }
    }
}

impl Aggregate for ValidationPayload {
    fn merge(&mut self, other: Self) {
        self.counters.merge(&other.counters);
        self.hint_min = self.hint_min.min(other.hint_min);
        self.hint_max = self.hint_max.max(other.hint_max);
        self.max_diff = self.max_diff.max(other.max_diff);
        self.extra.merge(other.extra);
    }

    fn payload_bits(&self, sizes: &MessageSizes) -> u64 {
        4 * sizes.counter_bits
            + self.style.hint_fields() as u64 * sizes.value_bits
            + self.extra.payload_bits(sizes)
    }

    fn value_count(&self) -> usize {
        self.extra.value_count()
    }
}

/// One node's validation contribution, or `None` if the node stays silent.
///
/// * `prev`/`cur` — the node's measurement in the previous/current round,
/// * `filter` — the node's current filter (last known quantile),
/// * `xi` — IQ's per-node interval offsets `(ξ_l, ξ_r)`; values inside
///   `[filter+ξ_l, filter+ξ_r]` (other than the filter itself) are
///   transmitted directly (§4.2.2).
pub fn node_validation(
    prev: Value,
    cur: Value,
    filter: Value,
    style: HintStyle,
    xi: Option<(Value, Value)>,
) -> Option<ValidationPayload> {
    node_validation_interval(prev, cur, filter, filter, style, xi)
}

/// Interval-filter generalization of [`node_validation`], used by the
/// §4.1.2 variant of HBC: the `eq` interval is `[lb, ub]` (the bounds of
/// the last refinement request) rather than a single threshold. `xi`
/// offsets, when given, are relative to `lb`/`ub` respectively.
pub fn node_validation_interval(
    prev: Value,
    cur: Value,
    lb: Value,
    ub: Value,
    style: HintStyle,
    xi: Option<(Value, Value)>,
) -> Option<ValidationPayload> {
    let old_side = side_interval(prev, lb, ub);
    let new_side = side_interval(cur, lb, ub);
    let changed = old_side != new_side;

    let in_xi = match xi {
        Some((xl, xr)) => (cur < lb || cur > ub) && cur >= lb + xl && cur <= ub + xr,
        None => false,
    };

    if !changed && !in_xi {
        return None;
    }

    let mut p = ValidationPayload::empty(style);
    if changed {
        match old_side {
            Side::Lt => p.counters.outof_lt = 1,
            Side::Gt => p.counters.outof_gt = 1,
            Side::Eq => {}
        }
        match new_side {
            Side::Lt => p.counters.into_lt = 1,
            Side::Gt => p.counters.into_gt = 1,
            Side::Eq => {}
        }
        p.hint_min = cur;
        p.hint_max = cur;
        // Distance to the nearest interval bound (0 only for moves onto
        // the interval, which never extend the refinement range).
        p.max_diff = if cur < lb {
            cur.abs_diff(lb)
        } else if cur > ub {
            cur.abs_diff(ub)
        } else {
            0
        };
    }
    if in_xi {
        p.extra.vals.push(cur);
    }
    Some(p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unchanged_node_is_silent() {
        assert!(node_validation(3, 4, 10, HintStyle::MinMax, None).is_none());
        assert!(node_validation(10, 10, 10, HintStyle::MinMax, None).is_none());
        assert!(node_validation(12, 15, 10, HintStyle::MaxDiff, None).is_none());
    }

    #[test]
    fn crossing_the_filter_sets_counters_and_hints() {
        let p = node_validation(3, 15, 10, HintStyle::MinMax, None).unwrap();
        assert_eq!(p.counters.outof_lt, 1);
        assert_eq!(p.counters.into_gt, 1);
        assert_eq!(p.counters.into_lt, 0);
        assert_eq!(p.hint_min, 15);
        assert_eq!(p.hint_max, 15);
        assert_eq!(p.max_diff, 5);
    }

    #[test]
    fn landing_on_the_filter_counts_only_outof() {
        let p = node_validation(3, 10, 10, HintStyle::MinMax, None).unwrap();
        assert_eq!(p.counters.outof_lt, 1);
        assert_eq!(p.counters.into_lt, 0);
        assert_eq!(p.counters.into_gt, 0);
    }

    #[test]
    fn leaving_the_filter_counts_only_into() {
        let p = node_validation(10, 3, 10, HintStyle::MinMax, None).unwrap();
        assert_eq!(p.counters.into_lt, 1);
        assert_eq!(p.counters.outof_lt, 0);
        assert_eq!(p.counters.outof_gt, 0);
    }

    #[test]
    fn xi_membership_sends_value_without_state_change() {
        let p = node_validation(8, 9, 10, HintStyle::MaxDiff, Some((-3, 2))).unwrap();
        assert!(p.counters.is_zero());
        assert_eq!(p.extra.vals, vec![9]);
    }

    #[test]
    fn filter_value_itself_is_not_retransmitted() {
        // §4.2.2: "if v(n_i) ≠ v_k^{t−1}" — the filter value is implicit.
        assert!(node_validation(10, 10, 10, HintStyle::MaxDiff, Some((-3, 3))).is_none());
    }

    #[test]
    fn out_of_xi_value_not_included() {
        // 11 -> 14: stays in gt and outside Ξ -> silent.
        assert!(node_validation(11, 14, 10, HintStyle::MaxDiff, Some((-3, 3))).is_none());
        // 9 -> 14 crosses the filter: counters yes, but no Ξ value.
        let p = node_validation(9, 14, 10, HintStyle::MaxDiff, Some((-3, 3))).unwrap();
        assert!(p.extra.vals.is_empty());
        assert_eq!(p.counters.outof_lt, 1);
    }

    #[test]
    fn merge_aggregates_counters_hints_and_values() {
        let mut a = node_validation(3, 15, 10, HintStyle::MinMax, None).unwrap();
        let b = node_validation(12, 4, 10, HintStyle::MinMax, None).unwrap();
        a.merge(b);
        assert_eq!(a.counters.outof_lt, 1);
        assert_eq!(a.counters.into_lt, 1);
        assert_eq!(a.counters.outof_gt, 1);
        assert_eq!(a.counters.into_gt, 1);
        assert_eq!(a.hint_min, 4);
        assert_eq!(a.hint_max, 15);
        assert_eq!(a.max_diff, 6);
    }

    #[test]
    fn bounds_from_both_styles() {
        let mut p = node_validation(12, 4, 10, HintStyle::MinMax, None).unwrap();
        assert_eq!(p.lower_bound(10), 4);
        assert_eq!(p.upper_bound(10), 10); // no upward mover yet
        p.style = HintStyle::MaxDiff;
        assert_eq!(p.lower_bound(10), 4);
        assert_eq!(p.upper_bound(10), 16); // symmetric widening
    }

    #[test]
    fn payload_sizes_differ_by_style() {
        let sizes = MessageSizes::default();
        let pos = node_validation(3, 15, 10, HintStyle::MinMax, None).unwrap();
        let hbc = node_validation(3, 15, 10, HintStyle::MaxDiff, None).unwrap();
        assert_eq!(pos.payload_bits(&sizes), 4 * 16 + 2 * 16);
        assert_eq!(hbc.payload_bits(&sizes), 4 * 16 + 16);
        let iq = node_validation(8, 9, 10, HintStyle::MaxDiff, Some((-3, 2))).unwrap();
        assert_eq!(iq.payload_bits(&sizes), 4 * 16 + 16 + 16);
        assert_eq!(iq.value_count(), 1);
    }
}
