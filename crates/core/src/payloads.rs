//! Convergecast payload types shared by the protocols.
//!
//! Each type implements [`wsn_net::Aggregate`]: the merge operation an
//! intermediate node applies, and the wire size the energy model charges.

use wsn_net::{Aggregate, MessageSizes};

use crate::Value;

/// A plain multiset of measurements (TAG collections, direct value
/// retrieval, IQ validation sets and refinement responses).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ValueList {
    /// The transported measurements, unordered.
    pub vals: Vec<Value>,
}

impl ValueList {
    /// A payload holding a single measurement.
    pub fn single(v: Value) -> Self {
        ValueList { vals: vec![v] }
    }

    /// Keeps only the `f` smallest values, plus all values tied with the
    /// `f`-th smallest (IQ refinement pruning, §4.2.2: intermediate nodes
    /// forward only the `f₂` smallest values; ties of the cut-off value
    /// must survive so the root can count `e`).
    pub fn keep_smallest_with_ties(&mut self, f: usize) {
        if f == 0 {
            self.vals.clear();
            return;
        }
        if self.vals.len() <= f {
            return;
        }
        self.vals.sort_unstable();
        let cutoff = self.vals[f - 1];
        let end = self.vals.partition_point(|&v| v <= cutoff);
        self.vals.truncate(end);
    }

    /// Keeps only the `f` largest values plus ties of the `f`-th largest
    /// (IQ refinement pruning for downward movement, §4.2.2).
    pub fn keep_largest_with_ties(&mut self, f: usize) {
        if f == 0 {
            self.vals.clear();
            return;
        }
        if self.vals.len() <= f {
            return;
        }
        self.vals.sort_unstable_by(|a, b| b.cmp(a));
        let cutoff = self.vals[f - 1];
        let end = self.vals.partition_point(|&v| v >= cutoff);
        self.vals.truncate(end);
    }

    /// Keeps only the `f` smallest values, dropping ties beyond `f`
    /// (TAG's k-smallest forwarding, §5.1.6). O(len) via quickselect —
    /// this runs at every hop of every TAG round, so it must not sort.
    pub fn keep_smallest(&mut self, f: usize) {
        if f == 0 {
            self.vals.clear();
        } else if self.vals.len() > f {
            self.vals.select_nth_unstable(f - 1);
            self.vals.truncate(f);
        }
    }
}

impl Aggregate for ValueList {
    fn merge(&mut self, other: Self) {
        self.vals.extend(other.vals);
    }
    fn payload_bits(&self, sizes: &MessageSizes) -> u64 {
        self.vals.len() as u64 * sizes.value_bits
    }
    fn value_count(&self) -> usize {
        self.vals.len()
    }
}

/// The four POS movement counters (§3.2): values that left / entered the
/// `lt` and `gt` intervals between consecutive rounds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MovementCounters {
    /// Values that left `lt` (were `< q`, are no longer).
    pub outof_lt: u64,
    /// Values that entered `lt`.
    pub into_lt: u64,
    /// Values that left `gt`.
    pub outof_gt: u64,
    /// Values that entered `gt`.
    pub into_gt: u64,
}

impl MovementCounters {
    /// Component-wise sum (TAG-style aggregation of counters).
    pub fn merge(&mut self, other: &MovementCounters) {
        self.outof_lt += other.outof_lt;
        self.into_lt += other.into_lt;
        self.outof_gt += other.outof_gt;
        self.into_gt += other.into_gt;
    }

    /// True iff all counters are zero (nothing moved).
    pub fn is_zero(&self) -> bool {
        self.outof_lt == 0 && self.into_lt == 0 && self.outof_gt == 0 && self.into_gt == 0
    }
}

impl Aggregate for MovementCounters {
    fn merge(&mut self, other: Self) {
        MovementCounters::merge(self, &other);
    }
    fn payload_bits(&self, sizes: &MessageSizes) -> u64 {
        4 * sizes.counter_bits
    }
}

/// Per-query movement counters for a *shared* validation wave: one
/// [`MovementCounters`] block per due query lane, concatenated in lane
/// order. The service layer's multi-query optimization packs every due
/// query's validation counters into this single payload so one
/// convergecast serves the whole workload; the charged size is the exact
/// concatenation (`lanes × 4 × counter_bits`), which is what the shared
/// frame accounting in `wsn_net` amortizes across queries.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MultiCounters {
    /// One counter block per due query, in plan (lane) order.
    pub lanes: Vec<MovementCounters>,
}

impl MultiCounters {
    /// A payload of `n` zeroed lanes.
    pub fn zeros(n: usize) -> Self {
        MultiCounters {
            lanes: vec![MovementCounters::default(); n],
        }
    }

    /// True iff no lane recorded any movement.
    pub fn is_zero(&self) -> bool {
        self.lanes.iter().all(MovementCounters::is_zero)
    }
}

impl Aggregate for MultiCounters {
    /// Lane-wise merge. Both sides must carry the same due-query set; a
    /// shorter side is treated as zero-extended (a node that joined after
    /// an admit).
    fn merge(&mut self, other: Self) {
        if other.lanes.len() > self.lanes.len() {
            self.lanes
                .resize(other.lanes.len(), MovementCounters::default());
        }
        for (mine, theirs) in self.lanes.iter_mut().zip(other.lanes) {
            MovementCounters::merge(mine, &theirs);
        }
    }

    fn payload_bits(&self, sizes: &MessageSizes) -> u64 {
        self.lanes.len() as u64 * 4 * sizes.counter_bits
    }
}

thread_local! {
    /// Recycled bucket vectors for [`Histogram`]. A refinement wave builds
    /// one histogram per tree node and consumes one per merge, so without
    /// recycling the engine pays a malloc/free pair per node per wave —
    /// the hottest allocation in the repository. Dropping a histogram
    /// parks its vector here; [`Histogram::zeros`] revives one. Bounded:
    /// beyond [`HIST_POOL_CAP`] entries, dropped vectors free normally.
    static HIST_POOL: std::cell::RefCell<Vec<Vec<u64>>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Upper bound on parked vectors per thread — ample for every node of the
/// largest simulated network to be live at once, while keeping a runaway
/// protocol from hoarding memory forever.
const HIST_POOL_CAP: usize = 1 << 17;

/// A histogram over `b` buckets, aggregated by per-bucket summation and
/// transmitted in compressed form (empty buckets dropped, \[21\]).
///
/// The bucket vector is recycled through a thread-local pool (see
/// `HIST_POOL`): construction and drop are pool pops/pushes in steady
/// state, not heap traffic. The payload stays pointer-sized on the move,
/// which keeps the network engine's dense per-slot scratch buffers small.
#[derive(Debug, PartialEq, Eq)]
pub struct Histogram {
    /// Count per bucket (private so the pool owns the lifecycle; access
    /// through [`Histogram::counts`] / [`Histogram::counts_mut`]).
    counts: Vec<u64>,
}

impl Histogram {
    /// An all-zero histogram with `b` buckets.
    pub fn zeros(b: usize) -> Self {
        let mut v = HIST_POOL.with(|p| p.borrow_mut().pop()).unwrap_or_default();
        v.clear();
        v.resize(b, 0);
        Histogram { counts: v }
    }

    /// A histogram with a single unit entry in bucket `i`.
    pub fn unit(b: usize, i: usize) -> Self {
        let mut h = Histogram::zeros(b);
        h.counts[i] = 1;
        h
    }

    /// Count per bucket.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Count per bucket, mutable.
    pub fn counts_mut(&mut self) -> &mut [u64] {
        &mut self.counts
    }

    /// Number of non-empty buckets (what actually goes on the wire).
    pub fn nonempty(&self) -> usize {
        self.counts.iter().filter(|&&c| c > 0).count()
    }

    /// Total count across buckets.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

impl Clone for Histogram {
    fn clone(&self) -> Self {
        let mut h = Histogram::zeros(self.counts.len());
        h.counts.copy_from_slice(&self.counts);
        h
    }
}

impl Drop for Histogram {
    fn drop(&mut self) {
        let v = std::mem::take(&mut self.counts);
        if v.capacity() > 0 {
            HIST_POOL.with(|p| {
                let mut p = p.borrow_mut();
                if p.len() < HIST_POOL_CAP {
                    p.push(v);
                }
            });
        }
    }
}

impl Aggregate for Histogram {
    fn merge(&mut self, other: Self) {
        debug_assert_eq!(self.counts.len(), other.counts.len());
        for (a, &b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
    }
    fn payload_bits(&self, sizes: &MessageSizes) -> u64 {
        self.nonempty() as u64 * (sizes.bucket_bits + sizes.bucket_index_bits)
    }
}

/// Signed per-bucket deltas — LCLL's improved validation (§5.1.6: a node
/// whose value slipped to another bucket transmits the old bucket −1 and
/// the new bucket +1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaHistogram {
    /// Delta per bucket (positions beyond the real buckets may encode the
    /// below-/above-window virtual buckets).
    pub deltas: Vec<i64>,
}

impl DeltaHistogram {
    /// An all-zero delta vector of length `b`.
    pub fn zeros(b: usize) -> Self {
        DeltaHistogram { deltas: vec![0; b] }
    }

    /// The move of one node from bucket `from` to bucket `to`.
    pub fn movement(b: usize, from: usize, to: usize) -> Self {
        let mut d = DeltaHistogram::zeros(b);
        d.deltas[from] -= 1;
        d.deltas[to] += 1;
        d
    }

    /// Number of non-zero entries (wire size).
    pub fn nonzero(&self) -> usize {
        self.deltas.iter().filter(|&&d| d != 0).count()
    }
}

impl Aggregate for DeltaHistogram {
    fn merge(&mut self, other: Self) {
        debug_assert_eq!(self.deltas.len(), other.deltas.len());
        for (a, b) in self.deltas.iter_mut().zip(other.deltas) {
            *a += b;
        }
    }
    fn payload_bits(&self, sizes: &MessageSizes) -> u64 {
        self.nonzero() as u64 * (sizes.bucket_bits + sizes.bucket_index_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_list_merge_and_size() {
        let sizes = MessageSizes::default();
        let mut a = ValueList { vals: vec![1, 2] };
        a.merge(ValueList::single(3));
        assert_eq!(a.vals.len(), 3);
        assert_eq!(a.payload_bits(&sizes), 48);
        assert_eq!(a.value_count(), 3);
    }

    #[test]
    fn keep_smallest_with_ties_keeps_cutoff_ties() {
        let mut l = ValueList {
            vals: vec![5, 1, 3, 3, 3, 9],
        };
        l.keep_smallest_with_ties(3);
        assert_eq!(l.vals, vec![1, 3, 3, 3]);
    }

    #[test]
    fn keep_largest_with_ties_keeps_cutoff_ties() {
        let mut l = ValueList {
            vals: vec![5, 1, 3, 5, 5, 9],
        };
        l.keep_largest_with_ties(2);
        assert_eq!(l.vals, vec![9, 5, 5, 5]);
    }

    #[test]
    fn keep_smallest_drops_ties() {
        let mut l = ValueList {
            vals: vec![5, 1, 3, 3, 3, 9],
        };
        l.keep_smallest(3);
        assert_eq!(l.vals, vec![1, 3, 3]);
    }

    #[test]
    fn keep_zero_clears() {
        let mut l = ValueList { vals: vec![1, 2] };
        l.keep_largest_with_ties(0);
        assert!(l.vals.is_empty());
        let mut l = ValueList { vals: vec![1, 2] };
        l.keep_smallest_with_ties(0);
        assert!(l.vals.is_empty());
    }

    #[test]
    fn counters_merge_componentwise() {
        let sizes = MessageSizes::default();
        let mut a = MovementCounters {
            outof_lt: 1,
            into_lt: 0,
            outof_gt: 2,
            into_gt: 0,
        };
        Aggregate::merge(
            &mut a,
            MovementCounters {
                outof_lt: 1,
                into_lt: 5,
                outof_gt: 0,
                into_gt: 1,
            },
        );
        assert_eq!(a.outof_lt, 2);
        assert_eq!(a.into_lt, 5);
        assert_eq!(a.into_gt, 1);
        assert!(!a.is_zero());
        assert_eq!(a.payload_bits(&sizes), 64);
    }

    #[test]
    fn multi_counters_merge_lanewise_and_charge_the_concatenation() {
        let sizes = MessageSizes::default();
        let mut a = MultiCounters::zeros(2);
        a.lanes[0].outof_lt = 3;
        let mut b = MultiCounters::zeros(3);
        b.lanes[0].outof_lt = 1;
        b.lanes[2].into_gt = 7;
        a.merge(b);
        assert_eq!(a.lanes.len(), 3, "shorter side zero-extends");
        assert_eq!(a.lanes[0].outof_lt, 4);
        assert_eq!(a.lanes[1], MovementCounters::default());
        assert_eq!(a.lanes[2].into_gt, 7);
        assert!(!a.is_zero());
        // The charge is the exact concatenation of the solo payloads.
        let solo = MovementCounters::default().payload_bits(&sizes);
        assert_eq!(a.payload_bits(&sizes), 3 * solo);
        assert_eq!(MultiCounters::zeros(0).payload_bits(&sizes), 0);
    }

    #[test]
    fn histogram_compressed_size_counts_nonempty() {
        let sizes = MessageSizes::default();
        let mut h = Histogram::zeros(8);
        h.counts_mut()[2] = 3;
        h.counts_mut()[5] = 1;
        assert_eq!(h.nonempty(), 2);
        assert_eq!(h.payload_bits(&sizes), 2 * (16 + 8));
        h.merge(Histogram::unit(8, 2));
        assert_eq!(h.counts()[2], 4);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn delta_histogram_cancels_opposite_moves() {
        let sizes = MessageSizes::default();
        let mut d = DeltaHistogram::movement(4, 0, 1);
        d.merge(DeltaHistogram::movement(4, 1, 0));
        assert_eq!(d.nonzero(), 0);
        assert_eq!(d.payload_bits(&sizes), 0);
    }
}
