//! Probabilistic quantiles by node sampling (§3.1: "exact solutions can
//! usually be made probabilistic by querying only a subset of nodes, e.g.,
//! by employing a layered architecture as described in \[28\]").
//!
//! A fixed random *layer* of nodes participates; everyone else only
//! relays. The root computes the exact φ-quantile **of the sample**, which
//! estimates the population quantile with a rank error that concentrates
//! like `O(√(|N|²·p(1−p)/m))` for sample size `m` — the energy/accuracy
//! dial the paper's related work points at. The `sampling` experiment
//! quantifies that dial against the exact protocols.

use wsn_net::Network;

use crate::payloads::ValueList;
use crate::protocol::{measurement, ContinuousQuantile, QueryConfig};
use crate::rank::{kth_smallest, rank_of_phi};
use crate::Value;

/// TAG over a sampled layer: per round, only layer members report, pruned
/// to the sample's k'-smallest along the tree.
#[derive(Debug, Clone)]
pub struct SampledQuantile {
    query: QueryConfig,
    phi: f64,
    /// Layer membership per sensor (index 0 = sensor 1).
    member: Vec<bool>,
    sample_size: usize,
    last: Option<Value>,
}

impl SampledQuantile {
    /// Creates a sampled query: each sensor joins the layer independently
    /// with probability `p`, drawn from the deterministic `seed`. At least
    /// one member is guaranteed (the first sensor joins if none did).
    ///
    /// # Panics
    /// Panics unless `0 < p <= 1` and `n > 0`.
    pub fn new(query: QueryConfig, phi: f64, n: usize, p: f64, seed: u64) -> Self {
        assert!(n > 0, "need sensors");
        assert!(p > 0.0 && p <= 1.0, "sampling probability in (0, 1]");
        // splitmix64-based membership draw (self-contained, reproducible).
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            // Divide by 2^64 (not u64::MAX) so the uniform is strictly in
            // [0, 1): with /u64::MAX the draw could be exactly 1.0 and
            // `next() < p` would exclude a sensor even at p = 1.0.
            (z ^ (z >> 31)) as f64 / (u64::MAX as f64 + 1.0)
        };
        let mut member: Vec<bool> = (0..n).map(|_| next() < p).collect();
        if !member.iter().any(|&m| m) {
            member[0] = true;
        }
        let sample_size = member.iter().filter(|&&m| m).count();
        SampledQuantile {
            query,
            phi,
            member,
            sample_size,
            last: None,
        }
    }

    /// Number of layer members.
    pub fn sample_size(&self) -> usize {
        self.sample_size
    }

    /// The sample-side rank `k' = ⌊φ·m⌋` targeted each round.
    pub fn sample_rank(&self) -> u64 {
        rank_of_phi(self.phi, self.sample_size)
    }
}

impl ContinuousQuantile for SampledQuantile {
    fn name(&self) -> &'static str {
        "Sampled"
    }

    fn round(&mut self, net: &mut Network, values: &[Value]) -> Value {
        let k_sample = self.sample_rank() as usize;
        let member = &self.member;
        let collected = net
            .convergecast_with(
                |id| member[id.index() - 1].then(|| ValueList::single(measurement(values, id))),
                |_, l: &mut ValueList| l.keep_smallest(k_sample),
            )
            .map(|l| l.vals)
            .unwrap_or_default();
        net.end_round();
        let q = if collected.is_empty() {
            self.last.unwrap_or(self.query.range_min)
        } else {
            kth_smallest(
                &collected,
                (k_sample as u64).min(collected.len() as u64).max(1),
            )
        };
        self.last = Some(q);
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_net::{MessageSizes, Point, RadioModel, RoutingTree, Topology};

    fn line_net(n_sensors: usize) -> Network {
        let positions = (0..=n_sensors)
            .map(|i| Point::new(i as f64 * 10.0, 0.0))
            .collect();
        let topo = Topology::build(positions, 12.0);
        let tree = RoutingTree::shortest_path_tree(&topo).unwrap();
        Network::new(topo, tree, RadioModel::default(), MessageSizes::default())
    }

    #[test]
    fn full_sampling_is_exact() {
        let n = 30;
        let query = QueryConfig::median(n, 0, 1023);
        let mut alg = SampledQuantile::new(query, 0.5, n, 1.0, 7);
        assert_eq!(alg.sample_size(), n);
        let mut net = line_net(n);
        for t in 0..10i64 {
            let values: Vec<Value> = (0..n as i64).map(|i| (i * 31 + t * 7) % 1024).collect();
            assert_eq!(alg.round(&mut net, &values), kth_smallest(&values, query.k));
        }
    }

    #[test]
    fn sampling_rate_controls_membership() {
        let n = 2000;
        let query = QueryConfig::median(n, 0, 1023);
        for &p in &[0.1f64, 0.3, 0.7] {
            let alg = SampledQuantile::new(query, 0.5, n, p, 11);
            let m = alg.sample_size() as f64;
            let expect = n as f64 * p;
            let sd = (n as f64 * p * (1.0 - p)).sqrt();
            assert!(
                (m - expect).abs() < 5.0 * sd,
                "p={p}: {m} members vs expected {expect}"
            );
        }
    }

    #[test]
    fn estimate_is_close_on_smooth_data_and_cheaper_than_tag() {
        let n = 300;
        let query = QueryConfig::median(n, 0, 10_000);
        let mut sampled = SampledQuantile::new(query, 0.5, n, 0.2, 3);
        let mut tag = crate::Tag::new(query);
        let mut net_s = line_net(n);
        let mut net_t = line_net(n);
        let values: Vec<Value> = (0..n as i64).map(|i| i * 30).collect();
        let est = sampled.round(&mut net_s, &values);
        let truth = tag.round(&mut net_t, &values);
        // Rank error within a few standard deviations of binomial sampling.
        let rank_est = values.iter().filter(|&&v| v < est).count() as f64;
        let rank_truth = values.iter().filter(|&&v| v < truth).count() as f64;
        assert!(
            (rank_est - rank_truth).abs() < 0.25 * n as f64,
            "rank {rank_est} vs {rank_truth}"
        );
        // And the sample moved far fewer values.
        assert!(net_s.stats().values < net_t.stats().values / 2);
    }

    #[test]
    fn full_probability_includes_every_sensor() {
        // p = 1.0 must make the layer the whole network for *any* seed:
        // the membership uniform is strictly in [0, 1), so `next() < 1.0`
        // can never exclude a sensor.
        for seed in 0..64u64 {
            for n in [1usize, 7, 100] {
                let query = QueryConfig::median(n, 0, 1023);
                let alg = SampledQuantile::new(query, 0.5, n, 1.0, seed);
                assert_eq!(alg.sample_size(), n, "seed={seed} n={n}");
            }
        }
    }

    #[test]
    fn at_least_one_member_is_guaranteed() {
        let query = QueryConfig::median(5, 0, 100);
        // Absurdly small p: the constructor still guarantees a member.
        let alg = SampledQuantile::new(query, 0.5, 5, 1e-12, 1);
        assert!(alg.sample_size() >= 1);
    }

    #[test]
    #[should_panic(expected = "sampling probability")]
    fn rejects_zero_probability() {
        let _ = SampledQuantile::new(QueryConfig::median(5, 0, 100), 0.5, 5, 0.0, 1);
    }
}
