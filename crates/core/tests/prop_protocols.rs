//! Property-based end-to-end fuzzing of the protocols: on random
//! topologies, random value streams and random ranks, every protocol must
//! return the exact k-th value every round — and IQ must keep its
//! one-refinement guarantee.
//!
//! Compiled only with `--features proptest` (plus an ad-hoc
//! `cargo add proptest --dev`) so the default build needs no network
//! access; see crates/core/Cargo.toml.
#![cfg(feature = "proptest")]

use cqp_core::hbc::{Hbc, HbcConfig};
use cqp_core::iq::{Iq, IqConfig};
use cqp_core::lcll::{Lcll, RefiningStrategy};
use cqp_core::pos::Pos;
use cqp_core::rank::kth_smallest;
use cqp_core::tag::Tag;
use cqp_core::{ContinuousQuantile, QueryConfig};
use proptest::prelude::*;
use wsn_net::{MessageSizes, Network, Point, RadioModel, RoutingTree, Topology};

/// Builds a random connected topology from a proptest-generated seed list
/// of cell offsets (grid + jitter keeps it connected by construction).
fn jittered_grid(n: usize, jitter: &[(f64, f64)]) -> Network {
    let cols = (n as f64).sqrt().ceil() as usize + 1;
    let positions: Vec<Point> = (0..=n)
        .map(|i| {
            let (jx, jy) = jitter[i % jitter.len()];
            Point::new(
                (i % cols) as f64 * 8.0 + jx * 3.0,
                (i / cols) as f64 * 8.0 + jy * 3.0,
            )
        })
        .collect();
    let topo = Topology::build(positions, 14.0);
    let tree = RoutingTree::shortest_path_tree(&topo).expect("grid stays connected");
    Network::new(topo, tree, RadioModel::default(), MessageSizes::default())
}

fn protocols_with_lcll_r(query: QueryConfig) -> Vec<Box<dyn ContinuousQuantile>> {
    let sizes = MessageSizes::default();
    let mut all = protocols(query);
    all.push(Box::new(cqp_core::LcllRange::new(query, &sizes)));
    all
}

fn protocols(query: QueryConfig) -> Vec<Box<dyn ContinuousQuantile>> {
    let sizes = MessageSizes::default();
    vec![
        Box::new(Tag::new(query)),
        Box::new(Pos::new(query)),
        Box::new(Pos::new(query).without_direct_retrieval()),
        Box::new(Hbc::new(query, HbcConfig::default(), &sizes)),
        Box::new(Hbc::new(
            query,
            HbcConfig {
                direct_retrieval: false,
                eliminate_threshold_broadcast: true,
                ..HbcConfig::default()
            },
            &sizes,
        )),
        Box::new(Iq::new(query, IqConfig::default())),
        Box::new(Lcll::new(query, RefiningStrategy::Hierarchical, &sizes)),
        Box::new(Lcll::new(query, RefiningStrategy::Slip, &sizes)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    #[test]
    fn every_protocol_is_exact_on_random_streams(
        n in 8usize..40,
        kseed in 0u64..1000,
        jitter in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 8..32),
        rounds in prop::collection::vec(prop::collection::vec(0i64..256, 40), 4..12),
    ) {
        let k = kseed % n as u64 + 1;
        let query = QueryConfig { k, range_min: 0, range_max: 255 };
        for mut alg in protocols(query) {
            let mut net = jittered_grid(n, &jitter);
            for (t, row) in rounds.iter().enumerate() {
                let values = &row[..n];
                let got = alg.round(&mut net, values);
                let want = kth_smallest(values, k);
                prop_assert_eq!(got, want, "{} wrong at round {} (k={})", alg.name(), t, k);
            }
        }
    }

    #[test]
    fn iq_one_refinement_guarantee_holds_always(
        n in 8usize..40,
        jitter in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 8..16),
        rounds in prop::collection::vec(prop::collection::vec(0i64..10_000, 40), 4..10),
    ) {
        let query = QueryConfig::median(n, 0, 9_999);
        let mut iq = Iq::new(query, IqConfig::default());
        let mut net = jittered_grid(n, &jitter);
        for row in &rounds {
            iq.round(&mut net, &row[..n]);
            prop_assert!(iq.last_refinements() <= 1);
        }
    }

    #[test]
    fn smooth_streams_keep_iq_quiet(
        n in 10usize..30,
        jitter in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 8..16),
        base in 100i64..5000,
        step in 1i64..4,
    ) {
        // A linear drift: after warm-up, IQ must answer from validation
        // alone (the Ξ adaptation property, §4.2.2).
        let query = QueryConfig::median(n, 0, 100_000);
        let mut iq = Iq::new(query, IqConfig::default());
        let mut net = jittered_grid(n, &jitter);
        for t in 0..25i64 {
            let values: Vec<i64> = (0..n).map(|i| base + i as i64 * 7 + t * step).collect();
            iq.round(&mut net, &values);
            if t > 5 {
                prop_assert_eq!(iq.last_refinements(), 0, "round {}", t);
            }
        }
    }

    #[test]
    fn no_protocol_panics_under_message_loss(
        n in 8usize..32,
        jitter in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 8..16),
        loss_milli in 1u64..400,
        seed in 0u64..10_000,
        rounds in prop::collection::vec(prop::collection::vec(0i64..512, 32), 4..10),
    ) {
        // Under loss, answers may be wrong — but every protocol must keep
        // running, stay silent-safe, and return values within the range.
        let query = QueryConfig::median(n, 0, 511);
        for mut alg in protocols_with_lcll_r(query) {
            let mut net = jittered_grid(n, &jitter);
            net.set_loss(Some(wsn_net::loss::LossModel::new(
                loss_milli as f64 / 1000.0,
                seed,
            )));
            for row in &rounds {
                let answer = alg.round(&mut net, &row[..n]);
                prop_assert!(
                    (0..=511).contains(&answer),
                    "{} answered {} outside the universe",
                    alg.name(),
                    answer
                );
            }
        }
    }

    #[test]
    fn lcll_r_is_exact_on_random_streams(
        n in 8usize..40,
        kseed in 0u64..1000,
        jitter in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 8..16),
        rounds in prop::collection::vec(prop::collection::vec(0i64..256, 40), 4..10),
    ) {
        let k = kseed % n as u64 + 1;
        let query = QueryConfig { k, range_min: 0, range_max: 255 };
        let mut alg = cqp_core::LcllRange::new(query, &MessageSizes::default());
        let mut net = jittered_grid(n, &jitter);
        for (t, row) in rounds.iter().enumerate() {
            let values = &row[..n];
            prop_assert_eq!(
                alg.round(&mut net, values),
                kth_smallest(values, k),
                "LCLL-R wrong at round {} (k={})", t, k
            );
        }
    }

    #[test]
    fn protocol_state_survives_alternating_extremes(
        n in 8usize..24,
        jitter in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 8..16),
        reps in 2usize..5,
    ) {
        // Ping-pong between the range ends — worst case for filters.
        let query = QueryConfig::median(n, 0, 4095);
        for mut alg in protocols(query) {
            let mut net = jittered_grid(n, &jitter);
            for r in 0..reps {
                let lowish: Vec<i64> = (0..n).map(|i| (i as i64 * 3) % 64).collect();
                let highish: Vec<i64> = (0..n).map(|i| 4000 + (i as i64 * 5) % 64).collect();
                for values in [&lowish, &highish] {
                    let got = alg.round(&mut net, values);
                    prop_assert_eq!(got, kth_smallest(values, query.k), "{} rep {}", alg.name(), r);
                }
            }
        }
    }
}
