//! Property-based tests of the core data structures and rank math.
//!
//! Compiled only with `--features proptest` (plus an ad-hoc
//! `cargo add proptest --dev`) so the default build needs no network
//! access; see crates/core/Cargo.toml.
#![cfg(feature = "proptest")]

use cqp_core::buckets::BucketPartition;
use cqp_core::cost_model::{bary_search_cost, iterations_for, lambert_w0, optimal_buckets};
use cqp_core::payloads::ValueList;
use cqp_core::rank::{kth_smallest, rank_of_phi, side_interval, Counts, Side};
use proptest::prelude::*;
use wsn_net::MessageSizes;

proptest! {
    #[test]
    fn kth_smallest_matches_full_sort(values in prop::collection::vec(-1000i64..1000, 1..200), kidx in 0usize..200) {
        let k = (kidx % values.len()) as u64 + 1;
        let mut sorted = values.clone();
        sorted.sort_unstable();
        prop_assert_eq!(kth_smallest(&values, k), sorted[k as usize - 1]);
    }

    #[test]
    fn counts_partition_and_validity(values in prop::collection::vec(-50i64..50, 1..100), q in -60i64..60) {
        let c = Counts::of(&values, q);
        prop_assert_eq!(c.n(), values.len() as u64);
        for k in 1..=values.len() as u64 {
            let truth = kth_smallest(&values, k);
            prop_assert_eq!(c.is_valid_quantile(k), q == truth, "k={} q={}", k, q);
        }
    }

    #[test]
    fn movement_direction_is_consistent_with_truth(values in prop::collection::vec(0i64..100, 1..80), q in 0i64..100, kidx in 0usize..80) {
        let k = (kidx % values.len()) as u64 + 1;
        let truth = kth_smallest(&values, k);
        let c = Counts::of(&values, q);
        match c.quantile_moved(k) {
            None => prop_assert_eq!(truth, q),
            Some(cqp_core::rank::Direction::Down) => prop_assert!(truth < q),
            Some(cqp_core::rank::Direction::Up) => prop_assert!(truth > q),
        }
    }

    #[test]
    fn rank_of_phi_is_a_valid_rank(phi in 0.0f64..=1.0, n in 1usize..10_000) {
        let k = rank_of_phi(phi, n);
        prop_assert!(k >= 1 && k <= n as u64);
    }

    #[test]
    fn side_interval_partitions(v in -100i64..100, lb in -50i64..50, width in 0i64..40) {
        let ub = lb + width;
        let s = side_interval(v, lb, ub);
        match s {
            Side::Lt => prop_assert!(v < lb),
            Side::Eq => prop_assert!(lb <= v && v <= ub),
            Side::Gt => prop_assert!(v > ub),
        }
    }

    #[test]
    fn bucket_partition_covers_exactly(lo in -1000i64..1000, width in 1i64..5000, b in 1usize..128) {
        let hi = lo + width - 1;
        let p = BucketPartition::new(lo, hi, b);
        // Bounds tile the interval.
        let mut next = lo;
        for i in 0..p.buckets {
            let (s, e) = p.bounds(i);
            prop_assert_eq!(s, next);
            prop_assert!(s <= e);
            next = e + 1;
        }
        prop_assert_eq!(next, hi + 1);
    }

    #[test]
    fn bucket_index_agrees_with_bounds(lo in -300i64..300, width in 1i64..600, b in 1usize..80, off in 0i64..600) {
        let hi = lo + width - 1;
        let v = lo + (off % width);
        let p = BucketPartition::new(lo, hi, b);
        let i = p.index_of(v).expect("inside");
        let (s, e) = p.bounds(i);
        prop_assert!(s <= v && v <= e);
    }

    #[test]
    fn keep_largest_with_ties_is_sound(vals in prop::collection::vec(-20i64..20, 0..100), f in 0usize..40) {
        let mut l = ValueList { vals: vals.clone() };
        l.keep_largest_with_ties(f);
        if f == 0 {
            prop_assert!(l.vals.is_empty());
        } else if vals.len() <= f {
            prop_assert_eq!(l.vals.len(), vals.len());
        } else {
            let mut sorted = vals.clone();
            sorted.sort_unstable_by(|a, b| b.cmp(a));
            let cutoff = sorted[f - 1];
            // Everything >= cutoff survives, nothing below does.
            let expect: Vec<i64> = sorted.iter().copied().filter(|&v| v >= cutoff).collect();
            let mut got = l.vals.clone();
            got.sort_unstable_by(|a, b| b.cmp(a));
            prop_assert_eq!(got, expect);
        }
    }

    #[test]
    fn keep_smallest_keeps_the_f_smallest(vals in prop::collection::vec(-50i64..50, 0..120), f in 0usize..60) {
        let mut l = ValueList { vals: vals.clone() };
        l.keep_smallest(f);
        let mut expect = vals.clone();
        expect.sort_unstable();
        expect.truncate(f);
        let mut got = l.vals.clone();
        got.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn lambert_w_inverts(x in 0.0f64..1e6) {
        let w = lambert_w0(x);
        prop_assert!((w * w.exp() - x).abs() <= 1e-6 * (1.0 + x));
    }

    #[test]
    fn optimal_buckets_is_the_argmin(range in 2u64..1_000_000) {
        let sizes = MessageSizes::default();
        let b = optimal_buckets(&sizes, range);
        let cost = bary_search_cost(&sizes, b, range);
        for candidate in [2usize, 3, 8, 16, 32, 64] {
            prop_assert!(cost <= bary_search_cost(&sizes, candidate, range) + 1e-9);
        }
    }

    #[test]
    fn iterations_are_enough_to_isolate_one_value(b in 2usize..64, range in 1u64..1_000_000) {
        let it = iterations_for(b, range);
        // b^it >= range.
        let mut cover = 1u128;
        for _ in 0..it {
            cover = cover.saturating_mul(b as u128);
        }
        prop_assert!(cover >= range as u128);
        // And it is minimal (one fewer is not enough) for range > 1.
        if range > 1 && it > 0 {
            let mut cover = 1u128;
            for _ in 0..it - 1 {
                cover = cover.saturating_mul(b as u128);
            }
            prop_assert!(cover < range as u128);
        }
    }
}

/// Wire-format certification: the encoded size of every payload matches the
/// bits the energy model charges, and decoding restores the payload.
mod wire_certification {
    use cqp_core::payloads::{DeltaHistogram, Histogram, MovementCounters, ValueList};
    use cqp_core::wire::WireContext;
    use proptest::prelude::*;
    use wsn_net::{Aggregate, MessageSizes};

    fn ctx() -> WireContext {
        WireContext::new(MessageSizes::default(), 0)
    }

    proptest! {
        #[test]
        fn value_lists_roundtrip(vals in prop::collection::vec(0i64..65536, 0..200)) {
            let c = ctx();
            let list = ValueList { vals };
            let bytes = c.encode_values(&list);
            prop_assert_eq!(c.decode_values(&bytes, list.vals.len()).unwrap(), list.clone());
            prop_assert_eq!(bytes.len() as u64, list.payload_bits(&c.sizes).div_ceil(8));
        }

        #[test]
        fn counters_roundtrip(a in 0u64..65536, b in 0u64..65536, g in 0u64..65536, d in 0u64..65536) {
            let c = ctx();
            let m = MovementCounters { outof_lt: a, into_lt: b, outof_gt: g, into_gt: d };
            let bytes = c.encode_counters(&m);
            prop_assert_eq!(c.decode_counters(&bytes).unwrap(), m);
            prop_assert_eq!(bytes.len() as u64 * 8, m.payload_bits(&c.sizes));
        }

        #[test]
        fn histograms_roundtrip(counts in prop::collection::vec(0u64..65536, 1..128)) {
            let c = ctx();
            let h = Histogram { counts };
            let bytes = c.encode_histogram(&h);
            let decoded = c.decode_histogram(&bytes, h.counts.len(), h.nonempty()).unwrap();
            prop_assert_eq!(&decoded, &h);
            prop_assert_eq!(bytes.len() as u64 * 8, h.payload_bits(&c.sizes));
        }

        #[test]
        fn deltas_roundtrip(deltas in prop::collection::vec(-1000i64..1000, 1..128)) {
            let c = ctx();
            let d = DeltaHistogram { deltas };
            let bytes = c.encode_deltas(&d);
            let decoded = c.decode_deltas(&bytes, d.deltas.len(), d.nonzero()).unwrap();
            prop_assert_eq!(&decoded, &d);
            prop_assert_eq!(bytes.len() as u64 * 8, d.payload_bits(&c.sizes));
        }
    }
}

/// Rank-summary invariant: under arbitrary merge/prune trees, every
/// entry's bounds contain the true rank and the enclosing interval
/// contains the true k-th value.
mod summary_invariants {
    use cqp_core::rank::kth_smallest;
    use cqp_core::summary::RankSummary;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn bounds_and_intervals_stay_valid(
            values in prop::collection::vec(0i64..1000, 1..300),
            capacity in 4usize..64,
            chunk in 1usize..8,
        ) {
            // Merge in irregular chunks (mimics uneven subtree sizes).
            let mut acc = RankSummary::empty();
            for group in values.chunks(chunk) {
                let mut s = RankSummary::empty();
                for &v in group {
                    s.merge_summary(&RankSummary::singleton(v));
                }
                s.prune(capacity);
                acc.merge_summary(&s);
                acc.prune(capacity);
            }
            prop_assert_eq!(acc.count, values.len() as u64);

            let mut sorted = values.clone();
            sorted.sort_unstable();
            for e in &acc.entries {
                let lo = sorted.partition_point(|&v| v < e.value) as u64 + 1;
                let hi = sorted.partition_point(|&v| v <= e.value) as u64;
                prop_assert!(e.rmin <= hi && e.rmax >= lo, "{:?} vs [{},{}]", e, lo, hi);
            }
            for k in [1u64, values.len() as u64 / 2 + 1, values.len() as u64] {
                let truth = kth_smallest(&values, k);
                let (lo, hi) = acc.enclosing_interval(k).expect("in range");
                prop_assert!(lo <= truth && truth <= hi, "k={}: [{},{}] vs {}", k, lo, hi, truth);
            }
        }
    }
}
