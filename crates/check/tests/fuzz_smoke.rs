//! End-to-end fuzz smoke: a bounded campaign must be clean, and its
//! summary byte-identical across repetitions and thread counts — the
//! determinism contract the CI gate and the acceptance runs rely on.

use wsn_check::fuzz;

#[test]
fn bounded_campaign_is_clean_and_byte_deterministic() {
    let first = fuzz(42, 20, 4);
    assert!(first.is_clean(), "violations:\n{}", first.summary());
    assert_eq!(first.tally.batteries, 20 * 8, "paper set + QD + GKS");
    assert!(
        first.tally.serve > 0,
        "a 20-scenario campaign must draw at least one multi-query workload"
    );

    let second = fuzz(42, 20, 4);
    assert_eq!(first.summary(), second.summary(), "same seed, same bytes");

    // Scenario-level parallelism must not leak into the results.
    let sequential = fuzz(42, 20, 1);
    assert_eq!(first.summary(), sequential.summary());
}

#[test]
fn different_seeds_fuzz_different_scenarios() {
    let a = fuzz(1, 4, 2);
    let b = fuzz(2, 4, 2);
    assert!(a.is_clean(), "{}", a.summary());
    assert!(b.is_clean(), "{}", b.summary());
    assert_eq!(a.scenarios, b.scenarios, "same campaign shape");
    assert_ne!(
        wsn_check::gen::scenario(1, 0),
        wsn_check::gen::scenario(2, 0),
        "the master seed drives the scenario stream"
    );
}
