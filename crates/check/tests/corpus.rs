//! Replays every pinned scenario in `tests/fuzz_corpus.txt` (repository
//! root) through the full invariant battery. The corpus holds scenarios
//! that once failed plus hand-pinned edges; all of them must stay clean
//! on every build.

use wsn_check::{check, corpus_entries};

fn corpus_text() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/fuzz_corpus.txt");
    std::fs::read_to_string(path).expect("tests/fuzz_corpus.txt must exist")
}

#[test]
fn corpus_parses_and_is_not_empty() {
    let entries = corpus_entries(&corpus_text()).expect("corpus must parse");
    assert!(entries.len() >= 5, "corpus lost entries: {}", entries.len());
}

#[test]
fn every_corpus_scenario_passes_the_battery() {
    for (line, scenario) in corpus_entries(&corpus_text()).expect("corpus must parse") {
        let report = check(&scenario);
        assert!(
            report.violations.is_empty(),
            "corpus line {line} regressed:\n{}",
            report
                .violations
                .iter()
                .map(|v| format!("  {v}\n"))
                .collect::<String>()
        );
    }
}
