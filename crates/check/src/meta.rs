//! Protocol-level metamorphic runs.
//!
//! The oracle-level metamorphic properties (rotation invariance, affine
//! equivariance of order statistics — `cqp_core::rank`) say what the
//! *answer function* must do. This module checks that the *distributed
//! protocols* inherit those properties: we rebuild exactly the world the
//! runner would build for run 0 of a scenario, feed each round's
//! measurements through a value transform, and return the answer stream.
//! On reliable links a protocol that is exact must therefore be invariant
//! under any node-permutation of the values and equivariant under
//! `v ↦ a·v + b` with `a > 0` (the query range is mapped alongside).

use std::panic::{catch_unwind, AssertUnwindSafe};

use cqp_core::protocol::QueryConfig;
use wsn_data::Rng;
use wsn_net::Network;
use wsn_sim::runner::build_world;
use wsn_sim::{AlgorithmKind, Scenario, Value};

/// The answer stream of `kind` on run 0 of `scenario`, with every round's
/// measurement vector transformed by `v_i ↦ a·v_{(i+rot) mod n} + b`
/// before the protocol sees it (`a = 1, b = 0, rot = 0` is the identity).
///
/// Only meaningful for reliable worlds: the network is built without loss
/// or failure models, so the protocol consumes no link randomness and the
/// stream is a pure function of `(scenario, kind, a, b, rot)`.
///
/// Returns `Err` with the panic payload if the protocol panics.
pub fn answers(
    scenario: &Scenario,
    kind: AlgorithmKind,
    a: Value,
    b: Value,
    rot: usize,
) -> Result<Vec<Value>, String> {
    assert!(a > 0, "metamorphic affine maps need a positive slope");
    let cfg = scenario.to_config();
    catch_unwind(AssertUnwindSafe(|| {
        // Run-0 seed convention of `runner::run_once`: seed ^ (0·γ + 1).
        let mut rng = Rng::seed_from_u64(cfg.seed ^ 1);
        let (mut dataset, topo, tree) = build_world(&cfg, &mut rng);
        let n = dataset.sensor_count();
        let query = QueryConfig::phi(
            cfg.phi,
            n,
            a * dataset.range_min() + b,
            a * dataset.range_max() + b,
        );
        let mut alg = kind.build(query, &cfg.sizes);
        let mut net = Network::new(topo, tree, cfg.radio, cfg.sizes);
        let mut raw = vec![0 as Value; n];
        let mut transformed = vec![0 as Value; n];
        let mut out = Vec::with_capacity(cfg.rounds as usize);
        for t in 0..cfg.rounds {
            dataset.sample_round(t, &mut raw);
            for i in 0..n {
                transformed[i] = a * raw[(i + rot) % n] + b;
            }
            out.push(alg.round(&mut net, &transformed));
        }
        out
    }))
    .map_err(|e| crate::invariants::panic_text(&e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_sim::DataSource;

    fn reliable() -> Scenario {
        Scenario {
            seed: 11,
            nodes: 12,
            range_milli: 3000,
            rounds: 6,
            runs: 1,
            phi_milli: 500,
            loss_milli: 0,
            retries: 0,
            recovery: 0,
            failure_milli: 0,
            eps_milli: 100,
            capacity: 0,
            queries: 1,
            mobility_milli: 0,
            churn_milli: 0,
            drift_milli: 0,
            duty_milli: 0,
            source: DataSource::Sinusoid {
                period: 16,
                noise_permille: 200,
            },
        }
    }

    #[test]
    fn identity_stream_is_reproducible() {
        let s = reliable();
        let a = answers(&s, AlgorithmKind::Iq, 1, 0, 0).unwrap();
        let b = answers(&s, AlgorithmKind::Iq, 1, 0, 0).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 6);
    }

    #[test]
    fn rotation_and_affine_hold_for_one_protocol() {
        let s = reliable();
        for kind in [AlgorithmKind::Pos, AlgorithmKind::Hbc] {
            let id = answers(&s, kind, 1, 0, 0).unwrap();
            let rot = answers(&s, kind, 1, 0, 5).unwrap();
            assert_eq!(id, rot, "{} rotation", kind.name());
            let aff = answers(&s, kind, 3, 1000, 0).unwrap();
            let mapped: Vec<Value> = id.iter().map(|&v| 3 * v + 1000).collect();
            assert_eq!(aff, mapped, "{} affine", kind.name());
        }
    }
}
