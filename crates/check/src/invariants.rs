//! The invariant battery: everything one scenario is checked against.
//!
//! Each scenario expands to a [`wsn_sim::SimulationConfig`] (audit layer
//! always on) and runs every protocol of the paper's §5 comparison set.
//! The checks split by world class:
//!
//! * **Always** — no panics; the energy-audit replay reconciles
//!   (`audit_discrepancies == 0`); the always-on message-size histogram
//!   counts exactly the messages the traffic stats saw; the pure oracle
//!   obeys its metamorphic properties.
//! * **Reliable worlds** (`loss = 0`, no failures — the paper's operating
//!   assumption) — every protocol answers the oracle's value every round
//!   (`exactness == 1`, zero rank error), and the protocol-level
//!   metamorphic runs (rotation, affine) agree with the identity run.
//! * **Multi-run scenarios** — 1-thread and 2-thread execution of the same
//!   experiment must aggregate bit-identically.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};

use cqp_core::rank::{kth_equivariant_under_affine, kth_invariant_under_rotation, rank_of_phi};
use wsn_data::Rng;
use wsn_net::obs::{HealthKind, HistKind, MonitorConfig};
use wsn_net::{lane_breakdowns, lane_breakdowns_by_round};
use wsn_sim::runner::run_experiment_threads;
use wsn_sim::{
    serve, serve_capture, serve_monitored, AggregatedMetrics, AlgorithmKind, Scenario, Value,
};

use crate::meta;

/// One invariant violation, with enough context to read the failure
/// without re-running anything.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// A protocol (or the harness around it) panicked.
    Panic {
        /// Protocol display name.
        algorithm: &'static str,
        /// The panic payload.
        message: String,
    },
    /// A reliable-world run answered inexactly.
    Inexact {
        /// Protocol display name.
        algorithm: &'static str,
        /// Fraction of exact rounds (must be 1.0).
        exactness: f64,
        /// Mean absolute rank error (must be 0.0).
        mean_rank_error: f64,
    },
    /// An approximate protocol exceeded its advertised rank tolerance on a
    /// reliable world (ε-tolerant oracle mode: the sketch family may be
    /// inexact, but never by more than the `⌊ε·n⌋` ranks it certifies).
    ToleranceExceeded {
        /// Protocol display name.
        algorithm: &'static str,
        /// Worst observed rank error across all rounds and runs.
        max_rank_error: u64,
        /// The tolerance the protocol advertised.
        rank_tolerance: u64,
    },
    /// The energy-audit replay did not reconcile with the ledger.
    AuditDiscrepancy {
        /// Protocol display name.
        algorithm: &'static str,
        /// Number of ledger/replay mismatches.
        discrepancies: u64,
    },
    /// The message-size histogram disagrees with the traffic stats.
    TelemetryMismatch {
        /// Protocol display name.
        algorithm: &'static str,
        /// Messages counted by the `MsgBits` histogram.
        histogram_count: u64,
        /// Messages implied by the aggregated traffic stats.
        expected: f64,
    },
    /// 1-thread and 2-thread execution aggregated differently.
    ThreadParity {
        /// Protocol display name.
        algorithm: &'static str,
    },
    /// A pure-oracle metamorphic property failed.
    OracleMetamorphic {
        /// `"rotation"` or `"affine"`.
        property: &'static str,
    },
    /// A protocol-level metamorphic run diverged from the identity run.
    ProtocolMetamorphic {
        /// Protocol display name.
        algorithm: &'static str,
        /// `"rotation"` or `"affine"`.
        property: &'static str,
        /// First diverging round.
        round: usize,
    },
    /// A query served by the multi-query engine answered differently from
    /// a reference run of the same query.
    ServeIdentity {
        /// Service slot of the diverging query.
        slot: u32,
        /// Protocol display name.
        algorithm: &'static str,
        /// The reference that disagreed (`"solo"` = the query's own
        /// singleton service, `"unshared"` = the same workload without
        /// frame sharing).
        against: &'static str,
    },
    /// The multi-query service's per-query accounting failed to
    /// reconcile.
    ServeAccounting {
        /// What broke.
        detail: String,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::Panic { algorithm, message } => {
                write!(f, "{algorithm}: panic: {message}")
            }
            Violation::Inexact {
                algorithm,
                exactness,
                mean_rank_error,
            } => write!(
                f,
                "{algorithm}: inexact on reliable links (exactness={exactness}, mean_rank_error={mean_rank_error})"
            ),
            Violation::ToleranceExceeded {
                algorithm,
                max_rank_error,
                rank_tolerance,
            } => write!(
                f,
                "{algorithm}: rank error {max_rank_error} exceeds the advertised tolerance {rank_tolerance}"
            ),
            Violation::AuditDiscrepancy {
                algorithm,
                discrepancies,
            } => write!(
                f,
                "{algorithm}: energy audit found {discrepancies} ledger/replay mismatches"
            ),
            Violation::TelemetryMismatch {
                algorithm,
                histogram_count,
                expected,
            } => write!(
                f,
                "{algorithm}: MsgBits histogram counted {histogram_count} messages, traffic stats imply {expected}"
            ),
            Violation::ThreadParity { algorithm } => {
                write!(f, "{algorithm}: 1-thread and 2-thread aggregates differ")
            }
            Violation::OracleMetamorphic { property } => {
                write!(f, "oracle: {property} metamorphic property failed")
            }
            Violation::ProtocolMetamorphic {
                algorithm,
                property,
                round,
            } => write!(
                f,
                "{algorithm}: {property} metamorphic run diverged at round {round}"
            ),
            Violation::ServeIdentity {
                slot,
                algorithm,
                against,
            } => write!(
                f,
                "serve: slot {slot} ({algorithm}) diverged from its {against} run"
            ),
            Violation::ServeAccounting { detail } => {
                write!(f, "serve: {detail}")
            }
        }
    }
}

/// Counts of checks *performed* (not violations), summed over scenarios
/// for the fuzz summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Tally {
    /// Protocol batteries executed (scenarios × paper-set protocols).
    pub batteries: u64,
    /// Energy-audit reconciliations.
    pub audit: u64,
    /// Histogram/traffic reconciliations.
    pub telemetry: u64,
    /// Reliable-world exactness checks.
    pub exactness: u64,
    /// 1-vs-2-thread parity checks.
    pub parity: u64,
    /// Metamorphic checks (oracle-level + protocol-level).
    pub metamorphic: u64,
    /// Multi-query serve batteries (shared/unshared/solo identity plus
    /// lane accounting).
    pub serve: u64,
    /// Watchdog-replay reconciliations (monitored serve runs checked for
    /// zero perturbation and fire-iff budget events).
    pub watchdog: u64,
}

impl Tally {
    /// Accumulates another tally into this one.
    pub fn add(&mut self, other: &Tally) {
        self.batteries += other.batteries;
        self.audit += other.audit;
        self.telemetry += other.telemetry;
        self.exactness += other.exactness;
        self.parity += other.parity;
        self.metamorphic += other.metamorphic;
        self.serve += other.serve;
        self.watchdog += other.watchdog;
    }
}

/// What checking one scenario produced.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Violations found (empty = scenario passed).
    pub violations: Vec<Violation>,
    /// Checks performed.
    pub tally: Tally,
}

/// Extracts a readable message from a caught panic payload.
pub fn panic_text(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn catch<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    catch_unwind(AssertUnwindSafe(f)).map_err(|e| panic_text(&*e))
}

/// Runs the full invariant battery against one scenario.
pub fn check(scenario: &Scenario) -> ScenarioReport {
    let mut violations = Vec::new();
    let mut tally = Tally::default();
    let cfg = scenario.to_config();

    // Protocol batteries: run every paper protocol plus the two sketch
    // protocols (at the scenario's ε and capacity) sequentially and check
    // the per-run accounting invariants.
    let mut aggs: Vec<(AlgorithmKind, AggregatedMetrics)> = Vec::new();
    for kind in AlgorithmKind::battery(scenario.eps_milli, scenario.capacity) {
        tally.batteries += 1;
        match catch(|| run_experiment_threads(&cfg, kind, 1)) {
            Err(message) => violations.push(Violation::Panic {
                algorithm: kind.name(),
                message,
            }),
            Ok(agg) => {
                tally.audit += 1;
                if agg.audit_discrepancies != 0 {
                    violations.push(Violation::AuditDiscrepancy {
                        algorithm: kind.name(),
                        discrepancies: agg.audit_discrepancies,
                    });
                }
                tally.telemetry += 1;
                let expected = agg.messages_per_round * cfg.rounds as f64 * cfg.runs as f64;
                let counted = agg.hists.get(HistKind::MsgBits).count();
                if (counted as f64 - expected).abs() > 0.5 {
                    violations.push(Violation::TelemetryMismatch {
                        algorithm: kind.name(),
                        histogram_count: counted,
                        expected,
                    });
                }
                if scenario.is_reliable_world() {
                    tally.exactness += 1;
                    if kind.is_approximate() {
                        // ε-tolerant oracle mode: the sketch family must
                        // stay within the rank tolerance it advertised.
                        if agg.max_rank_error > agg.rank_tolerance {
                            violations.push(Violation::ToleranceExceeded {
                                algorithm: kind.name(),
                                max_rank_error: agg.max_rank_error,
                                rank_tolerance: agg.rank_tolerance,
                            });
                        }
                    } else if agg.exactness != 1.0 || agg.mean_rank_error != 0.0 {
                        violations.push(Violation::Inexact {
                            algorithm: kind.name(),
                            exactness: agg.exactness,
                            mean_rank_error: agg.mean_rank_error,
                        });
                    }
                }
                aggs.push((kind, agg));
            }
        }
    }

    // Parallel parity: multi-run scenarios re-run one protocol (chosen by
    // the scenario seed) on two workers; the aggregate must be
    // bit-identical to the sequential one.
    if cfg.runs >= 2 && !aggs.is_empty() {
        let (kind, sequential) = aggs[(scenario.seed % aggs.len() as u64) as usize];
        tally.parity += 1;
        match catch(|| run_experiment_threads(&cfg, kind, 2)) {
            Err(message) => violations.push(Violation::Panic {
                algorithm: kind.name(),
                message,
            }),
            Ok(parallel) => {
                if parallel != sequential {
                    violations.push(Violation::ThreadParity {
                        algorithm: kind.name(),
                    });
                }
            }
        }
    }

    // Oracle-level metamorphic properties on a synthetic value multiset
    // drawn from the scenario seed (cheap, so always checked).
    tally.metamorphic += 1;
    let mut rng = Rng::seed_from_u64(scenario.seed);
    let n = scenario.nodes.max(1);
    let values: Vec<Value> = (0..n).map(|_| rng.range_i64(-1024, 1024)).collect();
    let k = rank_of_phi(scenario.phi(), n);
    let rot = 1 + (scenario.seed % n as u64) as usize;
    if !kth_invariant_under_rotation(&values, k, rot) {
        violations.push(Violation::OracleMetamorphic {
            property: "rotation",
        });
    }
    if !kth_equivariant_under_affine(&values, k, 3, -7) {
        violations.push(Violation::OracleMetamorphic { property: "affine" });
    }

    // Protocol-level metamorphic runs: reliable worlds only (the streams
    // must be loss-randomness-free to be comparable), one protocol per
    // scenario to bound cost.
    if scenario.is_reliable_world() {
        tally.metamorphic += 1;
        let kind = AlgorithmKind::PAPER_SET
            [(scenario.seed % AlgorithmKind::PAPER_SET.len() as u64) as usize];
        let runs = (
            meta::answers(scenario, kind, 1, 0, 0),
            meta::answers(scenario, kind, 1, 0, rot),
            meta::answers(scenario, kind, 3, 1000, 0),
        );
        match runs {
            (Ok(identity), Ok(rotated), Ok(affine)) => {
                if let Some(round) = (0..identity.len()).find(|&t| rotated[t] != identity[t]) {
                    violations.push(Violation::ProtocolMetamorphic {
                        algorithm: kind.name(),
                        property: "rotation",
                        round,
                    });
                }
                if let Some(round) =
                    (0..identity.len()).find(|&t| affine[t] != 3 * identity[t] + 1000)
                {
                    violations.push(Violation::ProtocolMetamorphic {
                        algorithm: kind.name(),
                        property: "affine",
                        round,
                    });
                }
            }
            (a, b, c) => {
                for message in [a.err(), b.err(), c.err()].into_iter().flatten() {
                    violations.push(Violation::Panic {
                        algorithm: kind.name(),
                        message,
                    });
                }
            }
        }
    }

    // Multi-query service battery (scenarios carrying a serve workload):
    // the shared engine must answer every query exactly as the unshared
    // engine (frame sharing is pure accounting); on reliable worlds every
    // query must also match its own singleton service bit-for-bit and
    // sketches must honor their advertised tolerance; frame sharing may
    // only cheapen traffic; per-query lane charges must partition the
    // global phase ledger and replay bit-exactly from the audit log.
    if scenario.queries > 1 {
        tally.serve += 1;
        let workload = scenario.workload();
        match catch(|| {
            (
                serve(&cfg, &workload, &[], false, 0),
                serve_capture(&cfg, &workload, &[], true, 0),
            )
        }) {
            Err(message) => violations.push(Violation::Panic {
                algorithm: "serve",
                message,
            }),
            Ok((unshared, (shared, net))) => {
                for (mode, r) in [("unshared", &unshared), ("shared", &shared)] {
                    if r.audit_discrepancies != 0 {
                        violations.push(Violation::ServeAccounting {
                            detail: format!(
                                "{mode}: audit replay found {} mismatches",
                                r.audit_discrepancies
                            ),
                        });
                    }
                    for qr in &r.queries {
                        if qr.charges != r.lanes[qr.slot as usize] {
                            violations.push(Violation::ServeAccounting {
                                detail: format!(
                                    "{mode}: slot {} charges diverge from its lane",
                                    qr.slot
                                ),
                            });
                        }
                        if scenario.is_reliable_world() && qr.max_rank_error > qr.rank_tolerance {
                            violations.push(Violation::ToleranceExceeded {
                                algorithm: qr.query.algorithm.name(),
                                max_rank_error: qr.max_rank_error,
                                rank_tolerance: qr.rank_tolerance,
                            });
                        }
                    }
                }
                if shared.total_bits > unshared.total_bits {
                    violations.push(Violation::ServeAccounting {
                        detail: format!(
                            "frame sharing grew traffic: {} > {} bits",
                            shared.total_bits, unshared.total_bits
                        ),
                    });
                }
                for (u, s) in unshared.queries.iter().zip(&shared.queries) {
                    if u.answers != s.answers {
                        violations.push(Violation::ServeIdentity {
                            slot: u.slot,
                            algorithm: u.query.algorithm.name(),
                            against: "unshared",
                        });
                    }
                }
                // Lane attribution must replay bit-exactly from the event
                // log (the in-process debug assertion is compiled out of
                // release fuzz runs, so re-check here).
                let replayed = lane_breakdowns(net.audit_log(), shared.lanes.len());
                if replayed != shared.lanes {
                    violations.push(Violation::ServeAccounting {
                        detail: "lane replay diverged from live attribution".to_string(),
                    });
                }
                let global = net.phases();
                let lane_bits: u64 = shared
                    .lanes
                    .iter()
                    .map(|l| l.bits().iter().sum::<u64>())
                    .sum();
                if lane_bits != global.bits().iter().sum::<u64>() {
                    violations.push(Violation::ServeAccounting {
                        detail: "lane charges do not partition the phase ledger".to_string(),
                    });
                }
                // Solo identity: with no per-transmission loss randomness
                // the multi-query engine is invisible — each query answers
                // exactly as its own singleton service.
                if scenario.is_reliable_world() {
                    for (i, q) in workload.iter().enumerate() {
                        match catch(|| serve(&cfg, std::slice::from_ref(q), &[], false, 0)) {
                            Err(message) => violations.push(Violation::Panic {
                                algorithm: q.algorithm.name(),
                                message,
                            }),
                            Ok(solo) => {
                                if solo.queries[0].answers != unshared.queries[i].answers {
                                    violations.push(Violation::ServeIdentity {
                                        slot: i as u32,
                                        algorithm: q.algorithm.name(),
                                        against: "solo",
                                    });
                                }
                            }
                        }
                    }
                }
                // Watchdog replay (DESIGN.md §3.3j): monitoring is pure
                // observation — the monitored run must reproduce the
                // unmonitored report bit-for-bit — and the BudgetOverrun
                // watchdog must fire exactly at the first round boundary
                // where the lane energy replayed from the audit log
                // crosses the budget (same round, same slot), and never
                // otherwise. The 1 µJ budget makes most lanes overrun
                // while follower lanes (honestly zero) never do, so both
                // directions of the iff are exercised.
                tally.watchdog += 1;
                let mon_cfg = MonitorConfig {
                    budget_joules: Some(1e-6),
                    ..MonitorConfig::default()
                };
                match catch(|| serve_monitored(&cfg, &workload, &[], true, 0, Some(&mon_cfg))) {
                    Err(message) => violations.push(Violation::Panic {
                        algorithm: "serve-monitor",
                        message,
                    }),
                    Ok((monitored, monitor, mnet)) => {
                        if monitored != shared {
                            violations.push(Violation::ServeAccounting {
                                detail: "attaching a monitor perturbed the serve report"
                                    .to_string(),
                            });
                        }
                        let monitor = monitor.expect("a monitor config was attached");
                        let budget = mon_cfg.budget_joules.expect("set above");
                        let by_round = lane_breakdowns_by_round(
                            mnet.audit_log(),
                            monitored.lanes.len(),
                            monitored.rounds,
                        );
                        for (slot, _lane) in monitored.lanes.iter().enumerate() {
                            // Every slot admits at round 0 here, so its
                            // baseline lane book is zero and the replayed
                            // cumulative energy is the monitor's own view.
                            let expected = (0..monitored.rounds)
                                .find(|&r| by_round[r as usize][slot].total_joules() > budget);
                            let actual = monitor.events().iter().find_map(|e| match e.kind {
                                HealthKind::BudgetOverrun { .. } if e.slot == Some(slot as u32) => {
                                    Some(e.round)
                                }
                                _ => None,
                            });
                            if expected != actual {
                                violations.push(Violation::ServeAccounting {
                                    detail: format!(
                                        "slot {slot}: BudgetOverrun fired at {actual:?} but the audit replay says {expected:?}"
                                    ),
                                });
                            }
                        }
                    }
                }
            }
        }
    }

    ScenarioReport { violations, tally }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_sim::DataSource;

    fn base() -> Scenario {
        Scenario {
            seed: 3,
            nodes: 10,
            range_milli: 3000,
            rounds: 5,
            runs: 2,
            phi_milli: 500,
            loss_milli: 0,
            retries: 0,
            recovery: 0,
            failure_milli: 0,
            eps_milli: 100,
            capacity: 0,
            queries: 1,
            mobility_milli: 0,
            churn_milli: 0,
            drift_milli: 0,
            duty_milli: 0,
            source: DataSource::Sinusoid {
                period: 16,
                noise_permille: 100,
            },
        }
    }

    #[test]
    fn a_reliable_scenario_passes_the_full_battery() {
        let report = check(&base());
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert_eq!(report.tally.batteries, 8, "paper set + QD + GKS");
        assert_eq!(report.tally.exactness, 8);
        assert_eq!(report.tally.parity, 1);
        assert_eq!(report.tally.metamorphic, 2);
        assert_eq!(report.tally.serve, 0, "single-query scenarios skip serve");
    }

    #[test]
    fn a_multi_query_scenario_passes_the_serve_battery() {
        let s = Scenario {
            queries: 16,
            runs: 1,
            ..base()
        };
        let report = check(&s);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert_eq!(report.tally.serve, 1);
        assert_eq!(report.tally.watchdog, 1);
    }

    #[test]
    fn a_lossy_scenario_skips_exactness_but_still_audits() {
        let s = Scenario {
            loss_milli: 400,
            retries: 2,
            recovery: 1,
            runs: 1,
            ..base()
        };
        let report = check(&s);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert_eq!(report.tally.exactness, 0, "lossy worlds skip exactness");
        assert_eq!(report.tally.audit, 8);
        assert_eq!(report.tally.parity, 0, "single-run scenarios skip parity");
    }

    #[test]
    fn total_blackout_terminates_cleanly() {
        let s = Scenario {
            loss_milli: 1000,
            retries: 3,
            recovery: 2,
            runs: 1,
            rounds: 3,
            nodes: 6,
            ..base()
        };
        let report = check(&s);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }

    #[test]
    fn a_duty_cycled_world_keeps_the_exactness_bar() {
        // Duty-cycled listening spends idle joules but never changes an
        // answer, so the world stays reliable and the full exactness bar
        // (plus the audit replay over the new Idle events) applies.
        let s = Scenario {
            duty_milli: 250,
            runs: 1,
            ..base()
        };
        assert!(s.is_dynamic_world() && s.is_reliable_world());
        let report = check(&s);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert_eq!(report.tally.exactness, 8);
        assert_eq!(report.tally.audit, 8);
    }

    #[test]
    fn a_mobile_churning_world_audits_and_reconciles() {
        // Mobility + churn force routing rebuilds mid-run; exactness is
        // waived (orphaning is possible) but the audit replay, telemetry
        // reconciliation, and panic-freedom must all survive the rebuilds.
        let s = Scenario {
            mobility_milli: 250,
            churn_milli: 50,
            duty_milli: 100,
            runs: 2,
            ..base()
        };
        assert!(s.is_dynamic_world() && !s.is_reliable_world());
        let report = check(&s);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert_eq!(report.tally.exactness, 0, "mobile worlds skip exactness");
        assert_eq!(report.tally.audit, 8);
        assert_eq!(report.tally.parity, 1, "thread parity holds under rebuilds");
    }

    #[test]
    fn violations_render_readably() {
        let v = Violation::Inexact {
            algorithm: "IQ",
            exactness: 0.5,
            mean_rank_error: 1.25,
        };
        assert_eq!(
            v.to_string(),
            "IQ: inexact on reliable links (exactness=0.5, mean_rank_error=1.25)"
        );
        let p = Violation::OracleMetamorphic { property: "affine" };
        assert_eq!(p.to_string(), "oracle: affine metamorphic property failed");
        let t = Violation::ToleranceExceeded {
            algorithm: "QD",
            max_rank_error: 9,
            rank_tolerance: 4,
        };
        assert_eq!(
            t.to_string(),
            "QD: rank error 9 exceeds the advertised tolerance 4"
        );
    }

    #[test]
    fn exact_degenerate_epsilon_holds_the_sketches_to_exactness() {
        // ε = 0 makes rank_tolerance 0 for QD and GKS, so the ε-tolerant
        // branch degenerates to the same zero-error bar as the exact set.
        let report = check(&Scenario {
            eps_milli: 0,
            runs: 1,
            ..base()
        });
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert_eq!(report.tally.batteries, 8);
    }
}
