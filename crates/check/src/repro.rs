//! Single-line repro encoding.
//!
//! A failing scenario is emitted as one flat JSON object per line — easy
//! to copy out of CI logs into `simulate fuzz --repro '<line>'` or to
//! append to `tests/fuzz_corpus.txt`. Every field is an integer (the
//! [`Scenario`] encoding is all-integer by design), the data source is a
//! kind string plus three positional parameters, and the writer emits keys
//! in one fixed order, so `parse_line(to_line(s)) == s` holds exactly and
//! corpus diffs stay minimal. The parser is a tiny scanner over this
//! self-generated dialect, not a general JSON parser.

use wsn_sim::{DataSource, Scenario};

/// Serializes a scenario as one flat JSON line.
///
/// The `p1..p3` parameters depend on the source kind:
/// `sinusoid: (period, noise_permille, 0)`, `walk: (range_size, step, 0)`,
/// `regime: (range_size, phase_len, drift)`, `pressure: (skip, 0|1, 0)`.
pub fn to_line(s: &Scenario) -> String {
    let (p1, p2, p3): (i128, i128, i128) = match s.source {
        DataSource::Sinusoid {
            period,
            noise_permille,
        } => (period as i128, noise_permille as i128, 0),
        DataSource::Walk { range_size, step } => (range_size as i128, step as i128, 0),
        DataSource::Regime {
            range_size,
            phase_len,
            drift,
        } => (range_size as i128, phase_len as i128, drift as i128),
        DataSource::Pressure { skip, pessimistic } => (skip as i128, pessimistic as i128, 0),
    };
    format!(
        "{{\"seed\":{},\"nodes\":{},\"range_milli\":{},\"rounds\":{},\"runs\":{},\
         \"phi_milli\":{},\"loss_milli\":{},\"retries\":{},\"recovery\":{},\
         \"failure_milli\":{},\"eps_milli\":{},\"capacity\":{},\"queries\":{},\
         \"mobility_milli\":{},\"churn_milli\":{},\"drift_milli\":{},\"duty_milli\":{},\
         \"source\":\"{}\",\"p1\":{},\"p2\":{},\"p3\":{}}}",
        s.seed,
        s.nodes,
        s.range_milli,
        s.rounds,
        s.runs,
        s.phi_milli,
        s.loss_milli,
        s.retries,
        s.recovery,
        s.failure_milli,
        s.eps_milli,
        s.capacity,
        s.queries,
        s.mobility_milli,
        s.churn_milli,
        s.drift_milli,
        s.duty_milli,
        s.source.name(),
        p1,
        p2,
        p3
    )
}

/// Extracts the raw token after `"key":` (up to the next `,` or `}`).
fn field<'a>(line: &'a str, key: &str) -> Result<&'a str, String> {
    let pat = format!("\"{key}\":");
    let start = line
        .find(&pat)
        .ok_or_else(|| format!("missing field `{key}`"))?
        + pat.len();
    let rest = &line[start..];
    let end = rest
        .find([',', '}'])
        .ok_or_else(|| format!("unterminated field `{key}`"))?;
    Ok(rest[..end].trim())
}

fn int(line: &str, key: &str) -> Result<i128, String> {
    field(line, key)?
        .parse::<i128>()
        .map_err(|e| format!("field `{key}`: {e}"))
}

fn uint<T: TryFrom<i128>>(line: &str, key: &str) -> Result<T, String> {
    T::try_from(int(line, key)?).map_err(|_| format!("field `{key}` out of range"))
}

/// Like [`uint`], but a *missing* key falls back to `default`. Used for
/// fields added after the corpus format was first pinned (`eps_milli`,
/// `capacity`, `queries`), so older corpus lines keep parsing — and keep
/// expanding to the same worlds they always did. A present-but-malformed
/// value is still an error.
fn uint_or<T: TryFrom<i128>>(line: &str, key: &str, default: T) -> Result<T, String> {
    if field(line, key).is_err() {
        return Ok(default);
    }
    uint(line, key)
}

/// Parses one repro line back into a scenario. Accepts exactly the
/// dialect [`to_line`] produces; anything else is an `Err` naming the
/// first offending field.
pub fn parse_line(line: &str) -> Result<Scenario, String> {
    let line = line.trim();
    if !line.starts_with('{') || !line.ends_with('}') {
        return Err("repro line must be a flat JSON object".to_string());
    }
    // u64 seeds can exceed i64, so go through i128 uniformly.
    let seed: u64 = uint(line, "seed")?;
    let nodes: usize = uint(line, "nodes")?;
    let source_raw = field(line, "source")?;
    let kind = source_raw
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .ok_or_else(|| format!("field `source`: expected a quoted string, got `{source_raw}`"))?;
    let p1 = int(line, "p1")?;
    let p2 = int(line, "p2")?;
    let p3 = int(line, "p3")?;
    let source = match kind {
        "sinusoid" => DataSource::Sinusoid {
            period: p1 as u32,
            noise_permille: p2 as u32,
        },
        "walk" => DataSource::Walk {
            range_size: p1 as u64,
            step: p2 as i64,
        },
        "regime" => DataSource::Regime {
            range_size: p1 as u64,
            phase_len: p2 as u32,
            drift: p3 as i64,
        },
        "pressure" => DataSource::Pressure {
            skip: p1 as u32,
            pessimistic: p2 != 0,
        },
        other => return Err(format!("unknown source kind `{other}`")),
    };
    Ok(Scenario {
        seed,
        nodes,
        range_milli: uint(line, "range_milli")?,
        rounds: uint(line, "rounds")?,
        runs: uint(line, "runs")?,
        phi_milli: uint(line, "phi_milli")?,
        loss_milli: uint(line, "loss_milli")?,
        retries: uint(line, "retries")?,
        recovery: uint(line, "recovery")?,
        failure_milli: uint(line, "failure_milli")?,
        eps_milli: uint_or(line, "eps_milli", 100)?,
        capacity: uint_or(line, "capacity", 0)?,
        queries: uint_or(line, "queries", 1)?,
        mobility_milli: uint_or(line, "mobility_milli", 0)?,
        churn_milli: uint_or(line, "churn_milli", 0)?,
        drift_milli: uint_or(line, "drift_milli", 0)?,
        duty_milli: uint_or(line, "duty_milli", 0)?,
        source,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn round_trips_every_generated_scenario() {
        for i in 0..256 {
            let s = gen::scenario(0xFEED, i);
            let line = to_line(&s);
            assert_eq!(parse_line(&line).unwrap(), s, "{line}");
        }
    }

    #[test]
    fn round_trips_extreme_fields() {
        let s = Scenario {
            seed: u64::MAX,
            nodes: 1,
            range_milli: 4000,
            rounds: 1,
            runs: 1,
            phi_milli: 999,
            loss_milli: 1000,
            retries: 0,
            recovery: 0,
            failure_milli: 0,
            eps_milli: 1000,
            capacity: 32,
            queries: 16,
            mobility_milli: 1000,
            churn_milli: 200,
            drift_milli: 1000,
            duty_milli: 1000,
            source: DataSource::Regime {
                range_size: 2048,
                phase_len: 3,
                drift: -8,
            },
        };
        assert_eq!(parse_line(&to_line(&s)).unwrap(), s);
    }

    #[test]
    fn pre_sketch_lines_parse_with_default_tolerances() {
        // A corpus line from before the sketch fields existed: no
        // `eps_milli`/`capacity` keys. Must parse to the documented
        // defaults, not fail.
        let old = "{\"seed\":9,\"nodes\":5,\"range_milli\":2500,\"rounds\":3,\"runs\":1,\
                   \"phi_milli\":500,\"loss_milli\":0,\"retries\":0,\"recovery\":0,\
                   \"failure_milli\":0,\"source\":\"sinusoid\",\"p1\":16,\"p2\":100,\"p3\":0}";
        let s = parse_line(old).unwrap();
        assert_eq!(s.eps_milli, 100);
        assert_eq!(s.capacity, 0);
        assert_eq!(s.queries, 1);
        // Pre-dynamics lines default to the fully static world.
        assert_eq!(s.mobility_milli, 0);
        assert_eq!(s.churn_milli, 0);
        assert_eq!(s.drift_milli, 0);
        assert_eq!(s.duty_milli, 0);
        assert!(!s.is_dynamic_world());
        // A present-but-malformed value is still rejected.
        let bad = old.replace("\"failure_milli\":0", "\"failure_milli\":0,\"eps_milli\":x");
        assert!(parse_line(&bad).is_err());
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_line("").is_err());
        assert!(parse_line("not json").is_err());
        assert!(parse_line("{\"seed\":1}").is_err(), "missing fields");
        let bad_kind = to_line(&gen::scenario(1, 0)).replace("sinusoid", "volcano");
        if bad_kind.contains("volcano") {
            assert!(parse_line(&bad_kind).is_err());
        }
        let s = gen::scenario(1, 0);
        let negative = to_line(&s).replace(&format!("\"nodes\":{}", s.nodes), "\"nodes\":-3");
        assert!(parse_line(&negative).is_err(), "negative counts rejected");
    }
}
