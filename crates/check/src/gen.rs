//! Seeded scenario generation.
//!
//! Every scenario is a pure function of `(master_seed, index)`: the pair
//! is mixed splitmix-style into a per-scenario xoshiro256** stream (the
//! same [`wsn_data::Rng`] the simulator itself uses), so fuzz runs are
//! bit-for-bit reproducible across machines and thread counts, and any
//! single scenario can be regenerated without replaying the campaign.
//!
//! The distributions deliberately over-weight the paper's operating point
//! (reliable links, sinusoid data) while keeping every extension — loss up
//! to total blackout, ARQ budgets, wave recovery, crash-stop failures, all
//! four data sources — reachable within a few hundred scenarios.

use wsn_data::Rng;
use wsn_net::splitmix::GOLDEN_GAMMA;
use wsn_sim::{DataSource, Scenario};

/// Generates the `index`-th scenario of the campaign seeded by
/// `master_seed`. Deterministic; independent of every other index.
pub fn scenario(master_seed: u64, index: u64) -> Scenario {
    // The same (seed, index) mixing convention as `runner::run_once`
    // uses for (seed, run_index): golden-ratio stride, +1 so index 0
    // still perturbs the master seed.
    let mut rng =
        Rng::seed_from_u64(master_seed ^ index.wrapping_mul(GOLDEN_GAMMA).wrapping_add(1));

    let nodes = 1 + rng.below(40) as usize; // 1..=40, incl. the degenerate 1-node net
    let range_milli = 2000 + rng.below(2001) as u32; // 2.0..=4.0 × mean spacing: connected
    let rounds = 1 + rng.below(24) as u32; // 1..=24
    let runs = 1 + rng.below(2) as u32; // 1..=2; 2 triggers the parity check
                                        // φ classes: the boundary ranks are legal and must be drawn — φ = 0
                                        // (rank 1, the minimum) and φ = 1 (rank n, the maximum) are exactly
                                        // where off-by-one bugs live — with the bulk in the open interval.
    let phi_milli = match rng.below(8) {
        0 => 0,
        1 => 1000,
        _ => 1 + rng.below(999) as u32,
    };

    // Loss classes: mostly the paper's reliable links, a light tail, a
    // heavy tail, and the total-blackout edge the ARQ layer must survive.
    let loss_milli = match rng.below(8) {
        0..=4 => 0,
        5 => 1 + rng.below(300) as u32,
        6 => 300 + rng.below(500) as u32,
        _ => 1000,
    };
    let retries = rng.below(5) as u32; // ARQ budget 0..=4
    let recovery = rng.below(4) as u32; // wave-recovery passes 0..=3
    let failure_milli = if rng.below(5) == 0 {
        1 + rng.below(50) as u32 // up to 5% crash-stop per round
    } else {
        0
    };

    let source = match rng.below(8) {
        0..=3 => DataSource::Sinusoid {
            period: 1 + rng.below(64) as u32,
            noise_permille: rng.below(501) as u32,
        },
        4..=5 => DataSource::Walk {
            range_size: 2 + rng.below(2047),
            step: 1 + rng.below(32) as i64,
        },
        6 => DataSource::Regime {
            range_size: 2 + rng.below(2047),
            phase_len: 1 + rng.below(12) as u32,
            drift: rng.range_i64(-8, 8),
        },
        _ => DataSource::Pressure {
            skip: 1 + rng.below(4) as u32,
            pessimistic: rng.below(2) == 1,
        },
    };

    // Sketch-family knobs: mostly moderate tolerances around the default
    // 10 %, with the exact-degenerate ε = 0 and coarse tails reachable;
    // GKS capacity usually derived from the payload budget (0), sometimes
    // pinned to a small explicit summary.
    let eps_milli = match rng.below(5) {
        0 => 0,
        1..=3 => 1 + rng.below(250) as u32,
        _ => 251 + rng.below(750) as u32,
    };
    let capacity = if rng.below(4) == 0 {
        2 + rng.below(31) as u32 // 2..=32 entries
    } else {
        0
    };

    // Multi-query serve workloads: mostly the classic single query (the
    // full per-protocol battery already runs on every scenario), with a
    // tail of 2..=16-query workloads for the service-layer invariants.
    let queries = if rng.below(4) == 0 {
        2 + rng.below(15) as u32
    } else {
        1
    };

    // The legacy draw sequence ends with the master seed: binding it
    // *before* the dynamics classes keeps every historical scenario (and
    // the pinned corpus) byte-identical — new draws only extend the tail
    // of the stream.
    let seed = rng.next_u64();

    // Dynamic-world classes (DESIGN.md §3.3k), mostly static so the
    // paper's operating point keeps its weight: waypoint mobility (radio
    // ranges per epoch, in thousandths), churn, link drift amplitude and
    // the duty-cycle listen fraction.
    let mobility_milli = [0, 0, 250, 1000][rng.below(4) as usize];
    let churn_milli = [0, 0, 0, 10, 50, 200][rng.below(6) as usize];
    let drift_milli = [0, 0, 0, 100, 400, 1000][rng.below(6) as usize];
    let duty_milli = [0, 0, 0, 100, 1000][rng.below(5) as usize];

    Scenario {
        seed,
        nodes,
        range_milli,
        rounds,
        runs,
        phi_milli,
        loss_milli,
        retries,
        recovery,
        failure_milli,
        eps_milli,
        capacity,
        queries,
        mobility_milli,
        churn_milli,
        drift_milli,
        duty_milli,
        source,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for i in 0..64 {
            assert_eq!(scenario(42, i), scenario(42, i), "index {i}");
        }
        assert_ne!(scenario(42, 0), scenario(42, 1));
        assert_ne!(scenario(42, 0), scenario(43, 0));
    }

    #[test]
    fn fields_stay_in_their_documented_ranges() {
        for i in 0..512 {
            let s = scenario(7, i);
            assert!((1..=40).contains(&s.nodes), "{s:?}");
            assert!((2000..=4000).contains(&s.range_milli), "{s:?}");
            assert!((1..=24).contains(&s.rounds), "{s:?}");
            assert!((1..=2).contains(&s.runs), "{s:?}");
            assert!(s.phi_milli <= 1000, "{s:?}");
            assert!((1..=16).contains(&s.queries), "{s:?}");
            assert!(s.loss_milli <= 1000, "{s:?}");
            assert!(s.retries <= 4 && s.recovery <= 3, "{s:?}");
            assert!(s.failure_milli <= 50, "{s:?}");
            assert!(s.eps_milli <= 1000, "{s:?}");
            assert!(s.capacity == 0 || (2..=32).contains(&s.capacity), "{s:?}");
            assert!(matches!(s.mobility_milli, 0 | 250 | 1000), "{s:?}");
            assert!(matches!(s.churn_milli, 0 | 10 | 50 | 200), "{s:?}");
            assert!(matches!(s.drift_milli, 0 | 100 | 400 | 1000), "{s:?}");
            assert!(matches!(s.duty_milli, 0 | 100 | 1000), "{s:?}");
        }
    }

    #[test]
    fn every_scenario_class_is_reachable() {
        let scenarios: Vec<Scenario> = (0..512).map(|i| scenario(42, i)).collect();
        assert!(scenarios.iter().any(|s| s.is_reliable_world()));
        assert!(scenarios.iter().any(|s| s.loss_milli == 1000), "blackout");
        assert!(scenarios.iter().any(|s| s.failure_milli > 0), "failures");
        assert!(scenarios.iter().any(|s| s.nodes == 1), "degenerate net");
        assert!(
            scenarios.iter().any(|s| s.eps_milli == 0),
            "exact-degenerate ε"
        );
        assert!(scenarios.iter().any(|s| s.eps_milli > 250), "coarse ε tail");
        assert!(scenarios.iter().any(|s| s.phi_milli == 0), "φ = 0 boundary");
        assert!(
            scenarios.iter().any(|s| s.phi_milli == 1000),
            "φ = 1 boundary"
        );
        assert!(
            scenarios.iter().any(|s| s.queries > 1),
            "multi-query workload"
        );
        assert!(
            scenarios.iter().any(|s| s.queries == 16),
            "full 16-query workload"
        );
        assert!(
            scenarios.iter().any(|s| s.capacity > 0),
            "pinned GKS capacity"
        );
        for name in ["sinusoid", "walk", "regime", "pressure"] {
            assert!(
                scenarios.iter().any(|s| s.source.name() == name),
                "no {name} scenario in 512 draws"
            );
        }
        // Every dynamic-world class is reachable — and so is the fully
        // static world the paper assumes.
        assert!(scenarios.iter().any(|s| !s.is_dynamic_world()), "static");
        assert!(
            scenarios.iter().any(|s| s.mobility_milli == 1000),
            "fast mobility"
        );
        assert!(scenarios.iter().any(|s| s.churn_milli > 0), "churn");
        assert!(scenarios.iter().any(|s| s.drift_milli > 0), "drift");
        assert!(
            scenarios.iter().any(|s| s.duty_milli == 1000),
            "always-on duty"
        );
        assert!(
            scenarios
                .iter()
                .any(|s| s.mobility_milli > 0 && s.churn_milli > 0),
            "mobility and churn together"
        );
    }
}
