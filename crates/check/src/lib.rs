//! Deterministic scenario fuzzer and differential oracle harness.
//!
//! This crate closes the loop between the protocol stack and its paper
//! guarantees: a seeded generator ([`gen`]) draws whole simulated worlds —
//! topology density, sink placement, data source, loss rate, ARQ budget,
//! node-failure schedule, quantile φ — runs every paper protocol on each
//! of them, and checks the invariant battery ([`invariants`]) against the
//! centralized oracle:
//!
//! * **Exactness** — on reliable worlds every protocol's answer must equal
//!   `cqp_core::rank::oracle` every round (Theorems 4.1/4.2 territory).
//! * **Energy conservation** — the audit replay must reconcile with the
//!   ledger bit-exactly, lossy or not.
//! * **Telemetry reconciliation** — the always-on message-size histogram
//!   must count exactly the messages the traffic stats saw.
//! * **Parallel parity** — 1-thread and 2-thread experiment execution must
//!   agree bit-for-bit.
//! * **Metamorphic properties** — permuting sensor values across nodes
//!   must not change any answer; the order-preserving map `v ↦ a·v + b`
//!   must map every answer accordingly ([`meta`]).
//!
//! A failing scenario is shrunk ([`shrink()`]) to a greedy local minimum and
//! emitted as a single-line repro ([`repro`]) that `simulate fuzz --repro`
//! replays and `tests/fuzz_corpus.txt` pins forever.
//!
//! Everything is a pure function of the master seed: the same
//! `(seed, count)` pair produces byte-identical [`FuzzReport::summary`]
//! output on every machine and at every thread count.

pub mod gen;
pub mod invariants;
pub mod meta;
pub mod repro;
pub mod shrink;

use std::fmt::Write as _;

use wsn_sim::parallel::map_indexed;
use wsn_sim::Scenario;

pub use invariants::{check, ScenarioReport, Tally, Violation};
pub use repro::{parse_line, to_line};
pub use shrink::shrink;

/// One fuzz failure: the scenario as generated, its shrunk minimum, and
/// the violations the minimum still exhibits.
#[derive(Debug, Clone)]
pub struct FuzzFailure {
    /// Index of the scenario in the fuzz run (`gen::scenario(seed, index)`).
    pub index: u64,
    /// The scenario exactly as generated.
    pub original: Scenario,
    /// The greedy-shrunk minimal failing scenario.
    pub shrunk: Scenario,
    /// What the shrunk scenario still violates.
    pub violations: Vec<Violation>,
}

/// Outcome of a whole fuzz run.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// The master seed the run was derived from.
    pub master_seed: u64,
    /// Number of scenarios generated and checked.
    pub scenarios: u64,
    /// Checks performed, summed over all scenarios.
    pub tally: Tally,
    /// Failing scenarios, in generation order.
    pub failures: Vec<FuzzFailure>,
}

impl FuzzReport {
    /// True iff no scenario violated any invariant.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }

    /// Deterministic human-readable summary: same seed and count produce
    /// byte-identical output (integers only, stable ordering).
    pub fn summary(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "fuzz: seed={} scenarios={} failures={}",
            self.master_seed,
            self.scenarios,
            self.failures.len()
        );
        let t = &self.tally;
        let _ = writeln!(
            out,
            "checks: batteries={} audit={} telemetry={} exactness={} parity={} metamorphic={} serve={} watchdog={}",
            t.batteries, t.audit, t.telemetry, t.exactness, t.parity, t.metamorphic, t.serve,
            t.watchdog
        );
        for f in &self.failures {
            let _ = writeln!(out, "FAIL scenario #{}:", f.index);
            for v in &f.violations {
                let _ = writeln!(out, "  {v}");
            }
            let _ = writeln!(out, "  repro: {}", repro::to_line(&f.shrunk));
        }
        out
    }
}

/// Runs the full fuzz campaign: generates `count` scenarios from
/// `master_seed`, checks each one's invariant battery on up to `threads`
/// workers (scenario-level parallelism; each battery itself runs
/// sequentially, so results are thread-count independent), and shrinks
/// every failure to a minimal repro.
pub fn fuzz(master_seed: u64, count: u64, threads: usize) -> FuzzReport {
    let checked = map_indexed(count as usize, threads.max(1), |i| {
        let s = gen::scenario(master_seed, i as u64);
        let report = invariants::check(&s);
        (s, report)
    });

    let mut tally = Tally::default();
    let mut failures = Vec::new();
    for (index, (scenario, report)) in checked.into_iter().enumerate() {
        tally.add(&report.tally);
        if report.violations.is_empty() {
            continue;
        }
        let shrunk = shrink::shrink(scenario, |c| !invariants::check(c).violations.is_empty());
        let violations = invariants::check(&shrunk).violations;
        failures.push(FuzzFailure {
            index: index as u64,
            original: scenario,
            shrunk,
            violations,
        });
    }

    FuzzReport {
        master_seed,
        scenarios: count,
        tally,
        failures,
    }
}

/// Parses a corpus file: one repro line per non-empty, non-`#` line.
/// Returns `(1-based line number, scenario)` pairs or the first parse
/// error, prefixed with its line number.
pub fn corpus_entries(text: &str) -> Result<Vec<(usize, Scenario)>, String> {
    let mut out = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let s = repro::parse_line(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        out.push((i + 1, s));
    }
    Ok(out)
}
