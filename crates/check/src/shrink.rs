//! Greedy deterministic scenario shrinking.
//!
//! Given a failing scenario and a `fails` predicate, repeatedly tries a
//! fixed, ordered list of simplifying moves and keeps the first one that
//! still fails, restarting from the top after every acceptance. Every move
//! is monotone toward a per-field floor (fewer rounds, fewer nodes, less
//! loss, the canonical data source, the median, a denser radio), so the
//! walk terminates at a local minimum without any fuel counter — the
//! result is a small, deterministic repro, not a global minimum.

use wsn_sim::{DataSource, Scenario};

/// The canonical simplest data source shrinking converges toward.
const SIMPLEST_SOURCE: DataSource = DataSource::Sinusoid {
    period: 8,
    noise_permille: 0,
};

/// All simplifying moves applicable to `s`, most aggressive first.
fn candidates(s: &Scenario) -> Vec<Scenario> {
    let mut out = Vec::new();
    if s.rounds > 1 {
        out.push(Scenario {
            rounds: s.rounds / 2,
            ..*s
        });
        out.push(Scenario {
            rounds: s.rounds - 1,
            ..*s
        });
    }
    if s.nodes > 1 {
        out.push(Scenario {
            nodes: s.nodes / 2,
            ..*s
        });
        out.push(Scenario {
            nodes: s.nodes - 1,
            ..*s
        });
    }
    if s.runs > 1 {
        out.push(Scenario { runs: 1, ..*s });
    }
    if s.loss_milli > 0 {
        out.push(Scenario {
            loss_milli: 0,
            ..*s
        });
        out.push(Scenario {
            loss_milli: s.loss_milli / 2,
            ..*s
        });
    }
    if s.failure_milli > 0 {
        out.push(Scenario {
            failure_milli: 0,
            ..*s
        });
    }
    if s.mobility_milli > 0 {
        out.push(Scenario {
            mobility_milli: 0,
            ..*s
        });
    }
    if s.churn_milli > 0 {
        out.push(Scenario {
            churn_milli: 0,
            ..*s
        });
    }
    if s.drift_milli > 0 {
        out.push(Scenario {
            drift_milli: 0,
            ..*s
        });
    }
    if s.duty_milli > 0 {
        out.push(Scenario {
            duty_milli: 0,
            ..*s
        });
    }
    if s.retries > 0 {
        out.push(Scenario { retries: 0, ..*s });
    }
    if s.recovery > 0 {
        out.push(Scenario { recovery: 0, ..*s });
    }
    if s.source != SIMPLEST_SOURCE {
        out.push(Scenario {
            source: SIMPLEST_SOURCE,
            ..*s
        });
    }
    if s.eps_milli != 100 {
        out.push(Scenario {
            eps_milli: 100,
            ..*s
        });
    }
    if s.capacity != 0 {
        out.push(Scenario { capacity: 0, ..*s });
    }
    if s.queries > 1 {
        out.push(Scenario { queries: 1, ..*s });
        out.push(Scenario {
            queries: s.queries / 2,
            ..*s
        });
    }
    if s.phi_milli != 500 {
        out.push(Scenario {
            phi_milli: 500,
            ..*s
        });
    }
    if s.range_milli != 4000 {
        out.push(Scenario {
            range_milli: 4000,
            ..*s
        });
    }
    out
}

/// Shrinks `failing` to a greedy local minimum under `fails`. The caller
/// guarantees `fails(&failing)` (debug-asserted); the result also fails.
pub fn shrink(failing: Scenario, fails: impl Fn(&Scenario) -> bool) -> Scenario {
    debug_assert!(fails(&failing), "shrink needs a failing scenario");
    let mut current = failing;
    loop {
        let Some(next) = candidates(&current).into_iter().find(|c| fails(c)) else {
            return current;
        };
        current = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big() -> Scenario {
        Scenario {
            seed: 99,
            nodes: 40,
            range_milli: 2500,
            rounds: 24,
            runs: 2,
            phi_milli: 873,
            loss_milli: 450,
            retries: 4,
            recovery: 3,
            failure_milli: 20,
            eps_milli: 750,
            capacity: 17,
            queries: 13,
            mobility_milli: 250,
            churn_milli: 50,
            drift_milli: 400,
            duty_milli: 100,
            source: DataSource::Pressure {
                skip: 3,
                pessimistic: true,
            },
        }
    }

    #[test]
    fn shrinks_to_the_predicate_boundary() {
        // Synthetic failure: anything with ≥ 5 nodes and ≥ 3 rounds.
        let min = shrink(big(), |s| s.nodes >= 5 && s.rounds >= 3);
        assert_eq!(min.nodes, 5);
        assert_eq!(min.rounds, 3);
        // Everything irrelevant to the predicate lands on its floor.
        assert_eq!(min.runs, 1);
        assert_eq!(min.loss_milli, 0);
        assert_eq!(min.failure_milli, 0);
        assert_eq!(min.retries, 0);
        assert_eq!(min.recovery, 0);
        assert_eq!(min.phi_milli, 500);
        assert_eq!(min.eps_milli, 100, "ε lands on the default tolerance");
        assert_eq!(min.capacity, 0, "capacity falls back to derived");
        assert_eq!(min.queries, 1, "workload collapses to one query");
        assert_eq!(min.range_milli, 4000);
        assert_eq!(min.source, SIMPLEST_SOURCE);
        assert_eq!(min.seed, 99, "the seed is never shrunk");
        // Every dynamic process lands on its static floor.
        assert_eq!(min.mobility_milli, 0);
        assert_eq!(min.churn_milli, 0);
        assert_eq!(min.drift_milli, 0);
        assert_eq!(min.duty_milli, 0);
        assert!(!min.is_dynamic_world());
    }

    #[test]
    fn an_always_failing_scenario_reaches_the_global_floor() {
        let min = shrink(big(), |_| true);
        assert_eq!(min.nodes, 1);
        assert_eq!(min.rounds, 1);
        assert!(!min.is_dynamic_world(), "the global floor is static");
        assert!(candidates(&min).is_empty(), "floor has no moves left");
    }

    #[test]
    fn dynamics_dependent_failures_keep_their_process() {
        // A failure that needs churn keeps churn but floors the rest.
        let min = shrink(big(), |s| s.churn_milli > 0);
        assert_eq!(min.churn_milli, 50, "churn is what the failure needs");
        assert_eq!(min.mobility_milli, 0);
        assert_eq!(min.drift_milli, 0);
        assert_eq!(min.duty_milli, 0);
        assert_eq!(min.nodes, 1);
    }

    #[test]
    fn loss_dependent_failures_keep_their_loss() {
        let min = shrink(big(), |s| s.loss_milli > 0);
        assert_eq!(min.loss_milli, 1, "halving walks loss down to 1‰");
        assert_eq!(min.nodes, 1);
    }

    #[test]
    fn query_count_dependent_failures_keep_their_queries() {
        let min = shrink(big(), |s| s.queries >= 3);
        assert_eq!(min.queries, 3, "halving walks the workload down");
        assert_eq!(min.nodes, 1);
    }

    #[test]
    fn shrinking_is_deterministic() {
        let pred = |s: &Scenario| s.nodes * s.rounds as usize >= 30;
        assert_eq!(shrink(big(), pred), shrink(big(), pred));
    }
}
