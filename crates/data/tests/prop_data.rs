//! Property-based tests of the dataset generators.
//!
//! Compiled only with `--features proptest` (plus an ad-hoc
//! `cargo add proptest --dev`) so the default build needs no network
//! access; see crates/data/Cargo.toml.
#![cfg(feature = "proptest")]

use proptest::prelude::*;
use wsn_data::pressure::{PressureConfig, RangeSetting};
use wsn_data::som::som_placement;
use wsn_data::synthetic::{SyntheticConfig, SyntheticDataset};
use wsn_data::{Dataset, PressureDataset, Rng};

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 32,
        ..ProptestConfig::default()
    })]

    #[test]
    fn rng_below_respects_bound(seed in 0u64..1000, n in 1u64..1_000_000) {
        let mut rng = Rng::seed_from_u64(seed);
        for _ in 0..100 {
            prop_assert!(rng.below(n) < n);
        }
    }

    #[test]
    fn rng_range_respects_bounds(seed in 0u64..1000, lo in -1000i64..1000, width in 0i64..500) {
        let mut rng = Rng::seed_from_u64(seed);
        let hi = lo + width;
        for _ in 0..50 {
            let v = rng.range_i64(lo, hi);
            prop_assert!(v >= lo && v <= hi);
        }
    }

    #[test]
    fn synthetic_values_always_in_range(
        seed in 0u64..500,
        n in 1usize..80,
        period in 1u32..300,
        noise in 0.0f64..100.0,
        range_size in 2u64..4096,
    ) {
        let mut rng = Rng::seed_from_u64(seed);
        let pos: Vec<(f64, f64)> = (0..n)
            .map(|_| (rng.range_f64(0.0, 200.0), rng.range_f64(0.0, 200.0)))
            .collect();
        let cfg = SyntheticConfig {
            period,
            noise_percent: noise,
            range_size,
            ..SyntheticConfig::default()
        };
        let mut ds = SyntheticDataset::generate(cfg, &pos, &mut rng);
        let mut out = vec![0; n];
        for t in [0u32, 1, period / 2, period, period * 2 + 3] {
            ds.sample_round(t, &mut out);
            for &v in &out {
                prop_assert!(v >= ds.range_min() && v <= ds.range_max());
            }
        }
    }

    #[test]
    fn pressure_values_always_in_range(
        seed in 0u64..200,
        n in 1usize..60,
        skip in 1u32..20,
        pessimistic in proptest::bool::ANY,
    ) {
        let mut rng = Rng::seed_from_u64(seed);
        let cfg = PressureConfig {
            sensor_count: n,
            steps: 200,
            skip,
            range: if pessimistic { RangeSetting::Pessimistic } else { RangeSetting::Optimistic },
            ..PressureConfig::default()
        };
        let mut ds = PressureDataset::generate(cfg, &mut rng);
        prop_assert!(ds.range_min() < ds.range_max());
        let mut out = vec![0; n];
        for t in [0u32, 1, 50, 500] {
            ds.sample_round(t, &mut out);
            for &v in &out {
                prop_assert!(v >= ds.range_min() && v <= ds.range_max());
            }
        }
    }

    #[test]
    fn som_placement_stays_in_area(
        seed in 0u64..200,
        features in prop::collection::vec(0i64..10_000, 2..150),
        w in 10.0f64..400.0,
        h in 10.0f64..400.0,
    ) {
        let mut rng = Rng::seed_from_u64(seed);
        let pos = som_placement(&features, w, h, &mut rng);
        prop_assert_eq!(pos.len(), features.len());
        for &(x, y) in &pos {
            prop_assert!((0.0..=w).contains(&x));
            prop_assert!((0.0..=h).contains(&y));
        }
    }

    #[test]
    fn datasets_are_deterministic_per_seed(seed in 0u64..500) {
        let make = |seed: u64| {
            let mut rng = Rng::seed_from_u64(seed);
            let pos = vec![(10.0, 10.0), (50.0, 70.0), (150.0, 30.0)];
            let mut ds = SyntheticDataset::generate(SyntheticConfig::default(), &pos, &mut rng);
            let mut out = vec![0; 3];
            ds.sample_round(5, &mut out);
            out
        };
        prop_assert_eq!(make(seed), make(seed));
    }

    #[test]
    fn range_size_is_consistent(lo_seed in 0u64..100) {
        let mut rng = Rng::seed_from_u64(lo_seed);
        let pos = vec![(1.0, 1.0); 5];
        let ds = SyntheticDataset::generate(SyntheticConfig::default(), &pos, &mut rng);
        prop_assert_eq!(ds.range_size(), (ds.range_max() - ds.range_min() + 1) as u64);
    }
}
