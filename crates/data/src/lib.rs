#![warn(missing_docs)]
//! # wsn-data — dataset generators for WSN quantile simulations
//!
//! Provides everything §5.1 of the paper needs as input:
//!
//! * [`rng`] — a deterministic xoshiro256** PRNG (reproducible runs),
//! * [`noise`] — the "interpolated noise image" used to spatially correlate
//!   initial sensor values (§5.1.2, Fig. 5),
//! * [`placement`] — uniform node placement in the deployment area,
//! * [`synthetic`] — the sinusoidal synthetic workload with period `τ` and
//!   noise `ψ` (§5.1.7, Table 2),
//! * [`pressure`] — a synthetic stand-in for the "Live from Earth and Mars"
//!   air-pressure traces (§5.1.3; see DESIGN.md §5 for the substitution
//!   rationale),
//! * [`som`] — a self-organizing map that assigns spatial positions to
//!   trace nodes so neighbors measure similar values (§5.1.3).
//!
//! All generators implement [`Dataset`], the round-by-round measurement
//! source consumed by `wsn-sim`.
//!
//! ```
//! use wsn_data::{Dataset, Rng};
//! use wsn_data::synthetic::{SyntheticConfig, SyntheticDataset};
//!
//! let mut rng = Rng::seed_from_u64(42);
//! let positions = wsn_data::placement::uniform(100, 200.0, 200.0, &mut rng);
//! let mut data = SyntheticDataset::generate(
//!     SyntheticConfig::default(), &positions[1..], &mut rng);
//!
//! let mut round = vec![0; 100];
//! data.sample_round(0, &mut round);
//! assert!(round.iter().all(|&v| v >= data.range_min() && v <= data.range_max()));
//! ```

pub mod noise;
pub mod placement;
pub mod pressure;
pub mod rng;
pub mod som;
pub mod synthetic;
pub mod walks;

pub use noise::NoiseField;
pub use pressure::{PressureConfig, PressureDataset, RangeSetting};
pub use rng::Rng;
pub use som::SelfOrganizingMap;
pub use synthetic::{SyntheticConfig, SyntheticDataset};
pub use walks::{RandomWalkDataset, RegimeDataset, WaypointWalk};

/// A sensor measurement (integer universe, see `wsn_net::Value`).
pub type Value = i64;

/// A round-by-round source of measurements for `n` sensor nodes.
///
/// Node indices are `0..n` and correspond to sensor nodes `n_1..n_|N|`
/// (the root takes no measurements).
pub trait Dataset {
    /// Number of sensor nodes.
    fn sensor_count(&self) -> usize;

    /// Smallest value of the integer universe `r_min`.
    fn range_min(&self) -> Value;

    /// Largest value of the integer universe `r_max`.
    fn range_max(&self) -> Value;

    /// Writes the measurements of round `t` into `out` (length
    /// `sensor_count()`). Values must lie within `[range_min, range_max]`.
    fn sample_round(&mut self, t: u32, out: &mut [Value]);

    /// Number of values in the integer range, `τ = r_max − r_min + 1`
    /// (Table 1).
    fn range_size(&self) -> u64 {
        (self.range_max() - self.range_min() + 1) as u64
    }
}
