//! Deterministic pseudo-random number generation.
//!
//! A self-contained xoshiro256** implementation (Blackman & Vigna), seeded
//! through the workspace-shared splitmix64
//! ([`wsn_net::splitmix::SplitMix64`]). We implement it in-repo rather
//! than depending on the `rand` crate so that every simulation run is
//! bit-reproducible across `rand` version bumps — reproducibility is the
//! whole point of a reproduction repository.

use wsn_net::splitmix::SplitMix64;

/// xoshiro256** generator.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Seeds the generator from a single `u64` via splitmix64.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        Rng { s }
    }

    /// Derives an independent child generator (for per-run / per-node
    /// streams without correlated sequences).
    pub fn fork(&mut self) -> Rng {
        Rng::seed_from_u64(self.next_u64())
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform float in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi);
        lo + self.next_f64() * (hi - lo)
    }

    /// Uniform integer in `[0, n)` via Lemire's multiply-shift rejection.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (n as u128);
            let lo = m as u64;
            if lo >= n || lo >= (u64::MAX - n + 1) % n {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u64 + 1;
        lo + self.below(span) as i64
    }

    /// Standard normal variate (Box–Muller, one value per call).
    pub fn next_gaussian(&mut self) -> f64 {
        // Avoid ln(0).
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = Rng::seed_from_u64(123);
        let mut b = Rng::seed_from_u64(123);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    /// Seeding must stay bit-identical to the splitmix64 closure this
    /// module open-coded before the generator was shared with `wsn-net` —
    /// every published experiment seed depends on it.
    #[test]
    fn seeding_matches_the_old_inline_splitmix() {
        for seed in [0u64, 1, 123, 0xC0FFEE, u64::MAX] {
            let mut sm = seed;
            let mut next_sm = || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            let old = Rng {
                s: [next_sm(), next_sm(), next_sm(), next_sm()],
            };
            let mut new = Rng::seed_from_u64(seed);
            assert_eq!(old.s, new.s, "seed {seed}");
            let _ = new.next_u64();
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_uniform_enough() {
        let mut r = Rng::seed_from_u64(5);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[r.below(10) as usize] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 500.0, "count {c}");
        }
    }

    #[test]
    fn range_i64_inclusive_bounds_hit() {
        let mut r = Rng::seed_from_u64(11);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..10_000 {
            let v = r.range_i64(-3, 3);
            assert!((-3..=3).contains(&v));
            lo_seen |= v == -3;
            hi_seen |= v == 3;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn gaussian_moments() {
        let mut r = Rng::seed_from_u64(77);
        let n = 200_000;
        let (mut sum, mut sq) = (0.0, 0.0);
        for _ in 0..n {
            let x = r.next_gaussian();
            sum += x;
            sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::seed_from_u64(3);
        let mut xs: Vec<u32> = (0..100).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn forked_streams_are_independent() {
        let mut parent = Rng::seed_from_u64(42);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }
}
