//! Interpolated noise fields ("noise images", §5.1.2).
//!
//! The paper seeds each synthetic simulation run with an image of
//! interpolated noise: random greyscale values on a coarse lattice, smoothly
//! interpolated between lattice points, producing the spatial correlation a
//! physical phenomenon would show (Fig. 5). This module implements exactly
//! that: *value noise* with smoothstep interpolation, optionally with
//! several octaves for a more natural look.

use crate::rng::Rng;

/// A smooth random field over the unit square, returning values in
/// `[0, 1]`.
#[derive(Debug, Clone)]
pub struct NoiseField {
    /// Lattice values, `(cells+1) x (cells+1)`, row-major.
    lattice: Vec<f64>,
    cells: usize,
}

impl NoiseField {
    /// Creates a field with `cells × cells` lattice cells. More cells mean
    /// higher spatial frequency (less correlation between distant points).
    ///
    /// # Panics
    /// Panics if `cells == 0`.
    pub fn new(cells: usize, rng: &mut Rng) -> Self {
        assert!(cells > 0, "need at least one lattice cell");
        let side = cells + 1;
        let lattice = (0..side * side).map(|_| rng.next_f64()).collect();
        NoiseField { lattice, cells }
    }

    /// Samples the field at `(x, y)` ∈ `[0, 1]²` using smoothstep-weighted
    /// bilinear interpolation. Coordinates outside the unit square are
    /// clamped.
    pub fn sample(&self, x: f64, y: f64) -> f64 {
        let fx = (x.clamp(0.0, 1.0)) * self.cells as f64;
        let fy = (y.clamp(0.0, 1.0)) * self.cells as f64;
        let x0 = (fx.floor() as usize).min(self.cells - 1);
        let y0 = (fy.floor() as usize).min(self.cells - 1);
        let tx = smoothstep(fx - x0 as f64);
        let ty = smoothstep(fy - y0 as f64);
        let side = self.cells + 1;
        let v00 = self.lattice[y0 * side + x0];
        let v10 = self.lattice[y0 * side + x0 + 1];
        let v01 = self.lattice[(y0 + 1) * side + x0];
        let v11 = self.lattice[(y0 + 1) * side + x0 + 1];
        let top = v00 + (v10 - v00) * tx;
        let bot = v01 + (v11 - v01) * tx;
        top + (bot - top) * ty
    }

    /// Sum of `octaves` fields with doubling frequency and halving
    /// amplitude (fractal noise), normalized back to `[0, 1]`.
    pub fn fractal(cells: usize, octaves: usize, rng: &mut Rng) -> FractalNoise {
        assert!(octaves > 0, "need at least one octave");
        let mut fields = Vec::with_capacity(octaves);
        let mut c = cells.max(1);
        for _ in 0..octaves {
            fields.push(NoiseField::new(c, rng));
            c *= 2;
        }
        FractalNoise { fields }
    }
}

/// Multi-octave value noise; see [`NoiseField::fractal`].
#[derive(Debug, Clone)]
pub struct FractalNoise {
    fields: Vec<NoiseField>,
}

impl FractalNoise {
    /// Samples the fractal field at `(x, y)` ∈ `[0,1]²`, result in `[0,1]`.
    pub fn sample(&self, x: f64, y: f64) -> f64 {
        let mut amp = 1.0;
        let mut sum = 0.0;
        let mut norm = 0.0;
        for f in &self.fields {
            sum += amp * f.sample(x, y);
            norm += amp;
            amp *= 0.5;
        }
        sum / norm
    }
}

#[inline]
fn smoothstep(t: f64) -> f64 {
    t * t * (3.0 - 2.0 * t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_are_in_unit_interval() {
        let mut rng = Rng::seed_from_u64(1);
        let field = NoiseField::new(8, &mut rng);
        for i in 0..50 {
            for j in 0..50 {
                let v = field.sample(i as f64 / 49.0, j as f64 / 49.0);
                assert!((0.0..=1.0).contains(&v), "value {v}");
            }
        }
    }

    #[test]
    fn lattice_points_are_exact() {
        let mut rng = Rng::seed_from_u64(2);
        let field = NoiseField::new(4, &mut rng);
        // At lattice coordinates the interpolation weights are 0/1.
        let v = field.sample(0.0, 0.0);
        assert!((v - field.lattice[0]).abs() < 1e-12);
        let v = field.sample(1.0, 1.0);
        assert!((v - field.lattice[24]).abs() < 1e-12);
    }

    #[test]
    fn field_is_spatially_correlated() {
        let mut rng = Rng::seed_from_u64(3);
        let field = NoiseField::new(4, &mut rng);
        // Nearby samples differ much less than the field's global range.
        let mut near = 0.0f64;
        let mut far = 0.0f64;
        let mut count = 0;
        for i in 0..20 {
            let x = i as f64 / 19.0 * 0.9;
            near += (field.sample(x, 0.5) - field.sample(x + 0.01, 0.5)).abs();
            far += (field.sample(x, 0.1) - field.sample(x, 0.9)).abs();
            count += 1;
        }
        assert!(near / count as f64 * 5.0 < far / count as f64 + 0.2);
    }

    #[test]
    fn clamps_out_of_range_coordinates() {
        let mut rng = Rng::seed_from_u64(4);
        let field = NoiseField::new(3, &mut rng);
        assert_eq!(field.sample(-1.0, -5.0), field.sample(0.0, 0.0));
        assert_eq!(field.sample(2.0, 7.0), field.sample(1.0, 1.0));
    }

    #[test]
    fn fractal_combines_octaves() {
        let mut rng = Rng::seed_from_u64(5);
        let f = NoiseField::fractal(4, 3, &mut rng);
        for i in 0..25 {
            let v = f.sample(i as f64 / 24.0, 0.3);
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut r1 = Rng::seed_from_u64(9);
        let mut r2 = Rng::seed_from_u64(9);
        let f1 = NoiseField::new(6, &mut r1);
        let f2 = NoiseField::new(6, &mut r2);
        assert_eq!(f1.sample(0.37, 0.81), f2.sample(0.37, 0.81));
    }
}
