//! The synthetic sinusoidal workload (§5.1.2, §5.1.7).
//!
//! Initial values come from an interpolated-noise image sampled at each
//! node's position (spatial correlation), plus a small dither so more than
//! 256 distinct values occur, scaled to the integer range. Over time a
//! global sinusoid with period `τ` shifts all measurements (temporal
//! correlation) and per-node uniform noise of magnitude `ψ` percent of the
//! sine amplitude is added (§5.2.3: noise changes individual measurements
//! while barely moving the median).

use crate::noise::NoiseField;
use crate::rng::Rng;
use crate::{Dataset, Value};

/// Parameters of the synthetic dataset. Defaults follow Table 2 and
/// DESIGN.md §3.4.
#[derive(Debug, Clone)]
pub struct SyntheticConfig {
    /// Width of the deployment area in meters (paper: 200 m).
    pub area_width: f64,
    /// Height of the deployment area in meters (paper: 200 m).
    pub area_height: f64,
    /// Number of values in the integer universe (`r = [0, range_size)`).
    pub range_size: u64,
    /// Lattice cells of the noise image (spatial frequency).
    pub noise_cells: usize,
    /// Sine amplitude as a fraction of the range (DESIGN.md: 0.25).
    pub amplitude_fraction: f64,
    /// Period `τ` of the sinusoid, in rounds (Table 2: 250…8).
    pub period: u32,
    /// Noise `ψ` in percent of the sine amplitude (Table 2: 0…50).
    pub noise_percent: f64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            area_width: 200.0,
            area_height: 200.0,
            range_size: 1024,
            noise_cells: 6,
            amplitude_fraction: 0.25,
            period: 125,
            noise_percent: 10.0,
        }
    }
}

/// The generated dataset: per-node base values plus the temporal process.
#[derive(Debug, Clone)]
pub struct SyntheticDataset {
    config: SyntheticConfig,
    base: Vec<f64>,
    amplitude: f64,
    rng: Rng,
}

impl SyntheticDataset {
    /// Builds the dataset for sensors at `positions` (meters; the root is
    /// *not* included — it takes no measurements).
    pub fn generate(config: SyntheticConfig, positions: &[(f64, f64)], rng: &mut Rng) -> Self {
        assert!(config.range_size >= 2, "need a non-trivial value range");
        assert!(config.period >= 1, "period must be at least one round");
        assert!(
            (0.0..=100.0).contains(&config.noise_percent),
            "ψ is a percentage"
        );
        let field = NoiseField::new(config.noise_cells.max(1), rng);
        let amplitude = config.amplitude_fraction * config.range_size as f64;
        // Keep the base band inside [amplitude, range - amplitude] so the
        // sinusoid rarely clamps and the median follows it cleanly.
        let lo = amplitude;
        let hi = (config.range_size as f64 - 1.0 - amplitude).max(lo + 1.0);
        let base = positions
            .iter()
            .map(|&(x, y)| {
                let u = field.sample(x / config.area_width, y / config.area_height);
                // Quantize to 256 grey levels like the input image, then
                // dither by < 1/255 of the image range (§5.1.2).
                let grey = (u * 255.0).round() / 255.0;
                let dithered = (grey + (rng.next_f64() - 0.5) / 255.0).clamp(0.0, 1.0);
                lo + dithered * (hi - lo)
            })
            .collect();
        SyntheticDataset {
            config,
            base,
            amplitude,
            rng: rng.fork(),
        }
    }

    /// The sine amplitude in value units.
    pub fn amplitude(&self) -> f64 {
        self.amplitude
    }
}

impl Dataset for SyntheticDataset {
    fn sensor_count(&self) -> usize {
        self.base.len()
    }

    fn range_min(&self) -> Value {
        0
    }

    fn range_max(&self) -> Value {
        self.config.range_size as Value - 1
    }

    fn sample_round(&mut self, t: u32, out: &mut [Value]) {
        assert_eq!(out.len(), self.base.len());
        let phase = std::f64::consts::TAU * t as f64 / self.config.period as f64;
        let shift = self.amplitude * phase.sin();
        let noise_mag = self.config.noise_percent / 100.0 * self.amplitude;
        let max = self.range_max();
        for (o, &b) in out.iter_mut().zip(&self.base) {
            let eta = if noise_mag > 0.0 {
                self.rng.range_f64(-noise_mag, noise_mag)
            } else {
                0.0
            };
            *o = ((b + shift + eta).round() as Value).clamp(0, max);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn positions(n: usize, seed: u64) -> Vec<(f64, f64)> {
        let mut rng = Rng::seed_from_u64(seed);
        crate::placement::uniform(n, 200.0, 200.0, &mut rng)[1..].to_vec()
    }

    fn median(xs: &mut [Value]) -> Value {
        xs.sort_unstable();
        xs[xs.len() / 2]
    }

    #[test]
    fn values_stay_in_range() {
        let mut rng = Rng::seed_from_u64(1);
        let pos = positions(300, 2);
        let mut ds = SyntheticDataset::generate(SyntheticConfig::default(), &pos, &mut rng);
        let mut out = vec![0; 300];
        for t in 0..300 {
            ds.sample_round(t, &mut out);
            for &v in &out {
                assert!(v >= ds.range_min() && v <= ds.range_max());
            }
        }
    }

    #[test]
    fn median_follows_the_sinusoid() {
        let mut rng = Rng::seed_from_u64(3);
        let pos = positions(500, 4);
        let cfg = SyntheticConfig {
            period: 100,
            noise_percent: 0.0,
            ..SyntheticConfig::default()
        };
        let mut ds = SyntheticDataset::generate(cfg, &pos, &mut rng);
        let mut out = vec![0; 500];
        ds.sample_round(0, &mut out);
        let m0 = median(&mut out.clone());
        ds.sample_round(25, &mut out); // quarter period: +amplitude
        let m25 = median(&mut out.clone());
        ds.sample_round(75, &mut out); // three quarters: −amplitude
        let m75 = median(&mut out.clone());
        assert!(m25 > m0 + 100, "m0={m0} m25={m25}");
        assert!(m75 < m0 - 100, "m0={m0} m75={m75}");
    }

    #[test]
    fn zero_noise_makes_rounds_reproducible() {
        let mut rng = Rng::seed_from_u64(5);
        let pos = positions(50, 6);
        let cfg = SyntheticConfig {
            noise_percent: 0.0,
            ..SyntheticConfig::default()
        };
        let mut ds = SyntheticDataset::generate(cfg, &pos, &mut rng);
        let mut a = vec![0; 50];
        let mut b = vec![0; 50];
        ds.sample_round(7, &mut a);
        ds.sample_round(7, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn noise_perturbs_individual_measurements() {
        let mut rng = Rng::seed_from_u64(7);
        let pos = positions(200, 8);
        let cfg = SyntheticConfig {
            noise_percent: 50.0,
            ..SyntheticConfig::default()
        };
        let mut ds = SyntheticDataset::generate(cfg, &pos, &mut rng);
        let mut a = vec![0; 200];
        let mut b = vec![0; 200];
        ds.sample_round(7, &mut a);
        ds.sample_round(7, &mut b);
        assert_ne!(a, b, "noise should differ between samplings");
        // ... but the median barely moves (robustness, §1).
        let (ma, mb) = (median(&mut a), median(&mut b));
        assert!((ma - mb).abs() < 40, "ma={ma} mb={mb}");
    }

    #[test]
    fn spatially_close_nodes_get_similar_bases() {
        let mut rng = Rng::seed_from_u64(11);
        let pos = vec![(50.0, 50.0), (51.0, 50.0), (150.0, 150.0)];
        let ds = SyntheticDataset::generate(SyntheticConfig::default(), &pos, &mut rng);
        let d_near = (ds.base[0] - ds.base[1]).abs();
        let d_far = (ds.base[0] - ds.base[2]).abs();
        assert!(d_near < d_far + 50.0);
    }

    #[test]
    #[should_panic(expected = "percentage")]
    fn rejects_bad_noise_percent() {
        let mut rng = Rng::seed_from_u64(1);
        let cfg = SyntheticConfig {
            noise_percent: 120.0,
            ..SyntheticConfig::default()
        };
        let _ = SyntheticDataset::generate(cfg, &[(0.0, 0.0)], &mut rng);
    }
}
