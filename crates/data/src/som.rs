//! Self-organizing map placement (§5.1.3).
//!
//! The pressure dataset carries no coordinates, so the paper assigns each
//! trace a position with a SOM: 1-D feature vectors (the first measurement
//! of each node) are mapped onto a 2-D neuron grid, which produces a
//! placement where neighboring nodes measure similar values — i.e. a
//! spatially correlated deployment.
//!
//! This is a classical Kohonen SOM: per-sample best-matching-unit search,
//! Gaussian neighborhood updates, exponentially decaying radius and
//! learning rate.

use crate::rng::Rng;
use crate::Value;

/// A trained 2-D SOM over scalar features.
#[derive(Debug, Clone)]
pub struct SelfOrganizingMap {
    /// Grid side length (the map has `side × side` neurons).
    side: usize,
    /// Neuron weights, row-major.
    weights: Vec<f64>,
}

impl SelfOrganizingMap {
    /// Trains a `side × side` map on the given scalar features.
    ///
    /// # Panics
    /// Panics if `side == 0` or `features` is empty.
    pub fn train(side: usize, features: &[f64], epochs: usize, rng: &mut Rng) -> Self {
        assert!(side > 0, "need at least one neuron");
        assert!(!features.is_empty(), "need features to train on");

        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &f in features {
            lo = lo.min(f);
            hi = hi.max(f);
        }
        if hi <= lo {
            hi = lo + 1.0;
        }

        // Initialize with a diagonal gradient so the map starts ordered.
        let mut weights = vec![0.0; side * side];
        for r in 0..side {
            for c in 0..side {
                let t = (r + c) as f64 / (2 * side - 2).max(1) as f64;
                weights[r * side + c] = lo + t * (hi - lo);
            }
        }

        let mut som = SelfOrganizingMap { side, weights };
        let total_steps = (epochs * features.len()).max(1);
        let radius0 = side as f64 / 2.0;
        let mut order: Vec<usize> = (0..features.len()).collect();
        let mut step = 0usize;
        for _ in 0..epochs {
            rng.shuffle(&mut order);
            for &i in &order {
                let x = features[i];
                let frac = step as f64 / total_steps as f64;
                let lr = 0.3 * (0.01f64).powf(frac);
                let radius = (radius0 * (1.0 / radius0.max(1.0)).powf(frac)).max(0.5);
                let (br, bc) = som.best_matching_unit(x);
                let reach = radius.ceil() as isize;
                let denom = 2.0 * radius * radius;
                for dr in -reach..=reach {
                    for dc in -reach..=reach {
                        let r = br as isize + dr;
                        let c = bc as isize + dc;
                        if r < 0 || c < 0 || r >= side as isize || c >= side as isize {
                            continue;
                        }
                        let d2 = (dr * dr + dc * dc) as f64;
                        let h = (-d2 / denom).exp();
                        let w = &mut som.weights[r as usize * side + c as usize];
                        *w += lr * h * (x - *w);
                    }
                }
                step += 1;
            }
        }
        som
    }

    /// Grid side length.
    pub fn side(&self) -> usize {
        self.side
    }

    /// Weight of neuron `(row, col)`.
    pub fn weight(&self, row: usize, col: usize) -> f64 {
        self.weights[row * self.side + col]
    }

    /// The neuron whose weight is closest to `x`.
    pub fn best_matching_unit(&self, x: f64) -> (usize, usize) {
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        for (i, &w) in self.weights.iter().enumerate() {
            let d = (w - x).abs();
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        (best / self.side, best % self.side)
    }

    /// Maps each feature to its BMU cell center in a `width × height` area,
    /// jittered within the cell so co-mapped nodes don't coincide.
    pub fn place(
        &self,
        features: &[f64],
        width: f64,
        height: f64,
        rng: &mut Rng,
    ) -> Vec<(f64, f64)> {
        let cell_w = width / self.side as f64;
        let cell_h = height / self.side as f64;
        features
            .iter()
            .map(|&x| {
                let (r, c) = self.best_matching_unit(x);
                (
                    (c as f64 + rng.next_f64()) * cell_w,
                    (r as f64 + rng.next_f64()) * cell_h,
                )
            })
            .collect()
    }
}

/// End-to-end placement for trace datasets: trains a SOM on the first
/// measurements and returns sensor positions in the area. The grid side is
/// `ceil(sqrt(n))` so the map has about one neuron per node (§5.1.3).
pub fn som_placement(
    first_measurements: &[Value],
    width: f64,
    height: f64,
    rng: &mut Rng,
) -> Vec<(f64, f64)> {
    let features: Vec<f64> = first_measurements.iter().map(|&v| v as f64).collect();
    let side = (features.len() as f64).sqrt().ceil() as usize;
    let som = SelfOrganizingMap::train(side.max(2), &features, 10, rng);
    som.place(&features, width, height, rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trained_map_is_roughly_monotone() {
        let mut rng = Rng::seed_from_u64(1);
        let features: Vec<f64> = (0..400).map(|_| rng.range_f64(0.0, 100.0)).collect();
        let som = SelfOrganizingMap::train(10, &features, 10, &mut rng);
        // A well-ordered 1-D-feature SOM has smooth weights: adjacent
        // neurons differ far less than the global range.
        let mut max_adjacent = 0.0f64;
        for r in 0..10 {
            for c in 0..9 {
                max_adjacent = max_adjacent.max((som.weight(r, c) - som.weight(r, c + 1)).abs());
            }
        }
        assert!(max_adjacent < 50.0, "max adjacent jump {max_adjacent}");
    }

    #[test]
    fn placement_correlates_value_and_space() {
        let mut rng = Rng::seed_from_u64(2);
        let features: Vec<Value> = (0..300).map(|_| rng.range_i64(9900, 10200)).collect();
        let pos = som_placement(&features, 200.0, 200.0, &mut rng);
        assert_eq!(pos.len(), 300);
        // Compare mean |Δvalue| of spatial near-pairs vs far-pairs.
        let mut near = (0.0, 0);
        let mut far = (0.0, 0);
        for i in 0..300 {
            for j in (i + 1)..300 {
                let dx = pos[i].0 - pos[j].0;
                let dy = pos[i].1 - pos[j].1;
                let d = (dx * dx + dy * dy).sqrt();
                let dv = (features[i] - features[j]).abs() as f64;
                if d < 20.0 {
                    near = (near.0 + dv, near.1 + 1);
                } else if d > 100.0 {
                    far = (far.0 + dv, far.1 + 1);
                }
            }
        }
        let near_mean = near.0 / near.1.max(1) as f64;
        let far_mean = far.0 / far.1.max(1) as f64;
        assert!(
            near_mean < far_mean,
            "near {near_mean} should be < far {far_mean}"
        );
    }

    #[test]
    fn positions_stay_in_area() {
        let mut rng = Rng::seed_from_u64(3);
        let features: Vec<Value> = (0..100).map(|_| rng.range_i64(0, 1000)).collect();
        let pos = som_placement(&features, 150.0, 80.0, &mut rng);
        for &(x, y) in &pos {
            assert!((0.0..=150.0).contains(&x));
            assert!((0.0..=80.0).contains(&y));
        }
    }

    #[test]
    fn bmu_finds_closest_weight() {
        let som = SelfOrganizingMap {
            side: 2,
            weights: vec![0.0, 10.0, 20.0, 30.0],
        };
        assert_eq!(som.best_matching_unit(1.0), (0, 0));
        assert_eq!(som.best_matching_unit(29.0), (1, 1));
        assert_eq!(som.best_matching_unit(11.0), (0, 1));
    }

    #[test]
    fn constant_features_dont_crash() {
        let mut rng = Rng::seed_from_u64(4);
        let features = vec![42.0; 50];
        let som = SelfOrganizingMap::train(5, &features, 3, &mut rng);
        let pos = som.place(&features, 100.0, 100.0, &mut rng);
        assert_eq!(pos.len(), 50);
    }
}
