//! Additional temporal processes beyond the paper's sinusoid: per-node
//! random walks (strong temporal, weak spatial correlation) and
//! regime-switching workloads (calm drift alternating with turbulence).
//!
//! Neither appears in the paper's evaluation; they exist to probe the
//! protocols outside the sinusoidal comfort zone — the random walk for
//! filter-based validation (every node moves every round, but slowly), the
//! regime switcher as the natural stress test for the adaptive HBC↔IQ
//! meta-protocol.

use crate::rng::Rng;
use crate::{Dataset, Value};

/// Per-node bounded random walks.
#[derive(Debug, Clone)]
pub struct RandomWalkDataset {
    range_min: Value,
    range_max: Value,
    /// Maximum per-round step per node (uniform in `[-step, step]`).
    step: Value,
    state: Vec<Value>,
    rng: Rng,
    last_round: Option<u32>,
}

impl RandomWalkDataset {
    /// Creates walks for `n` sensors over `[range_min, range_max]`,
    /// starting at uniformly random positions.
    ///
    /// # Panics
    /// Panics on an empty range, zero nodes or a non-positive step.
    pub fn new(n: usize, range_min: Value, range_max: Value, step: Value, rng: &mut Rng) -> Self {
        assert!(n > 0, "need at least one sensor");
        assert!(range_min <= range_max, "empty range");
        assert!(step >= 1, "step must be positive");
        let state = (0..n)
            .map(|_| rng.range_i64(range_min, range_max))
            .collect();
        RandomWalkDataset {
            range_min,
            range_max,
            step,
            state,
            rng: rng.fork(),
            last_round: None,
        }
    }
}

impl Dataset for RandomWalkDataset {
    fn sensor_count(&self) -> usize {
        self.state.len()
    }
    fn range_min(&self) -> Value {
        self.range_min
    }
    fn range_max(&self) -> Value {
        self.range_max
    }
    fn sample_round(&mut self, t: u32, out: &mut [Value]) {
        assert_eq!(out.len(), self.state.len());
        // Walks are stateful: advance only when a new round is requested
        // (re-sampling the same round must be idempotent).
        if self.last_round != Some(t) {
            if self.last_round.is_some() || t > 0 {
                for v in &mut self.state {
                    let delta = self.rng.range_i64(-self.step, self.step);
                    *v = (*v + delta).clamp(self.range_min, self.range_max);
                }
            }
            self.last_round = Some(t);
        }
        out.copy_from_slice(&self.state);
    }
}

/// Alternating calm/turbulent regimes.
#[derive(Debug, Clone)]
pub struct RegimeDataset {
    range_min: Value,
    range_max: Value,
    /// Rounds per regime phase.
    phase_len: u32,
    /// Per-round drift during calm phases.
    drift: Value,
    base: Vec<Value>,
    rng: Rng,
}

impl RegimeDataset {
    /// Creates the workload: calm phases drift all values by `drift` per
    /// round; turbulent phases draw every measurement uniformly anew.
    pub fn new(
        n: usize,
        range_min: Value,
        range_max: Value,
        phase_len: u32,
        drift: Value,
        rng: &mut Rng,
    ) -> Self {
        assert!(n > 0 && range_min <= range_max && phase_len >= 1);
        let span = range_max - range_min;
        let base = (0..n)
            .map(|_| range_min + span / 4 + rng.range_i64(0, (span / 4).max(1)))
            .collect();
        RegimeDataset {
            range_min,
            range_max,
            phase_len,
            drift,
            base,
            rng: rng.fork(),
        }
    }

    /// True iff round `t` falls into a turbulent phase.
    pub fn is_turbulent(&self, t: u32) -> bool {
        (t / self.phase_len) % 2 == 1
    }
}

impl Dataset for RegimeDataset {
    fn sensor_count(&self) -> usize {
        self.base.len()
    }
    fn range_min(&self) -> Value {
        self.range_min
    }
    fn range_max(&self) -> Value {
        self.range_max
    }
    fn sample_round(&mut self, t: u32, out: &mut [Value]) {
        assert_eq!(out.len(), self.base.len());
        if self.is_turbulent(t) {
            for o in out.iter_mut() {
                *o = self.rng.range_i64(self.range_min, self.range_max);
            }
        } else {
            let shift = (t % self.phase_len) as Value * self.drift;
            for (o, &b) in out.iter_mut().zip(&self.base) {
                *o = (b + shift).clamp(self.range_min, self.range_max);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walk_stays_in_range_and_moves_slowly() {
        let mut rng = Rng::seed_from_u64(1);
        let mut ds = RandomWalkDataset::new(50, 0, 1023, 5, &mut rng);
        let mut prev = vec![0; 50];
        ds.sample_round(0, &mut prev);
        let mut cur = vec![0; 50];
        for t in 1..100 {
            ds.sample_round(t, &mut cur);
            for (i, (&p, &c)) in prev.iter().zip(&cur).enumerate() {
                assert!((0..=1023).contains(&c), "node {i} out of range");
                assert!((p - c).abs() <= 5, "node {i} jumped {p} -> {c}");
            }
            prev.copy_from_slice(&cur);
        }
    }

    #[test]
    fn walk_resampling_same_round_is_idempotent() {
        let mut rng = Rng::seed_from_u64(2);
        let mut ds = RandomWalkDataset::new(10, 0, 100, 3, &mut rng);
        let mut a = vec![0; 10];
        let mut b = vec![0; 10];
        ds.sample_round(4, &mut a);
        ds.sample_round(4, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn regimes_alternate() {
        let mut rng = Rng::seed_from_u64(3);
        let ds = RegimeDataset::new(10, 0, 1000, 25, 3, &mut rng);
        assert!(!ds.is_turbulent(0));
        assert!(!ds.is_turbulent(24));
        assert!(ds.is_turbulent(25));
        assert!(ds.is_turbulent(49));
        assert!(!ds.is_turbulent(50));
    }

    #[test]
    fn calm_phase_is_a_clean_drift() {
        let mut rng = Rng::seed_from_u64(4);
        let mut ds = RegimeDataset::new(20, 0, 10_000, 50, 4, &mut rng);
        let mut a = vec![0; 20];
        let mut b = vec![0; 20];
        ds.sample_round(3, &mut a);
        ds.sample_round(4, &mut b);
        for (&x, &y) in a.iter().zip(&b) {
            assert_eq!(y - x, 4, "calm drift must be uniform");
        }
    }

    #[test]
    fn turbulent_phase_is_wild_but_in_range() {
        let mut rng = Rng::seed_from_u64(5);
        let mut ds = RegimeDataset::new(100, 0, 1000, 10, 2, &mut rng);
        let mut out = vec![0; 100];
        ds.sample_round(15, &mut out);
        assert!(out.iter().all(|&v| (0..=1000).contains(&v)));
        // With 100 uniform draws, values should spread widely.
        let spread = out.iter().max().unwrap() - out.iter().min().unwrap();
        assert!(spread > 500, "spread {spread}");
    }
}
