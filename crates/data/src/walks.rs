//! Additional temporal processes beyond the paper's sinusoid: per-node
//! random walks (strong temporal, weak spatial correlation) and
//! regime-switching workloads (calm drift alternating with turbulence).
//!
//! Neither appears in the paper's evaluation; they exist to probe the
//! protocols outside the sinusoidal comfort zone — the random walk for
//! filter-based validation (every node moves every round, but slowly), the
//! regime switcher as the natural stress test for the adaptive HBC↔IQ
//! meta-protocol.

use crate::rng::Rng;
use crate::{Dataset, Value};
use wsn_net::Point;

/// Per-node bounded random walks.
#[derive(Debug, Clone)]
pub struct RandomWalkDataset {
    range_min: Value,
    range_max: Value,
    /// Maximum per-round step per node (uniform in `[-step, step]`).
    step: Value,
    state: Vec<Value>,
    rng: Rng,
    last_round: Option<u32>,
}

impl RandomWalkDataset {
    /// Creates walks for `n` sensors over `[range_min, range_max]`,
    /// starting at uniformly random positions.
    ///
    /// # Panics
    /// Panics on an empty range, zero nodes or a non-positive step.
    pub fn new(n: usize, range_min: Value, range_max: Value, step: Value, rng: &mut Rng) -> Self {
        assert!(n > 0, "need at least one sensor");
        assert!(range_min <= range_max, "empty range");
        assert!(step >= 1, "step must be positive");
        let state = (0..n)
            .map(|_| rng.range_i64(range_min, range_max))
            .collect();
        RandomWalkDataset {
            range_min,
            range_max,
            step,
            state,
            rng: rng.fork(),
            last_round: None,
        }
    }
}

impl Dataset for RandomWalkDataset {
    fn sensor_count(&self) -> usize {
        self.state.len()
    }
    fn range_min(&self) -> Value {
        self.range_min
    }
    fn range_max(&self) -> Value {
        self.range_max
    }
    fn sample_round(&mut self, t: u32, out: &mut [Value]) {
        assert_eq!(out.len(), self.state.len());
        // Walks are stateful: advance only when a new round is requested
        // (re-sampling the same round must be idempotent).
        if self.last_round != Some(t) {
            if self.last_round.is_some() || t > 0 {
                for v in &mut self.state {
                    let delta = self.rng.range_i64(-self.step, self.step);
                    *v = (*v + delta).clamp(self.range_min, self.range_max);
                }
            }
            self.last_round = Some(t);
        }
        out.copy_from_slice(&self.state);
    }
}

/// Spatial waypoint mobility: each point walks toward a private random
/// waypoint inside the deployment rectangle, drawing a fresh waypoint on
/// arrival — the classic random-waypoint model, made deterministic by the
/// owned [`Rng`] stream. The dynamics layer advances the walk once per
/// mobility epoch and re-derives the disk graph from [`positions`].
///
/// [`positions`]: WaypointWalk::positions
#[derive(Debug, Clone)]
pub struct WaypointWalk {
    pos: Vec<Point>,
    target: Vec<Point>,
    width: f64,
    height: f64,
    /// Euclidean meters traveled per advance.
    step: f64,
    rng: Rng,
}

impl WaypointWalk {
    /// Creates a walk over `start` positions inside the
    /// `[0, width] × [0, height]` rectangle, moving `step` meters per
    /// [`WaypointWalk::advance`]. Initial waypoints are drawn immediately
    /// (one x/y pair per point, in index order).
    ///
    /// # Panics
    /// Panics on an empty start set, a non-positive area or a negative
    /// step (`step == 0` is a legal frozen walk).
    pub fn new(start: Vec<Point>, width: f64, height: f64, step: f64, rng: &mut Rng) -> Self {
        assert!(!start.is_empty(), "need at least one mobile point");
        assert!(
            width > 0.0 && height > 0.0,
            "deployment area must be positive"
        );
        assert!(step >= 0.0, "step must be non-negative");
        let mut rng = rng.fork();
        let target = (0..start.len())
            .map(|_| Point::new(rng.range_f64(0.0, width), rng.range_f64(0.0, height)))
            .collect();
        WaypointWalk {
            pos: start,
            target,
            width,
            height,
            step,
            rng,
        }
    }

    /// Current positions, in index order.
    pub fn positions(&self) -> &[Point] {
        &self.pos
    }

    /// Draws a fresh uniform position for point `i` (deterministic join
    /// placement: churned-in nodes re-enter the field somewhere new, from
    /// the same stream that drives the waypoints).
    pub fn replace(&mut self, i: usize) {
        let p = Point::new(
            self.rng.range_f64(0.0, self.width),
            self.rng.range_f64(0.0, self.height),
        );
        self.pos[i] = p;
        self.target[i] = Point::new(
            self.rng.range_f64(0.0, self.width),
            self.rng.range_f64(0.0, self.height),
        );
    }

    /// Moves every point `step` meters toward its waypoint (or onto it,
    /// if closer than `step`), redrawing the waypoint on arrival.
    pub fn advance(&mut self) {
        for i in 0..self.pos.len() {
            let (p, t) = (self.pos[i], self.target[i]);
            let d = p.dist(&t);
            if d <= self.step {
                self.pos[i] = t;
                self.target[i] = Point::new(
                    self.rng.range_f64(0.0, self.width),
                    self.rng.range_f64(0.0, self.height),
                );
            } else if self.step > 0.0 {
                let f = self.step / d;
                self.pos[i] = Point::new(p.x + (t.x - p.x) * f, p.y + (t.y - p.y) * f);
            }
        }
    }
}

/// Alternating calm/turbulent regimes.
#[derive(Debug, Clone)]
pub struct RegimeDataset {
    range_min: Value,
    range_max: Value,
    /// Rounds per regime phase.
    phase_len: u32,
    /// Per-round drift during calm phases.
    drift: Value,
    base: Vec<Value>,
    rng: Rng,
}

impl RegimeDataset {
    /// Creates the workload: calm phases drift all values by `drift` per
    /// round; turbulent phases draw every measurement uniformly anew.
    pub fn new(
        n: usize,
        range_min: Value,
        range_max: Value,
        phase_len: u32,
        drift: Value,
        rng: &mut Rng,
    ) -> Self {
        assert!(n > 0 && range_min <= range_max && phase_len >= 1);
        let span = range_max - range_min;
        let base = (0..n)
            .map(|_| range_min + span / 4 + rng.range_i64(0, (span / 4).max(1)))
            .collect();
        RegimeDataset {
            range_min,
            range_max,
            phase_len,
            drift,
            base,
            rng: rng.fork(),
        }
    }

    /// True iff round `t` falls into a turbulent phase.
    pub fn is_turbulent(&self, t: u32) -> bool {
        (t / self.phase_len) % 2 == 1
    }
}

impl Dataset for RegimeDataset {
    fn sensor_count(&self) -> usize {
        self.base.len()
    }
    fn range_min(&self) -> Value {
        self.range_min
    }
    fn range_max(&self) -> Value {
        self.range_max
    }
    fn sample_round(&mut self, t: u32, out: &mut [Value]) {
        assert_eq!(out.len(), self.base.len());
        if self.is_turbulent(t) {
            for o in out.iter_mut() {
                *o = self.rng.range_i64(self.range_min, self.range_max);
            }
        } else {
            let shift = (t % self.phase_len) as Value * self.drift;
            for (o, &b) in out.iter_mut().zip(&self.base) {
                *o = (b + shift).clamp(self.range_min, self.range_max);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walk_stays_in_range_and_moves_slowly() {
        let mut rng = Rng::seed_from_u64(1);
        let mut ds = RandomWalkDataset::new(50, 0, 1023, 5, &mut rng);
        let mut prev = vec![0; 50];
        ds.sample_round(0, &mut prev);
        let mut cur = vec![0; 50];
        for t in 1..100 {
            ds.sample_round(t, &mut cur);
            for (i, (&p, &c)) in prev.iter().zip(&cur).enumerate() {
                assert!((0..=1023).contains(&c), "node {i} out of range");
                assert!((p - c).abs() <= 5, "node {i} jumped {p} -> {c}");
            }
            prev.copy_from_slice(&cur);
        }
    }

    #[test]
    fn walk_resampling_same_round_is_idempotent() {
        let mut rng = Rng::seed_from_u64(2);
        let mut ds = RandomWalkDataset::new(10, 0, 100, 3, &mut rng);
        let mut a = vec![0; 10];
        let mut b = vec![0; 10];
        ds.sample_round(4, &mut a);
        ds.sample_round(4, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn waypoint_walk_stays_in_the_rectangle_and_bounds_speed() {
        let mut rng = Rng::seed_from_u64(9);
        let start: Vec<Point> = (0..20)
            .map(|_| Point::new(rng.range_f64(0.0, 200.0), rng.range_f64(0.0, 150.0)))
            .collect();
        let mut walk = WaypointWalk::new(start.clone(), 200.0, 150.0, 7.5, &mut rng);
        let mut prev = start;
        for _ in 0..200 {
            walk.advance();
            for (i, (&p, &c)) in prev.iter().zip(walk.positions()).enumerate() {
                assert!((0.0..=200.0).contains(&c.x), "node {i} x {}", c.x);
                assert!((0.0..=150.0).contains(&c.y), "node {i} y {}", c.y);
                assert!(p.dist(&c) <= 7.5 + 1e-9, "node {i} moved too far");
            }
            prev = walk.positions().to_vec();
        }
    }

    #[test]
    fn waypoint_walk_is_deterministic_for_seed() {
        let make = || {
            let mut rng = Rng::seed_from_u64(17);
            let start = vec![Point::new(1.0, 2.0), Point::new(3.0, 4.0)];
            WaypointWalk::new(start, 100.0, 100.0, 2.0, &mut rng)
        };
        let (mut a, mut b) = (make(), make());
        for _ in 0..100 {
            a.advance();
            b.advance();
            for (pa, pb) in a.positions().iter().zip(b.positions()) {
                assert_eq!(pa.x.to_bits(), pb.x.to_bits());
                assert_eq!(pa.y.to_bits(), pb.y.to_bits());
            }
        }
    }

    #[test]
    fn zero_step_walk_is_frozen() {
        let mut rng = Rng::seed_from_u64(3);
        let start = vec![Point::new(5.0, 5.0)];
        let mut walk = WaypointWalk::new(start, 10.0, 10.0, 0.0, &mut rng);
        for _ in 0..10 {
            walk.advance();
        }
        assert_eq!(walk.positions()[0].x, 5.0);
        assert_eq!(walk.positions()[0].y, 5.0);
    }

    #[test]
    fn replace_redraws_inside_the_rectangle() {
        let mut rng = Rng::seed_from_u64(4);
        let start = vec![Point::new(0.0, 0.0), Point::new(1.0, 1.0)];
        let mut walk = WaypointWalk::new(start, 50.0, 50.0, 1.0, &mut rng);
        walk.replace(1);
        let p = walk.positions()[1];
        assert!((0.0..=50.0).contains(&p.x) && (0.0..=50.0).contains(&p.y));
    }

    #[test]
    fn regimes_alternate() {
        let mut rng = Rng::seed_from_u64(3);
        let ds = RegimeDataset::new(10, 0, 1000, 25, 3, &mut rng);
        assert!(!ds.is_turbulent(0));
        assert!(!ds.is_turbulent(24));
        assert!(ds.is_turbulent(25));
        assert!(ds.is_turbulent(49));
        assert!(!ds.is_turbulent(50));
    }

    #[test]
    fn calm_phase_is_a_clean_drift() {
        let mut rng = Rng::seed_from_u64(4);
        let mut ds = RegimeDataset::new(20, 0, 10_000, 50, 4, &mut rng);
        let mut a = vec![0; 20];
        let mut b = vec![0; 20];
        ds.sample_round(3, &mut a);
        ds.sample_round(4, &mut b);
        for (&x, &y) in a.iter().zip(&b) {
            assert_eq!(y - x, 4, "calm drift must be uniform");
        }
    }

    #[test]
    fn turbulent_phase_is_wild_but_in_range() {
        let mut rng = Rng::seed_from_u64(5);
        let mut ds = RegimeDataset::new(100, 0, 1000, 10, 2, &mut rng);
        let mut out = vec![0; 100];
        ds.sample_round(15, &mut out);
        assert!(out.iter().all(|&v| (0..=1000).contains(&v)));
        // With 100 uniform draws, values should spread widely.
        let spread = out.iter().max().unwrap() - out.iter().min().unwrap();
        assert!(spread > 500, "spread {spread}");
    }
}
