//! Synthetic barometric-pressure traces (§5.1.3 substitution).
//!
//! The paper's real dataset — 1022 air-pressure traces extracted from the
//! "Live from Earth and Mars" project — is no longer obtainable. Following
//! the substitution rule in DESIGN.md §5, we generate traces with the same
//! properties the experiments exploit:
//!
//! * strong temporal correlation (pressure changes slowly),
//! * occasional trend changes (weather systems),
//! * spatial correlation between node offsets (used by the SOM placement),
//! * a realistic absolute range, so that the *optimistic* (observed
//!   min/max) and *pessimistic* (all-time earth record, 856–1086 hPa)
//!   scalings of §5.2.5 differ meaningfully.
//!
//! Each trace is `regional(t) + offset_i + jitter`, where `regional` is a
//! sum of two mean-reverting (Ornstein–Uhlenbeck-like) processes — a fast
//! small one and a slow weather-system one — plus a diurnal harmonic.
//! Values are in **tenths of hPa** to match the paper's integer universe.

use crate::rng::Rng;
use crate::{Dataset, Value};

/// Earth's record-low sea-level pressure, tenths of hPa (paper: 856 hPa).
pub const RECORD_MIN: Value = 8560;
/// Earth's record-high sea-level pressure, tenths of hPa (paper: 1086 hPa).
pub const RECORD_MAX: Value = 10860;

/// How the integer universe `[r_min, r_max]` is chosen (§5.2.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RangeSetting {
    /// `r_min`/`r_max` = observed min/max of the whole dataset.
    Optimistic,
    /// `r_min`/`r_max` = 856/1086 hPa, the all-time records.
    Pessimistic,
}

/// Parameters of the pressure dataset.
#[derive(Debug, Clone)]
pub struct PressureConfig {
    /// Number of sensor nodes (paper: 1022).
    pub sensor_count: usize,
    /// Raw trace length in underlying time steps. Rounds consume
    /// `skip` steps each, so `steps >= rounds * skip` is required.
    pub steps: usize,
    /// Sampling stride: round `t` reads raw step `t * skip` (§5.2.5 skips
    /// an increasing number of samples between rounds).
    pub skip: u32,
    /// Range scaling mode.
    pub range: RangeSetting,
    /// Mean pressure, tenths of hPa.
    pub base: f64,
    /// Diurnal harmonic amplitude, tenths of hPa.
    pub diurnal_amplitude: f64,
    /// Underlying steps per day for the diurnal harmonic.
    pub steps_per_day: usize,
    /// Std-dev of per-node offsets, tenths of hPa.
    pub offset_sigma: f64,
}

impl Default for PressureConfig {
    fn default() -> Self {
        PressureConfig {
            sensor_count: 1022,
            steps: 8192,
            skip: 1,
            range: RangeSetting::Optimistic,
            base: 10130.0, // 1013 hPa
            diurnal_amplitude: 15.0,
            steps_per_day: 288,
            offset_sigma: 20.0,
        }
    }
}

/// The generated pressure dataset.
#[derive(Debug, Clone)]
pub struct PressureDataset {
    config: PressureConfig,
    regional: Vec<f64>,
    offsets: Vec<f64>,
    r_min: Value,
    r_max: Value,
    rng: Rng,
}

impl PressureDataset {
    /// Generates the dataset.
    pub fn generate(config: PressureConfig, rng: &mut Rng) -> Self {
        assert!(config.sensor_count > 0, "need sensors");
        assert!(config.steps > 0, "need at least one step");
        assert!(config.skip >= 1, "skip must be at least 1");

        // Two mean-reverting processes: fast/small + slow weather system.
        let mut fast = 0.0f64;
        let mut slow = 0.0f64;
        let mut regional = Vec::with_capacity(config.steps);
        for s in 0..config.steps {
            fast += -0.05 * fast + 1.5 * rng.next_gaussian();
            slow += -0.004 * slow + 1.2 * rng.next_gaussian();
            let diurnal = config.diurnal_amplitude
                * (std::f64::consts::TAU * s as f64 / config.steps_per_day as f64).sin();
            regional.push(config.base + fast + slow + diurnal);
        }

        let offsets: Vec<f64> = (0..config.sensor_count)
            .map(|_| rng.next_gaussian() * config.offset_sigma)
            .collect();

        let (r_min, r_max) = match config.range {
            RangeSetting::Pessimistic => (RECORD_MIN, RECORD_MAX),
            RangeSetting::Optimistic => {
                // Observed min/max over all nodes and steps, with the ±1
                // jitter margin included.
                let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
                for &r in &regional {
                    lo = lo.min(r);
                    hi = hi.max(r);
                }
                let (mut o_lo, mut o_hi) = (f64::INFINITY, f64::NEG_INFINITY);
                for &o in &offsets {
                    o_lo = o_lo.min(o);
                    o_hi = o_hi.max(o);
                }
                (
                    (lo + o_lo - 1.0).floor() as Value,
                    (hi + o_hi + 1.0).ceil() as Value,
                )
            }
        };

        PressureDataset {
            config,
            regional,
            offsets,
            r_min,
            r_max,
            rng: rng.fork(),
        }
    }

    /// The first measurement of every node — the SOM placement feature
    /// (§5.1.3: "feature vectors of size one ... containing the first
    /// measurement of each node").
    pub fn first_measurements(&self) -> Vec<Value> {
        let mut out = vec![0; self.config.sensor_count];
        let r0 = self.regional[0];
        for (o, &off) in out.iter_mut().zip(&self.offsets) {
            *o = ((r0 + off).round() as Value).clamp(self.r_min, self.r_max);
        }
        out
    }

    /// Number of rounds available at the configured skip.
    pub fn available_rounds(&self) -> u32 {
        (self.config.steps as u32).div_ceil(self.config.skip.max(1)) // at least steps/skip
    }
}

impl Dataset for PressureDataset {
    fn sensor_count(&self) -> usize {
        self.config.sensor_count
    }

    fn range_min(&self) -> Value {
        self.r_min
    }

    fn range_max(&self) -> Value {
        self.r_max
    }

    fn sample_round(&mut self, t: u32, out: &mut [Value]) {
        assert_eq!(out.len(), self.config.sensor_count);
        let step = (t as usize * self.config.skip as usize).min(self.regional.len() - 1);
        let r = self.regional[step];
        for (o, &off) in out.iter_mut().zip(&self.offsets) {
            let jitter = self.rng.range_i64(-1, 1) as f64;
            *o = ((r + off + jitter).round() as Value).clamp(self.r_min, self.r_max);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn median(mut xs: Vec<Value>) -> Value {
        xs.sort_unstable();
        xs[xs.len() / 2]
    }

    #[test]
    fn values_respect_range_in_both_settings() {
        for range in [RangeSetting::Optimistic, RangeSetting::Pessimistic] {
            let mut rng = Rng::seed_from_u64(1);
            let cfg = PressureConfig {
                sensor_count: 100,
                steps: 600,
                range,
                ..PressureConfig::default()
            };
            let mut ds = PressureDataset::generate(cfg, &mut rng);
            let mut out = vec![0; 100];
            for t in 0..500 {
                ds.sample_round(t, &mut out);
                for &v in &out {
                    assert!(v >= ds.range_min() && v <= ds.range_max());
                }
            }
        }
    }

    #[test]
    fn pessimistic_range_is_wider() {
        let mut rng = Rng::seed_from_u64(2);
        let opt = PressureDataset::generate(
            PressureConfig {
                sensor_count: 50,
                steps: 500,
                ..PressureConfig::default()
            },
            &mut rng,
        );
        let mut rng = Rng::seed_from_u64(2);
        let pes = PressureDataset::generate(
            PressureConfig {
                sensor_count: 50,
                steps: 500,
                range: RangeSetting::Pessimistic,
                ..PressureConfig::default()
            },
            &mut rng,
        );
        assert!(pes.range_size() > opt.range_size());
        assert_eq!(pes.range_min(), RECORD_MIN);
        assert_eq!(pes.range_max(), RECORD_MAX);
    }

    #[test]
    fn consecutive_medians_are_correlated() {
        let mut rng = Rng::seed_from_u64(3);
        let cfg = PressureConfig {
            sensor_count: 200,
            steps: 600,
            ..PressureConfig::default()
        };
        let mut ds = PressureDataset::generate(cfg, &mut rng);
        let mut out = vec![0; 200];
        let mut prev: Option<Value> = None;
        let mut total_jump = 0i64;
        for t in 0..200 {
            ds.sample_round(t, &mut out);
            let m = median(out.clone());
            if let Some(p) = prev {
                total_jump += (m - p).abs();
            }
            prev = Some(m);
        }
        // Mean jump should be a handful of tenths of hPa per round.
        assert!(total_jump / 199 < 20, "mean jump {}", total_jump / 199);
    }

    #[test]
    fn larger_skip_means_larger_jumps() {
        let measure = |skip: u32| {
            let mut rng = Rng::seed_from_u64(4);
            let cfg = PressureConfig {
                sensor_count: 200,
                steps: 4000,
                skip,
                ..PressureConfig::default()
            };
            let mut ds = PressureDataset::generate(cfg, &mut rng);
            let mut out = vec![0; 200];
            let mut prev: Option<Value> = None;
            let mut total = 0i64;
            for t in 0..200 {
                ds.sample_round(t, &mut out);
                let m = median(out.clone());
                if let Some(p) = prev {
                    total += (m - p as Value).abs();
                }
                prev = Some(m);
            }
            total
        };
        assert!(measure(16) > measure(1), "skip must amplify jumps");
    }

    #[test]
    fn first_measurements_match_round_zero_up_to_jitter() {
        let mut rng = Rng::seed_from_u64(5);
        let cfg = PressureConfig {
            sensor_count: 50,
            steps: 100,
            ..PressureConfig::default()
        };
        let mut ds = PressureDataset::generate(cfg, &mut rng);
        let firsts = ds.first_measurements();
        let mut out = vec![0; 50];
        ds.sample_round(0, &mut out);
        for (&f, &o) in firsts.iter().zip(&out) {
            assert!((f - o).abs() <= 2, "first {f} vs round0 {o}");
        }
    }

    #[test]
    fn available_rounds_accounts_for_skip() {
        let mut rng = Rng::seed_from_u64(6);
        let cfg = PressureConfig {
            sensor_count: 5,
            steps: 1000,
            skip: 4,
            ..PressureConfig::default()
        };
        let ds = PressureDataset::generate(cfg, &mut rng);
        assert_eq!(ds.available_rounds(), 250);
    }
}
