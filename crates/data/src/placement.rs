//! Node placement in the deployment area (§5.1.1).
//!
//! The synthetic experiments distribute nodes uniformly at random in a
//! rectangular area (200 m × 200 m by default) and re-position them between
//! simulation runs. Positions are plain `(x, y)` tuples in meters so this
//! crate stays independent of `wsn-net`.

use crate::rng::Rng;

/// Uniformly random positions for `sensor_count` sensors plus a root.
///
/// The root (index 0 of the returned vector) is placed uniformly as well —
/// the paper selects a random node as root between runs; placing the sink
/// like any other node is equivalent in distribution.
pub fn uniform(sensor_count: usize, width: f64, height: f64, rng: &mut Rng) -> Vec<(f64, f64)> {
    (0..=sensor_count)
        .map(|_| (rng.range_f64(0.0, width), rng.range_f64(0.0, height)))
        .collect()
}

/// Places the root at the center of the area and sensors uniformly.
/// Useful for examples and tests where a predictable sink helps.
pub fn uniform_center_root(
    sensor_count: usize,
    width: f64,
    height: f64,
    rng: &mut Rng,
) -> Vec<(f64, f64)> {
    let mut positions = Vec::with_capacity(sensor_count + 1);
    positions.push((width / 2.0, height / 2.0));
    for _ in 0..sensor_count {
        positions.push((rng.range_f64(0.0, width), rng.range_f64(0.0, height)));
    }
    positions
}

/// A regular `cols × rows` grid with `spacing` meters between neighbors,
/// root in the corner. Deterministic; used by unit tests and examples.
pub fn grid(cols: usize, rows: usize, spacing: f64) -> Vec<(f64, f64)> {
    let mut positions = Vec::with_capacity(cols * rows);
    for r in 0..rows {
        for c in 0..cols {
            positions.push((c as f64 * spacing, r as f64 * spacing));
        }
    }
    positions
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_respects_bounds_and_count() {
        let mut rng = Rng::seed_from_u64(1);
        let pos = uniform(100, 200.0, 150.0, &mut rng);
        assert_eq!(pos.len(), 101);
        for &(x, y) in &pos {
            assert!((0.0..200.0).contains(&x));
            assert!((0.0..150.0).contains(&y));
        }
    }

    #[test]
    fn center_root_is_centered() {
        let mut rng = Rng::seed_from_u64(2);
        let pos = uniform_center_root(10, 100.0, 60.0, &mut rng);
        assert_eq!(pos[0], (50.0, 30.0));
        assert_eq!(pos.len(), 11);
    }

    #[test]
    fn grid_has_expected_layout() {
        let pos = grid(3, 2, 5.0);
        assert_eq!(pos.len(), 6);
        assert_eq!(pos[0], (0.0, 0.0));
        assert_eq!(pos[4], (5.0, 5.0));
    }
}
