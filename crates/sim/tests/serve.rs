//! Multi-query service determinism (DESIGN.md §3.3i): the serve runner's
//! full output — every query's answer stream, its per-lane phase charges,
//! and the audit log — is byte-identical at any within-wave worker count,
//! and a transient query (admitted then retired mid-run) leaves the
//! surviving queries' answers and ledger charges bit-identical in solo
//! framing (under shared framing the transient's piggybacked frames
//! legitimately change the survivors' marginal accounting).

use wsn_net::obs::{HealthKind, MonitorConfig};
use wsn_sim::parity::{serve_digest, serve_report_digest};
use wsn_sim::{
    serve, serve_monitored, AlgorithmKind, DataSource, Scenario, ServeEvent, ServeQuery,
    SimulationConfig,
};

fn scenario() -> Scenario {
    Scenario {
        seed: 0xD15C,
        nodes: 16,
        range_milli: 2500,
        rounds: 10,
        runs: 1,
        phi_milli: 500,
        loss_milli: 0,
        retries: 0,
        recovery: 0,
        failure_milli: 0,
        eps_milli: 100,
        capacity: 0,
        queries: 5,
        mobility_milli: 0,
        churn_milli: 0,
        drift_milli: 0,
        duty_milli: 0,
        source: DataSource::Sinusoid {
            period: 16,
            noise_permille: 100,
        },
    }
}

fn cfg(wave_workers: usize) -> SimulationConfig {
    SimulationConfig {
        wave_workers,
        ..scenario().to_config()
    }
}

fn transient_events() -> Vec<ServeEvent> {
    vec![
        ServeEvent::Admit {
            round: 3,
            query: ServeQuery {
                algorithm: AlgorithmKind::Iq,
                phi_milli: 300,
                epoch: 1,
            },
        },
        ServeEvent::Retire { round: 7, slot: 5 },
    ]
}

#[test]
fn serve_is_byte_identical_at_any_wave_worker_count() {
    let workload = scenario().workload();
    let events = transient_events();
    for shared in [false, true] {
        let golden = serve_digest(&cfg(1), &workload, &events, shared);
        for workers in [2usize, 8] {
            assert_eq!(
                golden,
                serve_digest(&cfg(workers), &workload, &events, shared),
                "shared={shared}: digest diverged at {workers} wave workers"
            );
        }
    }
}

/// Monitoring "fully enabled": every watchdog armed, tight recorder.
fn full_monitoring() -> MonitorConfig {
    MonitorConfig {
        stale_limit: 8,
        dead_lane_limit: 4,
        cache_window: 4,
        cache_hit_floor_milli: 100,
        budget_joules: Some(1e-6),
        recorder_capacity: 8,
    }
}

#[test]
fn monitoring_and_flight_recorder_never_perturb_the_digest() {
    let workload = scenario().workload();
    let events = transient_events();
    let mc = full_monitoring();
    for workers in [1usize, 8] {
        let plain = serve_digest(&cfg(workers), &workload, &events, true);
        let (report, monitor, net) =
            serve_monitored(&cfg(workers), &workload, &events, true, 0, Some(&mc));
        assert_eq!(
            plain,
            serve_report_digest(&report, &net),
            "monitoring changed the digest at {workers} wave workers"
        );
        let m = monitor.expect("monitor attached");
        assert!(!m.recorder().is_empty(), "flight recorder was recording");
    }
}

#[test]
fn health_events_land_on_the_same_rounds_and_slots_at_any_worker_count() {
    let workload = scenario().workload();
    let events = transient_events();
    let mc = full_monitoring();
    let run = |workers: usize| {
        let (_, monitor, _) =
            serve_monitored(&cfg(workers), &workload, &events, false, 0, Some(&mc));
        monitor.expect("monitor attached").events().to_vec()
    };
    let golden = run(1);
    assert!(
        golden
            .iter()
            .any(|e| matches!(e.kind, HealthKind::BudgetOverrun { .. })),
        "the 1 µJ budget must overrun"
    );
    for workers in [2usize, 8] {
        assert_eq!(
            golden,
            run(workers),
            "health events diverged at {workers} wave workers"
        );
    }
}

#[test]
fn a_transient_query_leaves_the_survivors_bit_identical() {
    let workload = scenario().workload();
    let baseline = serve(&cfg(1), &workload, &[], false, 0);
    let perturbed = serve(&cfg(1), &workload, &transient_events(), false, 0);

    assert_eq!(perturbed.queries.len(), baseline.queries.len() + 1);
    let transient = &perturbed.queries[workload.len()];
    assert_eq!(transient.admitted, 3);
    assert_eq!(transient.answers.len(), 4, "due rounds 3..=6");

    for (b, p) in baseline.queries.iter().zip(&perturbed.queries) {
        assert_eq!(b.answers, p.answers, "slot {}: answers changed", b.slot);
        assert_eq!(
            b.charges, p.charges,
            "slot {}: lane charges changed",
            b.slot
        );
        assert_eq!(b.exact_rounds, p.exact_rounds);
        assert_eq!(b.max_rank_error, p.max_rank_error);
    }
    // The transient's own traffic is the only delta in the global ledger.
    let transient_bits: u64 = transient.charges.bits().iter().sum();
    assert_eq!(baseline.total_bits + transient_bits, perturbed.total_bits);
    assert_eq!(baseline.audit_discrepancies, 0);
    assert_eq!(perturbed.audit_discrepancies, 0);
}
