//! Dynamic-world integration battery (DESIGN.md §3.3k): mobility, churn,
//! link drift and duty-cycled radios, checked end to end — oracle
//! exactness where the world stays reliable, bit-exact audit replay with
//! nonzero rebuild joules where it does not, histogram↔traffic
//! reconciliation, and wave-worker digest parity under rebuilds.

use wsn_net::obs::HistKind;
use wsn_net::Phase;
use wsn_sim::parity::{scenario_digest, serve_digest};
use wsn_sim::runner::{run_experiment_threads, AREA};
use wsn_sim::{AlgorithmKind, DataSource, DynamicsConfig, Scenario, SimulationConfig};

fn base() -> Scenario {
    Scenario {
        seed: 0xD14A,
        nodes: 12,
        range_milli: 3000,
        rounds: 8,
        runs: 2,
        phi_milli: 500,
        loss_milli: 0,
        retries: 0,
        recovery: 0,
        failure_milli: 0,
        eps_milli: 100,
        capacity: 0,
        queries: 1,
        mobility_milli: 0,
        churn_milli: 0,
        drift_milli: 0,
        duty_milli: 0,
        source: DataSource::Sinusoid {
            period: 16,
            noise_permille: 100,
        },
    }
}

/// The histogram↔traffic reconciliation every battery run must satisfy:
/// the always-on `MsgBits` histogram counts exactly the data messages the
/// traffic stats saw (rebuild beacons included on both sides).
fn assert_telemetry_reconciles(agg: &wsn_sim::AggregatedMetrics, cfg: &SimulationConfig) {
    let expected = agg.messages_per_round * cfg.rounds as f64 * cfg.runs as f64;
    let counted = agg.hists.get(HistKind::MsgBits).count();
    assert!(
        (counted as f64 - expected).abs() < 0.5,
        "histogram counted {counted} messages, traffic stats imply {expected}"
    );
}

#[test]
fn duty_cycled_worlds_keep_oracle_exactness() {
    // Duty-cycled listening spends idle joules but never touches an
    // answer: the full exact-protocol bar holds, the idle charges land in
    // the ledger (Other phase), and the audit replays them bit-exactly.
    let s = Scenario {
        duty_milli: 1000,
        ..base()
    };
    assert!(s.is_dynamic_world() && s.is_reliable_world());
    let cfg = s.to_config();
    for kind in AlgorithmKind::PAPER_SET {
        let agg = run_experiment_threads(&cfg, kind, 1);
        assert_eq!(agg.exactness, 1.0, "{} inexact under duty", kind.name());
        assert_eq!(agg.mean_rank_error, 0.0, "{}", kind.name());
        assert_eq!(agg.audit_discrepancies, 0, "{}", kind.name());
        assert!(
            agg.phase_joules[Phase::Other.index()] > 0.0,
            "{}: idle listening must cost energy",
            kind.name()
        );
        assert_eq!(agg.rebuilds, 0.0, "duty alone never rebuilds");
        assert_telemetry_reconciles(&agg, &cfg);
    }
}

#[test]
fn fully_connected_mobility_keeps_oracle_exactness() {
    // A radio range covering the whole area diagonal keeps every waypoint
    // position connected, so mobility rebuilds the tree every epoch
    // without ever orphaning a node — and the floor-rank oracle must be
    // answered exactly by the exact protocols despite the rebuilds.
    let s = Scenario {
        mobility_milli: 500,
        ..base()
    };
    let cfg = SimulationConfig {
        radio_range: AREA * std::f64::consts::SQRT_2 + 1.0,
        ..s.to_config()
    };
    for kind in [AlgorithmKind::Tag, AlgorithmKind::Pos, AlgorithmKind::Hbc] {
        let agg = run_experiment_threads(&cfg, kind, 1);
        assert!(agg.rebuilds > 0.0, "{}: mobility must rebuild", kind.name());
        assert_eq!(
            agg.exactness,
            1.0,
            "{} inexact while connected",
            kind.name()
        );
        assert_eq!(agg.mean_rank_error, 0.0, "{}", kind.name());
        assert_eq!(agg.audit_discrepancies, 0, "{}", kind.name());
        assert_telemetry_reconciles(&agg, &cfg);
    }
}

#[test]
fn mobile_churning_worlds_audit_nonzero_rebuild_joules() {
    let s = Scenario {
        mobility_milli: 250,
        churn_milli: 50,
        duty_milli: 100,
        ..base()
    };
    assert!(!s.is_reliable_world(), "churn demotes the world");
    let cfg = s.to_config();
    for kind in [AlgorithmKind::Pos, AlgorithmKind::Iq, AlgorithmKind::LcllH] {
        let agg = run_experiment_threads(&cfg, kind, 1);
        assert!(agg.rebuilds > 0.0, "{}: no rebuilds recorded", kind.name());
        let rb = Phase::Rebuild.index();
        assert!(
            agg.phase_joules[rb] > 0.0,
            "{}: rebuild joules must be attributed",
            kind.name()
        );
        assert!(agg.phase_bits[rb] > 0.0, "{}", kind.name());
        assert_eq!(
            agg.audit_discrepancies,
            0,
            "{}: rebuild joules must replay bit-exactly",
            kind.name()
        );
        assert_telemetry_reconciles(&agg, &cfg);
    }
}

#[test]
fn drifting_lossy_worlds_audit_cleanly() {
    let s = Scenario {
        loss_milli: 300,
        drift_milli: 400,
        retries: 2,
        recovery: 1,
        ..base()
    };
    let cfg = s.to_config();
    let agg = run_experiment_threads(&cfg, AlgorithmKind::Hbc, 1);
    assert_eq!(agg.audit_discrepancies, 0);
    assert_eq!(agg.rebuilds, 0.0, "drift retunes loss, never the tree");
    assert_telemetry_reconciles(&agg, &cfg);
}

#[test]
fn run_digests_are_wave_worker_independent_under_dynamics() {
    // The determinism contract extended to dynamic worlds: dynamics
    // decisions happen between rounds on the caller's thread, so the
    // full-battery digest is byte-identical at 1, 2 and 8 wave workers.
    let s = Scenario {
        mobility_milli: 250,
        churn_milli: 50,
        duty_milli: 100,
        ..base()
    };
    let one = scenario_digest(&s, 1);
    assert_eq!(one, scenario_digest(&s, 2), "1 vs 2 wave workers");
    assert_eq!(one, scenario_digest(&s, 8), "1 vs 8 wave workers");
    assert!(
        one.contains("rebuild count="),
        "dynamic digests pin rebuilds"
    );
}

#[test]
fn serve_digests_are_wave_worker_independent_under_dynamics() {
    let s = Scenario {
        queries: 5,
        mobility_milli: 250,
        churn_milli: 50,
        ..base()
    };
    let workload = s.workload();
    let digest_at = |workers: usize| {
        let cfg = SimulationConfig {
            wave_workers: workers,
            ..s.to_config()
        };
        serve_digest(&cfg, &workload, &[], true)
    };
    let one = digest_at(1);
    assert_eq!(one, digest_at(2), "1 vs 2 wave workers");
    assert_eq!(one, digest_at(8), "1 vs 8 wave workers");
}

#[test]
fn static_dynamics_config_is_byte_identical_to_none() {
    // Boundary: duty 0%, mobility 0, churn 0, drift 0 — an installed but
    // all-zero dynamics config must not perturb a single byte of the run.
    let s = base();
    let none = s.to_config();
    assert!(none.dynamics.is_none());
    let zeroed = SimulationConfig {
        dynamics: Some(DynamicsConfig::default()),
        ..s.to_config()
    };
    for kind in [AlgorithmKind::Pos, AlgorithmKind::Iq] {
        assert_eq!(
            wsn_sim::parity::config_digest(&none, kind),
            wsn_sim::parity::config_digest(&zeroed, kind),
            "{}",
            kind.name()
        );
    }
}

#[test]
fn drift_without_loss_is_inert() {
    // Boundary: drift pinned over a lossless world — there is no loss
    // probability to walk, so the run is byte-identical to the static one.
    let drifting = Scenario {
        drift_milli: 1000,
        ..base()
    };
    assert!(drifting.is_reliable_world(), "inert drift stays reliable");
    assert_eq!(
        wsn_sim::parity::config_digest(&base().to_config(), AlgorithmKind::Hbc),
        wsn_sim::parity::config_digest(&drifting.to_config(), AlgorithmKind::Hbc),
    );
}

#[test]
fn drift_pinned_at_total_blackout_terminates() {
    // Boundary: loss 1.0 with maximum drift amplitude — the drift walk
    // clamps inside [0, 1] and the run must terminate cleanly.
    let s = Scenario {
        loss_milli: 1000,
        drift_milli: 1000,
        retries: 1,
        rounds: 4,
        runs: 1,
        ..base()
    };
    let agg = run_experiment_threads(&s.to_config(), AlgorithmKind::Pos, 1);
    assert_eq!(agg.audit_discrepancies, 0);
}

#[test]
fn one_node_mobile_world_survives() {
    // Boundary: a single mobile sensor — the walk, the rebuilds and the
    // oracle all degenerate but nothing may panic or leak a discrepancy.
    let s = Scenario {
        nodes: 1,
        mobility_milli: 1000,
        duty_milli: 1000,
        rounds: 6,
        runs: 1,
        ..base()
    };
    let agg = run_experiment_threads(&s.to_config(), AlgorithmKind::Tag, 1);
    assert!(agg.rebuilds > 0.0);
    assert_eq!(agg.audit_discrepancies, 0);
}

#[test]
fn heavy_churn_with_joins_from_round_zero_audits_cleanly() {
    // Boundary: churn aggressive enough that departures and re-joins both
    // happen early (round 0 draws churn like every other round). The
    // audit must reconcile across every forced rebuild.
    let s = Scenario {
        churn_milli: 200,
        rounds: 12,
        runs: 1,
        ..base()
    };
    let agg = run_experiment_threads(&s.to_config(), AlgorithmKind::Pos, 1);
    assert!(agg.rebuilds > 0.0, "heavy churn must force rebuilds");
    assert_eq!(agg.audit_discrepancies, 0);
}
