//! φ boundary convention, pinned end-to-end (DESIGN.md §2): φ = 0 asks
//! for rank 1 (the minimum) and φ = 1 for rank n (the maximum), per
//! `rank_of_phi`'s clamp of `⌊φ·n⌋` into `[1, n]`. Every protocol of the
//! 8-way battery must answer those boundary queries against the central
//! oracle — the exact six with zero rank error, the sketch pair within
//! the tolerance it advertises (and exactly when ε = 0, so an acceptance
//! test that is off by one at rank 1 or rank n cannot hide inside a
//! nonzero tolerance).

use wsn_sim::runner::run_experiment;
use wsn_sim::{AlgorithmKind, SimulationConfig};

fn cfg(phi: f64) -> SimulationConfig {
    SimulationConfig {
        sensor_count: 24,
        radio_range: 150.0,
        rounds: 8,
        runs: 2,
        phi,
        seed: 0xB0DA,
        audit: true,
        ..SimulationConfig::default()
    }
}

#[test]
fn every_protocol_answers_the_boundary_quantiles() {
    for phi in [0.0, 1.0] {
        let cfg = cfg(phi);
        // ε = 0 holds the sketch family to the same zero-error bar as the
        // exact set, so the boundary ranks are pinned for all 8 protocols.
        for kind in AlgorithmKind::battery(0, 0) {
            let agg = run_experiment(&cfg, kind);
            assert_eq!(
                agg.audit_discrepancies,
                0,
                "{} at phi={phi}: audit failed",
                kind.name()
            );
            assert_eq!(
                agg.max_rank_error,
                0,
                "{} at phi={phi}: off-by-one at the boundary rank",
                kind.name()
            );
            assert_eq!(
                agg.exactness,
                1.0,
                "{} at phi={phi}: inexact rounds",
                kind.name()
            );
        }
    }
}

#[test]
fn sketches_honor_their_tolerance_at_the_boundaries() {
    for phi in [0.0, 1.0] {
        let cfg = cfg(phi);
        for kind in [
            AlgorithmKind::QDigest { eps_milli: 100 },
            AlgorithmKind::GkSink {
                eps_milli: 100,
                capacity: 0,
            },
        ] {
            let agg = run_experiment(&cfg, kind);
            assert!(
                agg.max_rank_error <= agg.rank_tolerance,
                "{} at phi={phi}: rank error {} exceeds tolerance {}",
                kind.name(),
                agg.max_rank_error,
                agg.rank_tolerance
            );
        }
    }
}
